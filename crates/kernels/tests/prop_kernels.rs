//! Property tests for the native kernels and the BLAS substrate:
//! every blocked/BLAS variant agrees with its pointwise reference over
//! random shapes, block sizes and inputs.

use proptest::prelude::*;
use shackle_kernels::banded::{
    banded_cholesky_dense, pbtrf_lapack, pbtrf_pointwise, pbtrf_shackled, BandMat,
};
use shackle_kernels::blas::{dgemm_nn, Block};
use shackle_kernels::cholesky::{
    cholesky_lapack, cholesky_pointwise, cholesky_shackled, cholesky_shackled_dgemm,
};
use shackle_kernels::gauss::{gauss_blocked_dgemm, gauss_pointwise, gauss_shackled};
use shackle_kernels::gen::{random_banded_spd, random_mat, random_spd};
use shackle_kernels::matmul::{matmul_blocked, matmul_ijk, matmul_two_level};
use shackle_kernels::qr::{qr_col_blocked, qr_col_blocked_dgemm, qr_pointwise, qr_wy};
use shackle_kernels::Mat;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_variants_agree(
        m in 1usize..24, k in 1usize..24, n in 1usize..24,
        nb in 1usize..12, n2 in 1usize..6, seed in 0u64..1000,
    ) {
        let a = random_mat(m, k, seed);
        let b = random_mat(k, n, seed + 1);
        let mut gold = Mat::zeros(m, n);
        matmul_ijk(&mut gold, &a, &b);
        let mut c1 = Mat::zeros(m, n);
        matmul_blocked(&mut c1, &a, &b, nb);
        prop_assert!(gold.max_rel_diff(&c1) < 1e-12);
        let n2 = n2.min(nb);
        let mut c2 = Mat::zeros(m, n);
        matmul_two_level(&mut c2, &a, &b, nb, n2);
        prop_assert!(gold.max_rel_diff(&c2) < 1e-12);
        let mut c3 = Mat::zeros(m, n);
        let cb = Block::full(&c3);
        dgemm_nn(&mut c3, cb, &a, Block::full(&a), &b, Block::full(&b));
        prop_assert!(gold.max_rel_diff(&c3) < 1e-12);
    }

    #[test]
    fn cholesky_variants_agree(n in 1usize..28, nb in 1usize..12, seed in 0u64..1000) {
        let a0 = random_spd(n, seed);
        let mut gold = a0.clone();
        cholesky_pointwise(&mut gold);
        for f in [
            cholesky_shackled as fn(&mut Mat, usize),
            cholesky_shackled_dgemm,
            cholesky_lapack,
        ] {
            let mut c = a0.clone();
            f(&mut c, nb);
            prop_assert!(gold.max_rel_diff_lower(&c) < 1e-9, "n={n} nb={nb}");
        }
    }

    #[test]
    fn qr_variants_agree(n in 1usize..20, nb in 1usize..10, seed in 0u64..1000) {
        let a0 = random_mat(n, n, seed);
        let mut gold = a0.clone();
        let s0 = qr_pointwise(&mut gold);
        for f in [
            qr_col_blocked as fn(&mut Mat, usize) -> shackle_kernels::qr::QrScalars,
            qr_col_blocked_dgemm,
            qr_wy,
        ] {
            let mut c = a0.clone();
            let s = f(&mut c, nb);
            prop_assert!(gold.max_rel_diff(&c) < 1e-7, "n={n} nb={nb}");
            for k in 0..n {
                prop_assert!((s0.rdiag[k] - s.rdiag[k]).abs()
                    <= 1e-7 * s0.rdiag[k].abs().max(1.0));
            }
        }
    }

    #[test]
    fn gauss_variants_agree(n in 1usize..24, nb in 1usize..10, seed in 0u64..1000) {
        let a0 = random_spd(n, seed);
        let mut gold = a0.clone();
        gauss_pointwise(&mut gold);
        for f in [gauss_shackled as fn(&mut Mat, usize), gauss_blocked_dgemm] {
            let mut c = a0.clone();
            f(&mut c, nb);
            prop_assert!(gold.max_rel_diff(&c) < 1e-9, "n={n} nb={nb}");
        }
    }

    #[test]
    fn banded_variants_agree(
        n in 2usize..30, p_plus in 1usize..8, nb in 1usize..8, seed in 0u64..1000,
    ) {
        let p = p_plus.min(n - 1);
        let a0 = random_banded_spd(n, p, seed);
        let mut gold = BandMat::from_dense(&a0, p);
        pbtrf_pointwise(&mut gold);
        for f in [pbtrf_shackled as fn(&mut BandMat, usize), pbtrf_lapack] {
            let mut c = BandMat::from_dense(&a0, p);
            f(&mut c, nb);
            prop_assert!(
                gold.to_dense_lower().max_rel_diff_lower(&c.to_dense_lower()) < 1e-9,
                "n={n} p={p} nb={nb}"
            );
        }
    }

    /// Band storage round-trip: `from_dense` → `to_dense_lower` is the
    /// identity on the lower band of a symmetric band matrix. `p_sel`
    /// oversamples the edges so `p = 0` (diagonal only) and `p = n−1`
    /// (the widest band `from_dense` accepts) are exercised every run.
    #[test]
    fn bandmat_roundtrip_is_identity(
        n in 1usize..26, p_sel in 0usize..10, seed in 0u64..1000,
    ) {
        let p = match p_sel {
            8 => 0,
            9 => n - 1,
            s => s.min(n - 1),
        };
        let a = random_banded_spd(n, p, seed);
        let band = BandMat::from_dense(&a, p);
        prop_assert_eq!(band.n(), n);
        prop_assert_eq!(band.p(), p);
        let back = band.to_dense_lower();
        for j in 0..n {
            for i in j..n {
                let expect = if i - j <= p { a.at(i, j) } else { 0.0 };
                prop_assert!(
                    back.at(i, j) == expect,
                    "n={} p={} ({}, {}): {} vs {}", n, p, i, j, back.at(i, j), expect
                );
            }
        }
    }

    /// Band-storage Cholesky agrees with the dense banded algorithm:
    /// `pbtrf_pointwise` on `BandMat` vs `banded_cholesky_dense` on the
    /// full matrix, compared on the band.
    #[test]
    fn pbtrf_matches_dense_banded_cholesky(
        n in 1usize..26, p_sel in 0usize..10, seed in 0u64..1000,
    ) {
        let p = match p_sel {
            8 => 0,
            9 => n - 1,
            s => s.min(n - 1),
        };
        let a0 = random_banded_spd(n, p, seed);
        let mut dense = a0.clone();
        banded_cholesky_dense(&mut dense, p);
        let mut band = BandMat::from_dense(&a0, p);
        pbtrf_pointwise(&mut band);
        let got = band.to_dense_lower();
        for j in 0..n {
            for i in j..(j + p + 1).min(n) {
                let (x, y) = (dense.at(i, j), got.at(i, j));
                let rel = (x - y).abs() / x.abs().max(y.abs()).max(1.0);
                prop_assert!(rel < 1e-12, "n={} p={} ({}, {})", n, p, i, j);
            }
        }
    }

    /// Cholesky factors reconstruct the input: L·Lᵀ = A.
    #[test]
    fn cholesky_reconstructs(n in 1usize..20, seed in 0u64..1000) {
        let a0 = random_spd(n, seed);
        let mut l = a0.clone();
        cholesky_pointwise(&mut l);
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..=j {
                    s += l.at(i, k) * l.at(j, k);
                }
                prop_assert!((s - a0.at(i, j)).abs() < 1e-8 * (n as f64));
            }
        }
    }
}
