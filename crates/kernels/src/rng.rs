//! A small deterministic pseudo-random generator (splitmix64 seeding an
//! xorshift64* stream), replacing the external `rand` dependency for
//! workload generation. The experiments only need values that are
//! well-distributed and reproducible in a seed; statistical quality
//! beyond that is irrelevant to the memory behaviour under study.

/// xorshift64* generator seeded through one splitmix64 step (so nearby
/// seeds — 0, 1, 2, … — produce uncorrelated streams and seed 0 is
/// safe).
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator with the given seed; any seed (including 0) is fine.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 step: guarantees a non-zero xorshift state
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Self {
            state: if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z },
        }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        let v = range.start + self.next_f64() * (range.end - range.start);
        if v < range.end {
            v
        } else {
            range.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::seed_from_u64(7);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::seed_from_u64(7);
                move |_| r.next_u64()
            })
            .collect();
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::seed_from_u64(8);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_respected_and_spread() {
        let mut r = Rng::seed_from_u64(0);
        let mut lo_half = 0;
        for _ in 0..1000 {
            let v = r.gen_range(1e-3..1.0);
            assert!((1e-3..1.0).contains(&v));
            if v < 0.5 {
                lo_half += 1;
            }
        }
        // roughly uniform: both halves well populated
        assert!(lo_half > 300 && lo_half < 700, "{lo_half}");
    }
}
