//! The canonical shackles of the paper's experiments, ready to apply to
//! the IR kernels of [`shackle_ir::kernels`].
//!
//! Each function documents which part of the paper it reproduces. All
//! are verified legal (and their generated code verified equivalent) in
//! this crate's tests and the workspace integration tests.

use shackle_core::{Blocking, CutSet, Shackle};
use shackle_ir::{ArrayRef, Program};
use shackle_polyhedra::LinExpr;

/// §4.1 / Figure 6: block `C` and shackle matmul's `C[I,J]` to it.
pub fn matmul_c(p: &Program, width: i64) -> Vec<Shackle> {
    vec![Shackle::on_writes(
        p,
        Blocking::square("C", 2, &[0, 1], width),
    )]
}

/// §6.1 / Figure 3: the product `M_C × M_A`, which fully tiles all three
/// loops.
pub fn matmul_ca(p: &Program, width: i64) -> Vec<Shackle> {
    vec![
        Shackle::on_writes(p, Blocking::square("C", 2, &[0, 1], width)),
        Shackle::new(
            p,
            Blocking::square("A", 2, &[0, 1], width),
            vec![ArrayRef::vars("A", &["I", "K"])],
        ),
    ]
}

/// §6.3 / Figure 10: the two-level product — `(M_C × M_A)` at `w1` for
/// the slow level times `(M_C × M_A)` at `w2` for the fast level.
pub fn matmul_two_level(p: &Program, w1: i64, w2: i64) -> Vec<Shackle> {
    let mut f = matmul_ca(p, w1);
    f.extend(matmul_ca(p, w2));
    f
}

/// §6.1: right-looking Cholesky shackled through its writes
/// (`A[J,J]`, `A[I,J]`, `A[L,K]`) — Figure 7's code.
pub fn cholesky_writes(p: &Program, width: i64) -> Vec<Shackle> {
    vec![Shackle::on_writes(
        p,
        Blocking::square("A", 2, &[1, 0], width),
    )]
}

/// §6.1: the left-looking (lazy-update) shackle
/// (`A[J,J]`, `A[I,J]`, `A[L,J]`).
///
/// The paper's text lists this choice with `A[J,J]` for S2, which our
/// exact legality test refutes (see `shackle-core`'s
/// `cholesky_paper_literal_second_choice_is_refuted` test); with S2
/// shackled through its write the choice is legal and yields
/// fully-blocked left-looking Cholesky.
pub fn cholesky_reads(p: &Program, width: i64) -> Vec<Shackle> {
    vec![Shackle::new(
        p,
        Blocking::square("A", 2, &[1, 0], width),
        vec![
            ArrayRef::vars("A", &["J", "J"]),
            ArrayRef::vars("A", &["I", "J"]),
            ArrayRef::vars("A", &["L", "J"]),
        ],
    )]
}

/// §6.1: the Cartesian product of the writes and lazy-update shackles —
/// "fully-blocked right-looking Cholesky" (localizes reads *and*
/// writes; the Figure 11 "compiler generated" configuration).
pub fn cholesky_product(p: &Program, width: i64) -> Vec<Shackle> {
    let mut f = cholesky_writes(p, width);
    f.extend(cholesky_reads(p, width));
    f
}

/// §7 / Figure 12: QR with only the columns of `A` blocked
/// ("dependences prevent complete two-dimensional blocking"). The
/// norm/pivot statements ride with column `K`; the update statements
/// with column `J` (dummy references where the statement writes `T`/`W`).
pub fn qr_columns(p: &Program, width: i64) -> Vec<Shackle> {
    let blocking = Blocking::new("A", vec![CutSet::axis(1, 2, width)]);
    let refs = vec![
        ArrayRef::vars("A", &["K", "K"]), // S1 (writes T[K]): dummy, column K
        ArrayRef::vars("A", &["I", "K"]), // S2
        ArrayRef::vars("A", &["K", "K"]), // S3
        ArrayRef::vars("A", &["K", "K"]), // S4: dummy
        ArrayRef::vars("A", &["I", "K"]), // S5
        ArrayRef::vars("A", &["K", "J"]), // S6 (writes W[J]): dummy, column J
        ArrayRef::vars("A", &["I", "J"]), // S7
        ArrayRef::vars("A", &["I", "J"]), // S8
    ];
    vec![Shackle::new(p, blocking, refs)]
}

/// §7 / Figure 14: shackle both ADI statements to `B[i-1,k]` with 1×1
/// blocks traversed in storage order — fusion + interchange fall out.
pub fn adi_storage_order(p: &Program) -> Vec<Shackle> {
    let blocking = Blocking::new("B", vec![CutSet::axis(1, 2, 1), CutSet::axis(0, 2, 1)]);
    let bprev = || {
        ArrayRef::new(
            "B",
            vec![LinExpr::var("i") - LinExpr::constant(1), LinExpr::var("k")],
        )
    };
    vec![Shackle::new(p, blocking, vec![bprev(), bprev()])]
}

/// §7 / Figure 13(i): GMTRY's Gaussian elimination, blocked in both
/// dimensions through the writes ("produced code similar to what we
/// obtained in Cholesky factorization").
pub fn gauss_writes(p: &Program, width: i64) -> Vec<Shackle> {
    vec![Shackle::on_writes(
        p,
        Blocking::square("A", 2, &[1, 0], width),
    )]
}

/// §7 / Figure 13(i): the Cartesian product that fully blocks Gaussian
/// elimination — writes (`A[I,K]`, `A[I,J]`) times the multiplier-column
/// reads (`A[I,K]` for both statements), which bounds every remaining
/// reference by Theorem 2.
pub fn gauss_product(p: &Program, width: i64) -> Vec<Shackle> {
    let mut f = gauss_writes(p, width);
    f.push(Shackle::new(
        p,
        Blocking::square("A", 2, &[1, 0], width),
        vec![
            ArrayRef::vars("A", &["I", "K"]),
            ArrayRef::vars("A", &["I", "K"]),
        ],
    ));
    f
}

/// §7 / Figure 15: banded Cholesky — the regular Cholesky writes
/// shackle applied to the band-restricted code.
pub fn banded_writes(p: &Program, width: i64) -> Vec<Shackle> {
    vec![Shackle::on_writes(
        p,
        Blocking::square("A", 2, &[1, 0], width),
    )]
}

/// §8's triangular back-solve: blocks of `X` must be walked bottom-to-
/// top (a reversed cut set); the forward traversal is illegal.
pub fn backsolve_reversed(p: &Program, width: i64) -> Vec<Shackle> {
    let xref = |v: &str| {
        ArrayRef::new(
            "X",
            vec![LinExpr::var("N") + LinExpr::constant(1) - LinExpr::var(v)],
        )
    };
    vec![Shackle::new(
        p,
        Blocking::new("X", vec![CutSet::axis(0, 1, width).reversed()]),
        vec![xref("Ip"), xref("Jp")],
    )]
}

/// SYRK's fully-blocking product, the matmul `M_C × M_A` construction
/// transplanted to the triangular update: `C` shackled through its
/// write and `A` through the row-panel read `A[I,K]`.
pub fn syrk_product(p: &Program, width: i64) -> Vec<Shackle> {
    vec![
        Shackle::on_writes(p, Blocking::square("C", 2, &[0, 1], width)),
        Shackle::new(
            p,
            Blocking::square("A", 2, &[0, 1], width),
            vec![ArrayRef::vars("A", &["I", "K"])],
        ),
    ]
}

/// Rectangular `bi × bj` tiles for the 2-D Jacobi sweep: `V` shackled
/// through its write and `U` through the north-neighbour read, with
/// *independent* per-dimension widths (ROADMAP's rectangular blocks —
/// column-major storage favours tall, narrow tiles).
pub fn jacobi2d_tiles(p: &Program, bi: i64, bj: i64) -> Vec<Shackle> {
    let rect =
        |array: &str| Blocking::new(array, vec![CutSet::axis(0, 2, bi), CutSet::axis(1, 2, bj)]);
    vec![
        Shackle::on_writes(p, rect("V")),
        Shackle::new(
            p,
            rect("U"),
            vec![ArrayRef::new(
                "U",
                vec![LinExpr::var("I") - LinExpr::constant(1), LinExpr::var("J")],
            )],
        ),
    ]
}

/// The tensor contraction's output blocking — rectangular `bi × bj`
/// tiles of `C`. The rank-2 reduction chain (Σ over `K`,`L` into
/// `C[I,J]`) makes every full-rank blocking of `A` or `B` illegal, so
/// this *partial* product is the maximal legal shackling; the rank-3
/// operands stay unconstrained by construction.
pub fn tensor_c(p: &Program, bi: i64, bj: i64) -> Vec<Shackle> {
    vec![Shackle::on_writes(
        p,
        Blocking::new("C", vec![CutSet::axis(0, 2, bi), CutSet::axis(1, 2, bj)]),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use shackle_core::check_legality;
    use shackle_ir::kernels;

    #[test]
    fn all_canonical_shackles_are_legal() {
        let mm = kernels::matmul_ijk();
        assert!(check_legality(&mm, &matmul_c(&mm, 25)).is_legal());
        assert!(check_legality(&mm, &matmul_ca(&mm, 25)).is_legal());
        assert!(check_legality(&mm, &matmul_two_level(&mm, 64, 8)).is_legal());
        let ch = kernels::cholesky_right();
        assert!(check_legality(&ch, &cholesky_writes(&ch, 64)).is_legal());
        assert!(check_legality(&ch, &cholesky_reads(&ch, 64)).is_legal());
        assert!(check_legality(&ch, &cholesky_product(&ch, 64)).is_legal());
        let qr = kernels::qr_householder();
        assert!(check_legality(&qr, &qr_columns(&qr, 8)).is_legal());
        let adi = kernels::adi();
        assert!(check_legality(&adi, &adi_storage_order(&adi)).is_legal());
        let ga = kernels::gauss();
        assert!(check_legality(&ga, &gauss_writes(&ga, 8)).is_legal());
        assert!(check_legality(&ga, &gauss_product(&ga, 8)).is_legal());
        let ba = kernels::banded_cholesky();
        assert!(check_legality(&ba, &banded_writes(&ba, 8)).is_legal());
        let bs = kernels::backsolve();
        assert!(check_legality(&bs, &backsolve_reversed(&bs, 8)).is_legal());
        let sy = kernels::syrk();
        assert!(check_legality(&sy, &syrk_product(&sy, 8)).is_legal());
        let ja = kernels::jacobi2d();
        assert!(check_legality(&ja, &jacobi2d_tiles(&ja, 16, 4)).is_legal());
        let tc = kernels::tensor_contract();
        assert!(check_legality(&tc, &tensor_c(&tc, 8, 4)).is_legal());
    }

    #[test]
    fn wave1_products_constrain_what_they_can() {
        use shackle_core::span::unconstrained_refs;
        let sy = kernels::syrk();
        assert!(unconstrained_refs(&sy, &syrk_product(&sy, 8)).is_empty());
        let ja = kernels::jacobi2d();
        assert!(unconstrained_refs(&ja, &jacobi2d_tiles(&ja, 16, 4)).is_empty());
        // the tensor contraction is only partially blockable: the
        // rank-3 operand reads must remain unconstrained
        let tc = kernels::tensor_contract();
        assert!(!unconstrained_refs(&tc, &tensor_c(&tc, 8, 4)).is_empty());
    }

    #[test]
    fn theorem2_product_fully_constrains_matmul() {
        let mm = kernels::matmul_ijk();
        assert!(!shackle_core::span::unconstrained_refs(&mm, &matmul_c(&mm, 25)).is_empty());
        assert!(shackle_core::span::unconstrained_refs(&mm, &matmul_ca(&mm, 25)).is_empty());
    }

    #[test]
    fn theorem2_gauss_product_fully_constrains() {
        let ga = kernels::gauss();
        assert!(!shackle_core::span::unconstrained_refs(&ga, &gauss_writes(&ga, 8)).is_empty());
        assert!(shackle_core::span::unconstrained_refs(&ga, &gauss_product(&ga, 8)).is_empty());
    }

    #[test]
    fn theorem2_cholesky_product_fully_constrains() {
        let ch = kernels::cholesky_right();
        assert!(!shackle_core::span::unconstrained_refs(&ch, &cholesky_writes(&ch, 64)).is_empty());
        assert!(shackle_core::span::unconstrained_refs(&ch, &cholesky_product(&ch, 64)).is_empty());
    }
}
