//! Column-major matrices for the native kernels, plus a traced variant
//! that replays every element access into a cache hierarchy.

use shackle_memsim::Hierarchy;
use std::fmt;

/// A dense column-major `f64` matrix with 0-based indexing (the native
/// kernels' working type; the IR world is 1-based, conversion helpers
/// bridge the two).
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a function of `(row, col)` (0-based).
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m.data[j * rows + i] = f(i, j);
            }
        }
        m
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i]
    }

    /// Element assignment.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i] = v;
    }

    /// In-place element update.
    #[inline(always)]
    pub fn add_assign(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i] += v;
    }

    /// Raw column-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column-major offset of `(i, j)`.
    #[inline(always)]
    pub fn offset(&self, i: usize, j: usize) -> usize {
        j * self.rows + i
    }

    /// Largest relative element difference with another matrix of the
    /// same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_rel_diff(&self, other: &Mat) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs() / a.abs().max(b.abs()).max(1.0))
            .fold(0.0, f64::max)
    }

    /// Largest relative difference on the lower triangle only (used for
    /// factorizations that leave the strict upper triangle unspecified).
    pub fn max_rel_diff_lower(&self, other: &Mat) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        let mut worst: f64 = 0.0;
        for j in 0..self.cols {
            for i in j..self.rows {
                let (a, b) = (self.at(i, j), other.at(i, j));
                worst = worst.max((a - b).abs() / a.abs().max(b.abs()).max(1.0));
            }
        }
        worst
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}x{} matrix", self.rows, self.cols)
    }
}

/// A matrix whose every element access is replayed into a
/// [`Hierarchy`] at a given base address (8 bytes per element).
///
/// This is how the "hand-written" baseline algorithms (LAPACK-style
/// blocked factorizations, the DGEMM microkernel) produce honest memory
/// traces for the simulator without routing through the IR interpreter.
#[derive(Debug)]
pub struct TracedMat<'a> {
    mat: Mat,
    base: u64,
    hierarchy: &'a mut Hierarchy,
}

impl<'a> TracedMat<'a> {
    /// Wrap a matrix at the given base address.
    pub fn new(mat: Mat, base: u64, hierarchy: &'a mut Hierarchy) -> Self {
        Self {
            mat,
            base,
            hierarchy,
        }
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.mat.rows()
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.mat.cols()
    }

    fn touch(&mut self, i: usize, j: usize) {
        let addr = self.base + 8 * self.mat.offset(i, j) as u64;
        self.hierarchy.access(addr);
    }

    /// Traced load.
    pub fn at(&mut self, i: usize, j: usize) -> f64 {
        self.touch(i, j);
        self.mat.at(i, j)
    }

    /// Traced store.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.touch(i, j);
        self.mat.set(i, j, v);
    }

    /// Unwrap the matrix.
    pub fn into_inner(self) -> Mat {
        self.mat
    }

    /// Peek at the untraced matrix.
    pub fn inner(&self) -> &Mat {
        &self.mat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_column_major() {
        let m = Mat::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.data()[0], 0.0); // (0,0)
        assert_eq!(m.data()[1], 10.0); // (1,0)
        assert_eq!(m.data()[2], 1.0); // (0,1)
        assert_eq!(m.offset(1, 2), 5);
    }

    #[test]
    fn diff_metrics() {
        let a = Mat::from_fn(3, 3, |i, j| (i + j) as f64);
        let mut b = a.clone();
        assert_eq!(a.max_rel_diff(&b), 0.0);
        b.set(0, 2, 100.0); // strict upper triangle
        assert!(a.max_rel_diff(&b) > 0.9);
        assert_eq!(a.max_rel_diff_lower(&b), 0.0);
    }

    #[test]
    fn traced_accesses_reach_hierarchy() {
        let mut h = Hierarchy::sp2_thin_node();
        let m = Mat::zeros(4, 4);
        let mut t = TracedMat::new(m, 0, &mut h);
        let _ = t.at(0, 0);
        t.set(1, 0, 5.0);
        assert_eq!(t.inner().at(1, 0), 5.0);
        let m = t.into_inner();
        assert_eq!(m.at(1, 0), 5.0);
        assert_eq!(h.accesses(), 2);
    }
}
