//! Native Cholesky factorization variants — the four curves of the
//! paper's Figure 11.
//!
//! * [`cholesky_pointwise`] — the input right-looking code of Fig. 1(ii);
//! * [`cholesky_left_pointwise`] — the left-looking variant of Fig. 1(iii);
//! * [`cholesky_shackled`] — a faithful transcription of the code the
//!   scanner generates from the writes shackle (Fig. 7): blocked
//!   structure, scalar inner loops ("Compiler generated code");
//! * [`cholesky_shackled_dgemm`] — the same with the *one* biggest
//!   matrix-multiply loop nest handed to the DGEMM substrate, exactly
//!   the paper's "Matrix Multiply replaced by DGEMM" experiment;
//! * [`cholesky_lapack`] — the fully blocked LAPACK `dpotrf` algorithm
//!   on top of the BLAS-3 substrate ("LAPACK with native BLAS").
//!
//! All variants factor in place, writing the lower triangle; the strict
//! upper triangle is left unspecified.

use crate::blas::{dgemm_nt_sub_in, dpotf2, dsyrk_ln_sub_in, dtrsm_rlt_in, Block};
use crate::Mat;

/// Right-looking pointwise Cholesky (the paper's input code, ~8 MFLOPS
/// flat on the SP-2).
///
/// # Panics
///
/// Panics if the matrix is not square or not positive definite.
pub fn cholesky_pointwise(a: &mut Mat) {
    assert_eq!(a.rows(), a.cols(), "Cholesky needs a square matrix");
    let n = a.rows();
    for j in 0..n {
        let d = a.at(j, j);
        assert!(d > 0.0, "matrix not positive definite at pivot {j}");
        let d = d.sqrt();
        a.set(j, j, d);
        for i in (j + 1)..n {
            let v = a.at(i, j) / d;
            a.set(i, j, v);
        }
        for l in (j + 1)..n {
            for k in (j + 1)..=l {
                let v = a.at(l, k) - a.at(l, j) * a.at(k, j);
                a.set(l, k, v);
            }
        }
    }
}

/// Left-looking pointwise Cholesky (Fig. 1(iii)).
///
/// # Panics
///
/// Panics if the matrix is not square or not positive definite.
pub fn cholesky_left_pointwise(a: &mut Mat) {
    assert_eq!(a.rows(), a.cols(), "Cholesky needs a square matrix");
    let n = a.rows();
    for j in 0..n {
        for l in j..n {
            let mut v = a.at(l, j);
            for k in 0..j {
                v -= a.at(l, k) * a.at(j, k);
            }
            a.set(l, j, v);
        }
        let d = a.at(j, j);
        assert!(d > 0.0, "matrix not positive definite at pivot {j}");
        let d = d.sqrt();
        a.set(j, j, d);
        for i in (j + 1)..n {
            let v = a.at(i, j) / d;
            a.set(i, j, v);
        }
    }
}

/// The scanner's output for the writes shackle (Fig. 7), transcribed:
/// per column block — update diagonal block from the left, baby-Cholesky
/// it, then per row block below: update from the left and interleave
/// scaling with local updates. All scalar loops.
///
/// # Panics
///
/// Panics if `nb == 0`, the matrix is not square, or not positive
/// definite.
pub fn cholesky_shackled(a: &mut Mat, nb: usize) {
    assert!(nb > 0, "block size must be positive");
    assert_eq!(a.rows(), a.cols(), "Cholesky needs a square matrix");
    let n = a.rows();
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + nb).min(n);
        // (i) updates from the left to the diagonal block
        for j in 0..j0 {
            for t6 in j0..j1 {
                for t7 in t6..j1 {
                    let v = a.at(t7, t6) - a.at(t7, j) * a.at(t6, j);
                    a.set(t7, t6, v);
                }
            }
        }
        // (ii) baby Cholesky of the diagonal block
        for j in j0..j1 {
            let d = a.at(j, j);
            assert!(d > 0.0, "matrix not positive definite at pivot {j}");
            let d = d.sqrt();
            a.set(j, j, d);
            for i in (j + 1)..j1 {
                let v = a.at(i, j) / d;
                a.set(i, j, v);
            }
            for t6 in (j + 1)..j1 {
                for t7 in t6..j1 {
                    let v = a.at(t7, t6) - a.at(t7, j) * a.at(t6, j);
                    a.set(t7, t6, v);
                }
            }
        }
        // per off-diagonal row block
        let mut i0 = j1;
        while i0 < n {
            let i1 = (i0 + nb).min(n);
            // (iii) updates from the left
            for j in 0..j0 {
                for t6 in j0..j1 {
                    for t7 in i0..i1 {
                        let v = a.at(t7, t6) - a.at(t7, j) * a.at(t6, j);
                        a.set(t7, t6, v);
                    }
                }
            }
            // (iv) interleaved scaling and local updates
            for j in j0..j1 {
                let d = a.at(j, j);
                for t5 in i0..i1 {
                    let v = a.at(t5, j) / d;
                    a.set(t5, j, v);
                }
                for t6 in (j + 1)..j1 {
                    for t7 in i0..i1 {
                        let v = a.at(t7, t6) - a.at(t7, j) * a.at(t6, j);
                        a.set(t7, t6, v);
                    }
                }
            }
            i0 = i1;
        }
        j0 = j1;
    }
}

/// [`cholesky_shackled`] with section (iii) — the dominant
/// matrix-multiply loop nest — replaced by a DGEMM call, mirroring the
/// paper's surgical replacement ("we replaced only one of several matrix
/// multiplications in the blocked code by a call to DGEMM").
///
/// # Panics
///
/// As [`cholesky_shackled`].
pub fn cholesky_shackled_dgemm(a: &mut Mat, nb: usize) {
    assert!(nb > 0, "block size must be positive");
    assert_eq!(a.rows(), a.cols(), "Cholesky needs a square matrix");
    let n = a.rows();
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + nb).min(n);
        for j in 0..j0 {
            for t6 in j0..j1 {
                for t7 in t6..j1 {
                    let v = a.at(t7, t6) - a.at(t7, j) * a.at(t6, j);
                    a.set(t7, t6, v);
                }
            }
        }
        for j in j0..j1 {
            let d = a.at(j, j);
            assert!(d > 0.0, "matrix not positive definite at pivot {j}");
            let d = d.sqrt();
            a.set(j, j, d);
            for i in (j + 1)..j1 {
                let v = a.at(i, j) / d;
                a.set(i, j, v);
            }
            for t6 in (j + 1)..j1 {
                for t7 in t6..j1 {
                    let v = a.at(t7, t6) - a.at(t7, j) * a.at(t6, j);
                    a.set(t7, t6, v);
                }
            }
        }
        let mut i0 = j1;
        while i0 < n {
            let i1 = (i0 + nb).min(n);
            if j0 > 0 {
                // section (iii) as one DGEMM: A[i0..i1, j0..j1] -=
                // A[i0..i1, 0..j0] · A[j0..j1, 0..j0]ᵀ
                dgemm_nt_sub_in(
                    a,
                    Block::new(i0, j0, i1 - i0, j1 - j0),
                    Block::new(i0, 0, i1 - i0, j0),
                    Block::new(j0, 0, j1 - j0, j0),
                );
            }
            for j in j0..j1 {
                let d = a.at(j, j);
                for t5 in i0..i1 {
                    let v = a.at(t5, j) / d;
                    a.set(t5, j, v);
                }
                for t6 in (j + 1)..j1 {
                    for t7 in i0..i1 {
                        let v = a.at(t7, t6) - a.at(t7, j) * a.at(t6, j);
                        a.set(t7, t6, v);
                    }
                }
            }
            i0 = i1;
        }
        j0 = j1;
    }
}

/// Fully blocked LAPACK-style `dpotrf` (right-looking) on the BLAS-3
/// substrate: `dpotf2` on the diagonal block, `dtrsm` on the panel,
/// `dsyrk`/`dgemm` on the trailing matrix.
///
/// # Panics
///
/// Panics if `nb == 0`, the matrix is not square, or not positive
/// definite.
pub fn cholesky_lapack(a: &mut Mat, nb: usize) {
    assert!(nb > 0, "block size must be positive");
    assert_eq!(a.rows(), a.cols(), "Cholesky needs a square matrix");
    let n = a.rows();
    let mut k0 = 0;
    while k0 < n {
        let k1 = (k0 + nb).min(n);
        let kb = k1 - k0;
        dpotf2(a, Block::new(k0, k0, kb, kb));
        if k1 < n {
            dtrsm_rlt_in(
                a,
                Block::new(k1, k0, n - k1, kb),
                Block::new(k0, k0, kb, kb),
            );
            // trailing update: diagonal blocks via syrk, off-diagonal
            // via gemm, lower triangle only
            let mut d0 = k1;
            while d0 < n {
                let d1 = (d0 + nb).min(n);
                dsyrk_ln_sub_in(
                    a,
                    Block::new(d0, d0, d1 - d0, d1 - d0),
                    Block::new(d0, k0, d1 - d0, kb),
                );
                if d1 < n {
                    dgemm_nt_sub_in(
                        a,
                        Block::new(d1, d0, n - d1, d1 - d0),
                        Block::new(d1, k0, n - d1, kb),
                        Block::new(d0, k0, d1 - d0, kb),
                    );
                }
                d0 = d1;
            }
        }
        k0 = k1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_spd;

    fn check_against_pointwise(factor: impl Fn(&mut Mat), n: usize, seed: u64) {
        let a0 = random_spd(n, seed);
        let mut reference = a0.clone();
        cholesky_pointwise(&mut reference);
        let mut candidate = a0;
        factor(&mut candidate);
        let diff = reference.max_rel_diff_lower(&candidate);
        assert!(diff < 1e-10, "lower-triangle mismatch: {diff}");
    }

    #[test]
    fn pointwise_reconstructs() {
        let n = 12;
        let a0 = random_spd(n, 1);
        let mut l = a0.clone();
        cholesky_pointwise(&mut l);
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..=j {
                    s += l.at(i, k) * l.at(j, k);
                }
                assert!((s - a0.at(i, j)).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn left_matches_right() {
        check_against_pointwise(cholesky_left_pointwise, 23, 2);
    }

    #[test]
    fn shackled_matches_for_various_blockings() {
        for (n, nb) in [(16, 4), (17, 4), (30, 8), (8, 16), (9, 3)] {
            check_against_pointwise(|a| cholesky_shackled(a, nb), n, 3);
        }
    }

    #[test]
    fn shackled_dgemm_matches() {
        for (n, nb) in [(16, 4), (25, 8), (31, 7)] {
            check_against_pointwise(|a| cholesky_shackled_dgemm(a, nb), n, 4);
        }
    }

    #[test]
    fn lapack_matches() {
        for (n, nb) in [(16, 4), (25, 8), (31, 7), (5, 8)] {
            check_against_pointwise(|a| cholesky_lapack(a, nb), n, 5);
        }
    }

    #[test]
    fn block_size_one_degenerates_gracefully() {
        check_against_pointwise(|a| cholesky_shackled(a, 1), 10, 6);
        check_against_pointwise(|a| cholesky_lapack(a, 1), 10, 6);
    }
}
