//! The PLDI 1997 evaluation kernels and their baselines.
//!
//! Part of the `data-shackle` workspace ("Data-centric Multi-level
//! Blocking" reproduction). This crate supplies everything the paper's
//! §7 experiments need beyond the transformation framework itself:
//!
//! * [`Mat`] / [`TracedMat`] — column-major matrices, optionally traced
//!   into the cache simulator;
//! * [`blas`] — the DGEMM/BLAS-3 substrate standing in for ESSL;
//! * [`cholesky`], [`matmul`], [`qr`], [`gauss`], [`adi`], [`banded`] —
//!   native implementations of each benchmark in all the variants the
//!   figures compare (input code, compiler-shackled code, shackled code
//!   with DGEMM, LAPACK-style blocked code);
//! * [`trisolve`], [`syrk`], [`stencil`], [`tensor`] — the scenario
//!   diversity wave: triangular back-solve (§8 reversed traversal),
//!   symmetric rank-k update, 2-D Jacobi relaxation and a rank-3
//!   tensor contraction, each with a rectangular-blocked variant;
//! * [`trace`] — adapters that replay IR interpreter executions into
//!   `shackle-memsim` hierarchies (dense and band storage);
//! * [`compact`] — capture-once/replay-many [`compact::CompactTrace`]
//!   streams feeding the multi-configuration stack engine;
//! * [`traced`] — traced duplicates of the two baselines whose
//!   algorithms exist only natively (WY QR, LAPACK banded Cholesky);
//! * [`gen`] — deterministic workload generators.
//!
//! The IR forms of the kernels live in [`shackle_ir::kernels`]; this
//! crate's native forms are cross-validated against them in the
//! workspace integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;

pub mod adi;
pub mod banded;
pub mod blas;
pub mod cholesky;
pub mod compact;
pub mod gauss;
pub mod gen;
pub mod matmul;
pub mod qr;
pub mod rng;
pub mod shackles;
pub mod stencil;
pub mod syrk;
pub mod tensor;
pub mod trace;
pub mod traced;
pub mod trisolve;

pub use matrix::{Mat, TracedMat};
