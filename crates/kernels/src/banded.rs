//! Banded Cholesky factorization (the paper's Figure 15).
//!
//! The input code is ordinary right-looking Cholesky restricted to the
//! band (§7, caveat (i)); the storage transformation to LAPACK band
//! layout — only the band stored, column by column — is caveat (ii),
//! applied to the compiler-generated blocked code as a post-pass. Here:
//!
//! * [`BandMat`] — LAPACK-style lower band storage;
//! * [`banded_cholesky_dense`] — the input code on dense storage;
//! * [`pbtrf_pointwise`] — the same computation on band storage;
//! * [`pbtrf_shackled`] — the compiler-blocked code on band storage;
//! * [`pbtrf_lapack`] — LAPACK `dpbtrf`-style blocked factorization.

use crate::Mat;

/// Lower band storage: element `(i, j)` with `j ≤ i ≤ j + p` lives at
/// row `i − j`, column `j` of a `(p+1) × n` column-major array.
#[derive(Clone, Debug, PartialEq)]
pub struct BandMat {
    n: usize,
    p: usize,
    data: Vec<f64>,
}

impl BandMat {
    /// A zero band matrix of order `n` with half-bandwidth `p`.
    pub fn zeros(n: usize, p: usize) -> Self {
        Self {
            n,
            p,
            data: vec![0.0; (p + 1) * n],
        }
    }

    /// Extract the lower band of a dense symmetric matrix.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square or `p >= n`.
    pub fn from_dense(a: &Mat, p: usize) -> Self {
        assert_eq!(a.rows(), a.cols());
        let n = a.rows();
        assert!(p < n, "half-bandwidth must be smaller than the order");
        let mut b = Self::zeros(n, p);
        for j in 0..n {
            for i in j..(j + p + 1).min(n) {
                b.set(i, j, a.at(i, j));
            }
        }
        b
    }

    /// Expand to a dense lower-triangular matrix (upper part zero).
    pub fn to_dense_lower(&self) -> Mat {
        let mut a = Mat::zeros(self.n, self.n);
        for j in 0..self.n {
            for i in j..(j + self.p + 1).min(self.n) {
                a.set(i, j, self.at(i, j));
            }
        }
        a
    }

    /// Order of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Half-bandwidth.
    pub fn p(&self) -> usize {
        self.p
    }

    /// True if `(i, j)` is inside the stored band.
    pub fn in_band(&self, i: usize, j: usize) -> bool {
        i >= j && i - j <= self.p
    }

    /// Band-storage element offset of `(i, j)`.
    #[inline(always)]
    pub fn offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(self.in_band(i, j), "({i},{j}) outside band");
        (i - j) + j * (self.p + 1)
    }

    /// Read `(i, j)` (within the band).
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[self.offset(i, j)]
    }

    /// Write `(i, j)` (within the band).
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let o = self.offset(i, j);
        self.data[o] = v;
    }
}

/// The input code: dense right-looking Cholesky with band guards — the
/// paper's "initial point code … regular Cholesky factorization
/// restricted to accessing data in the band".
///
/// # Panics
///
/// Panics if not square / not positive definite on the band.
pub fn banded_cholesky_dense(a: &mut Mat, p: usize) {
    assert_eq!(a.rows(), a.cols());
    let n = a.rows();
    for j in 0..n {
        let d = a.at(j, j);
        assert!(d > 0.0, "not positive definite at pivot {j}");
        let d = d.sqrt();
        a.set(j, j, d);
        for i in (j + 1)..n {
            if i - j <= p {
                let v = a.at(i, j) / d;
                a.set(i, j, v);
            }
        }
        for l in (j + 1)..n {
            for k in (j + 1)..=l {
                if l - j <= p && k - j <= p && l - k <= p {
                    let v = a.at(l, k) - a.at(l, j) * a.at(k, j);
                    a.set(l, k, v);
                }
            }
        }
    }
}

/// Pointwise banded Cholesky on band storage.
///
/// # Panics
///
/// Panics if not positive definite.
pub fn pbtrf_pointwise(a: &mut BandMat) {
    let (n, p) = (a.n(), a.p());
    for j in 0..n {
        let d = a.at(j, j);
        assert!(d > 0.0, "not positive definite at pivot {j}");
        let d = d.sqrt();
        a.set(j, j, d);
        let hi = (j + p + 1).min(n);
        for i in (j + 1)..hi {
            let v = a.at(i, j) / d;
            a.set(i, j, v);
        }
        for l in (j + 1)..hi {
            for k in (j + 1)..=l {
                // l − k ≤ p holds automatically inside the window
                let v = a.at(l, k) - a.at(l, j) * a.at(k, j);
                a.set(l, k, v);
            }
        }
    }
}

/// The compiler-blocked banded code on band storage: the Cholesky
/// shackle's block structure with every range clipped to the band
/// (the paper's post-pass data transformation applied to Figure 7).
///
/// # Panics
///
/// Panics if `nb == 0` or not positive definite.
pub fn pbtrf_shackled(a: &mut BandMat, nb: usize) {
    assert!(nb > 0, "block size must be positive");
    let (n, p) = (a.n(), a.p());
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + nb).min(n);
        // (i) updates from the left to the diagonal block
        for j in j0.saturating_sub(p)..j0 {
            let hi = (j + p + 1).min(j1);
            for t6 in j0..hi {
                for t7 in t6..hi {
                    let v = a.at(t7, t6) - a.at(t7, j) * a.at(t6, j);
                    a.set(t7, t6, v);
                }
            }
        }
        // (ii) baby Cholesky of the diagonal block
        for j in j0..j1 {
            let d = a.at(j, j);
            assert!(d > 0.0, "not positive definite at pivot {j}");
            let d = d.sqrt();
            a.set(j, j, d);
            let hi = (j + p + 1).min(j1);
            for i in (j + 1)..hi {
                let v = a.at(i, j) / d;
                a.set(i, j, v);
            }
            for t6 in (j + 1)..hi {
                for t7 in t6..hi {
                    let v = a.at(t7, t6) - a.at(t7, j) * a.at(t6, j);
                    a.set(t7, t6, v);
                }
            }
        }
        // off-diagonal row blocks intersecting the band
        let mut i0 = j1;
        while i0 < n && i0 <= j1 - 1 + p {
            let i1 = (i0 + nb).min(n);
            // (iii) updates from the left
            for j in i0.saturating_sub(p)..j0 {
                for t6 in j0..j1 {
                    if t6 > j + p {
                        continue;
                    }
                    let lo = i0.max(j.max(t6));
                    let hi = (j + p + 1).min(i1).min(t6 + p + 1);
                    for t7 in lo..hi {
                        let v = a.at(t7, t6) - a.at(t7, j) * a.at(t6, j);
                        a.set(t7, t6, v);
                    }
                }
            }
            // (iv) interleaved scaling and local updates
            for j in j0..j1 {
                let d = a.at(j, j);
                let hi = (j + p + 1).min(i1);
                for t5 in i0.max(j + 1)..hi {
                    let v = a.at(t5, j) / d;
                    a.set(t5, j, v);
                }
                for t6 in (j + 1)..j1 {
                    if t6 > j + p {
                        continue;
                    }
                    let lo = i0.max(t6);
                    let hi = (j + p + 1).min(i1).min(t6 + p + 1);
                    for t7 in lo..hi {
                        let v = a.at(t7, t6) - a.at(t7, j) * a.at(t6, j);
                        a.set(t7, t6, v);
                    }
                }
            }
            i0 = i1;
        }
        j0 = j1;
    }
}

/// LAPACK `dpbtrf`-style blocked banded Cholesky: per block column,
/// factor the diagonal block, triangular-solve the sub-band panel, and
/// symmetric-update the trailing window — the structure that "starts
/// reaping the benefits of level 3 BLAS" at large bandwidths.
///
/// # Panics
///
/// Panics if `nb == 0` or not positive definite.
pub fn pbtrf_lapack(a: &mut BandMat, nb: usize) {
    assert!(nb > 0, "block size must be positive");
    let (n, p) = (a.n(), a.p());
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + nb).min(n);
        // dpotf2 on the diagonal block (band-clipped)
        for j in j0..j1 {
            let mut d = a.at(j, j);
            for k in j.saturating_sub(p).max(j0)..j {
                let v = a.at(j, k);
                d -= v * v;
            }
            assert!(d > 0.0, "not positive definite at pivot {j}");
            let d = d.sqrt();
            a.set(j, j, d);
            for i in (j + 1)..j1.min(j + p + 1) {
                let mut v = a.at(i, j);
                for k in i.saturating_sub(p).max(j0)..j {
                    v -= a.at(i, k) * a.at(j, k);
                }
                a.set(i, j, v / d);
            }
        }
        let band_end = (j1 - 1 + p + 1).min(n).max(j1);
        if j1 < band_end {
            // dtrsm: rows j1..band_end of the panel against L(j0..j1)
            for j in j0..j1 {
                let d = a.at(j, j);
                let hi = (j + p + 1).min(band_end);
                for i in j1..hi {
                    let mut v = a.at(i, j);
                    for k in i.saturating_sub(p).max(j0)..j {
                        v -= a.at(i, k) * a.at(j, k);
                    }
                    a.set(i, j, v / d);
                }
            }
            // dsyrk: trailing window (j1..band_end)² -= panel·panelᵀ
            for c in j1..band_end {
                for r in c..(c + p + 1).min(band_end) {
                    let mut v = a.at(r, c);
                    let klo = r.saturating_sub(p).max(j0);
                    for k in klo..j1 {
                        if c <= k + p {
                            v -= a.at(r, k) * a.at(c, k);
                        }
                    }
                    a.set(r, c, v);
                }
            }
        }
        j0 = j1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::cholesky_pointwise;
    use crate::gen::random_banded_spd;

    fn band_diff(a: &BandMat, b: &BandMat) -> f64 {
        let (da, db) = (a.to_dense_lower(), b.to_dense_lower());
        da.max_rel_diff_lower(&db)
    }

    #[test]
    fn band_storage_roundtrip() {
        let a = random_banded_spd(10, 3, 1);
        let b = BandMat::from_dense(&a, 3);
        assert_eq!(b.at(5, 3), a.at(5, 3));
        let d = b.to_dense_lower();
        assert_eq!(d.at(5, 3), a.at(5, 3));
        assert_eq!(d.at(3, 5), 0.0);
    }

    #[test]
    fn banded_factor_matches_dense_cholesky() {
        // the Cholesky factor of a banded SPD matrix stays in the band,
        // so the band-restricted code computes the true factor
        for (n, p) in [(16, 3), (20, 5), (12, 1)] {
            let a0 = random_banded_spd(n, p, 2);
            let mut dense = a0.clone();
            cholesky_pointwise(&mut dense);
            let mut guarded = a0.clone();
            banded_cholesky_dense(&mut guarded, p);
            assert!(dense.max_rel_diff_lower(&guarded) < 1e-10);
            let mut band = BandMat::from_dense(&a0, p);
            pbtrf_pointwise(&mut band);
            assert!(
                band.to_dense_lower().max_rel_diff_lower(&dense.clone()) < 1.0,
                "band values live only in the band"
            );
            // compare within the band
            for j in 0..n {
                for i in j..(j + p + 1).min(n) {
                    assert!((band.at(i, j) - dense.at(i, j)).abs() < 1e-10, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn shackled_matches_pointwise() {
        for (n, p, nb) in [(20, 4, 4), (25, 6, 5), (30, 3, 8), (16, 7, 4)] {
            let a0 = random_banded_spd(n, p, 3);
            let mut gold = BandMat::from_dense(&a0, p);
            pbtrf_pointwise(&mut gold);
            let mut c = BandMat::from_dense(&a0, p);
            pbtrf_shackled(&mut c, nb);
            assert!(band_diff(&gold, &c) < 1e-10, "n={n} p={p} nb={nb}");
        }
    }

    #[test]
    fn lapack_matches_pointwise() {
        for (n, p, nb) in [(20, 4, 4), (25, 6, 5), (30, 3, 8), (16, 7, 4), (18, 5, 32)] {
            let a0 = random_banded_spd(n, p, 4);
            let mut gold = BandMat::from_dense(&a0, p);
            pbtrf_pointwise(&mut gold);
            let mut c = BandMat::from_dense(&a0, p);
            pbtrf_lapack(&mut c, nb);
            assert!(band_diff(&gold, &c) < 1e-10, "n={n} p={p} nb={nb}");
        }
    }
}
