//! A small dense BLAS-3 substrate: the workspace's stand-in for the
//! machine-tuned ESSL routines the paper's baselines call.
//!
//! Everything operates on rectangular [`Block`] views of column-major
//! [`Mat`]s. The `dgemm` kernels use the cache-friendly `j-k-i` (AXPY)
//! loop order with unrolled columns — contiguous, vectorizable inner
//! loops — which is what "replace the inner matrix-multiply loops with
//! DGEMM" buys the paper's compiler-generated code.

use crate::Mat;

/// A rectangular view: `m × n` elements starting at `(r0, c0)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Block {
    /// First row.
    pub r0: usize,
    /// First column.
    pub c0: usize,
    /// Rows.
    pub m: usize,
    /// Columns.
    pub n: usize,
}

impl Block {
    /// The whole of an `m × n` matrix.
    pub fn full(mat: &Mat) -> Self {
        Self {
            r0: 0,
            c0: 0,
            m: mat.rows(),
            n: mat.cols(),
        }
    }

    /// A view with the given geometry.
    pub fn new(r0: usize, c0: usize, m: usize, n: usize) -> Self {
        Self { r0, c0, m, n }
    }
}

fn check(mat: &Mat, b: Block) {
    assert!(
        b.r0 + b.m <= mat.rows() && b.c0 + b.n <= mat.cols(),
        "block {b:?} out of range for {}x{} matrix",
        mat.rows(),
        mat.cols()
    );
}

/// `C[cb] += A[ab] · B[bb]`.
///
/// # Panics
///
/// Panics on dimension mismatch or out-of-range blocks.
pub fn dgemm_nn(c: &mut Mat, cb: Block, a: &Mat, ab: Block, b: &Mat, bb: Block) {
    check(c, cb);
    check(a, ab);
    check(b, bb);
    assert_eq!(ab.m, cb.m, "dgemm_nn: row mismatch");
    assert_eq!(bb.n, cb.n, "dgemm_nn: column mismatch");
    assert_eq!(ab.n, bb.m, "dgemm_nn: inner dimension mismatch");
    let (m, n, k) = (cb.m, cb.n, ab.n);
    let lda = a.rows();
    let ldc = c.rows();
    let adata = a.data();
    let bdat = b.data();
    let cdata = c.data_mut();
    for j in 0..n {
        let ccol = (cb.c0 + j) * ldc + cb.r0;
        for p in 0..k {
            let s = bdat[(bb.c0 + j) * b.rows() + bb.r0 + p];
            if s == 0.0 {
                continue;
            }
            let acol = (ab.c0 + p) * lda + ab.r0;
            let (avec, cvec) = (&adata[acol..acol + m], &mut cdata[ccol..ccol + m]);
            for i in 0..m {
                cvec[i] += s * avec[i];
            }
        }
    }
}

/// `C[cb] −= A[ab] · B[bb]ᵀ` (the Cholesky/LU trailing update shape).
///
/// # Panics
///
/// Panics on dimension mismatch or out-of-range blocks.
pub fn dgemm_nt_sub(c: &mut Mat, cb: Block, a: &Mat, ab: Block, b: &Mat, bb: Block) {
    check(c, cb);
    check(a, ab);
    check(b, bb);
    assert_eq!(ab.m, cb.m, "dgemm_nt_sub: row mismatch");
    assert_eq!(
        bb.m, cb.n,
        "dgemm_nt_sub: column mismatch (B is transposed)"
    );
    assert_eq!(ab.n, bb.n, "dgemm_nt_sub: inner dimension mismatch");
    let (m, n, k) = (cb.m, cb.n, ab.n);
    let lda = a.rows();
    let ldb = b.rows();
    let ldc = c.rows();
    let adata = a.data();
    let bdat = b.data();
    let cdata = c.data_mut();
    for j in 0..n {
        let ccol = (cb.c0 + j) * ldc + cb.r0;
        for p in 0..k {
            // Bᵀ[p, j] = B[j, p]
            let s = bdat[(bb.c0 + p) * ldb + bb.r0 + j];
            if s == 0.0 {
                continue;
            }
            let acol = (ab.c0 + p) * lda + ab.r0;
            let (avec, cvec) = (&adata[acol..acol + m], &mut cdata[ccol..ccol + m]);
            for i in 0..m {
                cvec[i] -= s * avec[i];
            }
        }
    }
}

/// `C[cb] (lower triangle) −= A[ab] · A[ab]ᵀ` — `dsyrk`, the symmetric
/// trailing update of blocked Cholesky. Only the lower triangle of the
/// square view `cb` is written.
///
/// # Panics
///
/// Panics if `cb` is not square or dimensions mismatch.
pub fn dsyrk_ln_sub(c: &mut Mat, cb: Block, a: &Mat, ab: Block) {
    check(c, cb);
    check(a, ab);
    assert_eq!(cb.m, cb.n, "dsyrk: C block must be square");
    assert_eq!(ab.m, cb.m, "dsyrk: row mismatch");
    let (n, k) = (cb.m, ab.n);
    let lda = a.rows();
    let ldc = c.rows();
    let adata = a.data();
    let cdata = c.data_mut();
    for j in 0..n {
        let ccol = (cb.c0 + j) * ldc + cb.r0;
        for p in 0..k {
            let s = adata[(ab.c0 + p) * lda + ab.r0 + j];
            if s == 0.0 {
                continue;
            }
            let acol = (ab.c0 + p) * lda + ab.r0;
            for i in j..n {
                cdata[ccol + i] -= s * adata[acol + i];
            }
        }
    }
}

/// `X[xb] := X[xb] · L[lb]⁻ᵀ` where `L[lb]` is lower triangular —
/// `dtrsm(right, lower, transpose)`, the panel solve of blocked
/// Cholesky (`A21 := A21 · L11⁻ᵀ`).
///
/// # Panics
///
/// Panics if `lb` is not square or has zero diagonal entries
/// (`debug_assert`), or dimensions mismatch.
pub fn dtrsm_rlt(x: &mut Mat, xb: Block, l: &Mat, lb: Block) {
    check(x, xb);
    check(l, lb);
    assert_eq!(lb.m, lb.n, "dtrsm: L must be square");
    assert_eq!(xb.n, lb.m, "dtrsm: dimension mismatch");
    let (m, n) = (xb.m, xb.n);
    // Solve column by column: X[:,j] = (X[:,j] - Σ_{p<j} X[:,p]·L[j,p]) / L[j,j]
    for j in 0..n {
        for p in 0..j {
            let s = l.at(lb.r0 + j, lb.c0 + p);
            if s == 0.0 {
                continue;
            }
            for i in 0..m {
                let v = x.at(xb.r0 + i, xb.c0 + j) - s * x.at(xb.r0 + i, xb.c0 + p);
                x.set(xb.r0 + i, xb.c0 + j, v);
            }
        }
        let d = l.at(lb.r0 + j, lb.c0 + j);
        debug_assert!(d != 0.0, "singular triangular factor");
        for i in 0..m {
            let v = x.at(xb.r0 + i, xb.c0 + j) / d;
            x.set(xb.r0 + i, xb.c0 + j, v);
        }
    }
}

/// Unblocked Cholesky factorization of the square view `ab` (lower
/// triangle in place) — `dpotf2`, the paper's "baby Cholesky".
///
/// # Panics
///
/// Panics if the view is not square or a pivot is non-positive.
pub fn dpotf2(a: &mut Mat, ab: Block) {
    check(a, ab);
    assert_eq!(ab.m, ab.n, "dpotf2: block must be square");
    let n = ab.m;
    for j in 0..n {
        let mut d = a.at(ab.r0 + j, ab.c0 + j);
        for p in 0..j {
            let v = a.at(ab.r0 + j, ab.c0 + p);
            d -= v * v;
        }
        assert!(d > 0.0, "matrix not positive definite at pivot {j}");
        let d = d.sqrt();
        a.set(ab.r0 + j, ab.c0 + j, d);
        for i in (j + 1)..n {
            let mut v = a.at(ab.r0 + i, ab.c0 + j);
            for p in 0..j {
                v -= a.at(ab.r0 + i, ab.c0 + p) * a.at(ab.r0 + j, ab.c0 + p);
            }
            a.set(ab.r0 + i, ab.c0 + j, v / d);
        }
    }
}

/// `data[dst..dst+m] -= s * data[src..src+m]` for provably disjoint
/// ranges, via `split_at_mut` so the compiler sees two independent
/// slices and vectorizes the AXPY.
#[inline(always)]
fn axpy_sub_in(data: &mut [f64], dst: usize, src: usize, m: usize, s: f64) {
    debug_assert!(dst + m <= src || src + m <= dst, "ranges must be disjoint");
    if dst > src {
        let (lo, hi) = data.split_at_mut(dst);
        let x = &lo[src..src + m];
        let y = &mut hi[..m];
        for i in 0..m {
            y[i] -= s * x[i];
        }
    } else {
        let (lo, hi) = data.split_at_mut(src);
        let y = &mut lo[dst..dst + m];
        let x = &hi[..m];
        for i in 0..m {
            y[i] -= s * x[i];
        }
    }
}

/// Crate-internal re-export of [`axpy_sub_in`] for sibling modules.
#[inline(always)]
pub(crate) fn axpy_sub_in_pub(data: &mut [f64], dst: usize, src: usize, m: usize, s: f64) {
    axpy_sub_in(data, dst, src, m, s);
}

fn disjoint(a: Block, b: Block) -> bool {
    a.r0 + a.m <= b.r0 || b.r0 + b.m <= a.r0 || a.c0 + a.n <= b.c0 || b.c0 + b.n <= a.c0
}

/// `A[cb] −= A[ab] · A[bb]ᵀ` with all three blocks inside one matrix —
/// the in-place form factorizations need (no temporary copies).
///
/// # Panics
///
/// Panics if `cb` overlaps `ab` or `bb`, or on dimension mismatch.
pub fn dgemm_nt_sub_in(a: &mut Mat, cb: Block, ab: Block, bb: Block) {
    check(a, cb);
    check(a, ab);
    check(a, bb);
    assert!(
        disjoint(cb, ab) && disjoint(cb, bb),
        "in-place dgemm requires the destination to be disjoint from the sources"
    );
    assert_eq!(ab.m, cb.m, "dgemm_nt_sub_in: row mismatch");
    assert_eq!(
        bb.m, cb.n,
        "dgemm_nt_sub_in: column mismatch (B transposed)"
    );
    assert_eq!(ab.n, bb.n, "dgemm_nt_sub_in: inner dimension mismatch");
    let ld = a.rows();
    let (m, n, k) = (cb.m, cb.n, ab.n);
    let data = a.data_mut();
    for j in 0..n {
        let ccol = (cb.c0 + j) * ld + cb.r0;
        for p in 0..k {
            let s = data[(bb.c0 + p) * ld + bb.r0 + j];
            if s == 0.0 {
                continue;
            }
            let acol = (ab.c0 + p) * ld + ab.r0;
            axpy_sub_in(data, ccol, acol, m, s);
        }
    }
}

/// `A[cb] (lower) −= A[ab] · A[ab]ᵀ` in place.
///
/// # Panics
///
/// Panics if `cb` overlaps `ab`, `cb` is not square, or on dimension
/// mismatch.
pub fn dsyrk_ln_sub_in(a: &mut Mat, cb: Block, ab: Block) {
    check(a, cb);
    check(a, ab);
    assert!(disjoint(cb, ab), "in-place dsyrk requires disjoint blocks");
    assert_eq!(cb.m, cb.n, "dsyrk: C block must be square");
    assert_eq!(ab.m, cb.m, "dsyrk: row mismatch");
    let ld = a.rows();
    let (n, k) = (cb.m, ab.n);
    let data = a.data_mut();
    for j in 0..n {
        let ccol = (cb.c0 + j) * ld + cb.r0;
        for p in 0..k {
            let s = data[(ab.c0 + p) * ld + ab.r0 + j];
            if s == 0.0 {
                continue;
            }
            let acol = (ab.c0 + p) * ld + ab.r0;
            axpy_sub_in(data, ccol + j, acol + j, n - j, s);
        }
    }
}

/// `A[xb] := A[xb] · L⁻ᵀ` where `L = A[lb]` (lower triangular), in
/// place.
///
/// # Panics
///
/// Panics if the blocks overlap or dimensions mismatch.
pub fn dtrsm_rlt_in(a: &mut Mat, xb: Block, lb: Block) {
    check(a, xb);
    check(a, lb);
    assert!(disjoint(xb, lb), "in-place dtrsm requires disjoint blocks");
    assert_eq!(lb.m, lb.n, "dtrsm: L must be square");
    assert_eq!(xb.n, lb.m, "dtrsm: dimension mismatch");
    let ld = a.rows();
    let (m, n) = (xb.m, xb.n);
    let data = a.data_mut();
    for j in 0..n {
        for p in 0..j {
            let s = data[(lb.c0 + p) * ld + lb.r0 + j];
            if s == 0.0 {
                continue;
            }
            let xcol = (xb.c0 + j) * ld + xb.r0;
            let pcol = (xb.c0 + p) * ld + xb.r0;
            axpy_sub_in(data, xcol, pcol, m, s);
        }
        let d = data[(lb.c0 + j) * ld + lb.r0 + j];
        debug_assert!(d != 0.0, "singular triangular factor");
        let xcol = (xb.c0 + j) * ld + xb.r0;
        for x in &mut data[xcol..xcol + m] {
            *x /= d;
        }
    }
}

/// `A[xb] := L⁻¹ · A[xb]` where `L = A[lb]` is **unit** lower
/// triangular — `dtrsm(left, lower, no-transpose, unit)`, the `U12`
/// panel solve of blocked LU.
///
/// # Panics
///
/// Panics if the blocks overlap or dimensions mismatch.
pub fn dtrsm_llnu_in(a: &mut Mat, xb: Block, lb: Block) {
    check(a, xb);
    check(a, lb);
    assert!(disjoint(xb, lb), "in-place dtrsm requires disjoint blocks");
    assert_eq!(lb.m, lb.n, "dtrsm: L must be square");
    assert_eq!(xb.m, lb.m, "dtrsm: dimension mismatch");
    let ld = a.rows();
    let (m, n) = (xb.m, xb.n);
    let data = a.data_mut();
    for j in 0..n {
        let xcol = (xb.c0 + j) * ld + xb.r0;
        // forward substitution down the column (unit diagonal)
        for i in 0..m {
            let v = data[xcol + i];
            if v == 0.0 {
                continue;
            }
            for r in (i + 1)..m {
                data[xcol + r] -= data[(lb.c0 + i) * ld + lb.r0 + r] * v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_mat, random_spd};

    fn naive_mm(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.at(i, k) * b.at(k, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn dgemm_nn_matches_naive() {
        let a = random_mat(7, 5, 1);
        let b = random_mat(5, 9, 2);
        let mut c = Mat::zeros(7, 9);
        let cb = Block::full(&c);
        dgemm_nn(&mut c, cb, &a, Block::full(&a), &b, Block::full(&b));
        assert!(c.max_rel_diff(&naive_mm(&a, &b)) < 1e-13);
    }

    #[test]
    fn dgemm_nn_subblock() {
        let a = random_mat(8, 8, 3);
        let b = random_mat(8, 8, 4);
        let mut c = Mat::zeros(8, 8);
        // multiply the top-left 4x4 of A by the top-right 4x4 of B into
        // the middle of C
        dgemm_nn(
            &mut c,
            Block::new(2, 2, 4, 4),
            &a,
            Block::new(0, 0, 4, 4),
            &b,
            Block::new(0, 4, 4, 4),
        );
        let mut expect = 0.0;
        for k in 0..4 {
            expect += a.at(1, k) * b.at(k, 5);
        }
        assert!((c.at(3, 3) - expect).abs() < 1e-13);
        assert_eq!(c.at(0, 0), 0.0);
    }

    #[test]
    fn dgemm_nt_sub_matches_naive() {
        let a = random_mat(6, 4, 5);
        let b = random_mat(5, 4, 6);
        let mut c = random_mat(6, 5, 7);
        let mut expect = c.clone();
        for i in 0..6 {
            for j in 0..5 {
                let mut s = expect.at(i, j);
                for k in 0..4 {
                    s -= a.at(i, k) * b.at(j, k);
                }
                expect.set(i, j, s);
            }
        }
        let cb = Block::full(&c.clone());
        dgemm_nt_sub(&mut c, cb, &a, Block::full(&a), &b, Block::full(&b));
        assert!(c.max_rel_diff(&expect) < 1e-13);
    }

    #[test]
    fn dsyrk_updates_lower_only() {
        let a = random_mat(5, 3, 8);
        let mut c = Mat::zeros(5, 5);
        let cb = Block::full(&c);
        dsyrk_ln_sub(&mut c, cb, &a, Block::full(&a));
        // upper triangle untouched
        assert_eq!(c.at(0, 4), 0.0);
        // lower agrees with -A·Aᵀ
        let mut s = 0.0;
        for k in 0..3 {
            s += a.at(4, k) * a.at(2, k);
        }
        assert!((c.at(4, 2) + s).abs() < 1e-13);
    }

    #[test]
    fn dtrsm_solves() {
        // X·Lᵀ = B  ⇒  dtrsm_rlt(X=B) then X·Lᵀ == B
        let n = 4;
        let spd = random_spd(n, 9);
        let mut l = Mat::zeros(n, n);
        {
            let mut tmp = spd.clone();
            let tb = Block::full(&tmp);
            dpotf2(&mut tmp, tb);
            for j in 0..n {
                for i in j..n {
                    l.set(i, j, tmp.at(i, j));
                }
            }
        }
        let b = random_mat(3, n, 10);
        let mut x = b.clone();
        let xb = Block::full(&x);
        dtrsm_rlt(&mut x, xb, &l, Block::full(&l));
        // recompute X·Lᵀ
        let mut back = Mat::zeros(3, n);
        for i in 0..3 {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += x.at(i, k) * l.at(j, k);
                }
                back.set(i, j, s);
            }
        }
        assert!(back.max_rel_diff(&b) < 1e-10);
    }

    #[test]
    fn dpotf2_factorizes() {
        let n = 6;
        let a0 = random_spd(n, 11);
        let mut a = a0.clone();
        let ab = Block::full(&a);
        dpotf2(&mut a, ab);
        // L·Lᵀ == A on the lower triangle
        let mut back = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..=j {
                    s += a.at(i, k) * a.at(j, k);
                }
                back.set(i, j, s);
                back.set(j, i, s);
            }
        }
        assert!(back.max_rel_diff(&a0) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "positive definite")]
    fn dpotf2_rejects_indefinite() {
        let mut a = Mat::from_fn(2, 2, |i, j| if i == j { -1.0 } else { 0.0 });
        dpotf2(&mut a, Block::new(0, 0, 2, 2));
    }
}
