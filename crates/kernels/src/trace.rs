//! Bridging interpreter executions into the cache simulator.
//!
//! [`AddressMap`] assigns every array of a program a base address (lines
//! never shared between arrays); [`MemObserver`] implements the
//! interpreter's [`Observer`] hook and replays each element access into
//! a [`Hierarchy`].

use shackle_exec::{Access, Observer};
use shackle_ir::Program;
use shackle_memsim::{AccessSink, Hierarchy};
use std::collections::BTreeMap;

/// Element size in bytes (`f64`).
pub const ELEM_BYTES: u64 = 8;

/// Assigns base addresses to a program's arrays, in declaration order,
/// aligned to `align` bytes (use the largest cache line size).
#[derive(Clone, Debug)]
pub struct AddressMap {
    bases: BTreeMap<String, u64>,
}

impl AddressMap {
    /// Lay out the arrays of `program` with extents evaluated under
    /// `params`.
    ///
    /// # Panics
    ///
    /// Panics if a parameter is missing or `align` is zero.
    pub fn for_program(program: &Program, params: &BTreeMap<String, i64>, align: u64) -> Self {
        assert!(align > 0, "alignment must be positive");
        let mut bases = BTreeMap::new();
        let mut at = 0u64;
        for decl in program.arrays() {
            bases.insert(decl.name().to_string(), at);
            let elems: u64 = decl
                .dims()
                .iter()
                .map(|e| {
                    e.eval(&|p| {
                        *params
                            .get(p)
                            .unwrap_or_else(|| panic!("missing parameter {p}"))
                    }) as u64
                })
                .product();
            at += elems * ELEM_BYTES;
            at = at.div_ceil(align) * align;
        }
        Self { bases }
    }

    /// Base address of an array.
    ///
    /// # Panics
    ///
    /// Panics for unknown arrays.
    pub fn base(&self, array: &str) -> u64 {
        *self
            .bases
            .get(array)
            .unwrap_or_else(|| panic!("no base address for array {array}"))
    }

    /// Global byte address of an element access.
    pub fn address(&self, array: &str, offset: usize) -> u64 {
        self.base(array) + offset as u64 * ELEM_BYTES
    }
}

/// An interpreter [`Observer`] that feeds a [`Hierarchy`].
#[derive(Debug)]
pub struct MemObserver<'a> {
    map: AddressMap,
    hierarchy: &'a mut Hierarchy,
    /// Reusable scratch for batched deliveries — translated addresses
    /// are staged here and handed to the hierarchy in one call.
    addrs: Vec<u64>,
}

impl<'a> MemObserver<'a> {
    /// Build an observer over a hierarchy.
    pub fn new(map: AddressMap, hierarchy: &'a mut Hierarchy) -> Self {
        Self {
            map,
            hierarchy,
            addrs: Vec::new(),
        }
    }
}

impl Observer for MemObserver<'_> {
    fn record(&mut self, a: Access<'_>) {
        let addr = self.map.address(a.array, a.offset);
        self.hierarchy.access(addr);
    }

    fn record_many(&mut self, accesses: &[Access<'_>]) {
        self.addrs.clear();
        self.addrs
            .extend(accesses.iter().map(|a| self.map.address(a.array, a.offset)));
        self.hierarchy.push_many(&self.addrs);
    }
}

/// An observer that remaps accesses to one square array through the
/// LAPACK lower-band storage layout — the paper's §7 post-pass data
/// transformation for banded Cholesky ("only the bands in the matrix
/// are stored (in column order), rather than the entire input matrix").
///
/// Element `(i, j)` (0-based, `j ≤ i ≤ j + p`) maps to band address
/// `8·((i − j) + j·(p+1))`. Accesses to other arrays are laid out after
/// the band.
#[derive(Debug)]
pub struct BandObserver<'a> {
    array: String,
    n: usize,
    p: usize,
    other_base: u64,
    hierarchy: &'a mut Hierarchy,
    addrs: Vec<u64>,
}

impl<'a> BandObserver<'a> {
    /// Build a band-mapping observer for the `n × n` array `array` with
    /// half-bandwidth `p`.
    pub fn new(array: &str, n: usize, p: usize, hierarchy: &'a mut Hierarchy) -> Self {
        let band_bytes = ((p + 1) * n) as u64 * ELEM_BYTES;
        Self {
            array: array.to_string(),
            n,
            p,
            other_base: band_bytes.div_ceil(128) * 128,
            hierarchy,
            addrs: Vec::new(),
        }
    }

    fn band_address(&self, a: &Access<'_>) -> u64 {
        if a.array == self.array {
            let i = a.offset % self.n;
            let j = a.offset / self.n;
            assert!(
                i >= j && i - j <= self.p,
                "banded code touched ({i},{j}) outside the band (p = {})",
                self.p
            );
            (((i - j) + j * (self.p + 1)) as u64) * ELEM_BYTES
        } else {
            self.other_base + a.offset as u64 * ELEM_BYTES
        }
    }
}

impl Observer for BandObserver<'_> {
    fn record(&mut self, a: Access<'_>) {
        let addr = self.band_address(&a);
        self.hierarchy.access(addr);
    }

    fn record_many(&mut self, accesses: &[Access<'_>]) {
        self.addrs.clear();
        for a in accesses {
            let addr = self.band_address(a);
            self.addrs.push(addr);
        }
        self.hierarchy.push_many(&self.addrs);
    }
}

/// An observer that remaps accesses to one square array through a
/// **block-major layout**: the §5.3 physical data reshaping the paper
/// mentions ("nothing prevents us from reshaping the physical data
/// array"; cf. its citations of Anderson–Amarasinghe–Lam and
/// Cierniak–Li). Blocks of `b × b` are stored contiguously (column-major
/// of blocks, column-major within a block), which makes a blocked
/// computation's working set contiguous and immune to the
/// leading-dimension set conflicts of column-major storage at unlucky
/// sizes.
#[derive(Debug)]
pub struct BlockMajorObserver<'a> {
    array: String,
    n: usize,
    b: usize,
    other_base: u64,
    hierarchy: &'a mut Hierarchy,
    addrs: Vec<u64>,
}

impl<'a> BlockMajorObserver<'a> {
    /// Build a block-major observer for the `n × n` array `array` with
    /// block size `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn new(array: &str, n: usize, b: usize, hierarchy: &'a mut Hierarchy) -> Self {
        assert!(b > 0, "block size must be positive");
        let nb = n.div_ceil(b);
        let bytes = (nb * nb * b * b) as u64 * ELEM_BYTES;
        Self {
            array: array.to_string(),
            n,
            b,
            other_base: bytes.div_ceil(128) * 128,
            hierarchy,
            addrs: Vec::new(),
        }
    }

    /// The block-major byte address of dense element `(i, j)` (0-based).
    pub fn address(&self, i: usize, j: usize) -> u64 {
        block_major_address(self.n, self.b, i, j)
    }
}

/// The block-major byte address of element `(i, j)` (0-based) of an
/// `n × n` array stored as contiguous `b × b` blocks (column-major of
/// blocks, column-major within each block).
pub fn block_major_address(n: usize, b: usize, i: usize, j: usize) -> u64 {
    let nb = n.div_ceil(b);
    let (bi, bj) = (i / b, j / b);
    let (ii, jj) = (i % b, j % b);
    let block = bj * nb + bi;
    ((block * b * b + jj * b + ii) as u64) * ELEM_BYTES
}

impl Observer for BlockMajorObserver<'_> {
    fn record(&mut self, a: Access<'_>) {
        let addr = if a.array == self.array {
            let i = a.offset % self.n;
            let j = a.offset / self.n;
            self.address(i, j)
        } else {
            self.other_base + a.offset as u64 * ELEM_BYTES
        };
        self.hierarchy.access(addr);
    }

    fn record_many(&mut self, accesses: &[Access<'_>]) {
        self.addrs.clear();
        for a in accesses {
            let addr = if a.array == self.array {
                let i = a.offset % self.n;
                let j = a.offset / self.n;
                self.address(i, j)
            } else {
                self.other_base + a.offset as u64 * ELEM_BYTES
            };
            self.addrs.push(addr);
        }
        self.hierarchy.push_many(&self.addrs);
    }
}

/// Run `program` through the compiled engine against a fresh workspace
/// and a hierarchy, returning the execution stats (cycles accumulate in
/// the hierarchy). Convenience for the figure harnesses.
///
/// Accesses stream through the batched observer path
/// ([`Observer::record_many`] → [`AccessSink::push_many`]), which is
/// behaviorally identical to per-element delivery.
pub fn trace_execution(
    program: &Program,
    params: &BTreeMap<String, i64>,
    init: impl Fn(&str, &[usize]) -> f64,
    hierarchy: &mut Hierarchy,
) -> shackle_exec::ExecStats {
    let map = AddressMap::for_program(program, params, 128);
    let mut ws = shackle_exec::Workspace::for_program(program, params, init);
    let mut obs = MemObserver::new(map, hierarchy);
    shackle_exec::execute_compiled(program, &mut ws, params, &mut obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shackle_ir::kernels;

    fn params(n: i64) -> BTreeMap<String, i64> {
        BTreeMap::from([("N".to_string(), n)])
    }

    #[test]
    fn address_map_is_aligned_and_disjoint() {
        let p = kernels::matmul_ijk();
        let m = AddressMap::for_program(&p, &params(10), 128);
        let c = m.base("C");
        let a = m.base("A");
        let b = m.base("B");
        let mut v = [c, a, b];
        v.sort_unstable();
        assert!(v[1] - v[0] >= 800);
        assert!(v[2] - v[1] >= 800);
        assert_eq!(a % 128, 0);
        assert_eq!(m.address("C", 3), c + 24);
    }

    #[test]
    fn traced_matmul_touches_memory() {
        let p = kernels::matmul_ijk();
        let mut h = shackle_memsim::Hierarchy::sp2_thin_node();
        let stats = trace_execution(&p, &params(8), |_, _| 1.0, &mut h);
        assert_eq!(stats.instances, 512);
        // every load/store reached the hierarchy
        assert_eq!(h.accesses(), stats.loads + stats.stores);
        assert!(h.level_stats()[0].misses > 0);
    }

    #[test]
    fn batched_delivery_matches_per_element_delivery() {
        // feed the same trace once through Observer::record and once
        // through record_many/push_many: the hierarchy must end up
        // with identical cycles and per-level stats
        let p = kernels::matmul_ijk();
        let params = params(10);
        let map = AddressMap::for_program(&p, &params, 128);

        let mut h_scalar = shackle_memsim::Hierarchy::sp2_thin_node();
        let mut ws = shackle_exec::Workspace::for_program(&p, &params, |_, _| 1.0);
        {
            let mut obs = MemObserver::new(map.clone(), &mut h_scalar);
            use shackle_exec::Observer;
            struct PerElement<'a, 'b>(&'a mut MemObserver<'b>);
            impl Observer for PerElement<'_, '_> {
                fn record(&mut self, a: shackle_exec::Access<'_>) {
                    self.0.record(a);
                }
                // no record_many override: every access goes through
                // the per-element path
            }
            shackle_exec::execute_compiled(&p, &mut ws, &params, &mut PerElement(&mut obs));
        }

        let mut h_batch = shackle_memsim::Hierarchy::sp2_thin_node();
        let mut ws2 = shackle_exec::Workspace::for_program(&p, &params, |_, _| 1.0);
        let mut obs = MemObserver::new(map, &mut h_batch);
        shackle_exec::execute_compiled(&p, &mut ws2, &params, &mut obs);

        assert_eq!(h_scalar.cycles(), h_batch.cycles());
        assert_eq!(h_scalar.accesses(), h_batch.accesses());
        let (s1, s2) = (h_scalar.level_stats(), h_batch.level_stats());
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(a.hits, b.hits);
            assert_eq!(a.misses, b.misses);
        }
    }

    #[test]
    fn band_observer_maps_into_band_storage() {
        let p = kernels::banded_cholesky();
        let (n, bw) = (12i64, 3i64);
        let params = BTreeMap::from([("N".to_string(), n), ("P".to_string(), bw)]);
        let mut h = shackle_memsim::Hierarchy::sp2_thin_node();
        let init = crate::gen::banded_ws_init("A", n as usize, bw as usize, 1);
        let mut ws = shackle_exec::Workspace::for_program(&p, &params, &init);
        let mut obs = BandObserver::new("A", n as usize, bw as usize, &mut h);
        let stats = shackle_exec::execute_compiled(&p, &mut ws, &params, &mut obs);
        // band storage is tiny: (p+1)*n elements = 48; all accesses land
        // inside it, so the cold-miss count is bounded by its lines
        assert!(stats.instances > 0);
        assert!(h.level_stats()[0].misses <= 4);
    }

    #[test]
    #[should_panic(expected = "outside the band")]
    fn band_observer_rejects_out_of_band() {
        let mut h = shackle_memsim::Hierarchy::sp2_thin_node();
        let mut obs = BandObserver::new("A", 10, 2, &mut h);
        use shackle_exec::Observer;
        // dense offset of (8, 1) 0-based: i=8, j=1, |i-j| = 7 > 2
        obs.record(shackle_exec::Access {
            array: "A",
            offset: 8 + 10,
            write: false,
        });
    }

    #[test]
    fn block_major_addresses_are_a_bijection_within_blocks() {
        let mut h = shackle_memsim::Hierarchy::sp2_thin_node();
        let obs = BlockMajorObserver::new("A", 10, 4, &mut h);
        let mut seen = std::collections::BTreeSet::new();
        for j in 0..10 {
            for i in 0..10 {
                assert!(seen.insert(obs.address(i, j)), "duplicate at ({i},{j})");
            }
        }
        // elements of one block are contiguous
        let base = obs.address(4, 4);
        assert_eq!(obs.address(5, 4), base + 8);
        assert_eq!(obs.address(4, 5), base + 32);
    }

    #[test]
    fn blocked_matmul_misses_less_on_tiny_cache() {
        use shackle_core::{scan::generate_scanned, Blocking, Shackle};
        let p = kernels::matmul_ijk();
        let sc = Shackle::on_writes(&p, Blocking::square("C", 2, &[0, 1], 8));
        let sa = Shackle::new(
            &p,
            Blocking::square("A", 2, &[0, 1], 8),
            vec![shackle_ir::ArrayRef::vars("A", &["I", "K"])],
        );
        let blocked = generate_scanned(&p, &[sc, sa]);
        let n = 48;
        // a cache that holds a few 8x8 blocks but not three 48x48
        // matrices
        let cfg = shackle_memsim::CacheConfig {
            size: 4096,
            line: 64,
            assoc: 4,
            latency: 1,
        };
        let mut h1 = shackle_memsim::Hierarchy::new(&[cfg], 60);
        let mut h2 = shackle_memsim::Hierarchy::new(&[cfg], 60);
        trace_execution(&p, &params(n), |_, _| 1.0, &mut h1);
        trace_execution(&blocked, &params(n), |_, _| 1.0, &mut h2);
        let (m1, m2) = (h1.level_stats()[0].misses, h2.level_stats()[0].misses);
        assert!(
            (m2 as f64) < 0.5 * m1 as f64,
            "blocked should at least halve misses: {m1} vs {m2}"
        );
    }
}
