//! Native matrix-multiplication variants: the Figure 3 / Figure 10
//! codes.

use crate::blas::{dgemm_nn, Block};
use crate::Mat;

/// The input I-J-K code of Figure 1(i): `C += A·B`, no blocking.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn matmul_ijk(c: &mut Mat, a: &Mat, b: &Mat) {
    assert_eq!(a.cols(), b.rows());
    assert_eq!(c.rows(), a.rows());
    assert_eq!(c.cols(), b.cols());
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            let mut s = c.at(i, j);
            for k in 0..a.cols() {
                s += a.at(i, k) * b.at(k, j);
            }
            c.set(i, j, s);
        }
    }
}

/// The Figure 3 code: all three loops tiled by `nb` (the product shackle
/// `M_C × M_A`), scalar inner loops.
///
/// # Panics
///
/// Panics on dimension mismatch or `nb == 0`.
pub fn matmul_blocked(c: &mut Mat, a: &Mat, b: &Mat, nb: usize) {
    assert!(nb > 0);
    assert_eq!(a.cols(), b.rows());
    assert_eq!(c.rows(), a.rows());
    assert_eq!(c.cols(), b.cols());
    let (m, n, k) = (c.rows(), c.cols(), a.cols());
    for i0 in (0..m).step_by(nb) {
        for j0 in (0..n).step_by(nb) {
            for k0 in (0..k).step_by(nb) {
                for i in i0..(i0 + nb).min(m) {
                    for j in j0..(j0 + nb).min(n) {
                        let mut s = c.at(i, j);
                        for p in k0..(k0 + nb).min(k) {
                            s += a.at(i, p) * b.at(p, j);
                        }
                        c.set(i, j, s);
                    }
                }
            }
        }
    }
}

/// The Figure 10 code: blocked for two memory levels (`n1` outer blocks
/// broken into `n2` inner blocks).
///
/// # Panics
///
/// Panics on dimension mismatch, `n1 == 0`, `n2 == 0`, or `n2 > n1`.
pub fn matmul_two_level(c: &mut Mat, a: &Mat, b: &Mat, n1: usize, n2: usize) {
    assert!(n1 > 0 && n2 > 0 && n2 <= n1, "need 0 < n2 <= n1");
    assert_eq!(a.cols(), b.rows());
    assert_eq!(c.rows(), a.rows());
    assert_eq!(c.cols(), b.cols());
    let (m, n, k) = (c.rows(), c.cols(), a.cols());
    for i0 in (0..m).step_by(n1) {
        for j0 in (0..n).step_by(n1) {
            for k0 in (0..k).step_by(n1) {
                let (i9, j9, k9) = ((i0 + n1).min(m), (j0 + n1).min(n), (k0 + n1).min(k));
                for ii in (i0..i9).step_by(n2) {
                    for jj in (j0..j9).step_by(n2) {
                        for kk in (k0..k9).step_by(n2) {
                            for i in ii..(ii + n2).min(i9) {
                                for j in jj..(jj + n2).min(j9) {
                                    let mut s = c.at(i, j);
                                    for p in kk..(kk + n2).min(k9) {
                                        s += a.at(i, p) * b.at(p, j);
                                    }
                                    c.set(i, j, s);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `C += A·B` through the DGEMM substrate (cache-friendly AXPY kernel).
pub fn matmul_dgemm(c: &mut Mat, a: &Mat, b: &Mat) {
    let cb = Block::full(c);
    dgemm_nn(c, cb, a, Block::full(a), b, Block::full(b));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_mat;

    fn reference(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.rows(), b.cols());
        matmul_ijk(&mut c, a, b);
        c
    }

    #[test]
    fn all_variants_agree() {
        for (m, k, n) in [(7, 5, 9), (16, 16, 16), (33, 17, 25)] {
            let a = random_mat(m, k, 1);
            let b = random_mat(k, n, 2);
            let gold = reference(&a, &b);
            let mut c1 = Mat::zeros(m, n);
            matmul_blocked(&mut c1, &a, &b, 8);
            assert!(gold.max_rel_diff(&c1) < 1e-12);
            let mut c2 = Mat::zeros(m, n);
            matmul_two_level(&mut c2, &a, &b, 8, 4);
            assert!(gold.max_rel_diff(&c2) < 1e-12);
            let mut c3 = Mat::zeros(m, n);
            matmul_dgemm(&mut c3, &a, &b);
            assert!(gold.max_rel_diff(&c3) < 1e-12);
        }
    }

    #[test]
    fn accumulates_into_c() {
        let a = random_mat(4, 4, 3);
        let b = random_mat(4, 4, 4);
        let mut c = random_mat(4, 4, 5);
        let mut expect = c.clone();
        matmul_ijk(&mut expect, &a, &b);
        matmul_dgemm(&mut c, &a, &b);
        assert!(expect.max_rel_diff(&c) < 1e-12);
    }

    #[test]
    fn block_bigger_than_matrix() {
        let a = random_mat(3, 3, 6);
        let b = random_mat(3, 3, 7);
        let gold = reference(&a, &b);
        let mut c = Mat::zeros(3, 3);
        matmul_blocked(&mut c, &a, &b, 100);
        assert!(gold.max_rel_diff(&c) < 1e-12);
    }
}
