//! Native QR factorization variants — the curves of the paper's
//! Figure 12.
//!
//! * [`qr_pointwise`] — the input pointwise Householder code (mirrors
//!   the IR kernel exactly, including the `T`/`W` auxiliaries);
//! * [`qr_col_blocked`] — the "compiler generated" code: the same
//!   pointwise algorithm with columns blocked (lazy application of
//!   pending reflections when a column block is touched — the only
//!   blocking dependences allow, per §7);
//! * [`qr_col_blocked_dgemm`] — the same with the reflection-application
//!   loops in cache-friendly slice form (the "Matrix Multiply replaced
//!   by DGEMM" analogue);
//! * [`qr_wy`] — LAPACK-style blocked Householder using the compact-WY
//!   representation, which exploits the *associativity* of reflections —
//!   the domain knowledge the paper notes a compiler does not have.
//!
//! On exit, column `k` below the diagonal holds the (unnormalized)
//! Householder vector `v_k`, the upper triangle holds `R`, and the
//! returned vector holds `vᵀv` per column. All variants produce the same
//! factorization (identical sign conventions).

use crate::blas::{dgemm_nn, Block};
use crate::Mat;

/// Per-column scalars produced by the QR routines: `vᵀv` for each
/// Householder vector and the (implicit) diagonal of `R` — the
/// in-place layout stores `v` where `R`'s diagonal would live.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QrScalars {
    /// `vᵀv` per column.
    pub vtv: Vec<f64>,
    /// `R[k,k] = −sign(x₁)·‖x‖` per column.
    pub rdiag: Vec<f64>,
}

/// Pointwise Householder QR (the paper's input code).
///
/// Returns the per-column scalars.
///
/// # Panics
///
/// Panics if the matrix is not square (the paper's benchmark shape).
pub fn qr_pointwise(a: &mut Mat) -> QrScalars {
    assert_eq!(a.rows(), a.cols(), "benchmark QR is square");
    let n = a.rows();
    let mut out = QrScalars {
        vtv: vec![0.0; n],
        rdiag: vec![0.0; n],
    };
    for k in 0..n {
        // ‖x‖²
        let mut t = a.at(k, k) * a.at(k, k);
        for i in (k + 1)..n {
            t += a.at(i, k) * a.at(i, k);
        }
        // v = x + sign(x₁)·‖x‖·e₁
        let sgn = if a.at(k, k) < 0.0 { -1.0 } else { 1.0 };
        out.rdiag[k] = -sgn * t.sqrt();
        a.set(k, k, a.at(k, k) + sgn * t.sqrt());
        // vᵀv
        let mut tv = a.at(k, k) * a.at(k, k);
        for i in (k + 1)..n {
            tv += a.at(i, k) * a.at(i, k);
        }
        out.vtv[k] = tv;
        // reflect trailing columns
        for j in (k + 1)..n {
            let mut w = 0.0;
            for i in k..n {
                w += a.at(i, k) * a.at(i, j);
            }
            for i in k..n {
                let v = a.at(i, j) - 2.0 * a.at(i, k) * w / tv;
                a.set(i, j, v);
            }
        }
    }
    out
}

/// Apply reflector `k` (vector in column `k` of `a`, `vᵀv = tv`) to
/// column `j`, rows `k..n`.
#[inline]
fn apply_reflector(a: &mut Mat, n: usize, k: usize, tv: f64, j: usize) {
    let mut w = 0.0;
    for i in k..n {
        w += a.at(i, k) * a.at(i, j);
    }
    for i in k..n {
        let v = a.at(i, j) - 2.0 * a.at(i, k) * w / tv;
        a.set(i, j, v);
    }
}

/// Column-blocked pointwise QR: the shackled code. When a column block
/// is touched, first apply all *pending* earlier reflections to it
/// (lazy updates), then factor its columns pointwise, applying
/// within-block reflections eagerly.
///
/// # Panics
///
/// Panics if `nb == 0` or the matrix is not square.
pub fn qr_col_blocked(a: &mut Mat, nb: usize) -> QrScalars {
    assert!(nb > 0, "block size must be positive");
    assert_eq!(a.rows(), a.cols(), "benchmark QR is square");
    let n = a.rows();
    let mut out = QrScalars {
        vtv: vec![0.0; n],
        rdiag: vec![0.0; n],
    };
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + nb).min(n);
        // pending reflections from all earlier columns
        for k in 0..j0 {
            for j in j0..j1 {
                apply_reflector(a, n, k, out.vtv[k], j);
            }
        }
        // factor within the block
        for k in j0..j1 {
            let mut t = a.at(k, k) * a.at(k, k);
            for i in (k + 1)..n {
                t += a.at(i, k) * a.at(i, k);
            }
            let sgn = if a.at(k, k) < 0.0 { -1.0 } else { 1.0 };
            out.rdiag[k] = -sgn * t.sqrt();
            a.set(k, k, a.at(k, k) + sgn * t.sqrt());
            let mut tv = a.at(k, k) * a.at(k, k);
            for i in (k + 1)..n {
                tv += a.at(i, k) * a.at(i, k);
            }
            out.vtv[k] = tv;
            for j in (k + 1)..j1 {
                apply_reflector(a, n, k, tv, j);
            }
        }
        j0 = j1;
    }
    out
}

/// [`qr_col_blocked`] with the pending-reflection sweep written as
/// contiguous column-slice operations (dot + AXPY on raw columns) — the
/// DGEMM-kernel analogue for this memory-bound update.
///
/// # Panics
///
/// Panics if `nb == 0` or the matrix is not square.
pub fn qr_col_blocked_dgemm(a: &mut Mat, nb: usize) -> QrScalars {
    assert!(nb > 0, "block size must be positive");
    assert_eq!(a.rows(), a.cols(), "benchmark QR is square");
    let n = a.rows();
    let ld = n;
    let mut out = QrScalars {
        vtv: vec![0.0; n],
        rdiag: vec![0.0; n],
    };
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + nb).min(n);
        for k in 0..j0 {
            let tv = out.vtv[k];
            for j in j0..j1 {
                let data = a.data_mut();
                let (vcol, ccol) = (k * ld, j * ld);
                let mut w = 0.0;
                for i in k..n {
                    w += data[vcol + i] * data[ccol + i];
                }
                let s = 2.0 * w / tv;
                for i in k..n {
                    data[ccol + i] -= s * data[vcol + i];
                }
            }
        }
        for k in j0..j1 {
            let mut t = a.at(k, k) * a.at(k, k);
            for i in (k + 1)..n {
                t += a.at(i, k) * a.at(i, k);
            }
            let sgn = if a.at(k, k) < 0.0 { -1.0 } else { 1.0 };
            out.rdiag[k] = -sgn * t.sqrt();
            a.set(k, k, a.at(k, k) + sgn * t.sqrt());
            let mut tv = a.at(k, k) * a.at(k, k);
            for i in (k + 1)..n {
                tv += a.at(i, k) * a.at(i, k);
            }
            out.vtv[k] = tv;
            for j in (k + 1)..j1 {
                apply_reflector(a, n, k, tv, j);
            }
        }
        j0 = j1;
    }
    out
}

/// LAPACK-style blocked QR with the compact-WY representation:
/// factor a panel pointwise, accumulate `T` such that
/// `H₁…H_b = I − V·T·Vᵀ`, then update the trailing matrix with two
/// DGEMMs. Uses the algebraic associativity of reflections (the
/// `dgeqrf` approach the paper contrasts with compiler blocking).
///
/// # Panics
///
/// Panics if `nb == 0` or the matrix is not square.
pub fn qr_wy(a: &mut Mat, nb: usize) -> QrScalars {
    assert!(nb > 0, "block size must be positive");
    assert_eq!(a.rows(), a.cols(), "benchmark QR is square");
    let n = a.rows();
    let mut out = QrScalars {
        vtv: vec![0.0; n],
        rdiag: vec![0.0; n],
    };
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + nb).min(n);
        let b = j1 - j0;
        // factor the panel pointwise (updates only within the panel)
        for k in j0..j1 {
            let mut t = a.at(k, k) * a.at(k, k);
            for i in (k + 1)..n {
                t += a.at(i, k) * a.at(i, k);
            }
            let sgn = if a.at(k, k) < 0.0 { -1.0 } else { 1.0 };
            out.rdiag[k] = -sgn * t.sqrt();
            a.set(k, k, a.at(k, k) + sgn * t.sqrt());
            let mut tv = a.at(k, k) * a.at(k, k);
            for i in (k + 1)..n {
                tv += a.at(i, k) * a.at(i, k);
            }
            out.vtv[k] = tv;
            for j in (k + 1)..j1 {
                apply_reflector(a, n, k, tv, j);
            }
        }
        if j1 == n {
            break;
        }
        // form T (b×b upper triangular): H_{j0}…H_{j1-1} = I − V·T·Vᵀ
        // with V = columns j0..j1 of A from row j0 down (implicit unit
        // structure is NOT used: our vectors store v fully, upper part
        // is zero because rows above the diagonal belong to R — so we
        // treat v_k as zero above row k).
        let mut tmat = Mat::zeros(b, b);
        for (kk, k) in (j0..j1).enumerate() {
            let tau = 2.0 / out.vtv[k];
            tmat.set(kk, kk, tau);
            if kk > 0 {
                // w = Vᵀ(:,0..kk) · v_k  (rows k..n)
                let mut w = vec![0.0; kk];
                for (pp, p) in (j0..k).enumerate() {
                    let mut s = 0.0;
                    for i in k..n {
                        s += a.at(i, p) * a.at(i, k);
                    }
                    w[pp] = s;
                }
                // T(0..kk, kk) = -tau * T(0..kk,0..kk) * w
                for r in 0..kk {
                    let mut s = 0.0;
                    for (c, &wc) in w.iter().enumerate().take(kk).skip(r) {
                        s += tmat.at(r, c) * wc;
                    }
                    tmat.set(r, kk, -tau * s);
                }
            }
        }
        // trailing update: C := C − V·Tᵀ·(Vᵀ·C) for C = A[j0.., j1..]
        let rows = n - j0;
        let cols = n - j1;
        // W = Vᵀ·C  (b × cols)
        let mut w = Mat::zeros(b, cols);
        {
            // V as an explicit (rows × b) matrix: column k zero above
            // its diagonal entry
            let mut v = Mat::zeros(rows, b);
            for (kk, k) in (j0..j1).enumerate() {
                for i in k..n {
                    v.set(i - j0, kk, a.at(i, k));
                }
            }
            // W += Vᵀ·C: use dgemm by materializing Vᵀ
            let mut vt = Mat::zeros(b, rows);
            for i in 0..rows {
                for k in 0..b {
                    vt.set(k, i, v.at(i, k));
                }
            }
            let csub = {
                let mut c = Mat::zeros(rows, cols);
                for j in 0..cols {
                    for i in 0..rows {
                        c.set(i, j, a.at(j0 + i, j1 + j));
                    }
                }
                c
            };
            let wb = Block::full(&w);
            dgemm_nn(&mut w, wb, &vt, Block::full(&vt), &csub, Block::full(&csub));
            // Y = Tᵀ·W  (b × cols)
            let mut tt = Mat::zeros(b, b);
            for i in 0..b {
                for j in 0..b {
                    tt.set(i, j, tmat.at(j, i));
                }
            }
            let mut y = Mat::zeros(b, cols);
            let yb = Block::full(&y);
            dgemm_nn(&mut y, yb, &tt, Block::full(&tt), &w, Block::full(&w));
            // C -= V·Y
            let mut upd = Mat::zeros(rows, cols);
            let ub = Block::full(&upd);
            dgemm_nn(&mut upd, ub, &v, Block::full(&v), &y, Block::full(&y));
            for j in 0..cols {
                for i in 0..rows {
                    let val = a.at(j0 + i, j1 + j) - upd.at(i, j);
                    a.set(j0 + i, j1 + j, val);
                }
            }
        }
        j0 = j1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_mat;

    fn upper_triangle_diff(a: &Mat, b: &Mat) -> f64 {
        let mut worst: f64 = 0.0;
        for j in 0..a.cols() {
            for i in 0..=j {
                let (x, y) = (a.at(i, j), b.at(i, j));
                worst = worst.max((x - y).abs() / x.abs().max(y.abs()).max(1.0));
            }
        }
        worst
    }

    #[test]
    fn r_has_correct_norms() {
        // QᵀQ = I ⇒ |R[0,0]| = ‖a₁‖ (the implicit diagonal returned in
        // rdiag; the matrix itself holds v there)
        let n = 10;
        let a0 = random_mat(n, n, 1);
        let mut a = a0.clone();
        let s = qr_pointwise(&mut a);
        let norm1: f64 = (0..n)
            .map(|i| a0.at(i, 0) * a0.at(i, 0))
            .sum::<f64>()
            .sqrt();
        assert!((s.rdiag[0].abs() - norm1).abs() < 1e-10);
        // our inputs are positive, so sign(x₁) = +1 and R[0,0] < 0
        assert!(s.rdiag[0] < 0.0);
    }

    #[test]
    fn blocked_variants_match_pointwise() {
        for (n, nb) in [(12, 4), (13, 4), (20, 7), (8, 16)] {
            let a0 = random_mat(n, n, 2);
            let mut gold = a0.clone();
            let s0 = qr_pointwise(&mut gold);
            let mut b1 = a0.clone();
            let s1 = qr_col_blocked(&mut b1, nb);
            assert!(gold.max_rel_diff(&b1) < 1e-9, "col blocked n={n} nb={nb}");
            let mut b2 = a0.clone();
            let s2 = qr_col_blocked_dgemm(&mut b2, nb);
            assert!(gold.max_rel_diff(&b2) < 1e-9, "dgemm n={n} nb={nb}");
            for k in 0..n {
                assert!((s0.vtv[k] - s1.vtv[k]).abs() / s0.vtv[k] < 1e-9);
                assert!((s0.vtv[k] - s2.vtv[k]).abs() / s0.vtv[k] < 1e-9);
                assert!((s0.rdiag[k] - s1.rdiag[k]).abs() / s0.rdiag[k].abs() < 1e-9);
            }
        }
    }

    #[test]
    fn wy_matches_pointwise_r() {
        for (n, nb) in [(12, 4), (17, 5), (24, 8)] {
            let a0 = random_mat(n, n, 3);
            let mut gold = a0.clone();
            qr_pointwise(&mut gold);
            let mut wy = a0.clone();
            qr_wy(&mut wy, nb);
            // same sign convention per column → same R and same V
            assert!(
                upper_triangle_diff(&gold, &wy) < 1e-8,
                "R mismatch n={n} nb={nb}"
            );
            assert!(gold.max_rel_diff(&wy) < 1e-8, "V mismatch n={n} nb={nb}");
        }
    }

    #[test]
    fn orthogonality_preserved() {
        // ‖R‖_F = ‖A‖_F since Q is orthogonal; R = strict upper of the
        // result plus the implicit rdiag
        let n = 16;
        let a0 = random_mat(n, n, 4);
        let mut a = a0.clone();
        let s = qr_pointwise(&mut a);
        let mut fro_a0 = 0.0;
        let mut fro_r = 0.0;
        for j in 0..n {
            for i in 0..n {
                fro_a0 += a0.at(i, j) * a0.at(i, j);
                if i < j {
                    fro_r += a.at(i, j) * a.at(i, j);
                }
            }
            fro_r += s.rdiag[j] * s.rdiag[j];
        }
        assert!((fro_a0.sqrt() - fro_r.sqrt()).abs() / fro_a0.sqrt() < 1e-10);
    }
}
