//! Traced duplicates of the two baseline algorithms that exist only as
//! native code: LAPACK-style WY QR and LAPACK-style banded Cholesky.
//!
//! Everything else in the figures is traced by running IR programs
//! through the interpreter (see [`crate::trace`]); these two baselines
//! use *domain knowledge* (associativity of reflections, band storage
//! micro-management) the compiler does not have, so they are traced
//! directly: same algorithm as the untraced native versions — the unit
//! tests assert bit-agreement — with every element access replayed into
//! the hierarchy and every flop counted.

use crate::banded::BandMat;
use crate::Mat;
use shackle_memsim::Hierarchy;

/// Outcome of a traced run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TracedRun {
    /// Floating-point operations performed.
    pub flops: u64,
}

/// WY blocked QR with tracing: identical arithmetic to
/// [`crate::qr::qr_wy`] (the unit tests compare results), with `A`
/// traced at `base = 0` and the `T`/`W` workspace traced after it.
///
/// # Panics
///
/// Panics if `nb == 0` or the matrix is not square.
#[allow(clippy::needless_range_loop)] // index loops mirror the untraced algorithm
pub fn qr_wy_traced(a: &mut Mat, nb: usize, h: &mut Hierarchy) -> TracedRun {
    assert!(nb > 0, "block size must be positive");
    assert_eq!(a.rows(), a.cols(), "benchmark QR is square");
    let n = a.rows();
    let a_len = (n * n) as u64 * 8;
    let ws_base = a_len.div_ceil(128) * 128;
    let mut flops: u64 = 0;

    macro_rules! rd {
        ($i:expr, $j:expr) => {{
            h.access(8 * a.offset($i, $j) as u64);
            a.at($i, $j)
        }};
    }
    macro_rules! wr {
        ($i:expr, $j:expr, $v:expr) => {{
            let v = $v;
            h.access(8 * a.offset($i, $j) as u64);
            a.set($i, $j, v);
        }};
    }

    let mut vtv = vec![0.0; n];
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + nb).min(n);
        let b = j1 - j0;
        // panel factorization (pointwise within the panel)
        for k in j0..j1 {
            let mut t = rd!(k, k) * rd!(k, k);
            flops += 1;
            for i in (k + 1)..n {
                let v = rd!(i, k);
                t += v * v;
                flops += 2;
            }
            let piv = rd!(k, k);
            let sgn = if piv < 0.0 { -1.0 } else { 1.0 };
            wr!(k, k, piv + sgn * t.sqrt());
            flops += 3;
            let mut tv = rd!(k, k) * rd!(k, k);
            flops += 1;
            for i in (k + 1)..n {
                let v = rd!(i, k);
                tv += v * v;
                flops += 2;
            }
            vtv[k] = tv;
            for j in (k + 1)..j1 {
                let mut w = 0.0;
                for i in k..n {
                    w += rd!(i, k) * rd!(i, j);
                    flops += 2;
                }
                let s = 2.0 * w / tv;
                flops += 2;
                for i in k..n {
                    let v = rd!(i, j) - s * rd!(i, k);
                    wr!(i, j, v);
                    flops += 2;
                }
            }
        }
        if j1 == n {
            break;
        }
        // form T (b×b) in the workspace
        let mut tmat = Mat::zeros(b, b);
        let t_addr = |r: usize, c: usize| ws_base + 8 * (c * b + r) as u64;
        for (kk, k) in (j0..j1).enumerate() {
            let tau = 2.0 / vtv[k];
            flops += 1;
            h.access(t_addr(kk, kk));
            tmat.set(kk, kk, tau);
            if kk > 0 {
                let mut w = vec![0.0; kk];
                for (pp, p) in (j0..k).enumerate() {
                    let mut s = 0.0;
                    for i in k..n {
                        s += rd!(i, p) * rd!(i, k);
                        flops += 2;
                    }
                    w[pp] = s;
                }
                for r in 0..kk {
                    let mut s = 0.0;
                    for (c, &wc) in w.iter().enumerate().take(kk).skip(r) {
                        h.access(t_addr(r, c));
                        s += tmat.at(r, c) * wc;
                        flops += 2;
                    }
                    h.access(t_addr(r, kk));
                    tmat.set(r, kk, -tau * s);
                    flops += 1;
                }
            }
        }
        // trailing update: C := C − V·Tᵀ·(Vᵀ·C), strip-mined over
        // column strips of width b so the W workspace stays resident
        // (as dlarfb does)
        let w_base = ws_base + 8 * (b * b) as u64;
        let w_addr = |r: usize, c: usize| w_base + 8 * (c * b + r) as u64;
        let mut c0 = j1;
        while c0 < n {
            let c1 = (c0 + b).min(n);
            let cols = c1 - c0;
            // W = Vᵀ·C_strip
            let mut wmat = Mat::zeros(b, cols);
            for j in 0..cols {
                for (kk, k) in (j0..j1).enumerate() {
                    let mut s = 0.0;
                    for i in k..n {
                        s += rd!(i, k) * rd!(i, c0 + j);
                        flops += 2;
                    }
                    h.access(w_addr(kk, j));
                    wmat.set(kk, j, s);
                }
            }
            // Y = Tᵀ·W
            let mut ymat = Mat::zeros(b, cols);
            for j in 0..cols {
                for r in 0..b {
                    let mut s = 0.0;
                    for c in 0..b {
                        // Tᵀ[r,c] = T[c,r]; only c <= r are non-zero
                        if c <= r {
                            h.access(t_addr(c, r));
                            h.access(w_addr(c, j));
                            s += tmat.at(c, r) * wmat.at(c, j);
                            flops += 2;
                        }
                    }
                    ymat.set(r, j, s);
                }
            }
            // C_strip -= V·Y
            for j in 0..cols {
                for (kk, k) in (j0..j1).enumerate() {
                    let y = ymat.at(kk, j);
                    if y == 0.0 {
                        continue;
                    }
                    for i in k..n {
                        let v = rd!(i, c0 + j) - rd!(i, k) * y;
                        wr!(i, c0 + j, v);
                        flops += 2;
                    }
                }
            }
            c0 = c1;
        }
        j0 = j1;
    }
    TracedRun { flops }
}

/// LAPACK-style banded Cholesky with tracing: identical arithmetic to
/// [`crate::banded::pbtrf_lapack`], band storage traced at base 0.
///
/// # Panics
///
/// Panics if `nb == 0` or not positive definite.
pub fn pbtrf_lapack_traced(a: &mut BandMat, nb: usize, h: &mut Hierarchy) -> TracedRun {
    assert!(nb > 0, "block size must be positive");
    let (n, p) = (a.n(), a.p());
    let mut flops: u64 = 0;
    macro_rules! rd {
        ($i:expr, $j:expr) => {{
            h.access(8 * a.offset($i, $j) as u64);
            a.at($i, $j)
        }};
    }
    macro_rules! wr {
        ($i:expr, $j:expr, $v:expr) => {{
            let v = $v;
            h.access(8 * a.offset($i, $j) as u64);
            a.set($i, $j, v);
        }};
    }
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + nb).min(n);
        for j in j0..j1 {
            let mut d = rd!(j, j);
            for k in j.saturating_sub(p).max(j0)..j {
                let v = rd!(j, k);
                d -= v * v;
                flops += 2;
            }
            assert!(d > 0.0, "not positive definite at pivot {j}");
            let d = d.sqrt();
            flops += 1;
            wr!(j, j, d);
            for i in (j + 1)..j1.min(j + p + 1) {
                let mut v = rd!(i, j);
                for k in i.saturating_sub(p).max(j0)..j {
                    v -= rd!(i, k) * rd!(j, k);
                    flops += 2;
                }
                wr!(i, j, v / d);
                flops += 1;
            }
        }
        let band_end = (j1 - 1 + p + 1).min(n).max(j1);
        if j1 < band_end {
            for j in j0..j1 {
                let d = rd!(j, j);
                let hi = (j + p + 1).min(band_end);
                for i in j1..hi {
                    let mut v = rd!(i, j);
                    for k in i.saturating_sub(p).max(j0)..j {
                        v -= rd!(i, k) * rd!(j, k);
                        flops += 2;
                    }
                    wr!(i, j, v / d);
                    flops += 1;
                }
            }
            for c in j1..band_end {
                for r in c..(c + p + 1).min(band_end) {
                    let mut v = rd!(r, c);
                    let klo = r.saturating_sub(p).max(j0);
                    for k in klo..j1 {
                        if c <= k + p {
                            v -= rd!(r, k) * rd!(c, k);
                            flops += 2;
                        }
                    }
                    wr!(r, c, v);
                }
            }
        }
        j0 = j1;
    }
    TracedRun { flops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banded::pbtrf_lapack;
    use crate::gen::{random_banded_spd, random_mat};
    use crate::qr::qr_wy;

    #[test]
    fn traced_wy_matches_untraced() {
        for (n, nb) in [(12, 4), (17, 5)] {
            let a0 = random_mat(n, n, 1);
            let mut plain = a0.clone();
            qr_wy(&mut plain, nb);
            let mut traced = a0.clone();
            let mut h = Hierarchy::sp2_thin_node();
            let run = qr_wy_traced(&mut traced, nb, &mut h);
            assert!(plain.max_rel_diff(&traced) < 1e-9, "n={n} nb={nb}");
            assert!(run.flops > (4 * n * n * n / 3) as u64 / 2);
            assert!(h.accesses() > 0);
        }
    }

    #[test]
    fn traced_pbtrf_matches_untraced() {
        for (n, p, nb) in [(24, 5, 4), (30, 8, 6)] {
            let a0 = random_banded_spd(n, p, 2);
            let mut plain = BandMat::from_dense(&a0, p);
            pbtrf_lapack(&mut plain, nb);
            let mut traced = BandMat::from_dense(&a0, p);
            let mut h = Hierarchy::sp2_thin_node();
            let run = pbtrf_lapack_traced(&mut traced, nb, &mut h);
            assert_eq!(
                plain
                    .to_dense_lower()
                    .max_rel_diff_lower(&traced.to_dense_lower()),
                0.0,
                "traced duplicate must be bit-identical"
            );
            assert!(run.flops > 0);
            assert!(h.accesses() > run.flops / 2);
        }
    }
}
