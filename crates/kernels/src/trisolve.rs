//! Native triangular back-solve: the §8 reversed-traversal kernel.
//!
//! Solves `U·x = b` for upper-triangular `U`, in place on `x`, walking
//! unknowns from the last to the first. The blocked variant walks the
//! *blocks* bottom-to-top too — the reversed cut-set traversal of §8 —
//! which is the only legal order: data flows from high indices to low.

use crate::Mat;

/// Pointwise back-solve `U·x = b` (in place on `x = b`), columns of `U`
/// eliminated from the last unknown upward.
///
/// # Panics
///
/// Panics if `U` is not square or `x` does not match its order.
pub fn backsolve_pointwise(x: &mut [f64], u: &Mat) {
    assert_eq!(u.rows(), u.cols());
    assert_eq!(x.len(), u.rows());
    let n = x.len();
    for i in (0..n).rev() {
        x[i] /= u.at(i, i);
        for j in 0..i {
            x[j] -= u.at(j, i) * x[i];
        }
    }
}

/// Blocked back-solve: unknowns in blocks of `nb`, blocks visited
/// bottom-to-top (the reversed §8 traversal); within a block the
/// pointwise order, then one blocked update of everything above.
///
/// # Panics
///
/// Panics on shape mismatch or `nb == 0`.
pub fn backsolve_blocked(x: &mut [f64], u: &Mat, nb: usize) {
    assert!(nb > 0);
    assert_eq!(u.rows(), u.cols());
    assert_eq!(x.len(), u.rows());
    let n = x.len();
    let blocks = n.div_ceil(nb);
    for b in (0..blocks).rev() {
        let lo = b * nb;
        let hi = ((b + 1) * nb).min(n);
        // Solve the diagonal block.
        for i in (lo..hi).rev() {
            x[i] /= u.at(i, i);
            for j in lo..i {
                x[j] -= u.at(j, i) * x[i];
            }
        }
        // Update everything above the block.
        for i in lo..hi {
            for j in 0..lo {
                x[j] -= u.at(j, i) * x[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_mat;

    /// A well-conditioned random upper-triangular matrix.
    fn random_upper(n: usize, seed: u64) -> Mat {
        let mut u = random_mat(n, n, seed);
        for j in 0..n {
            for i in (j + 1)..n {
                u.set(i, j, 0.0);
            }
            u.set(j, j, 2.0 + u.at(j, j));
        }
        u
    }

    #[test]
    fn solves_a_known_system() {
        // U = [[2, 1], [0, 4]], b = [4, 8] → x = [1, 2].
        let mut u = Mat::zeros(2, 2);
        u.set(0, 0, 2.0);
        u.set(0, 1, 1.0);
        u.set(1, 1, 4.0);
        let mut x = vec![4.0, 8.0];
        backsolve_pointwise(&mut x, &u);
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn residual_vanishes() {
        for (n, seed) in [(1, 1), (7, 2), (16, 3), (23, 4)] {
            let u = random_upper(n, seed);
            let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
            let mut x = b.clone();
            backsolve_pointwise(&mut x, &u);
            for (i, bi) in b.iter().enumerate() {
                let row: f64 = (i..n).map(|j| u.at(i, j) * x[j]).sum();
                assert!((row - bi).abs() < 1e-9, "n={n} row {i}");
            }
        }
    }

    #[test]
    fn blocked_matches_pointwise_bitwise_order_aside() {
        for (n, nb, seed) in [(9, 3, 5), (16, 5, 6), (21, 8, 7), (5, 100, 8)] {
            let u = random_upper(n, seed);
            let b: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64).collect();
            let mut gold = b.clone();
            backsolve_pointwise(&mut gold, &u);
            let mut x = b.clone();
            backsolve_blocked(&mut x, &u, nb);
            for i in 0..n {
                let rel = (gold[i] - x[i]).abs() / gold[i].abs().max(1.0);
                assert!(rel < 1e-10, "n={n} nb={nb} i={i}");
            }
        }
    }
}
