//! The ADI kernel (Fig. 14): the fusion + interchange example.
//!
//! The input code (as produced by a FORTRAN-90 scalarizer) sweeps rows
//! in the outer loop — a stride-`n` access pattern on column-major
//! arrays. Shackling both statements to `B[i-1,k]` with 1×1 blocks
//! walked in storage order yields the fused, interchanged, stride-1 code
//! the paper reports is 8.9× faster at n = 1000.

use crate::Mat;

/// The input code of Figure 14(i): two separate `k` loops inside the
/// `i` sweep (row-major traversal of column-major data).
///
/// # Panics
///
/// Panics if the three matrices differ in shape.
pub fn adi_input(x: &mut Mat, a: &Mat, b: &mut Mat) {
    let n = x.rows();
    assert!(
        a.rows() == n && b.rows() == n && x.cols() == a.cols() && a.cols() == b.cols(),
        "ADI arrays must agree in shape"
    );
    let m = x.cols();
    for i in 1..n {
        for k in 0..m {
            let v = x.at(i, k) - x.at(i - 1, k) * a.at(i, k) / b.at(i - 1, k);
            x.set(i, k, v);
        }
        for k in 0..m {
            let v = b.at(i, k) - a.at(i, k) * a.at(i, k) / b.at(i - 1, k);
            b.set(i, k, v);
        }
    }
}

/// The transformed code of Figure 14(ii): loops fused and interchanged,
/// so both updates stream down each column with stride 1.
///
/// # Panics
///
/// Panics if the three matrices differ in shape.
pub fn adi_transformed(x: &mut Mat, a: &Mat, b: &mut Mat) {
    let n = x.rows();
    assert!(
        a.rows() == n && b.rows() == n && x.cols() == a.cols() && a.cols() == b.cols(),
        "ADI arrays must agree in shape"
    );
    let m = x.cols();
    for k in 0..m {
        for i in 1..n {
            let xv = x.at(i, k) - x.at(i - 1, k) * a.at(i, k) / b.at(i - 1, k);
            x.set(i, k, xv);
            let bv = b.at(i, k) - a.at(i, k) * a.at(i, k) / b.at(i - 1, k);
            b.set(i, k, bv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_mat;

    #[test]
    fn transformed_matches_input() {
        for n in [1usize, 2, 5, 33] {
            let a = random_mat(n, n, 1);
            // keep B safely away from zero
            let b0 = {
                let mut b = random_mat(n, n, 2);
                for v in b.data_mut() {
                    *v += 2.0;
                }
                b
            };
            let x0 = random_mat(n, n, 3);
            let (mut x1, mut b1) = (x0.clone(), b0.clone());
            adi_input(&mut x1, &a, &mut b1);
            let (mut x2, mut b2) = (x0.clone(), b0.clone());
            adi_transformed(&mut x2, &a, &mut b2);
            assert!(x1.max_rel_diff(&x2) < 1e-12, "X mismatch at n={n}");
            assert!(b1.max_rel_diff(&b2) < 1e-12, "B mismatch at n={n}");
        }
    }

    #[test]
    fn first_row_untouched() {
        let n = 4;
        let a = random_mat(n, n, 4);
        let mut b = random_mat(n, n, 5);
        for v in b.data_mut() {
            *v += 2.0;
        }
        let mut x = random_mat(n, n, 6);
        let x00 = x.at(0, 2);
        adi_transformed(&mut x, &a, &mut b);
        assert_eq!(x.at(0, 2), x00);
    }
}
