//! Capture-once / replay-many execution traces.
//!
//! Every point of a figure sweep used to re-execute its kernel once per
//! cache configuration just to regenerate the same address stream. A
//! [`CompactTrace`] captures that stream once — as 32-bit IDs at a fixed
//! power-of-two granularity — and replays it into any
//! [`AccessSink`] via [`CompactTrace::replay_into`]: direct
//! [`Hierarchy`](shackle_memsim::Hierarchy)s, standalone [`Cache`](shackle_memsim::Cache)s, or a [`StackSim`](shackle_memsim::StackSim) that
//! derives a whole configuration family from a single pass.
//!
//! Quantizing to a granularity `g` that divides every line and page
//! size of interest is lossless for cache simulation: a level with line
//! size `L` (a multiple of `g`) sees line ID `⌊addr / L⌋ =
//! ⌊(g·⌊addr/g⌋) / L⌋`, so the replayed stream produces bit-identical
//! hit/miss counts and cycles. The default granularity is the element
//! size (8 bytes), which makes the quantization the identity for this
//! workspace's traces; a trace of `N` accesses occupies `4N` bytes
//! instead of `8N` for raw addresses.

use crate::trace::{AddressMap, ELEM_BYTES};
use shackle_exec::{Access, ExecStats, Observer, Workspace};
use shackle_ir::Program;
#[cfg(test)]
use shackle_memsim::{Cache, Hierarchy, StackSim};

use shackle_memsim::AccessSink;
use std::collections::BTreeMap;

/// A compact, immutable-once-captured stream of memory-access IDs.
#[derive(Clone, Debug, Default)]
pub struct CompactTrace {
    /// Granularity in bytes (power of two); IDs are `addr / gran`.
    gran: u64,
    ids: Vec<u32>,
}

impl CompactTrace {
    /// An empty trace with element-size granularity (8 bytes) — exact
    /// for every address this workspace generates.
    pub fn new() -> Self {
        Self::with_granularity(ELEM_BYTES)
    }

    /// An empty trace with a custom granularity.
    ///
    /// # Panics
    ///
    /// Panics if `gran` is zero or not a power of two.
    pub fn with_granularity(gran: u64) -> Self {
        assert!(
            gran.is_power_of_two(),
            "granularity {gran} must be a non-zero power of two"
        );
        Self {
            gran,
            ids: Vec::new(),
        }
    }

    /// The granularity in bytes.
    pub fn granularity(&self) -> u64 {
        self.gran
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<u32>()
    }

    /// Append one byte-address access.
    ///
    /// # Panics
    ///
    /// Panics if the quantized ID overflows 32 bits (an address space
    /// beyond `gran · 2³²` bytes — 32 GB at the default granularity).
    #[inline]
    pub fn push(&mut self, addr: u64) {
        let id = addr / self.gran;
        assert!(id <= u32::MAX as u64, "address {addr} overflows the trace");
        self.ids.push(id as u32);
    }

    /// The recorded byte addresses (quantized to the granularity).
    pub fn addrs(&self) -> impl Iterator<Item = u64> + '_ {
        let g = self.gran;
        self.ids.iter().map(move |&id| id as u64 * g)
    }

    /// Replay into any [`AccessSink`] — identical stats and cycles to
    /// the original live-traced execution, provided the capture
    /// granularity divides the sink's (see
    /// [`AccessSink::granularity`]). This is the one replay entry
    /// point: direct [`Cache`](shackle_memsim::Cache)s, [`Hierarchy`](shackle_memsim::Hierarchy)s, [`StackSim`](shackle_memsim::StackSim)s and
    /// custom sinks all go through it.
    ///
    /// # Panics
    ///
    /// Panics if the sink quantizes coarser than this trace was
    /// captured at (the replay would be lossy).
    pub fn replay_into<S: AccessSink + ?Sized>(&self, sink: &mut S) {
        if let Some(g) = sink.granularity() {
            assert_eq!(
                g % self.gran,
                0,
                "granularity {} does not divide the sink's {g}-byte granularity",
                self.gran,
            );
        }
        shackle_probe::add("memsim.trace_replays", 1);
        // chunked so the per-call dispatch amortizes like the live
        // batched observer path
        let g = self.gran;
        let mut buf = [0u64; 1024];
        for chunk in self.ids.chunks(buf.len()) {
            for (slot, &id) in buf.iter_mut().zip(chunk) {
                *slot = id as u64 * g;
            }
            sink.push_many(&buf[..chunk.len()]);
        }
    }

    /// Execute `program` once through the compiled engine, capturing
    /// its full access stream (via the standard [`AddressMap`] layout,
    /// 128-byte aligned). Returns the execution stats alongside the
    /// trace — capture once, replay against as many configurations as
    /// the sweep wants.
    pub fn capture(
        program: &Program,
        params: &BTreeMap<String, i64>,
        init: impl Fn(&str, &[usize]) -> f64,
    ) -> (ExecStats, Self) {
        let map = AddressMap::for_program(program, params, 128);
        let mut ws = Workspace::for_program(program, params, init);
        let mut trace = Self::new();
        let mut obs = CaptureObserver {
            map,
            trace: &mut trace,
        };
        let stats = shackle_exec::execute_compiled(program, &mut ws, params, &mut obs);
        (stats, trace)
    }
}

/// A trace is itself an [`AccessSink`]: pushing addresses appends them
/// (quantized) to the stream, so trace producers written against the
/// unified sink surface can capture as easily as they simulate — and
/// one trace can be re-captured into another at coarser granularity via
/// [`CompactTrace::replay_into`].
impl AccessSink for CompactTrace {
    fn push(&mut self, addr: u64) {
        CompactTrace::push(self, addr);
    }

    fn push_many(&mut self, addrs: &[u64]) {
        self.ids.reserve(addrs.len());
        for &a in addrs {
            CompactTrace::push(self, a);
        }
    }

    fn granularity(&self) -> Option<u64> {
        Some(self.gran)
    }
}

/// An [`Observer`] that records translated addresses into a
/// [`CompactTrace`] instead of simulating them.
#[derive(Debug)]
pub struct CaptureObserver<'a> {
    map: AddressMap,
    trace: &'a mut CompactTrace,
}

impl<'a> CaptureObserver<'a> {
    /// Build a capturing observer over an address map.
    pub fn new(map: AddressMap, trace: &'a mut CompactTrace) -> Self {
        Self { map, trace }
    }
}

impl Observer for CaptureObserver<'_> {
    fn record(&mut self, a: Access<'_>) {
        self.trace.push(self.map.address(a.array, a.offset));
    }

    fn record_many(&mut self, accesses: &[Access<'_>]) {
        for a in accesses {
            self.trace.push(self.map.address(a.array, a.offset));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_execution;
    use shackle_ir::kernels;
    use shackle_memsim::CacheConfig;

    fn params(n: i64) -> BTreeMap<String, i64> {
        BTreeMap::from([("N".to_string(), n)])
    }

    #[test]
    fn replay_is_identical_to_live_tracing() {
        let p = kernels::matmul_ijk();
        let params = params(10);

        let mut live = Hierarchy::sp2_thin_node();
        let live_stats = trace_execution(&p, &params, |_, _| 1.0, &mut live);

        let (cap_stats, trace) = CompactTrace::capture(&p, &params, |_, _| 1.0);
        assert_eq!(cap_stats, live_stats);
        assert_eq!(trace.len() as u64, live.accesses());

        let mut replayed = Hierarchy::sp2_thin_node();
        trace.replay_into(&mut replayed);
        assert_eq!(replayed.cycles(), live.cycles());
        assert_eq!(replayed.level_stats(), live.level_stats());
    }

    #[test]
    fn trace_recaptures_into_a_coarser_trace() {
        // CompactTrace is itself a sink: replaying into a coarser trace
        // re-quantizes losslessly for caches at or above that line size
        let p = kernels::matmul_ijk();
        let (_, fine) = CompactTrace::capture(&p, &params(8), |_, _| 1.0);
        let mut coarse = CompactTrace::with_granularity(64);
        fine.replay_into(&mut coarse);
        assert_eq!(coarse.len(), fine.len());
        let cfg = CacheConfig {
            size: 2048,
            line: 64,
            assoc: 2,
            latency: 0,
        };
        let (mut c1, mut c2) = (Cache::new(cfg), Cache::new(cfg));
        fine.replay_into(&mut c1);
        coarse.replay_into(&mut c2);
        assert_eq!(c1.stats(), c2.stats());
    }

    #[test]
    fn replay_many_configs_from_one_capture() {
        let p = kernels::cholesky_right();
        let params = params(16);
        let init = crate::gen::spd_ws_init("A", 16, 7);
        let (_, trace) = CompactTrace::capture(&p, &params, &init);

        // one capture drives direct caches and the stack engine alike
        let configs = [
            CacheConfig {
                size: 1024,
                line: 64,
                assoc: 2,
                latency: 0,
            },
            CacheConfig {
                size: 4096,
                line: 64,
                assoc: 4,
                latency: 0,
            },
        ];
        let mut sim = StackSim::new(64, &configs);
        trace.replay_into(&mut sim);
        for cfg in &configs {
            let mut c = Cache::new(*cfg);
            trace.replay_into(&mut c);
            assert_eq!(sim.stats_for(cfg), c.stats(), "{cfg:?}");
        }
    }

    #[test]
    fn coarser_granularity_stays_exact_down_to_its_lines() {
        // a 64-byte-granularity trace still replays exactly against
        // 64- and 128-byte-line caches
        let p = kernels::matmul_ijk();
        let params = params(8);
        let (_, fine) = CompactTrace::capture(&p, &params, |_, _| 1.0);
        let mut coarse = CompactTrace::with_granularity(64);
        for a in fine.addrs() {
            coarse.push(a);
        }
        for line in [64usize, 128] {
            let cfg = CacheConfig {
                size: 2048,
                line,
                assoc: 2,
                latency: 0,
            };
            let (mut c1, mut c2) = (Cache::new(cfg), Cache::new(cfg));
            fine.replay_into(&mut c1);
            coarse.replay_into(&mut c2);
            assert_eq!(c1.stats(), c2.stats(), "line {line}");
        }
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn replay_rejects_granularity_coarser_than_line() {
        let mut t = CompactTrace::with_granularity(256);
        t.push(0);
        let mut c = Cache::new(CacheConfig {
            size: 2048,
            line: 64,
            assoc: 2,
            latency: 0,
        });
        t.replay_into(&mut c);
    }

    #[test]
    fn footprint_is_four_bytes_per_access() {
        let p = kernels::matmul_ijk();
        let (_, t) = CompactTrace::capture(&p, &params(8), |_, _| 1.0);
        assert!(!t.is_empty());
        assert!(t.bytes() < t.len() * 8, "compact vs raw u64 addresses");
    }
}
