//! Gaussian elimination without pivoting — the computational core of
//! the GMTRY benchmark from the NAS/SPEC suite (the paper's Fig. 13(i)).

use crate::blas::{dtrsm_llnu_in, Block};
use crate::Mat;

/// The input code (§7): in-place LU without pivoting, `L` unit-lower
/// below the diagonal, `U` on and above.
///
/// # Panics
///
/// Panics if the matrix is not square or a pivot is zero.
pub fn gauss_pointwise(a: &mut Mat) {
    assert_eq!(a.rows(), a.cols(), "Gaussian elimination needs square");
    let n = a.rows();
    for k in 0..n {
        let d = a.at(k, k);
        assert!(d != 0.0, "zero pivot at {k} (no pivoting)");
        for i in (k + 1)..n {
            let v = a.at(i, k) / d;
            a.set(i, k, v);
        }
        for j in (k + 1)..n {
            let u = a.at(k, j);
            for i in (k + 1)..n {
                let v = a.at(i, j) - a.at(i, k) * u;
                a.set(i, j, v);
            }
        }
    }
}

/// The shackled code: both dimensions of `A` blocked through the LHS
/// references (the same shackle as Cholesky, §7: "Data shackling blocked
/// the array in both dimensions, and produced code similar to what we
/// obtained in Cholesky factorization"). Scalar loops, lazy left-updates
/// per block.
///
/// # Panics
///
/// Panics if `nb == 0`, not square, or a pivot is zero.
pub fn gauss_shackled(a: &mut Mat, nb: usize) {
    assert!(nb > 0, "block size must be positive");
    assert_eq!(a.rows(), a.cols(), "Gaussian elimination needs square");
    let n = a.rows();
    let mut k0 = 0;
    while k0 < n {
        let k1 = (k0 + nb).min(n);
        // (i) pending updates from the left to the block column k0..k1
        // (rows k0..n)
        for k in 0..k0 {
            for j in k0..k1 {
                for i in k0..n {
                    let v = a.at(i, j) - a.at(i, k) * a.at(k, j);
                    a.set(i, j, v);
                }
            }
        }
        // (ii) factor the panel (columns k0..k1, all rows below)
        for k in k0..k1 {
            let d = a.at(k, k);
            assert!(d != 0.0, "zero pivot at {k} (no pivoting)");
            for i in (k + 1)..n {
                let v = a.at(i, k) / d;
                a.set(i, k, v);
            }
            for j in (k + 1)..k1 {
                let l = a.at(k, j);
                let _ = l;
                for i in (k + 1)..n {
                    let v = a.at(i, j) - a.at(i, k) * a.at(k, j);
                    a.set(i, j, v);
                }
            }
        }
        // (iii) pending updates to the block *row* k0..k1 (columns to
        // the right), so later block columns see finished U rows
        for k in 0..k0 {
            for j in k1..n {
                for i in k0..k1 {
                    if i > k {
                        let v = a.at(i, j) - a.at(i, k) * a.at(k, j);
                        a.set(i, j, v);
                    }
                }
            }
        }
        for k in k0..k1 {
            for j in k1..n {
                for i in (k + 1)..k1 {
                    let v = a.at(i, j) - a.at(i, k) * a.at(k, j);
                    a.set(i, j, v);
                }
            }
        }
        k0 = k1;
    }
    // trailing updates for the final block row/columns are already
    // applied lazily above; nothing remains.
}

/// LAPACK-style blocked LU without pivoting (`dgetrf`-shaped): factor a
/// panel, triangular-solve the `U12` block row, rank-`nb` update of the
/// trailing matrix with DGEMM.
///
/// # Panics
///
/// Panics if `nb == 0`, not square, or a pivot is zero.
pub fn gauss_blocked_dgemm(a: &mut Mat, nb: usize) {
    assert!(nb > 0, "block size must be positive");
    assert_eq!(a.rows(), a.cols(), "Gaussian elimination needs square");
    let n = a.rows();
    let mut k0 = 0;
    while k0 < n {
        let k1 = (k0 + nb).min(n);
        // panel factorization (columns k0..k1)
        for k in k0..k1 {
            let d = a.at(k, k);
            assert!(d != 0.0, "zero pivot at {k} (no pivoting)");
            for i in (k + 1)..n {
                let v = a.at(i, k) / d;
                a.set(i, k, v);
            }
            for j in (k + 1)..k1 {
                let u = a.at(k, j);
                if u == 0.0 {
                    continue;
                }
                for i in (k + 1)..n {
                    let v = a.at(i, j) - a.at(i, k) * u;
                    a.set(i, j, v);
                }
            }
        }
        if k1 < n {
            // U12 := L11⁻¹ · A12
            dtrsm_llnu_in(
                a,
                Block::new(k0, k1, k1 - k0, n - k1),
                Block::new(k0, k0, k1 - k0, k1 - k0),
            );
            // A22 -= L21 · U12  (note: dgemm_nt_sub_in computes C -= A·Bᵀ,
            // so feed it U12ᵀ's location... we need plain NN; do it with
            // an explicit kernel)
            gemm_nn_sub_in(
                a,
                Block::new(k1, k1, n - k1, n - k1),
                Block::new(k1, k0, n - k1, k1 - k0),
                Block::new(k0, k1, k1 - k0, n - k1),
            );
        }
        k0 = k1;
    }
}

/// `A[cb] −= A[ab] · A[bb]` in place (NN orientation).
fn gemm_nn_sub_in(a: &mut Mat, cb: Block, ab: Block, bb: Block) {
    let ld = a.rows();
    let (m, n, k) = (cb.m, cb.n, ab.n);
    assert_eq!(ab.m, m);
    assert_eq!(bb.n, n);
    assert_eq!(bb.m, k);
    let data = a.data_mut();
    for j in 0..n {
        let ccol = (cb.c0 + j) * ld + cb.r0;
        for p in 0..k {
            let s = data[(bb.c0 + j) * ld + bb.r0 + p];
            if s == 0.0 {
                continue;
            }
            let acol = (ab.c0 + p) * ld + ab.r0;
            crate::blas::axpy_sub_in_pub(data, ccol, acol, m, s);
        }
    }
}

/// The GMTRY benchmark proxy: Gaussian elimination plus a fixed amount
/// of non-eliminable streaming work (the rest of the SPEC kernel, which
/// the paper reports dilutes the 3× elimination speedup to ~2× overall).
/// Returns a checksum so the extra work is not optimized away.
pub fn gmtry_benchmark(a: &mut Mat, eliminate: impl Fn(&mut Mat)) -> f64 {
    // "rest of the benchmark": set up the dense system from a boundary
    // grid (streaming, O(n²), untransformed in the paper)
    let n = a.rows();
    let mut acc = 0.0;
    for sweep in 0..4 {
        for j in 0..n {
            for i in 0..n {
                acc += a.at(i, j) * (1.0 + (sweep as f64) * 1e-3);
            }
        }
    }
    eliminate(a);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_spd;

    fn check(factor: impl Fn(&mut Mat), n: usize, seed: u64) {
        // SPD matrices are safely non-pivoting
        let a0 = random_spd(n, seed);
        let mut gold = a0.clone();
        gauss_pointwise(&mut gold);
        let mut c = a0;
        factor(&mut c);
        let diff = gold.max_rel_diff(&c);
        assert!(diff < 1e-9, "mismatch {diff}");
    }

    #[test]
    fn lu_reconstructs() {
        let n = 10;
        let a0 = random_spd(n, 1);
        let mut lu = a0.clone();
        gauss_pointwise(&mut lu);
        // A == L·U
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { lu.at(i, k) };
                    let u = lu.at(k, j);
                    if k < i {
                        s += lu.at(i, k) * u;
                    } else {
                        s += l * u;
                    }
                }
                assert!((s - a0.at(i, j)).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn shackled_matches() {
        for (n, nb) in [(12, 4), (13, 4), (20, 8), (7, 10)] {
            check(|a| gauss_shackled(a, nb), n, 2);
        }
    }

    #[test]
    fn blocked_dgemm_matches() {
        for (n, nb) in [(12, 4), (13, 4), (21, 8)] {
            check(|a| gauss_blocked_dgemm(a, nb), n, 3);
        }
    }

    #[test]
    fn gmtry_checksum_stable() {
        let a0 = random_spd(8, 4);
        let mut a1 = a0.clone();
        let c1 = gmtry_benchmark(&mut a1, gauss_pointwise);
        let mut a2 = a0.clone();
        let c2 = gmtry_benchmark(&mut a2, |m| gauss_shackled(m, 4));
        assert!((c1 - c2).abs() < 1e-9);
        assert!(a1.max_rel_diff(&a2) < 1e-9);
    }
}
