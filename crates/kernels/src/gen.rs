//! Workload generators: the synthetic inputs driving every experiment.
//!
//! The paper's benchmarks run on dense (or banded) matrices whose values
//! are irrelevant to the memory behaviour; what matters is that the
//! factorizations are numerically well-posed. All generators are
//! deterministic in a seed.

use crate::rng::Rng;
use crate::Mat;

/// A uniformly random matrix in `(0, 1)`.
pub fn random_mat(n: usize, m: usize, seed: u64) -> Mat {
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = Mat::zeros(n, m);
    for j in 0..m {
        for i in 0..n {
            out.set(i, j, rng.gen_range(1e-3..1.0));
        }
    }
    out
}

/// A random symmetric positive-definite matrix: random symmetric entries
/// with a dominant diagonal (`aᵢᵢ = n + 1 + uᵢ`), which guarantees
/// positive pivots for Cholesky and Gaussian elimination alike.
pub fn random_spd(n: usize, seed: u64) -> Mat {
    let mut rng = Rng::seed_from_u64(seed);
    let mut m = Mat::zeros(n, n);
    for j in 0..n {
        for i in j..n {
            let v = rng.gen_range(1e-3..1.0);
            m.set(i, j, v);
            m.set(j, i, v);
        }
    }
    for i in 0..n {
        m.set(i, i, n as f64 + 1.0 + m.at(i, i));
    }
    m
}

/// A random banded SPD matrix with half-bandwidth `p`: zero outside
/// `|i − j| ≤ p`, dominant diagonal.
pub fn random_banded_spd(n: usize, p: usize, seed: u64) -> Mat {
    let mut rng = Rng::seed_from_u64(seed);
    let mut m = Mat::zeros(n, n);
    for j in 0..n {
        for i in j..(j + p + 1).min(n) {
            let v = rng.gen_range(1e-3..1.0);
            m.set(i, j, v);
            m.set(j, i, v);
        }
    }
    for i in 0..n {
        m.set(i, i, 2.0 * (p as f64 + 1.0) + m.at(i, i));
    }
    m
}

/// Initializer closure for IR workspaces mirroring [`random_spd`]
/// (values agree with the `Mat` version entry for entry so native and
/// interpreted runs factor identical matrices).
pub fn spd_ws_init(array: &str, n: usize, seed: u64) -> impl Fn(&str, &[usize]) -> f64 {
    let m = random_spd(n, seed);
    let arr = array.to_string();
    move |name: &str, idx: &[usize]| {
        if name == arr {
            m.at(idx[0] - 1, idx[1] - 1)
        } else {
            0.0
        }
    }
}

/// Initializer mirroring [`random_banded_spd`].
pub fn banded_ws_init(
    array: &str,
    n: usize,
    p: usize,
    seed: u64,
) -> impl Fn(&str, &[usize]) -> f64 {
    let m = random_banded_spd(n, p, seed);
    let arr = array.to_string();
    move |name: &str, idx: &[usize]| {
        if name == arr {
            m.at(idx[0] - 1, idx[1] - 1)
        } else {
            0.0
        }
    }
}

/// Initializer for matmul-style programs: `C` zero, inputs pseudo-random
/// (deterministic, index-hashed so it is cheap and order-independent).
pub fn matmul_ws_init(seed: u64) -> impl Fn(&str, &[usize]) -> f64 {
    shackle_exec::verify::hash_init(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spd_is_symmetric_dominant() {
        let m = random_spd(20, 3);
        for i in 0..20 {
            assert!(m.at(i, i) > 20.0);
            for j in 0..20 {
                assert_eq!(m.at(i, j), m.at(j, i));
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(random_spd(8, 9).data(), random_spd(8, 9).data());
        assert_ne!(random_spd(8, 9).data(), random_spd(8, 10).data());
    }

    #[test]
    fn banded_outside_band_zero() {
        let m = random_banded_spd(12, 2, 1);
        for i in 0..12usize {
            for j in 0..12usize {
                if i.abs_diff(j) > 2 {
                    assert_eq!(m.at(i, j), 0.0);
                } else {
                    assert_eq!(m.at(i, j), m.at(j, i));
                }
            }
        }
    }

    #[test]
    fn ws_init_matches_mat() {
        let m = random_spd(6, 5);
        let f = spd_ws_init("A", 6, 5);
        assert_eq!(f("A", &[2, 3]), m.at(1, 2));
        assert_eq!(f("B", &[2, 3]), 0.0);
    }
}
