//! Native 2-D Jacobi (heat) relaxation: one out-of-place sweep of the
//! five-point stencil — the relaxation-code family §9 targets.
//!
//! The blocked variant tiles the interior with *independent* block
//! heights and widths: with column-major storage a cache line spans
//! consecutive rows of one column, so skinny-in-`i` blocks keep whole
//! lines live and the best block is typically rectangular.

use crate::Mat;

/// One pointwise Jacobi sweep: `V[i,j] = ¼(U[i−1,j] + U[i+1,j] +
/// U[i,j−1] + U[i,j+1])` over the interior; the boundary of `V` is left
/// untouched.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn jacobi2d_pointwise(v: &mut Mat, u: &Mat) {
    assert_eq!(v.rows(), u.rows());
    assert_eq!(v.cols(), u.cols());
    let (n, m) = (u.rows(), u.cols());
    if n < 3 || m < 3 {
        return;
    }
    for i in 1..n - 1 {
        for j in 1..m - 1 {
            let s = u.at(i - 1, j) + u.at(i + 1, j) + u.at(i, j - 1) + u.at(i, j + 1);
            v.set(i, j, 0.25 * s);
        }
    }
}

/// Rectangularly blocked Jacobi sweep: interior tiled into `bi × bj`
/// blocks. Out-of-place, so any block order is legal; this one walks
/// blocks in the pointwise order.
///
/// # Panics
///
/// Panics on shape mismatch or a zero block extent.
pub fn jacobi2d_blocked(v: &mut Mat, u: &Mat, bi: usize, bj: usize) {
    assert!(bi > 0 && bj > 0);
    assert_eq!(v.rows(), u.rows());
    assert_eq!(v.cols(), u.cols());
    let (n, m) = (u.rows(), u.cols());
    if n < 3 || m < 3 {
        return;
    }
    for i0 in (1..n - 1).step_by(bi) {
        for j0 in (1..m - 1).step_by(bj) {
            for i in i0..(i0 + bi).min(n - 1) {
                for j in j0..(j0 + bj).min(m - 1) {
                    let s = u.at(i - 1, j) + u.at(i + 1, j) + u.at(i, j - 1) + u.at(i, j + 1);
                    v.set(i, j, 0.25 * s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_mat;

    #[test]
    fn constant_field_is_a_fixed_point() {
        let u = Mat::from_fn(8, 8, |_, _| 3.0);
        let mut v = u.clone();
        jacobi2d_pointwise(&mut v, &u);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(v.at(i, j), 3.0);
            }
        }
    }

    #[test]
    fn boundary_untouched_and_interior_averaged() {
        let u = random_mat(6, 6, 1);
        let mut v = Mat::from_fn(6, 6, |_, _| -1.0);
        jacobi2d_pointwise(&mut v, &u);
        assert_eq!(v.at(0, 3), -1.0);
        assert_eq!(v.at(5, 2), -1.0);
        assert_eq!(v.at(2, 0), -1.0);
        let expect = 0.25 * (u.at(1, 2) + u.at(3, 2) + u.at(2, 1) + u.at(2, 3));
        assert_eq!(v.at(2, 2), expect);
    }

    #[test]
    fn blocked_is_bit_identical_to_pointwise() {
        for (n, bi, bj, seed) in [(9, 2, 5, 2), (16, 4, 4, 3), (23, 7, 1, 4), (3, 10, 10, 5)] {
            let u = random_mat(n, n, seed);
            let mut gold = Mat::zeros(n, n);
            let mut v = Mat::zeros(n, n);
            jacobi2d_pointwise(&mut gold, &u);
            jacobi2d_blocked(&mut v, &u, bi, bj);
            // Same per-element operation order, so bit-identical.
            assert_eq!(gold.data(), v.data(), "n={n} bi={bi} bj={bj}");
        }
    }

    #[test]
    fn degenerate_sizes_are_noops() {
        let u = random_mat(2, 2, 7);
        let mut v = Mat::zeros(2, 2);
        jacobi2d_pointwise(&mut v, &u);
        jacobi2d_blocked(&mut v, &u, 4, 4);
        assert!(v.data().iter().all(|&x| x == 0.0));
    }
}
