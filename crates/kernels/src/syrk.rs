//! Native symmetric rank-k update (SYRK): `C ← C + A·Aᵀ`, lower
//! triangle only — the BLAS-3 sibling of matmul with a triangular
//! iteration space.
//!
//! The blocked variant takes *independent* block heights and widths
//! (rectangular blocks): the footprint of a block row of `C` is
//! asymmetric in the two dimensions, so the best block need not be
//! square.

use crate::Mat;

/// Pointwise SYRK: `C[i,j] += Σ_k A[i,k]·A[j,k]` for `j ≤ i`.
///
/// # Panics
///
/// Panics if `C` is not square of `A`'s row count.
pub fn syrk_pointwise(c: &mut Mat, a: &Mat) {
    assert_eq!(c.rows(), c.cols());
    assert_eq!(c.rows(), a.rows());
    for i in 0..c.rows() {
        for j in 0..=i {
            let mut s = c.at(i, j);
            for k in 0..a.cols() {
                s += a.at(i, k) * a.at(j, k);
            }
            c.set(i, j, s);
        }
    }
}

/// Rectangularly blocked SYRK: row blocks of height `bi`, column blocks
/// of width `bj`, skipping blocks strictly above the diagonal.
///
/// # Panics
///
/// Panics on shape mismatch or a zero block extent.
pub fn syrk_blocked(c: &mut Mat, a: &Mat, bi: usize, bj: usize) {
    assert!(bi > 0 && bj > 0);
    assert_eq!(c.rows(), c.cols());
    assert_eq!(c.rows(), a.rows());
    let n = c.rows();
    for i0 in (0..n).step_by(bi) {
        for j0 in (0..n).step_by(bj) {
            if j0 > i0 + bi - 1 {
                break; // block entirely above the diagonal
            }
            for i in i0..(i0 + bi).min(n) {
                for j in j0..(j0 + bj).min(n).min(i + 1) {
                    let mut s = c.at(i, j);
                    for k in 0..a.cols() {
                        s += a.at(i, k) * a.at(j, k);
                    }
                    c.set(i, j, s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_mat;

    #[test]
    fn matches_explicit_a_at() {
        let a = random_mat(6, 4, 1);
        let mut c = Mat::zeros(6, 6);
        syrk_pointwise(&mut c, &a);
        for i in 0..6 {
            for j in 0..=i {
                let mut s = 0.0;
                for k in 0..4 {
                    s += a.at(i, k) * a.at(j, k);
                }
                assert!((c.at(i, j) - s).abs() < 1e-12);
            }
            for j in (i + 1)..6 {
                assert_eq!(c.at(i, j), 0.0, "upper triangle must stay untouched");
            }
        }
    }

    #[test]
    fn blocked_agrees_for_square_and_rectangular_blocks() {
        for (n, k, bi, bj, seed) in [
            (9, 7, 3, 3, 2),
            (16, 16, 4, 8, 3),
            (21, 5, 8, 2, 4),
            (7, 9, 100, 1, 5),
        ] {
            let a = random_mat(n, k, seed);
            let mut gold = random_mat(n, n, seed + 10);
            let mut c = gold.clone();
            syrk_pointwise(&mut gold, &a);
            syrk_blocked(&mut c, &a, bi, bj);
            assert!(
                gold.max_rel_diff_lower(&c) < 1e-12,
                "n={n} k={k} bi={bi} bj={bj}"
            );
        }
    }
}
