//! Native rank-3 tensors and the two-index contraction
//! `C[i,j] += Σ_{k,l} A[i,k,l]·B[l,k,j]` — the coupled-cluster-style
//! kernel whose operands transpose the contracted indices relative to
//! each other.

use crate::Mat;

/// A dense column-major rank-3 `f64` tensor with 0-based indexing
/// (offset `i + j·n1 + k·n1·n2`, matching the IR world's column-major
/// array layout).
#[derive(Clone, Debug, PartialEq)]
pub struct Ten3 {
    n1: usize,
    n2: usize,
    n3: usize,
    data: Vec<f64>,
}

impl Ten3 {
    /// A zero tensor.
    pub fn zeros(n1: usize, n2: usize, n3: usize) -> Self {
        Self {
            n1,
            n2,
            n3,
            data: vec![0.0; n1 * n2 * n3],
        }
    }

    /// Build from a function of `(i, j, k)` (0-based).
    pub fn from_fn(
        n1: usize,
        n2: usize,
        n3: usize,
        f: impl Fn(usize, usize, usize) -> f64,
    ) -> Self {
        let mut t = Self::zeros(n1, n2, n3);
        for k in 0..n3 {
            for j in 0..n2 {
                for i in 0..n1 {
                    t.data[i + j * n1 + k * n1 * n2] = f(i, j, k);
                }
            }
        }
        t
    }

    /// Extents `(n1, n2, n3)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.n1, self.n2, self.n3)
    }

    /// Element access.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        debug_assert!(i < self.n1 && j < self.n2 && k < self.n3);
        self.data[i + j * self.n1 + k * self.n1 * self.n2]
    }

    /// Raw column-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

/// Pointwise contraction `C[i,j] += Σ_{k,l} A[i,k,l]·B[l,k,j]` over
/// cubic index ranges of `C`'s order.
///
/// # Panics
///
/// Panics unless `C` is `n×n`, `A` and `B` are `n×n×n`.
pub fn contract_pointwise(c: &mut Mat, a: &Ten3, b: &Ten3) {
    let n = c.rows();
    assert_eq!(c.cols(), n);
    assert_eq!(a.dims(), (n, n, n));
    assert_eq!(b.dims(), (n, n, n));
    for i in 0..n {
        for j in 0..n {
            let mut s = c.at(i, j);
            for k in 0..n {
                for l in 0..n {
                    s += a.at(i, k, l) * b.at(l, k, j);
                }
            }
            c.set(i, j, s);
        }
    }
}

/// Blocked contraction: the output dimensions tiled `bi × bj` and the
/// contracted pair tiled `bk` — the data-centric blocking of `C` with
/// the contraction loops windowed per block.
///
/// # Panics
///
/// Panics on shape mismatch or a zero block extent.
pub fn contract_blocked(c: &mut Mat, a: &Ten3, b: &Ten3, bi: usize, bj: usize, bk: usize) {
    assert!(bi > 0 && bj > 0 && bk > 0);
    let n = c.rows();
    assert_eq!(c.cols(), n);
    assert_eq!(a.dims(), (n, n, n));
    assert_eq!(b.dims(), (n, n, n));
    for i0 in (0..n).step_by(bi) {
        for j0 in (0..n).step_by(bj) {
            for k0 in (0..n).step_by(bk) {
                for i in i0..(i0 + bi).min(n) {
                    for j in j0..(j0 + bj).min(n) {
                        let mut s = c.at(i, j);
                        for k in k0..(k0 + bk).min(n) {
                            for l in 0..n {
                                s += a.at(i, k, l) * b.at(l, k, j);
                            }
                        }
                        c.set(i, j, s);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(n: usize, seed: u64) -> Ten3 {
        Ten3::from_fn(n, n, n, |i, j, k| {
            ((i * 31 + j * 17 + k * 7 + seed as usize) % 23) as f64 / 23.0 + 0.1
        })
    }

    #[test]
    fn tiny_contraction_by_hand() {
        // n = 1: C[0,0] += A[0,0,0]·B[0,0,0].
        let a = Ten3::from_fn(1, 1, 1, |_, _, _| 3.0);
        let b = Ten3::from_fn(1, 1, 1, |_, _, _| 5.0);
        let mut c = Mat::zeros(1, 1);
        contract_pointwise(&mut c, &a, &b);
        assert_eq!(c.at(0, 0), 15.0);
    }

    #[test]
    fn layout_is_column_major() {
        let t = Ten3::from_fn(2, 2, 2, |i, j, k| (i * 100 + j * 10 + k) as f64);
        assert_eq!(t.data()[0], 0.0); // (0,0,0)
        assert_eq!(t.data()[1], 100.0); // (1,0,0)
        assert_eq!(t.data()[2], 10.0); // (0,1,0)
        assert_eq!(t.data()[4], 1.0); // (0,0,1)
    }

    #[test]
    fn blocked_agrees_with_pointwise() {
        for (n, bi, bj, bk, seed) in [(5, 2, 2, 2, 1), (8, 3, 5, 2, 2), (9, 4, 1, 100, 3)] {
            let a = seeded(n, seed);
            let b = seeded(n, seed + 5);
            let mut gold = Mat::from_fn(n, n, |i, j| (i + j) as f64 / 10.0);
            let mut c = gold.clone();
            contract_pointwise(&mut gold, &a, &b);
            contract_blocked(&mut c, &a, &b, bi, bj, bk);
            assert!(
                gold.max_rel_diff(&c) < 1e-12,
                "n={n} bi={bi} bj={bj} bk={bk}"
            );
        }
    }
}
