//! The unified access surface: everything that consumes a stream of
//! byte addresses.
//!
//! Three perf PRs accreted three spellings of "feed addresses in":
//! `Hierarchy::access_many`, `StackSim::access_many`, and the
//! per-engine replay methods on `CompactTrace`. [`AccessSink`] is the
//! one trait behind all of them: the direct [`Cache`], the [`Tlb`],
//! coupled [`Hierarchy`] simulations, the Mattson [`StackSim`], and
//! (in `shackle-kernels`) `CompactTrace` re-capture all take the same
//! `push` / `push_many` calls, so trace producers are written once and
//! replay generically. The old names survive as deprecated forwards.

use crate::{Cache, Hierarchy, StackSim, Tlb};
use shackle_probe as probe;
use std::sync::LazyLock;

/// A consumer of an in-order stream of byte addresses.
///
/// `push` is the per-address entry point; `push_many` is the batched
/// one with a provided element-wise default, overridden where a
/// consumer can amortize per-call work (and where the batch is the
/// natural unit for probe counters). Implementations must make
/// `push_many(addrs)` equivalent to `for a in addrs { push(a) }` in
/// observable statistics.
pub trait AccessSink {
    /// Consume the byte address `addr`.
    fn push(&mut self, addr: u64);

    /// Consume a batch of byte addresses in order. Equivalent to
    /// calling [`AccessSink::push`] per element.
    fn push_many(&mut self, addrs: &[u64]) {
        for &a in addrs {
            self.push(a);
        }
    }

    /// The coarsest address granularity (in bytes) this sink can
    /// distinguish, if it quantizes at all: compact traces replayed
    /// into this sink are lossless iff their capture granularity
    /// divides it. `None` means the sink is exact at byte granularity.
    fn granularity(&self) -> Option<u64> {
        None
    }
}

static HIERARCHY_ACCESSES: LazyLock<&'static probe::Counter> =
    LazyLock::new(|| probe::counter("memsim.accesses"));
static STACK_ACCESSES: LazyLock<&'static probe::Counter> =
    LazyLock::new(|| probe::counter("memsim.stack_accesses"));

impl AccessSink for Cache {
    fn push(&mut self, addr: u64) {
        self.access(addr);
    }

    fn granularity(&self) -> Option<u64> {
        Some(self.config().line as u64)
    }
}

impl AccessSink for Tlb {
    fn push(&mut self, addr: u64) {
        self.access(addr);
    }

    fn granularity(&self) -> Option<u64> {
        Some(self.config().page as u64)
    }
}

impl AccessSink for Hierarchy {
    fn push(&mut self, addr: u64) {
        self.access(addr);
    }

    fn push_many(&mut self, addrs: &[u64]) {
        if probe::enabled() {
            HIERARCHY_ACCESSES.add(addrs.len() as u64);
        }
        for &a in addrs {
            self.access(a);
        }
    }

    /// The finest quantum all levels (and the TLB, if attached) agree
    /// on: the smallest line size. Line and page sizes are powers of
    /// two, so the smallest divides them all.
    fn granularity(&self) -> Option<u64> {
        let lines = self.levels().iter().map(|l| l.config().line as u64);
        let page = self.tlb().map(|t| t.config().page as u64);
        lines.chain(page).min()
    }
}

impl AccessSink for StackSim {
    fn push(&mut self, addr: u64) {
        self.access(addr);
    }

    fn push_many(&mut self, addrs: &[u64]) {
        if probe::enabled() {
            STACK_ACCESSES.add(addrs.len() as u64);
        }
        for &a in addrs {
            self.access(a);
        }
    }

    fn granularity(&self) -> Option<u64> {
        Some(self.line() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, TlbConfig};

    fn cfg(size: usize, line: usize, assoc: usize) -> CacheConfig {
        CacheConfig {
            size,
            line,
            assoc,
            latency: 0,
        }
    }

    #[test]
    fn push_matches_inherent_access() {
        let addrs: Vec<u64> = (0..200u64).map(|i| (i * 7919) % 4096).collect();
        let mut by_access = Cache::new(cfg(1024, 64, 2));
        let mut by_push = by_access.clone();
        for &a in &addrs {
            by_access.access(a);
        }
        by_push.push_many(&addrs);
        assert_eq!(by_access.stats(), by_push.stats());
    }

    #[test]
    fn sinks_report_their_granularity() {
        assert_eq!(Cache::new(cfg(1024, 64, 2)).granularity(), Some(64));
        assert_eq!(Tlb::new(TlbConfig::power2_like()).granularity(), Some(4096));
        assert_eq!(
            StackSim::new(32, &[cfg(512, 32, 4)]).granularity(),
            Some(32)
        );
        // hierarchy: min over levels and TLB page
        let h = Hierarchy::two_level();
        assert_eq!(h.granularity(), Some(64));
        let h = Hierarchy::sp2_thin_node().with_tlb(TlbConfig {
            page: 64,
            entries: 4,
            miss_penalty: 1,
        });
        assert_eq!(h.granularity(), Some(64));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_access_many_still_forwards() {
        let addrs: Vec<u64> = (0..64u64).map(|i| i * 48).collect();
        let mut old = Hierarchy::sp2_thin_node();
        let mut new = old.clone();
        old.access_many(&addrs);
        new.push_many(&addrs);
        assert_eq!(old.level_stats(), new.level_stats());
        assert_eq!(old.cycles(), new.cycles());
        let cfgs = [cfg(512, 32, 4)];
        let mut s_old = StackSim::new(32, &cfgs);
        let mut s_new = s_old.clone();
        s_old.access_many(&addrs);
        s_new.push_many(&addrs);
        assert_eq!(s_old.stats_for(&cfgs[0]), s_new.stats_for(&cfgs[0]));
    }

    #[test]
    fn generic_replay_drives_any_sink() {
        fn drive(sink: &mut dyn AccessSink) {
            sink.push_many(&[0, 64, 0, 128]);
            sink.push(64);
        }
        let mut c = Cache::new(cfg(1024, 64, 2));
        let mut s = StackSim::new(64, &[cfg(1024, 64, 2)]);
        let mut h = Hierarchy::sp2_thin_node();
        drive(&mut c);
        drive(&mut s);
        drive(&mut h);
        assert_eq!(c.stats().accesses(), 5);
        assert_eq!(s.total(), 5);
        assert_eq!(h.accesses(), 5);
        // identical single-level verdicts from direct and stack engines
        assert_eq!(s.stats_for(&cfg(1024, 64, 2)), c.stats());
    }
}
