//! An optional TLB model.
//!
//! The paper's input codes sweep rows of column-major arrays; on the
//! real SP-2 such strides paid address-translation misses on top of
//! cache misses. The base hierarchy deliberately omits this (the
//! calibrated figures in EXPERIMENTS.md document the consequence); a
//! [`Tlb`] can be attached to a [`crate::Hierarchy`] to study it.

use crate::ConfigError;
use std::fmt;

/// TLB geometry and miss cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Page size in bytes (power of two).
    pub page: usize,
    /// Number of entries (fully associative, true LRU).
    pub entries: usize,
    /// Cycles charged per miss (page-table walk).
    pub miss_penalty: u64,
}

impl TlbConfig {
    /// A POWER2-like TLB: 4 KB pages, 128 entries, 30-cycle walk.
    pub fn power2_like() -> Self {
        Self {
            page: 4096,
            entries: 128,
            miss_penalty: 30,
        }
    }

    /// Validate the geometry, reporting the first inconsistency found:
    /// `page` zero or not a power of two, or `entries == 0`. The
    /// translation analogue of [`crate::CacheConfig::validate`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.page.is_power_of_two() {
            return Err(ConfigError::PageNotPowerOfTwo { page: self.page });
        }
        if self.entries == 0 {
            return Err(ConfigError::NoTlbEntries);
        }
        Ok(())
    }
}

/// A fully associative, true-LRU translation lookaside buffer.
///
/// # Examples
///
/// ```
/// use shackle_memsim::{Tlb, TlbConfig};
/// let mut t = Tlb::new(TlbConfig { page: 4096, entries: 2, miss_penalty: 30 });
/// assert!(!t.access(0));        // cold
/// assert!(t.access(100));       // same page
/// assert!(!t.access(4096));     // next page
/// assert!(!t.access(2 * 4096)); // evicts page 0
/// assert!(!t.access(0));
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    /// Resident page numbers, one slot per entry (same generation-stamp
    /// LRU as [`crate::Cache`]: stamp `0` marks an empty slot, the
    /// minimum stamp is the LRU victim).
    pages: Box<[u64]>,
    stamps: Box<[u64]>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Build an empty TLB, rejecting inconsistent geometries (page
    /// size not a power of two, or no entries) — see
    /// [`TlbConfig::validate`].
    pub fn try_new(config: TlbConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Self {
            config,
            pages: vec![0; config.entries].into_boxed_slice(),
            stamps: vec![0; config.entries].into_boxed_slice(),
            tick: 1,
            hits: 0,
            misses: 0,
        })
    }

    /// Build an empty TLB.
    ///
    /// Thin wrapper over [`Tlb::try_new`].
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if the page size is not
    /// a power of two or `entries == 0`.
    pub fn new(config: TlbConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Translate the byte address; returns whether it hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let page = addr / self.config.page as u64;
        let stamp = self.tick;
        self.tick += 1;
        let mut victim = 0;
        let mut victim_stamp = u64::MAX;
        for (i, (&p, st)) in self.pages.iter().zip(self.stamps.iter_mut()).enumerate() {
            if *st != 0 && p == page {
                *st = stamp;
                self.hits += 1;
                return true;
            }
            if *st < victim_stamp {
                victim_stamp = *st;
                victim = i;
            }
        }
        self.pages[victim] = page;
        self.stamps[victim] = stamp;
        self.misses += 1;
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit/miss counters as a [`crate::LevelStats`], so reports can
    /// treat translation like another level of the hierarchy.
    pub fn stats(&self) -> crate::LevelStats {
        crate::LevelStats {
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Reset contents and counters.
    pub fn clear(&mut self) {
        self.stamps.fill(0);
        self.tick = 1;
        self.hits = 0;
        self.misses = 0;
    }
}

impl fmt::Display for Tlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-entry TLB ({} B pages): {} hits, {} misses",
            self.config.entries, self.config.page, self.hits, self.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_thrash_vs_sequential() {
        // sequential: one miss per page; page-strided over > entries
        // pages: every access misses on the second pass
        let cfg = TlbConfig {
            page: 4096,
            entries: 8,
            miss_penalty: 30,
        };
        let mut seq = Tlb::new(cfg);
        for a in (0..16 * 4096u64).step_by(8) {
            seq.access(a);
        }
        assert_eq!(seq.misses(), 16);
        let mut strided = Tlb::new(cfg);
        for _ in 0..2 {
            for p in 0..16u64 {
                strided.access(p * 4096);
            }
        }
        assert_eq!(strided.misses(), 32, "LRU thrash on a sweep > capacity");
    }

    #[test]
    fn clear_resets() {
        let mut t = Tlb::new(TlbConfig::power2_like());
        t.access(0);
        t.clear();
        assert_eq!(t.misses(), 0);
        assert!(!t.access(0));
    }

    #[test]
    fn try_new_rejects_each_inconsistency() {
        let bad_page = TlbConfig {
            page: 100,
            entries: 4,
            miss_penalty: 30,
        };
        assert_eq!(
            Tlb::try_new(bad_page).expect_err("non-power-of-two page"),
            ConfigError::PageNotPowerOfTwo { page: 100 }
        );
        let zero_page = TlbConfig {
            page: 0,
            entries: 4,
            miss_penalty: 30,
        };
        assert_eq!(
            Tlb::try_new(zero_page).expect_err("zero page"),
            ConfigError::PageNotPowerOfTwo { page: 0 }
        );
        let no_entries = TlbConfig {
            page: 4096,
            entries: 0,
            miss_penalty: 30,
        };
        assert_eq!(
            Tlb::try_new(no_entries).expect_err("no entries"),
            ConfigError::NoTlbEntries
        );
        assert!(Tlb::try_new(TlbConfig::power2_like()).is_ok());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn new_panics_on_bad_page() {
        let _ = Tlb::new(TlbConfig {
            page: 100,
            entries: 4,
            miss_penalty: 30,
        });
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn new_panics_on_no_entries() {
        let _ = Tlb::new(TlbConfig {
            page: 4096,
            entries: 0,
            miss_penalty: 30,
        });
    }
}
