//! Single-pass multi-configuration cache simulation (Mattson stack
//! distances).
//!
//! Mattson's classic observation: under true-LRU replacement, an access
//! hits a fully associative cache of capacity `C` lines iff fewer than
//! `C` *distinct* lines were touched since the previous access to the
//! same line (the *stack distance*). One pass over a trace that records
//! the histogram of stack distances therefore yields exact hit/miss
//! counts for **every** capacity at once.
//!
//! [`StackSim`] extends this to set-associative caches with
//! bit-selection set mapping. With `2^k` sets, an access hits a `k`-bit,
//! `A`-way cache iff fewer than `A` distinct lines *of the same set*
//! were touched since the last access to this line — the per-set stack
//! distance. Set indices are nested (the `k`-bit set index is the low
//! `k` bits of the `k+1`-bit one), so a single walk of the global LRU
//! stack computes the distances for all `k ≤ kmax` simultaneously:
//! for each line passed on the way down, the number of matching
//! low-order bits `t = trailing_zeros(line ⊕ target)` says the line
//! shares the target's set for every `k ≤ t`, so bucketing the walk by
//! `t` and suffix-summing gives every per-set distance from one scan.
//!
//! The per-access cost is one stack walk to the previous position of
//! the touched line — the same work a *single* direct LRU simulation
//! does in its recency list, but paid once for the whole configuration
//! family instead of once per configuration.
//!
//! Restrictions (checked at construction): one line size per
//! [`StackSim`], power-of-two set counts. These cover every
//! configuration the figure sweeps explore; the direct [`Cache`] remains
//! for odd geometries and for coupled multi-level hierarchies (where a
//! lower level sees only the upper level's misses — a *filtered* trace
//! the single-pass engine deliberately does not model; see DESIGN.md
//! §3).
//!
//! # Example
//!
//! ```
//! use shackle_memsim::{Cache, CacheConfig, StackSim};
//! let cfgs = [
//!     CacheConfig { size: 1024, line: 64, assoc: 2, latency: 0 },
//!     CacheConfig { size: 4096, line: 64, assoc: 4, latency: 0 },
//! ];
//! let mut stack = StackSim::new(64, &cfgs);
//! let mut direct: Vec<Cache> = cfgs.iter().map(|&c| Cache::new(c)).collect();
//! for addr in [0u64, 4096, 64, 0, 8192, 4096] {
//!     stack.access(addr);
//!     for c in &mut direct {
//!         c.access(addr);
//!     }
//! }
//! for (cfg, c) in cfgs.iter().zip(&direct) {
//!     assert_eq!(stack.stats_for(cfg), c.stats());
//! }
//! ```

use crate::{AccessSink, Cache, CacheConfig, LevelStats};
use shackle_probe as probe;

/// One-pass exact LRU simulation of a whole family of cache
/// configurations sharing a line size.
///
/// Feed the trace through [`StackSim::access`] or the unified
/// [`crate::AccessSink`] surface, then query [`StackSim::stats_for`]
/// for any covered configuration — the counts are bit-identical to
/// replaying the same trace through a direct [`Cache`] of that
/// configuration.
#[derive(Clone, Debug)]
pub struct StackSim {
    /// Line size in bytes (power of two).
    line: u64,
    /// Largest tracked log2(set count).
    kmax: u32,
    /// Distances are resolved exactly up to this associativity; the
    /// last histogram bucket pools `>= max_assoc` (a miss in every
    /// covered configuration).
    max_assoc: usize,
    /// Global LRU stack of line IDs, most recently used first.
    stack: Vec<u64>,
    /// Scratch: walk counts bucketed by matching low-order bit count.
    tcount: Vec<u64>,
    /// `hist[k][d]`: accesses whose per-set stack distance at `2^k`
    /// sets was `d` (`d == max_assoc` pools all larger distances).
    hist: Vec<Vec<u64>>,
    /// First-touch (cold) accesses — a miss everywhere.
    cold: u64,
    /// Total accesses.
    total: u64,
}

impl StackSim {
    /// Build an engine covering every configuration in `configs`
    /// (and any other configuration whose set count and associativity
    /// are dominated by theirs).
    ///
    /// # Panics
    ///
    /// Panics if `line` is zero or not a power of two, `configs` is
    /// empty, or some config has a different line size, an invalid
    /// geometry, or a non-power-of-two set count.
    pub fn new(line: usize, configs: &[CacheConfig]) -> Self {
        assert!(
            line.is_power_of_two(),
            "line size {line} must be a non-zero power of two"
        );
        assert!(!configs.is_empty(), "need at least one configuration");
        let mut kmax = 0u32;
        let mut max_assoc = 0usize;
        for c in configs {
            c.validate().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(c.line, line, "all configurations must share the line size");
            let sets = c.sets();
            assert!(
                sets.is_power_of_two(),
                "stack engine needs a power-of-two set count, got {sets}"
            );
            kmax = kmax.max(sets.trailing_zeros());
            max_assoc = max_assoc.max(c.assoc);
        }
        Self {
            line: line as u64,
            kmax,
            max_assoc,
            stack: Vec::new(),
            tcount: vec![0; kmax as usize + 1],
            hist: vec![vec![0; max_assoc + 1]; kmax as usize + 1],
            cold: 0,
            total: 0,
        }
    }

    /// The shared line size in bytes.
    pub fn line(&self) -> usize {
        self.line as usize
    }

    /// Total accesses recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// First-touch accesses (cold misses in every configuration).
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Record one byte-address access.
    pub fn access(&mut self, addr: u64) {
        let target = addr / self.line;
        self.total += 1;
        // walk the global stack top-down looking for the line,
        // bucketing everything passed by its matching low-bit count
        let mut found = None;
        for (i, &l) in self.stack.iter().enumerate() {
            if l == target {
                found = Some(i);
                break;
            }
            let t = (l ^ target).trailing_zeros().min(self.kmax) as usize;
            self.tcount[t] += 1;
        }
        match found {
            Some(i) => {
                // suffix sums: the per-set distance at 2^k sets counts
                // lines sharing >= k low bits
                let mut d = 0u64;
                for k in (0..=self.kmax as usize).rev() {
                    d += self.tcount[k];
                    self.tcount[k] = 0;
                    let bucket = (d as usize).min(self.max_assoc);
                    self.hist[k][bucket] += 1;
                }
                // move to top (single rotate, no remove/insert pair)
                self.stack[..=i].rotate_right(1);
            }
            None => {
                self.tcount.fill(0);
                self.cold += 1;
                self.stack.insert(0, target);
            }
        }
    }

    /// Record a batch of byte addresses in order (identical to calling
    /// [`StackSim::access`] per element).
    #[deprecated(
        since = "0.1.0",
        note = "use the unified access surface: `AccessSink::push_many`"
    )]
    pub fn access_many(&mut self, addrs: &[u64]) {
        crate::AccessSink::push_many(self, addrs);
    }

    /// Whether `config` is covered by this engine: same line size,
    /// power-of-two set count within `kmax`, associativity within the
    /// tracked resolution.
    pub fn covers(&self, config: &CacheConfig) -> bool {
        config.line as u64 == self.line && {
            let sets = config.sets();
            sets.is_power_of_two()
                && sets.trailing_zeros() <= self.kmax
                && config.assoc <= self.max_assoc
        }
    }

    /// Exact hit/miss counts the direct simulator would report for
    /// `config` on the trace recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not covered (see
    /// [`StackSim::covers`]).
    pub fn stats_for(&self, config: &CacheConfig) -> LevelStats {
        assert!(
            self.covers(config),
            "configuration {config:?} not covered by this stack engine \
             (line {}, kmax {}, max assoc {})",
            self.line,
            self.kmax,
            self.max_assoc
        );
        let k = config.sets().trailing_zeros() as usize;
        let hits: u64 = self.hist[k][..config.assoc].iter().sum();
        LevelStats {
            hits,
            misses: self.total - hits,
        }
    }

    /// Stall cycles a single-level [`crate::Hierarchy`] with level
    /// `config` and memory latency `mem_latency` would charge for this
    /// trace: `accesses · latency + misses · mem_latency`.
    pub fn cycles_for(&self, config: &CacheConfig, mem_latency: u64) -> u64 {
        let s = self.stats_for(config);
        s.accesses() * config.latency + s.misses * mem_latency
    }

    /// Reset the recorded trace.
    pub fn clear(&mut self) {
        self.stack.clear();
        self.tcount.fill(0);
        for h in &mut self.hist {
            h.fill(0);
        }
        self.cold = 0;
        self.total = 0;
    }
}

/// Replay `addrs` through a direct [`Cache`] per configuration — the
/// reference the stack engine is checked against, and the fallback for
/// geometries it does not cover.
pub fn direct_sweep(addrs: &[u64], configs: &[CacheConfig]) -> Vec<LevelStats> {
    configs
        .iter()
        .map(|&cfg| {
            let mut c = Cache::new(cfg);
            for &a in addrs {
                c.access(a);
            }
            c.stats()
        })
        .collect()
}

/// One stack pass over `addrs`, then derive the stats of every
/// configuration. All configurations must share a line size (see
/// [`StackSim::new`]).
pub fn stack_sweep(addrs: &[u64], configs: &[CacheConfig]) -> Vec<LevelStats> {
    let line = configs
        .first()
        .expect("need at least one configuration")
        .line;
    probe::add("memsim.stack_passes", 1);
    let mut sim = StackSim::new(line, configs);
    sim.push_many(addrs);
    configs.iter().map(|c| sim.stats_for(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(size: usize, line: usize, assoc: usize) -> CacheConfig {
        CacheConfig {
            size,
            line,
            assoc,
            latency: 0,
        }
    }

    #[test]
    fn matches_direct_on_a_small_trace() {
        let configs = [
            cfg(64, 16, 1),
            cfg(64, 16, 2),
            cfg(64, 16, 4), // fully associative
            cfg(256, 16, 2),
            cfg(1024, 16, 8),
        ];
        // a trace with reuse at several distances and set conflicts
        let addrs: Vec<u64> = [0, 16, 32, 0, 64, 128, 16, 0, 256, 0, 512, 1024, 0, 16]
            .iter()
            .map(|&a| a as u64)
            .collect();
        assert_eq!(
            stack_sweep(&addrs, &configs),
            direct_sweep(&addrs, &configs)
        );
    }

    #[test]
    fn totals_are_conserved() {
        let configs = [cfg(128, 32, 2), cfg(512, 32, 4)];
        let addrs: Vec<u64> = (0..200u64).map(|i| (i * 7919) % 2048).collect();
        let mut sim = StackSim::new(32, &configs);
        sim.push_many(&addrs);
        assert_eq!(sim.total(), 200);
        for c in &configs {
            let s = sim.stats_for(c);
            assert_eq!(s.accesses(), 200);
            assert!(s.misses >= sim.cold_misses());
        }
    }

    #[test]
    fn inclusion_within_the_family() {
        // the Mattson inclusion property: at a fixed set count, adding
        // ways never turns a hit into a miss (all three configs below
        // have 8 sets)
        let configs = [cfg(256, 16, 2), cfg(512, 16, 4), cfg(1024, 16, 8)];
        let addrs: Vec<u64> = (0..300u64).map(|i| (i * 31) % 1024).collect();
        let s = stack_sweep(&addrs, &configs);
        assert!(s[1].hits >= s[0].hits, "4 ways vs 2");
        assert!(s[2].hits >= s[1].hits, "8 ways vs 4");
    }

    #[test]
    fn clear_resets() {
        let configs = [cfg(64, 16, 2)];
        let mut sim = StackSim::new(16, &configs);
        sim.push_many(&[0, 16, 0]);
        sim.clear();
        assert_eq!(sim.total(), 0);
        assert_eq!(sim.stats_for(&configs[0]), LevelStats::default());
    }

    #[test]
    #[should_panic(expected = "share the line size")]
    fn mixed_line_sizes_rejected() {
        let _ = StackSim::new(16, &[cfg(64, 16, 2), cfg(128, 32, 2)]);
    }

    #[test]
    #[should_panic(expected = "power-of-two set count")]
    fn non_pow2_sets_rejected() {
        // 3 sets
        let _ = StackSim::new(16, &[cfg(96, 16, 2)]);
    }

    #[test]
    #[should_panic(expected = "not covered")]
    fn uncovered_query_rejected() {
        let sim = StackSim::new(16, &[cfg(64, 16, 2)]);
        let _ = sim.stats_for(&cfg(1024, 16, 8));
    }
}
