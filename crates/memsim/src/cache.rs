//! A single set-associative LRU cache level.

use std::fmt;

/// Geometry and cost of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Access latency in cycles (charged on every probe of this level).
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible by
    /// `line * assoc`, or line size not a power of two).
    pub fn sets(&self) -> usize {
        assert!(
            self.line.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.assoc >= 1, "associativity must be at least 1");
        assert_eq!(
            self.size % self.line,
            0,
            "cache size {} not divisible into {}-byte lines",
            self.size,
            self.line
        );
        let lines = self.size / self.line;
        assert_eq!(
            lines % self.assoc,
            0,
            "cache size {} not divisible into {}-way sets of {}-byte lines",
            self.size,
            self.assoc,
            self.line
        );
        lines / self.assoc
    }
}

/// Hit/miss counters for one level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Probes that found the line.
    pub hits: u64,
    /// Probes that missed.
    pub misses: u64,
}

impl LevelStats {
    /// Total probes.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (0 for no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use shackle_memsim::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig { size: 256, line: 64, assoc: 2, latency: 1 });
/// assert!(!c.access(0));   // cold miss
/// assert!(c.access(8));    // same 64-byte line
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// Per set: resident line tags, most recently used first.
    sets: Vec<Vec<u64>>,
    stats: LevelStats,
}

impl Cache {
    /// Build an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Self {
            config,
            sets: vec![Vec::with_capacity(config.assoc); sets],
            stats: LevelStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> LevelStats {
        self.stats
    }

    /// Reset counters and contents.
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = LevelStats::default();
    }

    /// Touch the byte at `addr`; returns whether it hit. On a miss the
    /// line is filled (evicting the LRU way if the set is full).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line as u64;
        let set = (line % self.sets.len() as u64) as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            ways.remove(pos);
            ways.insert(0, line);
            self.stats.hits += 1;
            true
        } else {
            if ways.len() == self.config.assoc {
                ways.pop();
            }
            ways.insert(0, line);
            self.stats.misses += 1;
            false
        }
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB {}-way {}B-line cache: {} hits, {} misses",
            self.config.size / 1024,
            self.config.assoc,
            self.config.line,
            self.stats.hits,
            self.stats.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 16-byte lines = 64 bytes
        Cache::new(CacheConfig {
            size: 64,
            line: 16,
            assoc: 2,
            latency: 1,
        })
    }

    #[test]
    fn spatial_locality_within_line() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(15));
        assert!(!c.access(16));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // set 0 holds lines 0, 2, 4, ... (even lines); fill 2 ways
        assert!(!c.access(0)); // line 0 → set 0
        assert!(!c.access(32)); // line 2 → set 0
        assert!(c.access(0)); // line 0 hits, becomes MRU
        assert!(!c.access(64)); // line 4 → set 0, evicts line 2 (LRU)
        assert!(c.access(0)); // line 0 still resident
        assert!(!c.access(32)); // line 2 was evicted
    }

    #[test]
    fn set_mapping_isolates() {
        let mut c = tiny();
        // lines 0 and 1 map to different sets; both fit
        assert!(!c.access(0));
        assert!(!c.access(16));
        assert!(c.access(0));
        assert!(c.access(16));
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        assert_eq!(c.stats().miss_ratio(), 0.5);
        c.clear();
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            size: 100,
            line: 16,
            assoc: 2,
            latency: 1,
        });
    }

    #[test]
    fn fully_associative_working_set() {
        // direct test: working set larger than capacity thrashes
        let mut c = Cache::new(CacheConfig {
            size: 128,
            line: 16,
            assoc: 8,
            latency: 1,
        });
        // 8 lines capacity (fully assoc); touch 9 lines round-robin twice
        for _ in 0..2 {
            for i in 0..9u64 {
                c.access(i * 16);
            }
        }
        // second round misses everything (LRU + sequential sweep)
        assert_eq!(c.stats().misses, 18);
    }
}
