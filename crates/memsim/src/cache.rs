//! A single set-associative LRU cache level.
//!
//! The hot path is a generation-stamp LRU over flat fixed-size way
//! arrays: each set owns `assoc` consecutive slots of a `tags` array
//! and a parallel `stamps` array; a probe scans the ways for the tag
//! (associativities are small, so this is a handful of comparisons over
//! one or two cache lines of simulator memory), a hit re-stamps the
//! way with a monotone access counter, and a miss refills the way with
//! the minimum stamp — which is exactly the least-recently-used way
//! (stamp `0` marks an empty way, so cold fills take empty ways first).
//! Set selection is a mask for power-of-two set counts and a modulo
//! otherwise. This replaces the original `Vec::remove`/`Vec::insert`
//! recency lists, which memmoved the set on every touch.

use std::fmt;

/// A rejected [`CacheConfig`] or [`crate::TlbConfig`] geometry.
///
/// Returned by the fallible constructors ([`CacheConfig::validate`],
/// [`Cache::try_new`], [`crate::Tlb::try_new`]); the panicking `new`
/// wrappers raise the same message via [`fmt::Display`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// Line size is zero or not a power of two.
    LineNotPowerOfTwo {
        /// The offending line size in bytes.
        line: usize,
    },
    /// Associativity is zero.
    ZeroAssociativity,
    /// Capacity is zero.
    ZeroSize,
    /// Capacity is not a whole number of lines.
    SizeNotLineMultiple {
        /// Capacity in bytes.
        size: usize,
        /// Line size in bytes.
        line: usize,
    },
    /// Line count is not a whole number of sets.
    SizeNotSetMultiple {
        /// Capacity in bytes.
        size: usize,
        /// Line size in bytes.
        line: usize,
        /// Associativity.
        assoc: usize,
    },
    /// TLB page size is zero or not a power of two.
    PageNotPowerOfTwo {
        /// The offending page size in bytes.
        page: usize,
    },
    /// TLB has no entries.
    NoTlbEntries,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::LineNotPowerOfTwo { line } => {
                write!(f, "line size {line} must be a non-zero power of two")
            }
            ConfigError::ZeroAssociativity => {
                write!(f, "associativity must be at least 1")
            }
            ConfigError::ZeroSize => write!(f, "cache size must be positive"),
            ConfigError::SizeNotLineMultiple { size, line } => {
                write!(f, "cache size {size} not divisible into {line}-byte lines")
            }
            ConfigError::SizeNotSetMultiple { size, line, assoc } => {
                write!(
                    f,
                    "cache size {size} not divisible into {assoc}-way sets of {line}-byte lines"
                )
            }
            ConfigError::PageNotPowerOfTwo { .. } => {
                write!(f, "page size must be a power of two")
            }
            ConfigError::NoTlbEntries => write!(f, "TLB needs at least one entry"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Geometry and cost of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Access latency in cycles (charged on every probe of this level).
    pub latency: u64,
}

impl CacheConfig {
    /// Validate the geometry, reporting the first inconsistency found:
    /// `line` zero or not a power of two, `assoc == 0`, or `size` zero
    /// or not divisible by `line * assoc` (which would make the set
    /// count zero or fractional).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.line.is_power_of_two() {
            return Err(ConfigError::LineNotPowerOfTwo { line: self.line });
        }
        if self.assoc < 1 {
            return Err(ConfigError::ZeroAssociativity);
        }
        if self.size == 0 {
            return Err(ConfigError::ZeroSize);
        }
        if !self.size.is_multiple_of(self.line) {
            return Err(ConfigError::SizeNotLineMultiple {
                size: self.size,
                line: self.line,
            });
        }
        if !(self.size / self.line).is_multiple_of(self.assoc) {
            return Err(ConfigError::SizeNotSetMultiple {
                size: self.size,
                line: self.line,
                assoc: self.assoc,
            });
        }
        // note: `size > 0` plus both divisibility checks imply
        // `lines / assoc >= 1`, so the set count is always positive here
        Ok(())
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see
    /// [`CacheConfig::validate`]).
    pub fn sets(&self) -> usize {
        self.validate().unwrap_or_else(|e| panic!("{e}"));
        self.size / self.line / self.assoc
    }
}

/// Hit/miss counters for one level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Probes that found the line.
    pub hits: u64,
    /// Probes that missed.
    pub misses: u64,
}

impl LevelStats {
    /// Total probes.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (0 for no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use shackle_memsim::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig { size: 256, line: 64, assoc: 2, latency: 1 });
/// assert!(!c.access(0));   // cold miss
/// assert!(c.access(8));    // same 64-byte line
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// Number of sets (`config.sets()`, cached).
    sets: usize,
    /// `sets - 1` when the set count is a power of two, else `0` with
    /// [`Cache::set_shift`] unused — see [`Cache::set_of`].
    set_mask: u64,
    /// Whether set selection can use the mask.
    pow2_sets: bool,
    /// Way tags, `assoc` consecutive slots per set.
    tags: Box<[u64]>,
    /// Parallel per-way recency stamps; `0` = empty way.
    stamps: Box<[u64]>,
    /// Monotone access counter (next stamp to hand out).
    tick: u64,
    stats: LevelStats,
}

impl Cache {
    /// Build an empty cache, rejecting inconsistent geometries (zero
    /// or non-power-of-two `line`, `assoc == 0`, or `size` not
    /// divisible by `line * assoc`) — see [`CacheConfig::validate`].
    pub fn try_new(config: CacheConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let sets = config.size / config.line / config.assoc;
        let slots = sets * config.assoc;
        Ok(Self {
            config,
            sets,
            set_mask: sets as u64 - 1,
            pow2_sets: sets.is_power_of_two(),
            tags: vec![0; slots].into_boxed_slice(),
            stamps: vec![0; slots].into_boxed_slice(),
            tick: 1,
            stats: LevelStats::default(),
        })
    }

    /// Build an empty cache.
    ///
    /// Thin wrapper over [`Cache::try_new`] for the common
    /// statically-known-valid case.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if the configuration is
    /// inconsistent.
    pub fn new(config: CacheConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> LevelStats {
        self.stats
    }

    /// Reset counters and contents.
    pub fn clear(&mut self) {
        self.stamps.fill(0);
        self.tick = 1;
        self.stats = LevelStats::default();
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        if self.pow2_sets {
            (line & self.set_mask) as usize
        } else {
            (line % self.sets as u64) as usize
        }
    }

    /// Touch the byte at `addr`; returns whether it hit. On a miss the
    /// line is filled (evicting the LRU way if the set is full).
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line as u64;
        let set = self.set_of(line);
        let base = set * self.config.assoc;
        let ways = &mut self.tags[base..base + self.config.assoc];
        let stamps = &mut self.stamps[base..base + self.config.assoc];
        let stamp = self.tick;
        self.tick += 1;
        // LRU victim doubles as the hit scan's fallback: empty ways
        // carry stamp 0 and are therefore chosen before any filled way.
        let mut victim = 0;
        let mut victim_stamp = u64::MAX;
        for (i, (&tag, st)) in ways.iter().zip(stamps.iter_mut()).enumerate() {
            if *st != 0 && tag == line {
                *st = stamp;
                self.stats.hits += 1;
                return true;
            }
            if *st < victim_stamp {
                victim_stamp = *st;
                victim = i;
            }
        }
        ways[victim] = line;
        stamps[victim] = stamp;
        self.stats.misses += 1;
        false
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB {}-way {}B-line cache: {} hits, {} misses",
            self.config.size / 1024,
            self.config.assoc,
            self.config.line,
            self.stats.hits,
            self.stats.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 16-byte lines = 64 bytes
        Cache::new(CacheConfig {
            size: 64,
            line: 16,
            assoc: 2,
            latency: 1,
        })
    }

    #[test]
    fn spatial_locality_within_line() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(15));
        assert!(!c.access(16));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // set 0 holds lines 0, 2, 4, ... (even lines); fill 2 ways
        assert!(!c.access(0)); // line 0 → set 0
        assert!(!c.access(32)); // line 2 → set 0
        assert!(c.access(0)); // line 0 hits, becomes MRU
        assert!(!c.access(64)); // line 4 → set 0, evicts line 2 (LRU)
        assert!(c.access(0)); // line 0 still resident
        assert!(!c.access(32)); // line 2 was evicted
    }

    #[test]
    fn set_mapping_isolates() {
        let mut c = tiny();
        // lines 0 and 1 map to different sets; both fit
        assert!(!c.access(0));
        assert!(!c.access(16));
        assert!(c.access(0));
        assert!(c.access(16));
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        assert_eq!(c.stats().miss_ratio(), 0.5);
        c.clear();
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            size: 100,
            line: 16,
            assoc: 2,
            latency: 1,
        });
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn zero_line_rejected() {
        let _ = Cache::new(CacheConfig {
            size: 64,
            line: 0,
            assoc: 2,
            latency: 1,
        });
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_rejected() {
        let _ = Cache::new(CacheConfig {
            size: 96,
            line: 24,
            assoc: 2,
            latency: 1,
        });
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn zero_assoc_rejected() {
        let _ = Cache::new(CacheConfig {
            size: 64,
            line: 16,
            assoc: 0,
            latency: 1,
        });
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        // the seed computed sets == 0 here and divided by zero on the
        // first access; now it is rejected at construction
        let _ = Cache::new(CacheConfig {
            size: 0,
            line: 16,
            assoc: 2,
            latency: 1,
        });
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn undersized_cache_rejected() {
        // one line total cannot host a 2-way set
        let _ = Cache::new(CacheConfig {
            size: 16,
            line: 16,
            assoc: 2,
            latency: 1,
        });
    }

    #[test]
    fn non_power_of_two_set_count_still_works() {
        // 3 sets: falls back to modulo set selection
        let mut c = Cache::new(CacheConfig {
            size: 96,
            line: 16,
            assoc: 2,
            latency: 1,
        });
        assert_eq!(c.config().sets(), 3);
        assert!(!c.access(0)); // line 0 → set 0
        assert!(!c.access(48)); // line 3 → set 0
        assert!(!c.access(96)); // line 6 → set 0, evicts line 0
        assert!(!c.access(0));
        assert!(c.access(96 + 8)); // line 6 re-hit after line-0 refill
    }

    #[test]
    fn fully_associative_working_set() {
        // direct test: working set larger than capacity thrashes
        let mut c = Cache::new(CacheConfig {
            size: 128,
            line: 16,
            assoc: 8,
            latency: 1,
        });
        // 8 lines capacity (fully assoc); touch 9 lines round-robin twice
        for _ in 0..2 {
            for i in 0..9u64 {
                c.access(i * 16);
            }
        }
        // second round misses everything (LRU + sequential sweep)
        assert_eq!(c.stats().misses, 18);
    }

    #[test]
    fn clear_empties_contents() {
        let mut c = tiny();
        c.access(0);
        c.clear();
        assert!(!c.access(0), "cleared cache must cold-miss");
    }

    fn reject(size: usize, line: usize, assoc: usize) -> ConfigError {
        let config = CacheConfig {
            size,
            line,
            assoc,
            latency: 1,
        };
        let err = config.validate().expect_err("geometry must be rejected");
        // try_new reports the identical error
        assert_eq!(Cache::try_new(config).expect_err("same rejection"), err);
        err
    }

    #[test]
    fn try_new_rejects_each_inconsistency() {
        assert_eq!(reject(64, 0, 2), ConfigError::LineNotPowerOfTwo { line: 0 });
        assert_eq!(
            reject(96, 24, 2),
            ConfigError::LineNotPowerOfTwo { line: 24 }
        );
        assert_eq!(reject(64, 16, 0), ConfigError::ZeroAssociativity);
        assert_eq!(reject(0, 16, 2), ConfigError::ZeroSize);
        assert_eq!(
            reject(100, 16, 2),
            ConfigError::SizeNotLineMultiple {
                size: 100,
                line: 16
            }
        );
        assert_eq!(
            reject(16, 16, 2),
            ConfigError::SizeNotSetMultiple {
                size: 16,
                line: 16,
                assoc: 2
            }
        );
    }

    #[test]
    fn try_new_accepts_valid_geometry() {
        let config = CacheConfig {
            size: 64,
            line: 16,
            assoc: 2,
            latency: 1,
        };
        assert_eq!(config.validate(), Ok(()));
        let mut c = Cache::try_new(config).expect("valid geometry");
        assert!(!c.access(0));
    }

    #[test]
    fn config_error_messages_match_the_panics() {
        // the panicking wrappers raise these exact strings; pin them so
        // downstream `should_panic(expected = ...)` tests stay honest
        assert_eq!(
            ConfigError::LineNotPowerOfTwo { line: 24 }.to_string(),
            "line size 24 must be a non-zero power of two"
        );
        assert_eq!(
            ConfigError::ZeroAssociativity.to_string(),
            "associativity must be at least 1"
        );
        assert_eq!(
            ConfigError::ZeroSize.to_string(),
            "cache size must be positive"
        );
        assert_eq!(
            ConfigError::SizeNotLineMultiple {
                size: 100,
                line: 16
            }
            .to_string(),
            "cache size 100 not divisible into 16-byte lines"
        );
        assert_eq!(
            ConfigError::SizeNotSetMultiple {
                size: 16,
                line: 16,
                assoc: 2
            }
            .to_string(),
            "cache size 16 not divisible into 2-way sets of 16-byte lines"
        );
        assert_eq!(
            ConfigError::PageNotPowerOfTwo { page: 100 }.to_string(),
            "page size must be a power of two"
        );
        assert_eq!(
            ConfigError::NoTlbEntries.to_string(),
            "TLB needs at least one entry"
        );
    }
}
