//! Multi-level cache simulator and memory-hierarchy performance model.
//!
//! Part of the `data-shackle` workspace (PLDI 1997 "Data-centric
//! Multi-level Blocking" reproduction). The paper's evaluation ran on an
//! IBM SP-2 thin node; this simulator is the workspace's substitute for
//! that machine (see DESIGN.md §3): execution traces from the
//! interpreter are replayed against configurable set-associative LRU
//! hierarchies ([`Hierarchy::sp2_thin_node`],
//! [`Hierarchy::two_level`]), and [`PerfModel`] converts flop counts and
//! memory cycles into the MFLOPS numbers the paper plots.
//!
//! Two engines share the address-level semantics:
//!
//! * the **direct** simulator ([`Cache`], [`Hierarchy`]) replays a
//!   trace through one concrete geometry — generation-stamp LRU over
//!   flat way arrays, the only engine for coupled multi-level
//!   hierarchies and TLBs;
//! * the **stack** engine ([`StackSim`]) computes per-set LRU stack
//!   distances in one pass and derives exact, bit-identical hit/miss
//!   counts for *every* power-of-two-set configuration of a line size
//!   at once — the engine behind multi-configuration sweeps.
//!
//! Every consumer of an address stream — both engines, the TLB, whole
//! hierarchies — implements the unified [`AccessSink`] trait, so trace
//! producers are written once and replay anywhere. The crate is
//! deliberately address-based and depends only on the std-only
//! `shackle-probe` instrumentation layer; the adapter that turns
//! interpreter accesses into addresses lives in `shackle-kernels`.
//!
//! # Example
//!
//! ```
//! use shackle_memsim::{Hierarchy, PerfModel};
//! let mut h = Hierarchy::sp2_thin_node();
//! for addr in (0..1024u64).step_by(8) {
//!     h.access(addr);
//! }
//! // sequential doubles: 16 elements per 128-byte line hit after each
//! // cold miss
//! let s = h.level_stats()[0];
//! assert_eq!(s.misses, 8);
//! assert_eq!(s.hits, 120);
//! let mflops = PerfModel::sp2().mflops(256, h.cycles());
//! assert!(mflops > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod sink;
mod stack;
mod tlb;
mod truth;

pub use cache::{Cache, CacheConfig, ConfigError, LevelStats};
pub use hierarchy::{Hierarchy, PerfModel};
pub use sink::AccessSink;
pub use stack::{direct_sweep, stack_sweep, StackSim};
pub use tlb::{Tlb, TlbConfig};
pub use truth::{ground_truth, GroundTruth};
