//! Multi-level memory hierarchies and the MFLOPS performance model.

use crate::{Cache, CacheConfig, LevelStats, Tlb, TlbConfig};

/// A stack of caches backed by main memory.
///
/// Probing walks from the first (fastest) level down; a miss at every
/// level costs the memory latency on top of all probe latencies, and
/// the line is filled into every level (inclusive hierarchy).
#[derive(Clone, Debug)]
pub struct Hierarchy {
    levels: Vec<Cache>,
    tlb: Option<Tlb>,
    mem_latency: u64,
    cycles: u64,
    /// Cycles spent in page-table walks — included in `cycles`, tracked
    /// separately so reports can attribute translation stalls.
    tlb_walk_cycles: u64,
    accesses: u64,
}

impl Hierarchy {
    /// Build a hierarchy from level configurations (fastest first) and a
    /// main-memory latency.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn new(configs: &[CacheConfig], mem_latency: u64) -> Self {
        assert!(!configs.is_empty(), "need at least one cache level");
        Self {
            levels: configs.iter().map(|c| Cache::new(*c)).collect(),
            tlb: None,
            mem_latency,
            cycles: 0,
            tlb_walk_cycles: 0,
            accesses: 0,
        }
    }

    /// Attach a TLB: every access is translated first, charging the
    /// TLB's miss penalty on translation misses. Returns `self` for
    /// chaining onto the presets.
    pub fn with_tlb(mut self, config: TlbConfig) -> Self {
        self.tlb = Some(Tlb::new(config));
        self
    }

    /// The attached TLB, if any.
    pub fn tlb(&self) -> Option<&Tlb> {
        self.tlb.as_ref()
    }

    /// Translation hit/miss counters, if a TLB is attached — the
    /// translation analogue of [`Hierarchy::level_stats`], so sweeps
    /// can surface TLB misses next to cache misses.
    pub fn tlb_stats(&self) -> Option<LevelStats> {
        self.tlb.as_ref().map(Tlb::stats)
    }

    /// Cycles spent in page-table walks so far (a component of
    /// [`Hierarchy::cycles`]; zero without a TLB).
    pub fn tlb_walk_cycles(&self) -> u64 {
        self.tlb_walk_cycles
    }

    /// An IBM SP-2 thin-node-like single-level hierarchy: 64 KB,
    /// 4-way, 128-byte lines (the machine of the paper's §7), 60-cycle
    /// memory. Cache *hits* are charged zero cycles — the POWER2's
    /// pipelined FXU/FPU overlap them with computation, so hierarchy
    /// cycles represent pure stall time.
    pub fn sp2_thin_node() -> Self {
        Self::new(
            &[CacheConfig {
                size: 64 * 1024,
                line: 128,
                assoc: 4,
                latency: 0,
            }],
            60,
        )
    }

    /// A two-level hierarchy for the multi-level blocking experiments
    /// (§6.3 / Figure 10): a small fast L1 over a larger L2.
    pub fn two_level() -> Self {
        Self::new(
            &[
                CacheConfig {
                    size: 16 * 1024,
                    line: 64,
                    assoc: 2,
                    latency: 0,
                },
                CacheConfig {
                    size: 128 * 1024,
                    line: 128,
                    assoc: 8,
                    latency: 10,
                },
            ],
            80,
        )
    }

    /// Touch the byte at `addr`, updating per-level stats and the cycle
    /// count. Returns the index of the level that hit (`levels.len()`
    /// means main memory).
    pub fn access(&mut self, addr: u64) -> usize {
        self.accesses += 1;
        if let Some(tlb) = &mut self.tlb {
            if !tlb.access(addr) {
                self.cycles += tlb.config().miss_penalty;
                self.tlb_walk_cycles += tlb.config().miss_penalty;
            }
        }
        for (i, level) in self.levels.iter_mut().enumerate() {
            self.cycles += level.config().latency;
            if level.access(addr) {
                // fill is modeled by Cache::access itself
                return i;
            }
        }
        self.cycles += self.mem_latency;
        self.levels.len()
    }

    /// Touch a batch of byte addresses in order. Equivalent to calling
    /// [`Hierarchy::access`] per address (identical stats and cycles).
    #[deprecated(
        since = "0.1.0",
        note = "use the unified access surface: `AccessSink::push_many`"
    )]
    pub fn access_many(&mut self, addrs: &[u64]) {
        crate::AccessSink::push_many(self, addrs);
    }

    /// Per-level statistics, fastest first.
    pub fn level_stats(&self) -> Vec<LevelStats> {
        self.levels.iter().map(Cache::stats).collect()
    }

    /// Total memory-system cycles charged so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total element accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Reset contents, stats and cycles.
    pub fn clear(&mut self) {
        for l in &mut self.levels {
            l.clear();
        }
        if let Some(t) = &mut self.tlb {
            t.clear();
        }
        self.cycles = 0;
        self.tlb_walk_cycles = 0;
        self.accesses = 0;
    }

    /// The configured levels.
    pub fn levels(&self) -> &[Cache] {
        &self.levels
    }
}

/// Converts an execution's flop count and a hierarchy's memory cycles
/// into an MFLOPS figure — the y-axis of the paper's Figures 11–15.
///
/// The model charges `flop_cycles` per floating-point operation, overlaps
/// nothing, and divides by the clock. It is deliberately simple: the
/// reproduction targets the *shape* of the curves (who wins, where the
/// crossovers fall), which is dominated by the memory term.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfModel {
    /// Cycles per flop (e.g. 0.5 for a dual-FPU POWER2).
    pub flop_cycles: f64,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        Self::sp2()
    }
}

impl PerfModel {
    /// An SP-2-like model: 66.7 MHz POWER2, two FPUs.
    pub fn sp2() -> Self {
        Self {
            flop_cycles: 0.5,
            clock_mhz: 66.7,
        }
    }

    /// MFLOPS achieved for `flops` operations with the given memory
    /// cycles.
    pub fn mflops(&self, flops: u64, mem_cycles: u64) -> f64 {
        let cycles = flops as f64 * self.flop_cycles + mem_cycles as f64;
        if cycles == 0.0 {
            return 0.0;
        }
        let seconds = cycles / (self.clock_mhz * 1e6);
        flops as f64 / seconds / 1e6
    }

    /// Peak MFLOPS of the model (no memory stalls).
    pub fn peak_mflops(&self) -> f64 {
        self.clock_mhz / self.flop_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusive_fill_and_hit_levels() {
        let mut h = Hierarchy::two_level();
        assert_eq!(h.access(0), 2); // memory
        assert_eq!(h.access(0), 0); // L1
                                    // evict from L1 by sweeping > 16KB within one set… simpler:
                                    // touch a distinct far address, then the original: L1 may still
                                    // hold it; instead verify stats add up
        let s = h.level_stats();
        assert_eq!(s[0].accesses(), 2);
        assert_eq!(s[1].accesses(), 1); // only the first probe reached L2
    }

    #[test]
    fn cycles_accumulate() {
        let mut h = Hierarchy::new(
            &[CacheConfig {
                size: 1024,
                line: 64,
                assoc: 1,
                latency: 2,
            }],
            50,
        );
        h.access(0); // miss: 2 + 50
        h.access(0); // hit: 2
        assert_eq!(h.cycles(), 54);
        h.clear();
        assert_eq!(h.cycles(), 0);
    }

    #[test]
    fn working_set_effect() {
        // streaming over 2x capacity misses every line each pass;
        // a small working set hits after the first pass
        let cfg = CacheConfig {
            size: 4096,
            line: 64,
            assoc: 4,
            latency: 1,
        };
        let mut big = Hierarchy::new(&[cfg], 10);
        for _ in 0..3 {
            for a in (0..8192u64).step_by(64) {
                big.access(a);
            }
        }
        let mut small = Hierarchy::new(&[cfg], 10);
        for _ in 0..3 {
            for a in (0..2048u64).step_by(64) {
                small.access(a);
            }
        }
        assert!(small.level_stats()[0].miss_ratio() < big.level_stats()[0].miss_ratio());
    }

    #[test]
    fn mflops_model_sanity() {
        let m = PerfModel::sp2();
        assert!((m.peak_mflops() - 133.4).abs() < 0.1);
        // memory-bound: many cycles, few flops → low MFLOPS
        assert!(m.mflops(1000, 1_000_000) < 1.0);
        // compute-bound approaches peak
        assert!(m.mflops(1_000_000, 0) > 130.0);
        assert_eq!(m.mflops(0, 0), 0.0);
    }

    #[test]
    fn tlb_attachment_charges_walks() {
        let cfg = CacheConfig {
            size: 4096,
            line: 64,
            assoc: 4,
            latency: 0,
        };
        let mut h = Hierarchy::new(&[cfg], 10).with_tlb(crate::TlbConfig {
            page: 4096,
            entries: 2,
            miss_penalty: 30,
        });
        // touch 3 pages round-robin twice: every access TLB-misses
        for _ in 0..2 {
            for p in 0..3u64 {
                h.access(p * 4096);
            }
        }
        let t = h.tlb().unwrap();
        assert_eq!(t.misses(), 6);
        // cycles include 6 walks + cache behaviour
        assert!(h.cycles() >= 6 * 30);
        h.clear();
        assert_eq!(h.tlb().unwrap().misses(), 0);
    }

    #[test]
    fn sp2_page_walk_cost_is_pinned() {
        // the POWER2-like TLB charges exactly 30 cycles per walk; on
        // the SP-2 preset (zero-latency L1 hits) a page-strided sweep
        // larger than the TLB separates the cycle components exactly:
        // every access TLB-misses, and cache behaviour is independent
        let tlb_cfg = crate::TlbConfig::power2_like();
        assert_eq!(tlb_cfg.miss_penalty, 30, "SP-2 page-walk cost");
        let mut h = Hierarchy::sp2_thin_node().with_tlb(tlb_cfg);
        let pages = tlb_cfg.entries as u64 + 1;
        for _ in 0..2 {
            for p in 0..pages {
                h.access(p * tlb_cfg.page as u64);
            }
        }
        let t = h.tlb_stats().expect("TLB attached");
        assert_eq!(t.misses, 2 * pages, "LRU thrash on a sweep > entries");
        assert_eq!(t.hits, 0);
        assert_eq!(h.tlb_walk_cycles(), t.misses * 30);
        // total cycles decompose exactly into walks + memory fills
        // (L1 hits cost zero on this preset)
        let cache_misses = h.level_stats()[0].misses;
        assert_eq!(h.cycles(), t.misses * 30 + cache_misses * 60);
        h.clear();
        assert_eq!(h.tlb_walk_cycles(), 0);
        assert_eq!(h.tlb_stats().unwrap(), crate::LevelStats::default());
    }

    #[test]
    fn sp2_preset_shape() {
        let h = Hierarchy::sp2_thin_node();
        assert_eq!(h.levels().len(), 1);
        assert_eq!(h.levels()[0].config().size, 64 * 1024);
        assert_eq!(h.levels()[0].config().line, 128);
    }
}
