//! Ground-truth measurement: one call that builds a fresh
//! [`Hierarchy`], lets the caller replay an access stream into it, and
//! returns the exact per-level statistics.
//!
//! This is the canonical "exact score" of the workspace's two-phase
//! search (`shackle_core::search::two_phase`): the analytical model
//! (`shackle-model`) ranks thousands of candidates, and the top-K
//! survivors are re-scored against [`ground_truth`]. Keeping the entry
//! point here — address-based, producer-agnostic — means benchmarks,
//! differential tests and the model-calibration harness all measure
//! through the same door.

use crate::{CacheConfig, Hierarchy, LevelStats};

/// Exact simulation result for one access stream on one hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroundTruth {
    /// Per-level statistics, fastest level first.
    pub levels: Vec<LevelStats>,
    /// Total memory-system cycles under the hierarchy's accounting.
    pub cycles: u64,
    /// Accesses presented to the first level.
    pub accesses: u64,
}

impl GroundTruth {
    /// Misses at the last (largest) level: the traffic to memory.
    pub fn memory_misses(&self) -> u64 {
        self.levels.last().map_or(0, |l| l.misses)
    }
}

/// Measure an access stream exactly: build a [`Hierarchy`] from
/// `levels` and `mem_latency`, hand it to `feed` (which replays the
/// stream — e.g. the interpreter's trace bridge), and collect the
/// statistics.
///
/// # Examples
///
/// ```
/// use shackle_memsim::{ground_truth, CacheConfig};
/// let probe = CacheConfig { size: 1024, line: 64, assoc: 2, latency: 1 };
/// let t = ground_truth(&[probe], 50, |h| {
///     for addr in (0..2048u64).step_by(8) {
///         h.access(addr);
///     }
/// });
/// assert_eq!(t.accesses, 256);
/// assert_eq!(t.levels[0].misses, 32); // cold misses, one per line
/// assert_eq!(t.cycles, 256 + 32 * 50);
/// ```
pub fn ground_truth(
    levels: &[CacheConfig],
    mem_latency: u64,
    feed: impl FnOnce(&mut Hierarchy),
) -> GroundTruth {
    let mut h = Hierarchy::new(levels, mem_latency);
    feed(&mut h);
    GroundTruth {
        levels: h.level_stats(),
        cycles: h.cycles(),
        accesses: h.accesses(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_matches_manual_hierarchy() {
        let cfg = CacheConfig {
            size: 512,
            line: 64,
            assoc: 1,
            latency: 2,
        };
        let addrs: Vec<u64> = (0..128).map(|i| (i * 40) % 4096).collect();
        let t = ground_truth(&[cfg], 30, |h| {
            crate::AccessSink::push_many(h, &addrs);
        });
        let mut h = Hierarchy::new(&[cfg], 30);
        crate::AccessSink::push_many(&mut h, &addrs);
        assert_eq!(t.levels, h.level_stats());
        assert_eq!(t.cycles, h.cycles());
        assert_eq!(t.accesses, 128);
        assert_eq!(t.memory_misses(), h.level_stats()[0].misses);
    }

    #[test]
    fn empty_stream_is_all_zeroes() {
        let cfg = CacheConfig {
            size: 512,
            line: 64,
            assoc: 1,
            latency: 2,
        };
        let t = ground_truth(&[cfg], 30, |_| {});
        assert_eq!(t.accesses, 0);
        assert_eq!(t.cycles, 0);
        assert_eq!(t.memory_misses(), 0);
    }
}
