//! Property tests for the cache simulator: LRU inclusion, determinism,
//! and agreement with a naive reference model.

use proptest::prelude::*;
use shackle_memsim::{Cache, CacheConfig, Hierarchy};

/// A naive LRU model: per set, a vector of tags in recency order.
struct RefModel {
    sets: Vec<Vec<u64>>,
    line: u64,
    assoc: usize,
}

impl RefModel {
    fn new(cfg: CacheConfig) -> Self {
        Self {
            sets: vec![Vec::new(); cfg.sets()],
            line: cfg.line as u64,
            assoc: cfg.assoc,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let tag = addr / self.line;
        let set = (tag % self.sets.len() as u64) as usize;
        let s = &mut self.sets[set];
        if let Some(i) = s.iter().position(|&t| t == tag) {
            s.remove(i);
            s.insert(0, tag);
            true
        } else {
            if s.len() == self.assoc {
                s.pop();
            }
            s.insert(0, tag);
            false
        }
    }
}

fn trace() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..4096, 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The production cache agrees with the naive model access by
    /// access.
    #[test]
    fn matches_reference_model(addrs in trace()) {
        let cfg = CacheConfig { size: 512, line: 32, assoc: 2, latency: 1 };
        let mut cache = Cache::new(cfg);
        let mut reference = RefModel::new(cfg);
        for &a in &addrs {
            prop_assert_eq!(cache.access(a), reference.access(a));
        }
    }

    /// LRU inclusion: doubling associativity (same set count) never
    /// turns a hit into a miss.
    #[test]
    fn more_ways_never_hurt(addrs in trace()) {
        let small = CacheConfig { size: 512, line: 32, assoc: 2, latency: 1 };
        let big = CacheConfig { size: 1024, line: 32, assoc: 4, latency: 1 };
        assert_eq!(small.sets(), big.sets());
        let mut c1 = Cache::new(small);
        let mut c2 = Cache::new(big);
        for &a in &addrs {
            let h1 = c1.access(a);
            let h2 = c2.access(a);
            prop_assert!(!h1 || h2, "hit in small but miss in big at {a}");
        }
    }

    /// Replays are deterministic, and hierarchy counters are conserved:
    /// accesses at level k+1 equal misses at level k.
    #[test]
    fn hierarchy_conservation(addrs in trace()) {
        let cfgs = [
            CacheConfig { size: 256, line: 32, assoc: 2, latency: 1 },
            CacheConfig { size: 1024, line: 64, assoc: 4, latency: 10 },
        ];
        let mut h = Hierarchy::new(&cfgs, 50);
        for &a in &addrs {
            h.access(a);
        }
        let stats = h.level_stats();
        prop_assert_eq!(stats[0].accesses(), addrs.len() as u64);
        prop_assert_eq!(stats[1].accesses(), stats[0].misses);
        // cycles formula: per-level probe latencies + memory on full miss
        let expect = stats[0].accesses() * cfgs[0].latency
            + stats[1].accesses() * cfgs[1].latency
            + stats[1].misses * 50;
        prop_assert_eq!(h.cycles(), expect);
        // determinism
        let mut h2 = Hierarchy::new(&cfgs, 50);
        for &a in &addrs {
            h2.access(a);
        }
        prop_assert_eq!(h2.cycles(), h.cycles());
    }

    /// A working set that fits is eventually all hits.
    #[test]
    fn resident_working_set_hits(start in 0u64..1000) {
        let cfg = CacheConfig { size: 4096, line: 64, assoc: 4, latency: 1 };
        let mut c = Cache::new(cfg);
        let lines: Vec<u64> = (0..32).map(|i| (start + i) * 64).collect();
        for &a in &lines {
            c.access(a);
        }
        for &a in &lines {
            prop_assert!(c.access(a), "resident line {a} missed");
        }
    }
}
