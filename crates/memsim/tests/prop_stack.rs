//! Differential property tests: the single-pass Mattson stack engine
//! must produce bit-identical hit/miss counts to the direct LRU
//! simulator for random traces across random configuration families.

use proptest::prelude::*;
use shackle_memsim::{direct_sweep, stack_sweep, AccessSink, Cache, CacheConfig, StackSim};

fn trace() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..16384, 1..500)
}

/// A random configuration family sharing one line size: power-of-two
/// sets (the stack engine's domain), associativities 1..=8.
fn config_family() -> impl Strategy<Value = (usize, Vec<CacheConfig>)> {
    (
        0usize..3,
        prop::collection::vec((0u32..6, 1usize..=8), 1..6),
    )
        .prop_map(|(line_sel, specs)| {
            let line = 16usize << line_sel; // 16, 32, 64
            let cfgs = specs
                .into_iter()
                .map(|(k, assoc)| CacheConfig {
                    size: (1usize << k) * assoc * line,
                    line,
                    assoc,
                    latency: 0,
                })
                .collect();
            (line, cfgs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stack-distance counts equal direct LRU simulation, config by
    /// config, for every random (trace, family) pair.
    #[test]
    fn stack_matches_direct((line, cfgs) in config_family(), addrs in trace()) {
        let _ = line;
        let stack = stack_sweep(&addrs, &cfgs);
        let direct = direct_sweep(&addrs, &cfgs);
        prop_assert_eq!(stack, direct);
    }

    /// Incremental queries agree too: stats may be read mid-trace and
    /// must match a direct cache replay of the prefix.
    #[test]
    fn prefix_queries_match((line, cfgs) in config_family(), addrs in trace()) {
        let mut sim = StackSim::new(line, &cfgs);
        let mut caches: Vec<Cache> = cfgs.iter().map(|&c| Cache::new(c)).collect();
        let cut = addrs.len() / 2;
        for &a in &addrs[..cut] {
            sim.access(a);
            for c in &mut caches {
                c.access(a);
            }
        }
        for (cfg, c) in cfgs.iter().zip(&caches) {
            prop_assert_eq!(sim.stats_for(cfg), c.stats());
        }
        for &a in &addrs[cut..] {
            sim.access(a);
            for c in &mut caches {
                c.access(a);
            }
        }
        for (cfg, c) in cfgs.iter().zip(&caches) {
            prop_assert_eq!(sim.stats_for(cfg), c.stats());
        }
    }

    /// Conservation: every configuration accounts for every access, and
    /// cold misses are a lower bound on misses everywhere.
    #[test]
    fn totals_conserved((line, cfgs) in config_family(), addrs in trace()) {
        let mut sim = StackSim::new(line, &cfgs);
        sim.push_many(&addrs);
        prop_assert_eq!(sim.total(), addrs.len() as u64);
        for c in &cfgs {
            let s = sim.stats_for(c);
            prop_assert_eq!(s.accesses(), addrs.len() as u64);
            prop_assert!(s.misses >= sim.cold_misses());
        }
    }

    /// The Mattson inclusion property on the derived counts: at any
    /// fixed set count, more ways never mean fewer hits.
    #[test]
    fn more_ways_never_hurt_derived(k in 0u32..5, addrs in trace()) {
        let line = 32usize;
        let cfgs: Vec<CacheConfig> = (1usize..=8)
            .map(|assoc| CacheConfig {
                size: (1usize << k) * assoc * line,
                line,
                assoc,
                latency: 0,
            })
            .collect();
        let stats = stack_sweep(&addrs, &cfgs);
        for w in stats.windows(2) {
            prop_assert!(w[1].hits >= w[0].hits);
        }
    }

    /// `clear` fully resets the engine: a cleared replay equals a fresh
    /// one.
    #[test]
    fn clear_is_fresh((line, cfgs) in config_family(), addrs in trace()) {
        let mut sim = StackSim::new(line, &cfgs);
        sim.push_many(&addrs);
        sim.clear();
        sim.push_many(&addrs);
        let mut fresh = StackSim::new(line, &cfgs);
        fresh.push_many(&addrs);
        for c in &cfgs {
            prop_assert_eq!(sim.stats_for(c), fresh.stats_for(c));
        }
    }
}
