//! Benchmark harness: regenerates every figure of the paper's
//! evaluation (§7, Figures 10–15).
//!
//! Each `figure*` function runs the relevant programs — input code and
//! shackled code through the IR interpreter with traced memory accesses,
//! hand-written baselines through their traced duplicates — against the
//! simulated SP-2-like memory hierarchy, and converts (flops, memory
//! cycles) to MFLOPS with the calibrated [`model`]. The `src/bin/figure*`
//! binaries print the series; `EXPERIMENTS.md` records paper-vs-measured
//! for each.
//!
//! Absolute MFLOPS are not expected to match a 1997 POWER2; the claims
//! under test are the *shapes*: orderings of the curves, rough ratios,
//! and crossover locations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use shackle_exec::ExecStats;
use shackle_ir::Program;
use shackle_kernels::shackles;
use shackle_kernels::trace::trace_execution;
use shackle_memsim::{Hierarchy, PerfModel};
use std::collections::BTreeMap;

/// Deterministic parallel sweeps (re-exported from `shackle_core`).
///
/// The index-slotted scoped-thread map lives in [`shackle_core::par`]
/// so the compile-time search and the figure sweeps share one
/// implementation; `SHACKLE_THREADS` controls both.
pub use shackle_core::par;

pub mod history;
pub mod memsweep;
pub mod modelperf;
pub mod prelude;
pub mod report;
pub mod searchperf;
pub mod serveperf;

/// The CPU-side cost model, calibrated to the paper's reported plateaus
/// (see EXPERIMENTS.md). The *memory* side is always simulated from
/// real traces; these constants only encode how good the generated
/// scalar code vs. the hand-tuned BLAS kernels are at retiring flops —
/// the axis the paper attributes to the xlf back-end vs. ESSL.
pub mod model {
    use shackle_memsim::PerfModel;

    /// xlf -O3 scalar inner loops (no software pipelining of the
    /// compiler-generated code — the paper's stated limitation).
    pub const SCALAR_CYCLES_PER_FLOP: f64 = 2.0;

    /// One matrix-multiply section replaced by DGEMM; the rest scalar.
    pub const PARTIAL_DGEMM_CYCLES_PER_FLOP: f64 = 0.8;

    /// Everything in hand-tuned BLAS-3 (ESSL-like).
    pub const BLAS3_CYCLES_PER_FLOP: f64 = 0.55;

    /// Reflection application written as dot/AXPY slices (level-2
    /// quality): the QR analogue of "Matrix Multiply replaced by DGEMM"
    /// (the replaced loops are rank-1 updates, which no BLAS-3 kernel
    /// can turn into compute-bound code). Calibrated between SCALAR and
    /// BLAS3.
    pub const LEVEL2_CYCLES_PER_FLOP: f64 = 0.9;

    /// BLAS-3 efficiency ramps with the narrow operand dimension: tiny
    /// blocks pay call and edge overheads. Calibrated so the Figure 15
    /// crossover sits near the paper's (compiler code wins at small
    /// bands, LAPACK wins by >2× at bandwidth 128).
    pub fn blas3_band_ramp_cycles_per_flop(dim: usize) -> f64 {
        BLAS3_CYCLES_PER_FLOP + 30.0 / dim.max(1) as f64
    }

    /// The WY-QR BLAS-3 ramp in the matrix order `n` (panel operations
    /// on small matrices cannot amortize), calibrated to the paper's
    /// Figure 12 crossover near n ≈ 200.
    pub fn blas3_qr_ramp_cycles_per_flop(n: usize) -> f64 {
        BLAS3_CYCLES_PER_FLOP + 40.0 / n.max(1) as f64
    }

    /// The SP-2-like performance model with a given flop cost.
    pub fn perf(cycles_per_flop: f64) -> PerfModel {
        PerfModel {
            flop_cycles: cycles_per_flop,
            clock_mhz: 66.7,
        }
    }
}

/// One curve of a figure.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label (matches the paper's).
    pub label: String,
    /// `(x, mflops)` points; `x` is the problem size or bandwidth.
    pub points: Vec<(i64, f64)>,
}

/// Render series as an aligned text table (x column + one column per
/// series).
pub fn render_table(title: &str, xlabel: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!("{xlabel:>8}"));
    for s in series {
        out.push_str(&format!("  {:>28}", s.label));
    }
    out.push('\n');
    let xs: Vec<i64> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.0).collect())
        .unwrap_or_default();
    for (row, &x) in xs.iter().enumerate() {
        out.push_str(&format!("{x:>8}"));
        for s in series {
            out.push_str(&format!("  {:>28.2}", s.points[row].1));
        }
        out.push('\n');
    }
    out
}

/// Run `f` with probe instrumentation enabled and return its result
/// together with the rendered phase tree.
///
/// The figure binaries wrap their sweep in this to print per-phase
/// timing lines after the table. The probe registry is reset first so
/// the tree covers exactly this call, and the previous enabled state is
/// restored afterwards.
pub fn timed_phases<T>(f: impl FnOnce() -> T) -> (T, String) {
    shackle_probe::reset();
    let was = shackle_probe::set_enabled(true);
    let out = f();
    shackle_probe::set_enabled(was);
    (out, shackle_probe::profile().render_tree())
}

fn params_n(n: i64) -> BTreeMap<String, i64> {
    BTreeMap::from([("N".to_string(), n)])
}

/// Trace a program on the SP-2-like hierarchy; return (stats, cycles).
fn run_traced(
    program: &Program,
    params: &BTreeMap<String, i64>,
    init: impl Fn(&str, &[usize]) -> f64,
) -> (ExecStats, u64) {
    let mut h = Hierarchy::sp2_thin_node();
    let stats = trace_execution(program, params, init, &mut h);
    (stats, h.cycles())
}

fn mflops(stats: ExecStats, cycles: u64, m: PerfModel) -> f64 {
    m.mflops(stats.flops, cycles)
}

/// Figure 11: Cholesky factorization, four curves versus matrix size.
///
/// * input right-looking code — interpreted trace of Fig. 1(ii);
/// * compiler generated code — trace of the scanned product shackle
///   (fully blocked), scalar flop model;
/// * Matrix Multiply replaced by DGEMM — same trace, partial-DGEMM
///   model;
/// * LAPACK with native BLAS — same blocked trace ("the
///   compiler-generated code has the right block structure"), all-BLAS3
///   model.
pub fn figure11(sizes: &[i64], width: i64) -> Vec<Series> {
    let _phase = shackle_probe::span("figure11");
    let p = shackle_ir::kernels::cholesky_right();
    let factors = shackles::cholesky_product(&p, width);
    let blocked = shackle_core::scan::generate_scanned(&p, &factors);
    let mut series: Vec<Series> = [
        "Input right-looking code",
        "Compiler generated code",
        "MM replaced by DGEMM",
        "LAPACK with native BLAS",
    ]
    .iter()
    .map(|l| Series {
        label: l.to_string(),
        points: Vec::new(),
    })
    .collect();
    // one independent simulation per size, fanned out over threads;
    // results come back in size order, so the series are identical to
    // a serial sweep
    let rows = par::map(sizes, |&n| {
        let _point = shackle_probe::span("simulate");
        let init = shackle_kernels::gen::spd_ws_init("A", n as usize, 11);
        let (si, ci) = run_traced(&p, &params_n(n), &init);
        let (sb, cb) = run_traced(&blocked, &params_n(n), &init);
        [
            mflops(si, ci, model::perf(model::SCALAR_CYCLES_PER_FLOP)),
            mflops(sb, cb, model::perf(model::SCALAR_CYCLES_PER_FLOP)),
            mflops(sb, cb, model::perf(model::PARTIAL_DGEMM_CYCLES_PER_FLOP)),
            mflops(sb, cb, model::perf(model::BLAS3_CYCLES_PER_FLOP)),
        ]
    });
    for (&n, vals) in sizes.iter().zip(rows) {
        for (k, v) in vals.into_iter().enumerate() {
            series[k].points.push((n, v));
        }
    }
    series
}

/// Figure 12: QR factorization, four curves versus matrix size.
///
/// The LAPACK curve is the traced compact-WY algorithm (a genuinely
/// different algorithm exploiting associativity), so both its flops and
/// its memory behaviour are its own.
pub fn figure12(sizes: &[i64], width: i64) -> Vec<Series> {
    let _phase = shackle_probe::span("figure12");
    let p = shackle_ir::kernels::qr_householder();
    let factors = shackles::qr_columns(&p, width);
    let blocked = shackle_core::scan::generate_scanned(&p, &factors);
    let mut series: Vec<Series> = [
        "Input code",
        "Compiler generated code",
        "MM replaced by DGEMM",
        "LAPACK (WY) with native BLAS",
    ]
    .iter()
    .map(|l| Series {
        label: l.to_string(),
        points: Vec::new(),
    })
    .collect();
    let rows = par::map(sizes, |&n| {
        let _point = shackle_probe::span("simulate");
        let init = shackle_exec::verify::hash_init(13);
        let (si, ci) = run_traced(&p, &params_n(n), init);
        let init = shackle_exec::verify::hash_init(13);
        let (sb, cb) = run_traced(&blocked, &params_n(n), init);
        // LAPACK WY: traced native baseline
        let mut h = Hierarchy::sp2_thin_node();
        let mut a = shackle_kernels::gen::random_mat(n as usize, n as usize, 13);
        let wy = shackle_kernels::traced::qr_wy_traced(&mut a, width as usize, &mut h);
        [
            mflops(si, ci, model::perf(model::SCALAR_CYCLES_PER_FLOP)),
            mflops(sb, cb, model::perf(model::SCALAR_CYCLES_PER_FLOP)),
            mflops(sb, cb, model::perf(model::LEVEL2_CYCLES_PER_FLOP)),
            model::perf(model::blas3_qr_ramp_cycles_per_flop(n as usize))
                .mflops(wy.flops, h.cycles()),
        ]
    });
    for (&n, vals) in sizes.iter().zip(rows) {
        for (k, v) in vals.into_iter().enumerate() {
            series[k].points.push((n, v));
        }
    }
    series
}

/// Figure 13(i): the GMTRY kernel — speedup of Gaussian elimination and
/// of the whole benchmark (elimination + untransformable streaming
/// setup), input vs. shackled.
///
/// Returns `(elimination_speedup, whole_benchmark_speedup)`.
pub fn figure13_gmtry(n: i64, width: i64) -> (f64, f64) {
    let _phase = shackle_probe::span("figure13_gmtry");
    let p = shackle_ir::kernels::gauss();
    let factors = shackles::gauss_product(&p, width);
    let blocked = shackle_core::scan::generate_scanned(&p, &factors);
    let init = shackle_kernels::gen::spd_ws_init("A", n as usize, 17);
    let (si, ci) = run_traced(&p, &params_n(n), &init);
    let (sb, cb) = run_traced(&blocked, &params_n(n), &init);
    let m = model::perf(model::SCALAR_CYCLES_PER_FLOP);
    let cyc = |s: ExecStats, c: u64| s.flops as f64 * m.flop_cycles + c as f64;
    let elim_in = cyc(si, ci);
    let elim_bl = cyc(sb, cb);
    // Rest of the benchmark: streaming setup sweeps over the system
    // matrix, identical in both versions. The paper does not give the
    // GMTRY time breakdown, only that a 3x elimination speedup became a
    // 2x whole-benchmark speedup, which pins the non-elimination share
    // at roughly one third of the input elimination time; 40 sweeps at
    // n = 320 lands there (the share is size-dependent, as it would be
    // in the real kernel).
    let rest = {
        let mut h = Hierarchy::sp2_thin_node();
        let sweeps = 40;
        for _ in 0..sweeps {
            for off in (0..(n as u64) * (n as u64) * 8).step_by(8) {
                h.access(off);
            }
        }
        let flops = sweeps * (n as u64) * (n as u64);
        flops as f64 * m.flop_cycles + h.cycles() as f64
    };
    (elim_in / elim_bl, (elim_in + rest) / (elim_bl + rest))
}

/// Figure 13(ii): ADI — speedup of the transformed (fused + interchanged)
/// code over the input code at size `n`.
pub fn figure13_adi(n: i64) -> f64 {
    let _phase = shackle_probe::span("figure13_adi");
    let p = shackle_ir::kernels::adi();
    let factors = shackles::adi_storage_order(&p);
    let blocked = shackle_core::scan::generate_scanned(&p, &factors);
    let init = |name: &str, idx: &[usize]| {
        if name == "B" {
            2.0 + ((idx[0] * 31 + idx[1] * 7) % 97) as f64 / 97.0
        } else {
            ((idx[0] * 13 + idx[1] * 3) % 89) as f64 / 89.0
        }
    };
    let (si, ci) = run_traced(&p, &params_n(n), init);
    let (sb, cb) = run_traced(&blocked, &params_n(n), init);
    let m = model::perf(model::SCALAR_CYCLES_PER_FLOP);
    let cyc = |s: ExecStats, c: u64| s.flops as f64 * m.flop_cycles + c as f64;
    cyc(si, ci) / cyc(sb, cb)
}

/// Figure 15: banded Cholesky versus half-bandwidth at fixed order `n`.
///
/// * input code — dense-storage band-guarded Cholesky (interpreted);
/// * compiler generated code — the scanned banded shackle executed
///   through the *band-storage address map* (the paper's post-pass data
///   transformation);
/// * LAPACK — traced `dpbtrf`-style blocked code on band storage, with
///   the BLAS-3 size ramp (small bands cannot amortize BLAS overhead).
pub fn figure15(n: i64, bands: &[i64], width: i64) -> Vec<Series> {
    let _phase = shackle_probe::span("figure15");
    let p = shackle_ir::kernels::banded_cholesky();
    let factors = shackles::banded_writes(&p, width);
    let blocked = shackle_core::scan::generate_scanned(&p, &factors);
    let mut series: Vec<Series> = [
        "Input banded code",
        "Compiler generated (band storage)",
        "LAPACK dpbtrf with native BLAS",
    ]
    .iter()
    .map(|l| Series {
        label: l.to_string(),
        points: Vec::new(),
    })
    .collect();
    let rows = par::map(bands, |&bw| {
        let _point = shackle_probe::span("simulate");
        let params = BTreeMap::from([("N".to_string(), n), ("P".to_string(), bw)]);
        let init = shackle_kernels::gen::banded_ws_init("A", n as usize, bw as usize, 19);
        let (si, ci) = run_traced(&p, &params, &init);
        // compiler code through band storage
        let (sb, cb) = {
            let mut h = Hierarchy::sp2_thin_node();
            let mut ws = shackle_exec::Workspace::for_program(&blocked, &params, &init);
            let mut obs =
                shackle_kernels::trace::BandObserver::new("A", n as usize, bw as usize, &mut h);
            let stats = shackle_exec::execute_compiled(&blocked, &mut ws, &params, &mut obs);
            (stats, h.cycles())
        };
        // LAPACK on band storage
        let mut h = Hierarchy::sp2_thin_node();
        let dense = shackle_kernels::gen::random_banded_spd(n as usize, bw as usize, 19);
        let mut band = shackle_kernels::banded::BandMat::from_dense(&dense, bw as usize);
        let run = shackle_kernels::traced::pbtrf_lapack_traced(
            &mut band,
            (width as usize).min(bw as usize + 1),
            &mut h,
        );
        [
            mflops(si, ci, model::perf(model::SCALAR_CYCLES_PER_FLOP)),
            mflops(sb, cb, model::perf(model::SCALAR_CYCLES_PER_FLOP)),
            model::perf(model::blas3_band_ramp_cycles_per_flop(bw as usize))
                .mflops(run.flops, h.cycles()),
        ]
    });
    for (&bw, vals) in bands.iter().zip(rows) {
        for (k, v) in vals.into_iter().enumerate() {
            series[k].points.push((bw, v));
        }
    }
    series
}

/// Per-level miss counts for Figure 10's multi-level experiment.
#[derive(Clone, Debug)]
pub struct MultiLevelRow {
    /// Configuration label.
    pub label: String,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Memory cycles.
    pub cycles: u64,
}

/// Figure 10 / §6.3: matrix multiplication blocked for two levels of
/// memory hierarchy, on the two-level simulated hierarchy. Compares
/// unblocked, one-level (outer block only), and two-level code.
pub fn figure10(n: i64, w1: i64, w2: i64) -> Vec<MultiLevelRow> {
    figure10_on(n, w1, w2, Hierarchy::two_level)
}

/// As [`figure10`] with a custom hierarchy factory (used by tests to
/// scale the experiment down).
pub fn figure10_on(
    n: i64,
    w1: i64,
    w2: i64,
    mk: impl Fn() -> Hierarchy + Sync,
) -> Vec<MultiLevelRow> {
    let _phase = shackle_probe::span("figure10");
    let p = shackle_ir::kernels::matmul_ijk();
    let one = shackle_core::scan::generate_scanned(&p, &shackles::matmul_ca(&p, w1));
    let two = shackle_core::scan::generate_scanned(&p, &shackles::matmul_two_level(&p, w1, w2));
    let init = shackle_exec::verify::hash_init(23);
    let variants = [
        ("unblocked (I-J-K)", &p),
        ("one-level (Fig. 3)", &one),
        ("two-level (Fig. 10)", &two),
    ];
    par::map(&variants, |&(label, prog)| {
        let _point = shackle_probe::span("simulate");
        let mut h = mk();
        trace_execution(prog, &params_n(n), &init, &mut h);
        let ls = h.level_stats();
        MultiLevelRow {
            label: label.to_string(),
            l1_misses: ls[0].misses,
            l2_misses: ls[1].misses,
            cycles: h.cycles(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_small_shape() {
        // n must exceed the 64 KB simulated cache (128² × 8B = 131 KB)
        // for blocking to matter
        let s = figure11(&[32, 128], 16);
        assert_eq!(s.len(), 4);
        let at = |k: usize| s[k].points[1].1;
        assert!(at(1) > at(0), "compiler > input: {} vs {}", at(1), at(0));
        assert!(at(2) > at(1));
        assert!(at(3) > at(2));
        // at the small size everything is cached: curves 0 and 1 agree
        assert!((s[0].points[0].1 - s[1].points[0].1).abs() < 1.0);
    }

    #[test]
    fn figure13_adi_speedup_over_one() {
        let sp = figure13_adi(96);
        assert!(sp > 1.5, "ADI speedup {sp}");
    }

    #[test]
    fn figure10_two_level_reduces_l1_misses() {
        // a scaled-down hierarchy so n = 48 exercises both levels:
        // L1 2 KB, L2 16 KB (three 48² matrices are 55 KB)
        use shackle_memsim::CacheConfig;
        let mk = || {
            Hierarchy::new(
                &[
                    CacheConfig {
                        size: 2048,
                        line: 64,
                        assoc: 2,
                        latency: 1,
                    },
                    CacheConfig {
                        size: 16384,
                        line: 128,
                        assoc: 8,
                        latency: 10,
                    },
                ],
                80,
            )
        };
        let rows = figure10_on(48, 16, 4, mk);
        assert_eq!(rows.len(), 3);
        assert!(rows[2].l1_misses < rows[0].l1_misses);
        assert!(rows[1].l2_misses < rows[0].l2_misses);
        assert!(
            rows[2].l1_misses < rows[1].l1_misses,
            "inner blocking must help L1: {} vs {}",
            rows[2].l1_misses,
            rows[1].l1_misses
        );
        assert!(rows[2].cycles < rows[0].cycles);
    }

    #[test]
    fn figure12_small_shape() {
        // tiny sizes: the input and compiler curves exist and are
        // positive; at sizes beyond the cache the compiler code wins
        let s = figure12(&[16, 96], 8);
        assert_eq!(s.len(), 4);
        for series in &s {
            assert!(series.points.iter().all(|p| p.1 > 0.0), "{}", series.label);
        }
        // +DGEMM above plain compiler at both sizes
        assert!(s[2].points[1].1 > s[1].points[1].1);
    }

    #[test]
    fn figure15_small_shape() {
        let s = figure15(48, &[4, 12], 8);
        assert_eq!(s.len(), 3);
        for series in &s {
            assert_eq!(series.points.len(), 2);
            assert!(series.points.iter().all(|p| p.1 > 0.0), "{}", series.label);
        }
        // the LAPACK BLAS-3 ramp makes wider bands relatively better
        let lapack = &s[2];
        assert!(lapack.points[1].1 > lapack.points[0].1);
    }

    #[test]
    fn figure13_gmtry_speedups_exceed_one() {
        let (elim, whole) = figure13_gmtry(96, 8);
        assert!(elim > 1.0, "elimination speedup {elim}");
        assert!(whole > 1.0, "whole-benchmark speedup {whole}");
        assert!(whole < elim, "setup work must dilute the speedup");
    }

    #[test]
    fn par_map_preserves_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..40).collect();
        // an order-sensitive function: results must land in input slots
        let f = |&x: &u64| x * x + 1;
        let serial = par::map_with(1, &items, f);
        for threads in [2, 3, 7, 16] {
            assert_eq!(
                par::map_with(threads, &items, f),
                serial,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn figure_sweep_is_byte_identical_serial_vs_parallel() {
        // par::with_threads serializes every SHACKLE_THREADS override
        // process-wide, so concurrent tests cannot race this one's
        // temporary values.
        let serial = {
            let _t = par::with_threads(1);
            render_table("f11", "n", &figure11(&[16, 24, 32], 8))
        };
        let parallel = {
            let _t = par::with_threads(4);
            render_table("f11", "n", &figure11(&[16, 24, 32], 8))
        };
        assert_eq!(serial, parallel);
    }

    #[test]
    fn render_table_is_aligned() {
        let s = vec![Series {
            label: "A".into(),
            points: vec![(10, 1.5), (20, 2.5)],
        }];
        let t = render_table("T", "n", &s);
        assert!(t.contains("# T"));
        assert!(t.lines().count() == 4);
    }
}
