//! Multi-configuration cache sweeps: capture once, derive every
//! geometry.
//!
//! The figure harnesses evaluate tiling choices against cache
//! geometries. The pre-stack-engine flow re-executed the kernel and
//! replayed its full trace through a direct LRU simulation once per
//! configuration; this module captures each (kernel, block-size) trace
//! once as a [`CompactTrace`] and derives exact hit/miss counts for an
//! entire size × associativity grid from a single Mattson stack pass
//! ([`StackSim`]) — bit-identical to the direct simulation, measured
//! and asserted by `perf_report` (`BENCH_memsim.json`).
//!
//! Sweep points fan out over `SHACKLE_THREADS` like every other figure
//! sweep ([`crate::par`]); results are assembled in input order, so the
//! rendered tables are byte-identical at any thread count.

use shackle_ir::Program;
use shackle_kernels::compact::CompactTrace;
use shackle_memsim::{CacheConfig, LevelStats, StackSim};
use std::collections::BTreeMap;

/// Build the configuration grid: every `size × assoc` combination at
/// the given line size whose set count comes out a power of two (the
/// stack engine's domain — which is every realistic geometry).
pub fn config_grid(line: usize, sizes: &[usize], assocs: &[usize]) -> Vec<CacheConfig> {
    let mut grid = Vec::new();
    for &size in sizes {
        for &assoc in assocs {
            if size % (line * assoc) != 0 {
                continue;
            }
            let sets = size / line / assoc;
            if !sets.is_power_of_two() {
                continue;
            }
            grid.push(CacheConfig {
                size,
                line,
                assoc,
                latency: 0,
            });
        }
    }
    grid
}

/// One sweep point: a labelled trace evaluated against the whole grid.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Point label (e.g. the block width).
    pub label: String,
    /// Accesses in the trace.
    pub accesses: u64,
    /// Per-configuration stats, in grid order.
    pub stats: Vec<LevelStats>,
}

/// Derive the whole grid from one captured trace with a single stack
/// pass.
pub fn sweep_trace(label: &str, trace: &CompactTrace, grid: &[CacheConfig]) -> SweepRow {
    let line = grid.first().expect("empty grid").line;
    let mut sim = StackSim::new(line, grid);
    trace.replay_into(&mut sim);
    SweepRow {
        label: label.to_string(),
        accesses: trace.len() as u64,
        stats: grid.iter().map(|c| sim.stats_for(c)).collect(),
    }
}

/// Capture each labelled program once and sweep it against the grid,
/// fanning the points out over `SHACKLE_THREADS` (deterministic,
/// input-ordered results).
pub fn sweep_programs(
    points: &[(String, Program)],
    params: &BTreeMap<String, i64>,
    init: impl Fn(&str, &[usize]) -> f64 + Sync,
    grid: &[CacheConfig],
) -> Vec<SweepRow> {
    crate::par::map(points, |(label, program)| {
        let (_, trace) = CompactTrace::capture(program, params, &init);
        sweep_trace(label, &trace, grid)
    })
}

/// Render a sweep as an aligned text table: one row per point, one
/// `size(KB)/assoc` column per configuration, cells are miss ratios in
/// percent.
pub fn render_sweep(
    title: &str,
    rowlabel: &str,
    grid: &[CacheConfig],
    rows: &[SweepRow],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!("{rowlabel:>16} {:>12}", "accesses"));
    for c in grid {
        out.push_str(&format!(
            "  {:>9}",
            format!("{}K/{}w", c.size / 1024, c.assoc)
        ));
    }
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:>16} {:>12}", r.label, r.accesses));
        for s in &r.stats {
            out.push_str(&format!("  {:>8.2}%", 100.0 * s.miss_ratio()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shackle_kernels::shackles;

    fn grid_small() -> Vec<CacheConfig> {
        config_grid(64, &[1024, 4096, 16384], &[1, 2, 4])
    }

    #[test]
    fn grid_filters_to_power_of_two_sets() {
        let g = config_grid(64, &[1024, 3 * 1024], &[1, 2, 3]);
        // 3 KB and 3-way combinations with non-power-of-two set counts
        // are dropped; everything kept validates
        assert!(g.iter().all(|c| c.sets().is_power_of_two()));
        assert!(g.contains(&CacheConfig {
            size: 1024,
            line: 64,
            assoc: 1,
            latency: 0
        }));
        // 3 KB direct-mapped = 48 sets: not a power of two
        assert!(!g.iter().any(|c| c.size == 3 * 1024 && c.assoc == 1));
    }

    #[test]
    fn stack_sweep_matches_direct_per_config() {
        let p = shackle_ir::kernels::matmul_ijk();
        let params = BTreeMap::from([("N".to_string(), 12i64)]);
        let (_, trace) = CompactTrace::capture(&p, &params, |_, _| 1.0);
        let grid = grid_small();
        let row = sweep_trace("matmul", &trace, &grid);
        for (cfg, s) in grid.iter().zip(&row.stats) {
            let mut c = shackle_memsim::Cache::new(*cfg);
            trace.replay_into(&mut c);
            assert_eq!(*s, c.stats(), "{cfg:?}");
        }
    }

    #[test]
    fn blocking_wins_across_the_grid_where_it_should() {
        // the whole point of the sweep: one capture per variant decides
        // every geometry; the blocked trace must miss less on caches
        // that hold a few blocks but not the full matrices
        let p = shackle_ir::kernels::matmul_ijk();
        let blocked = shackle_core::scan::generate_scanned(&p, &shackles::matmul_ca(&p, 8));
        let params = BTreeMap::from([("N".to_string(), 48i64)]);
        let grid = grid_small();
        let points = vec![("input".to_string(), p), ("blocked".to_string(), blocked)];
        let rows = sweep_programs(&points, &params, |_, _| 1.0, &grid);
        let mid = grid
            .iter()
            .position(|c| c.size == 4096 && c.assoc == 4)
            .unwrap();
        assert!(
            rows[1].stats[mid].misses * 2 < rows[0].stats[mid].misses,
            "blocked {} vs input {}",
            rows[1].stats[mid].misses,
            rows[0].stats[mid].misses
        );
    }

    #[test]
    fn sweep_is_byte_identical_serial_vs_parallel() {
        let p = shackle_ir::kernels::matmul_ijk();
        let params = BTreeMap::from([("N".to_string(), 16i64)]);
        let grid = grid_small();
        let points: Vec<(String, Program)> = (0..4)
            .map(|w| {
                let b =
                    shackle_core::scan::generate_scanned(&p, &shackles::matmul_ca(&p, 4 + 4 * w));
                (format!("w{}", 4 + 4 * w), b)
            })
            .collect();
        let serial = {
            let _t = shackle_core::par::with_threads(1);
            render_sweep(
                "t",
                "width",
                &grid,
                &sweep_programs(&points, &params, |_, _| 1.0, &grid),
            )
        };
        let parallel = {
            let _t = shackle_core::par::with_threads(4);
            render_sweep(
                "t",
                "width",
                &grid,
                &sweep_programs(&points, &params, |_, _| 1.0, &grid),
            )
        };
        assert_eq!(serial, parallel);
    }
}
