//! The model-vs-simulate sweep: validates the `shackle-model`
//! analytical predictor against exact simulation on a dense candidate
//! grid for every in-repo kernel, and measures the two-phase search
//! speedup.
//!
//! For each kernel the harness builds a grid of shackle products —
//! every legal shape ([`shackle_core::search::grid_shapes`], plus the
//! hand-built QR and ADI shackles the automatic enumeration cannot
//! reach, plus two-level self-products) crossed with a block width
//! sweep: per-factor square widths
//! ([`shackle_core::search::width_grid`]) or, for kernels whose specs
//! set `rect`, independent per-cut widths
//! ([`shackle_core::search::rect_width_grid`]) so a 2-D blocking
//! explores every rectangular tile shape. Then the harness:
//!
//! 1. runs the two-phase search (`two_phase`: analytical rank of the
//!    whole grid, exact probe-cache rescore of the top-K survivors),
//!    timed over [`Timing::measure`] repetitions;
//! 2. runs the pre-model pipeline — simulate *every* candidate — on the
//!    same grid, same parallelism, timed the same way;
//! 3. checks ranking accuracy (the simulated winner's rank in the model
//!    ordering, overlap of the model and simulator top-K sets) and
//!    per-candidate miss-count error against the ground truth;
//! 4. asserts the simulated winner lands inside the model's top-K, that
//!    the winner is exactly legal at its swept widths (the grid assumes
//!    width-independence of legality; this is the backstop), and that
//!    the two-phase search clears the speedup floor.
//!
//! `BENCH_model.json` records all of it. The `modelperf` binary drives
//! this module; `perf_report --quick` embeds the quick variant.

use crate::report::{assert_speedup, BenchReport, Timing};
use crate::searchperf::PROBE_CACHE;
use shackle_core::search::{
    grid_shapes, reblock, rect_width_grid, two_phase, width_grid, SearchConfig,
};
use shackle_core::{check_legality, par, scan, Shackle};
use shackle_ir::{kernels, Program};
use shackle_kernels::trace::trace_execution;
use shackle_kernels::{gen, shackles};
use shackle_memsim::ground_truth;
use shackle_model::{predict, KernelGeometry};
use std::collections::BTreeMap;

/// Memory latency behind [`PROBE_CACHE`], matching the searchperf
/// scoring accounting.
pub const PROBE_MEM_LATENCY: u64 = 60;

/// Relative slack under which two simulated cycle counts count as the
/// same winner. Partially-blockable kernels can present a *plateau*:
/// the tensor contraction's legal candidates only reblock the output
/// walk, so the dominant (and unblockable) reduction-sweep traffic is
/// identical everywhere and the full grid sims within 0.007% of the
/// optimum. Ranking by exact equality there measures remainder-block
/// noise rather than the model, so anything within this factor of the
/// simulated optimum is treated as a co-winner.
pub const SIM_TIE_TOLERANCE: f64 = 0.002;

/// Options for one sweep run.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Quick mode: a 3-width grid and one timing repetition — the CI
    /// smoke configuration (relaxed speedup floor).
    pub quick: bool,
    /// Survivors re-scored with the exact simulator.
    pub top_k: usize,
    /// Timing repetitions for the speedup rows.
    pub runs: usize,
    /// Override the block-width sweep (applies to every kernel).
    pub widths: Option<Vec<i64>>,
    /// Restrict to kernels whose name is in the list.
    pub kernels: Option<Vec<String>>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            quick: false,
            top_k: 8,
            runs: 5,
            widths: None,
            kernels: None,
        }
    }
}

/// A boxed workspace initializer (`(array name, indices) -> value`).
pub type InitFn = Box<dyn Fn(&str, &[usize]) -> f64 + Sync>;

/// One kernel's sweep specification: the program, the probe size, the
/// workspace initializer, the product shapes (legal at their pivot
/// widths) and the width sweep.
pub struct SweepSpec {
    /// Kernel name (matches ROADMAP/EXPERIMENTS naming).
    pub name: &'static str,
    /// The input program.
    pub program: Program,
    /// Problem size scored on the probe cache.
    pub probe_n: i64,
    /// Workspace initializer.
    pub init: InitFn,
    /// Product shapes; widths are pivots, re-swept by the grid.
    pub shapes: Vec<Vec<Shackle>>,
    /// Block widths swept per factor (full cross product).
    pub widths: Vec<i64>,
    /// Rectangular sweep: widths vary per *cut* instead of per factor
    /// ([`rect_width_grid`]), so a 2-D blocking explores every
    /// `bi × bj` combination independently.
    pub rect: bool,
}

/// The sweep result for one kernel.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Kernel name.
    pub kernel: &'static str,
    /// Probe problem size.
    pub probe_n: i64,
    /// Product shapes in the grid.
    pub shapes: usize,
    /// Grid candidates ranked analytically.
    pub candidates: usize,
    /// Survivors re-scored exactly.
    pub top_k: usize,
    /// Two-phase winner (grid index).
    pub model_winner: usize,
    /// Simulate-everything winner (grid index).
    pub sim_winner: usize,
    /// The simulated winner's rank in the model ordering (0 = model's
    /// first choice).
    pub sim_winner_model_rank: usize,
    /// Model top-K candidates that are also in the simulator's top-K.
    pub topk_overlap: usize,
    /// Exact probe cycles of the two-phase winner.
    pub winner_cycles: u64,
    /// Exact probe cycles of the simulate-everything winner.
    pub sim_winner_cycles: u64,
    /// Two-phase wall clock.
    pub two_phase: Timing,
    /// Simulate-every-candidate wall clock.
    pub simulate_all: Timing,
    /// `simulate_all.mean / two_phase.mean`.
    pub speedup: f64,
    /// Mean relative miss-count error of the model over the grid
    /// (`|pred - sim| / max(sim, 1)`).
    pub miss_err_mean: f64,
    /// Maximum relative miss-count error over the grid.
    pub miss_err_max: f64,
    /// Rectangular sweeps only: best exact cycles over the square
    /// candidates (every cut the same width) of the grid.
    pub best_square_cycles: Option<u64>,
    /// Rectangular sweeps only: best exact cycles over the properly
    /// rectangular candidates.
    pub best_rect_cycles: Option<u64>,
}

/// Every cut of every factor shares one width — the candidates the
/// square sweep could have reached.
fn is_square(product: &[Shackle]) -> bool {
    let mut width = None;
    for s in product {
        for c in s.blocking().cuts() {
            match width {
                None => width = Some(c.width),
                Some(w) if w == c.width => {}
                _ => return false,
            }
        }
    }
    true
}

/// Block widths for a dense sweep at probe size `n`: powers of two and
/// their midpoints up to `n`, clipped (at least two widths).
fn dense_widths(n: i64) -> Vec<i64> {
    let all = [2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 64];
    all.iter().copied().filter(|&w| w <= n).collect()
}

/// A contiguous width range for single-factor kernels, where the grid
/// is quadratic in the width count only through two-level products.
///
/// The triangular kernels floor the range at 4: widths 2–3 put whole
/// blocks inside a fraction of one cache line (16 doubles), where the
/// simulator rewards line sharing across adjacent windows — below the
/// line granularity the model deliberately resolves (DESIGN.md
/// §"Analytical cost model"). Their ceiling stays ≲ N/5 so blocks are
/// not mostly guard-clipped (same section).
fn range_widths(lo: i64, hi: i64) -> Vec<i64> {
    (lo..=hi).collect()
}

/// The per-kernel sweep specifications. `opts.widths` overrides every
/// width list; quick mode shrinks them to three values.
pub fn specs(opts: &SweepOptions) -> Vec<SweepSpec> {
    let widths = |full: Vec<i64>| -> Vec<i64> {
        if let Some(w) = &opts.widths {
            return w.clone();
        }
        if opts.quick {
            vec![4, 8, 16]
        } else {
            full
        }
    };
    let auto_shapes = |p: &Program, pivot: i64| {
        grid_shapes(
            p,
            &SearchConfig {
                width: pivot,
                ..Default::default()
            },
        )
    };
    // two-level self-product of a single-factor shape (the §6.3
    // multi-level construction); kept only if exactly legal at the
    // pivot widths
    let two_level = |p: &Program, f: &[Shackle]| -> Option<Vec<Shackle>> {
        let mut s = f.to_vec();
        s.extend(reblock(p, f, &vec![4; f.len()]));
        check_legality(p, &s).is_legal().then_some(s)
    };

    let mut out = Vec::new();

    let mm = kernels::matmul_ijk();
    out.push(SweepSpec {
        name: "matmul_ijk",
        shapes: auto_shapes(&mm, 8),
        program: mm,
        probe_n: 48,
        init: Box::new(|_, _| 1.0),
        widths: widths(dense_widths(48)),
        rect: false,
    });

    // Rectangular-tile witness: matmul restricted to its two
    // single-level B-blocking shapes, swept per-cut. The two-level
    // self-products are excluded because a per-cut sweep over four cuts
    // is |widths|^4 per shape, and the grid stays inside the model's
    // documented scope the same way the triangular grids do: widths
    // floor at a quarter cache line (below it the simulator rewards
    // sub-line sharing the model does not track — matmul's global rect
    // optimum (10, 2) lives there), and the A/C-blocking families are
    // out because at N = 48 their narrow-width footprints sit exactly
    // on the probe cache's 4-way conflict cliff (model 33k cycles, sim
    // 716k for C at (16, 2) — conflict misses are invisible to any
    // capacity model). Within scope the best rectangular tile strictly
    // beats the best square one (best_square_cycles / best_rect_cycles
    // in the row).
    let mm2 = kernels::matmul_ijk();
    let mut mm_b = auto_shapes(&mm2, 8);
    mm_b.retain(|s| s.len() == 1 && s[0].blocking().array() == "B");
    out.push(SweepSpec {
        name: "matmul_rect",
        shapes: mm_b,
        program: mm2,
        probe_n: 48,
        init: Box::new(|_, _| 1.0),
        widths: widths(range_widths(4, 26)),
        rect: true,
    });

    let chol = kernels::cholesky_right();
    out.push(SweepSpec {
        name: "cholesky_right",
        shapes: auto_shapes(&chol, 16),
        program: chol,
        probe_n: 80,
        init: Box::new(gen::spd_ws_init("A", 80, 3)),
        widths: widths(range_widths(4, 16)),
        rect: false,
    });

    let choll = kernels::cholesky_left();
    out.push(SweepSpec {
        name: "cholesky_left",
        shapes: auto_shapes(&choll, 16),
        program: choll,
        probe_n: 80,
        init: Box::new(gen::spd_ws_init("A", 80, 3)),
        widths: widths(range_widths(4, 16)),
        rect: false,
    });

    let gauss = kernels::gauss();
    out.push(SweepSpec {
        name: "gauss",
        shapes: auto_shapes(&gauss, 16),
        program: gauss,
        probe_n: 80,
        init: Box::new(gen::spd_ws_init("A", 80, 5)),
        widths: widths(range_widths(4, 16)),
        rect: false,
    });

    // QR and ADI need hand-built shackles (dummy references / fused
    // statements are beyond the automatic enumeration), single cut
    // factors: the width sweep is linear, so the grid goes dense
    // through a contiguous width range and the two-level self-product.
    let qr = kernels::qr_householder();
    let qr1 = shackles::qr_columns(&qr, 8);
    let mut qr_shapes = vec![qr1.clone()];
    qr_shapes.extend(two_level(&qr, &qr1));
    out.push(SweepSpec {
        name: "qr_householder",
        shapes: qr_shapes,
        program: qr,
        probe_n: 36,
        init: Box::new(shackle_exec::verify::hash_init(3)),
        widths: widths(range_widths(2, 34)),
        rect: false,
    });

    let adi = kernels::adi();
    let adi1 = reblock(&adi, &shackles::adi_storage_order(&adi), &[8]);
    let mut adi_shapes = vec![adi1.clone()];
    adi_shapes.extend(two_level(&adi, &adi1));
    out.push(SweepSpec {
        name: "adi",
        shapes: adi_shapes,
        program: adi,
        probe_n: 64,
        init: Box::new(|name, idx| {
            if name == "B" {
                2.0 + (idx[0] % 7) as f64
            } else {
                (idx[0] % 5) as f64
            }
        }),
        widths: widths(range_widths(2, 34)),
        rect: false,
    });

    // The scenario-diversity wave. Backsolve's legal space is the §8
    // reversed-direction one, so its shapes come from the enumeration
    // with reversed cut sets enabled; the grid then re-sweeps widths
    // across its six shapes (two of them X×X products).
    let bs = kernels::backsolve();
    out.push(SweepSpec {
        name: "backsolve",
        shapes: grid_shapes(
            &bs,
            &SearchConfig {
                width: 8,
                reversed_directions: true,
                ..Default::default()
            },
        ),
        program: bs,
        probe_n: 48,
        init: Box::new(shackle_exec::verify::hash_init(3)),
        widths: widths(range_widths(2, 34)),
        rect: false,
    });

    // SYRK is triangular, so it inherits the triangular kernels' grid
    // limits (see EXPERIMENTS.md): widths 4–16 at N = 80 keep blocks at
    // or above a quarter cache line and small enough that the
    // triangles-as-rectangles conservatism does not dominate — at
    // N = 48 with widths up to 48 the guard-clipped fat blocks push the
    // simulated winner far outside the model's top-K.
    let sy = kernels::syrk();
    out.push(SweepSpec {
        name: "syrk",
        shapes: auto_shapes(&sy, 8),
        program: sy,
        probe_n: 80,
        init: Box::new(shackle_exec::verify::hash_init(3)),
        widths: widths(range_widths(4, 16)),
        rect: false,
    });

    // Jacobi sweeps rectangularly: column-major storage plus 128-byte
    // lines favour tall, narrow tiles, so every (bi, bj) combination is
    // scored independently — the kernel the square grid would mis-rank.
    let ja = kernels::jacobi2d();
    out.push(SweepSpec {
        name: "jacobi2d",
        shapes: auto_shapes(&ja, 8),
        program: ja,
        probe_n: 48,
        init: Box::new(shackle_exec::verify::hash_init(3)),
        widths: widths(dense_widths(48)),
        rect: true,
    });

    // The tensor contraction is only partially blockable (the rank-2
    // reduction chain into C[I,J] outlaws full-rank operand blockings),
    // so the grid is the rectangular sweep over the two legal output
    // blockings. O(N^4) work keeps the probe size small.
    let tc = kernels::tensor_contract();
    out.push(SweepSpec {
        name: "tensor_contract",
        shapes: auto_shapes(&tc, 8),
        program: tc,
        probe_n: 24,
        init: Box::new(shackle_exec::verify::hash_init(3)),
        widths: widths(range_widths(2, 24)),
        rect: true,
    });

    if let Some(filter) = &opts.kernels {
        out.retain(|s| filter.iter().any(|k| k == s.name));
    }
    out
}

/// Run one kernel's sweep (see the module docs for the four stages).
///
/// # Panics
///
/// Panics if the simulated winner falls outside the model's top-K, if
/// either winner is not exactly legal at its swept widths, or (full
/// mode) if the grid has fewer than 1000 candidates.
pub fn sweep_kernel(spec: &SweepSpec, opts: &SweepOptions) -> SweepRow {
    let params = BTreeMap::from([("N".to_string(), spec.probe_n)]);
    let geom = KernelGeometry::new(&spec.program, &params);
    let grid = if spec.rect {
        rect_width_grid(&spec.program, &spec.shapes, &spec.widths)
    } else {
        width_grid(&spec.program, &spec.shapes, &spec.widths)
    };
    if !opts.quick && opts.widths.is_none() {
        assert!(
            grid.len() >= 1000,
            "{}: dense grid has only {} candidates",
            spec.name,
            grid.len()
        );
    }
    let top_k = opts.top_k.min(grid.len());

    let model_score =
        |p: &Vec<Shackle>| predict(&geom, p, &[PROBE_CACHE], PROBE_MEM_LATENCY).cycles;
    let exact_score = |p: &Vec<Shackle>| {
        let code = scan::generate_scanned(&spec.program, p);
        ground_truth(&[PROBE_CACHE], PROBE_MEM_LATENCY, |h| {
            trace_execution(&code, &params, &spec.init, h);
        })
        .cycles
    };

    // 1. the two-phase search, timed
    let mut outcome = None;
    let two_phase_t = Timing::measure(opts.runs, || {
        outcome = two_phase(&grid, top_k, model_score, exact_score);
    });
    let outcome = outcome.expect("non-empty grid");

    // 2. the pre-model pipeline: simulate everything, timed (same
    //    parallel fan-out, so the ratio measures the model, not par)
    let mut sim_cycles: Vec<u64> = Vec::new();
    let simulate_all_t = Timing::measure(opts.runs, || {
        sim_cycles = par::map(&grid, exact_score);
    });

    // 3. ranking accuracy and miss error vs. the ground truth. Dense
    //    grids routinely hold several sim-optimal candidates (equal —
    //    or near-equal — cycle counts); two-phase search recovers the
    //    optimum as soon as *any* of them survives the analytical cut,
    //    so the reported rank is the best model rank across the tie
    //    set. Ties are tolerance-aware (0.2%): a grid can be a
    //    *plateau* — the tensor contraction's output-only partial
    //    blockings leave the unblockable (K,L) reduction sweep
    //    untouched, so every candidate sims within 0.007% of the
    //    optimum and an exact-equality rank would measure remainder
    //    -block noise, not ranking power.
    let best_sim = *sim_cycles.iter().min().expect("non-empty grid");
    let tied = |c: u64| c as f64 <= best_sim as f64 * (1.0 + SIM_TIE_TOLERANCE);
    let (sim_winner_model_rank, sim_winner) = outcome
        .ranking
        .iter()
        .enumerate()
        .filter(|&(_, &i)| tied(sim_cycles[i]))
        .map(|(rank, &i)| (rank, i))
        .next()
        .expect("ranking is a permutation");
    let mut sim_rank: Vec<usize> = (0..grid.len()).collect();
    sim_rank.sort_by_key(|&i| (sim_cycles[i], i));
    let topk_overlap = outcome.ranking[..top_k]
        .iter()
        .filter(|i| sim_rank[..top_k].contains(i))
        .count();
    let mut err_sum = 0.0;
    let mut err_max: f64 = 0.0;
    for (i, &mc) in outcome.model_scores.iter().enumerate() {
        // cycles are misses x mem latency on the zero-latency probe
        let (pred, sim) = (
            mc as f64 / PROBE_MEM_LATENCY as f64,
            sim_cycles[i] as f64 / PROBE_MEM_LATENCY as f64,
        );
        let err = (pred - sim).abs() / sim.max(1.0);
        err_sum += err;
        err_max = err_max.max(err);
    }

    // Rectangular sweeps record the square-vs-rectangular evidence: the
    // best exact cycles reachable with equal widths everywhere against
    // the best over properly rectangular blocks (EXPERIMENTS.md cites
    // these).
    let (best_square_cycles, best_rect_cycles) = if spec.rect {
        let best_of = |want_square: bool| {
            grid.iter()
                .zip(&sim_cycles)
                .filter(|(p, _)| is_square(p) == want_square)
                .map(|(_, &c)| c)
                .min()
        };
        (best_of(true), best_of(false))
    } else {
        (None, None)
    };

    // 4. the acceptance backstops
    assert!(
        sim_winner_model_rank < top_k,
        "{}: simulated winner (grid index {}) has model rank {}, outside top-{}",
        spec.name,
        sim_winner,
        sim_winner_model_rank,
        top_k
    );
    for idx in [outcome.winner, sim_winner] {
        assert!(
            check_legality(&spec.program, &grid[idx]).is_legal(),
            "{}: swept winner {} must be exactly legal",
            spec.name,
            idx
        );
    }

    SweepRow {
        kernel: spec.name,
        probe_n: spec.probe_n,
        shapes: spec.shapes.len(),
        candidates: grid.len(),
        top_k,
        model_winner: outcome.winner,
        sim_winner,
        sim_winner_model_rank,
        topk_overlap,
        winner_cycles: outcome.winner_score,
        sim_winner_cycles: sim_cycles[sim_winner],
        two_phase: two_phase_t,
        simulate_all: simulate_all_t,
        speedup: simulate_all_t.mean / two_phase_t.mean,
        miss_err_mean: err_sum / grid.len() as f64,
        miss_err_max: err_max,
        best_square_cycles,
        best_rect_cycles,
    }
}

fn row_json(r: &SweepRow) -> String {
    format!(
        "{{\"kernel\": \"{}\", \"probe_n\": {}, \"shapes\": {}, \
         \"candidates\": {}, \"top_k\": {}, \
         \"model_winner\": {}, \"sim_winner\": {}, \
         \"sim_winner_model_rank\": {}, \"winner_in_top_k\": {}, \
         \"topk_overlap\": {}, \
         \"winner_cycles\": {}, \"sim_winner_cycles\": {}, \
         \"two_phase\": {}, \"simulate_all\": {}, \"speedup\": {:.3}, \
         \"miss_err_mean\": {:.4}, \"miss_err_max\": {:.4}, \
         \"best_square_cycles\": {}, \"best_rect_cycles\": {}}}",
        r.kernel,
        r.probe_n,
        r.shapes,
        r.candidates,
        r.top_k,
        r.model_winner,
        r.sim_winner,
        r.sim_winner_model_rank,
        r.sim_winner_model_rank < r.top_k,
        r.topk_overlap,
        r.winner_cycles,
        r.sim_winner_cycles,
        r.two_phase.to_json(),
        r.simulate_all.to_json(),
        r.speedup,
        r.miss_err_mean,
        r.miss_err_max,
        r.best_square_cycles
            .map_or_else(|| "null".into(), |c| c.to_string()),
        r.best_rect_cycles
            .map_or_else(|| "null".into(), |c| c.to_string()),
    )
}

/// Run the full sweep and write `BENCH_model.json`. Returns the rows.
///
/// The aggregate speedup floor is 10x in full mode and 2x in quick mode
/// (tiny grids cannot amortize as much).
pub fn run(opts: &SweepOptions) -> Vec<SweepRow> {
    let specs = specs(opts);
    println!(
        "{:<16} {:>6} {:>7} {:>10} {:>6} {:>9} {:>8} {:>12} {:>12} {:>8}",
        "model sweep",
        "n",
        "shapes",
        "candidates",
        "top_k",
        "sim rank",
        "overlap",
        "two-phase s",
        "sim-all s",
        "speedup"
    );
    let mut rows = Vec::new();
    for spec in &specs {
        let r = sweep_kernel(spec, opts);
        println!(
            "{:<16} {:>6} {:>7} {:>10} {:>6} {:>9} {:>8} {:>12.4} {:>12.4} {:>7.1}x",
            r.kernel,
            r.probe_n,
            r.shapes,
            r.candidates,
            r.top_k,
            r.sim_winner_model_rank,
            r.topk_overlap,
            r.two_phase.mean,
            r.simulate_all.mean,
            r.speedup
        );
        rows.push(r);
    }

    let total_two: f64 = rows.iter().map(|r| r.two_phase.mean).sum();
    let total_sim: f64 = rows.iter().map(|r| r.simulate_all.mean).sum();
    let aggregate = total_sim / total_two;
    let floor = if opts.quick { 2.0 } else { 10.0 };
    println!(
        "{:<16} {:>52} {:>12.4} {:>12.4} {:>7.1}x",
        "aggregate", "", total_two, total_sim, aggregate
    );
    assert_speedup("two-phase model search (aggregate)", aggregate, floor);

    let mut report = BenchReport::new();
    report.field_str("schema", "shackle-model-sweep-v1");
    report.field_raw(
        "options",
        format!(
            "{{\"quick\": {}, \"top_k\": {}, \"runs\": {}}}",
            opts.quick, opts.top_k, opts.runs
        ),
    );
    report.section("kernels");
    for r in &rows {
        report.row(row_json(r));
    }
    report.field_raw(
        "aggregate",
        format!(
            "{{\"two_phase_secs\": {total_two:.6}, \
             \"simulate_all_secs\": {total_sim:.6}, \
             \"speedup\": {aggregate:.3}, \"floor\": {floor:.1}, \
             \"winner_in_top_k_all\": {}}}",
            rows.iter().all(|r| r.sim_winner_model_rank < r.top_k)
        ),
    );
    report
        .write("BENCH_model.json")
        .expect("write BENCH_model.json");
    println!("wrote BENCH_model.json");
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_matmul_ranks_and_asserts() {
        let opts = SweepOptions {
            quick: true,
            runs: 1,
            kernels: Some(vec!["matmul_ijk".to_string()]),
            ..Default::default()
        };
        let specs = specs(&opts);
        assert_eq!(specs.len(), 1);
        let r = sweep_kernel(&specs[0], &opts);
        // 12 shapes (6 single + 6 product) over 3 widths
        assert_eq!(r.candidates, 6 * 3 + 6 * 9);
        assert!(r.sim_winner_model_rank < r.top_k);
        assert!(r.winner_cycles > 0);
        assert!(r.winner_cycles <= r.sim_winner_cycles * 2);
        assert!(r.miss_err_mean >= 0.0 && r.miss_err_max >= r.miss_err_mean);
    }

    #[test]
    fn specs_cover_every_in_repo_kernel() {
        let names: Vec<&str> = specs(&SweepOptions::default())
            .iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(
            names,
            [
                "matmul_ijk",
                "matmul_rect",
                "cholesky_right",
                "cholesky_left",
                "gauss",
                "qr_householder",
                "adi",
                "backsolve",
                "syrk",
                "jacobi2d",
                "tensor_contract"
            ]
        );
        for s in specs(&SweepOptions::default()) {
            // grid cardinality: widths^factors per shape for the square
            // sweep, widths^cuts for the rectangular one
            let n: usize = s
                .shapes
                .iter()
                .map(|shape| {
                    let slots = if s.rect {
                        shape.iter().map(|f| f.blocking().cuts().len()).sum()
                    } else {
                        shape.len()
                    };
                    s.widths.len().pow(slots as u32)
                })
                .sum();
            assert!(n >= 1000, "{}: dense grid only reaches {}", s.name, n);
        }
    }

    /// Satellite coverage tripwire: every `ir::kernels` builder must be
    /// reachable from a harness, so future kernels cannot silently drop
    /// out the way `backsolve`/`gauss_seidel_1d` once did. A kernel is
    /// covered by a modelperf sweep spec or by a documented exemption:
    /// `banded_cholesky` takes a second parameter `P` the single-`N`
    /// sweep protocol cannot express (it is exercised by the exec tiers
    /// and the banded pipeline tests), and `gauss_seidel_1d` has no
    /// legal shackle at all (its negative search result is recorded by
    /// `perf_report`'s BENCH_search section).
    #[test]
    fn every_ir_kernel_is_swept_or_exempt() {
        let covered: Vec<&str> = specs(&SweepOptions::default())
            .iter()
            .map(|s| s.name)
            .collect();
        let exempt = ["banded_cholesky", "gauss_seidel_1d"];
        for (name, _) in kernels::all() {
            assert!(
                covered.contains(&name) || exempt.contains(&name),
                "ir::kernels::{name} is not covered by any modelperf sweep \
                 spec and not on the documented exemption list"
            );
        }
        for name in exempt {
            assert!(
                kernels::all().iter().any(|(n, _)| *n == name),
                "exemption list names unknown kernel {name}"
            );
        }
    }
}
