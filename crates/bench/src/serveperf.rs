//! Load harness for the optimization daemon (`shackle-serve`):
//! latency/throughput under concurrent clients, and the cross-request
//! polyhedral store's cold-vs-warm hit rates across a daemon restart.
//!
//! The harness runs the real server in-process over loopback TCP (the
//! same `serve_tcp` loop the binary runs) and drives it in four phases:
//!
//! 1. **Quote load** — every concurrency level sends a stream of
//!    model-only `quote` requests; per-request latency is recorded for
//!    p50/p99 and requests/second.
//! 2. **Cold optimize** — starting from an empty polyhedral cache, each
//!    kernel of the mix is optimized once; the memo-cache hit rate of
//!    this pass is the *single-run* rate (intra-search reuse only — the
//!    30–75% band the batch harness reports).
//! 3. **Optimize load** — each concurrency level sends `optimize`
//!    requests round-robin over the mix, measuring the served (warm
//!    in-memory) latency distribution.
//! 4. **Warm restart** — the daemon shuts down (persisting the store),
//!    the in-memory cache is wiped, a second daemon generation loads
//!    the store from disk and replays the same mix; its hit rate must
//!    *strictly* exceed the cold rate, which is the whole point of a
//!    cache that outlives the process.
//!
//! `BENCH_serve.json` (schema `shackle-serve-v1`) records all of it;
//! the `serveperf` binary drives this module, `--profile` additionally
//! renders the daemon's span tree.

use crate::report::BenchReport;
use shackle_ir::kernels;
use shackle_ir::parse::to_source;
use shackle_polyhedra::cache;
use shackle_serve::{Client, Request, Response, Server};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Load-run options.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Quick mode: fewer requests per level — the CI smoke
    /// configuration.
    pub quick: bool,
    /// Concurrency levels swept (the acceptance floor is three).
    pub concurrency: Vec<usize>,
    /// Quote requests per client per level.
    pub quote_requests: usize,
    /// Optimize requests per client per level.
    pub optimize_requests: usize,
    /// Worker threads for the in-process server.
    pub workers: usize,
    /// Render the daemon's probe span tree after the run.
    pub profile: bool,
    /// Enforce the acceptance floors (warm > cold, quote speedup).
    /// Unit tests disable this: the polyhedral cache and its stats are
    /// process-global, so a parallel test binary cannot measure rates
    /// in isolation; the `serveperf` binary always enforces.
    pub enforce: bool,
    /// Output artifact path.
    pub out: PathBuf,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            quick: false,
            concurrency: vec![1, 4, 8],
            quote_requests: 200,
            optimize_requests: 4,
            workers: 8,
            profile: false,
            enforce: true,
            out: PathBuf::from("BENCH_serve.json"),
        }
    }
}

impl LoadOptions {
    /// The quick (CI smoke) configuration.
    pub fn quick() -> Self {
        Self {
            quick: true,
            quote_requests: 50,
            optimize_requests: 2,
            ..Default::default()
        }
    }
}

/// One measured load level.
#[derive(Clone, Debug)]
pub struct LoadRow {
    /// `"quote"` or `"optimize"`.
    pub mode: &'static str,
    /// Concurrent clients.
    pub concurrency: usize,
    /// Total requests across the level.
    pub requests: usize,
    /// Median per-request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile per-request latency, microseconds.
    pub p99_us: u64,
    /// Mean per-request latency, microseconds.
    pub mean_us: u64,
    /// Level throughput, requests per second.
    pub req_per_s: f64,
}

/// The cold/warm cache comparison across the simulated restart.
#[derive(Clone, Copy, Debug)]
pub struct CacheComparison {
    /// Memo queries issued by the cold pass.
    pub cold_queries: u64,
    /// Memo hits in the cold pass (intra-search reuse only).
    pub cold_hits: u64,
    /// Memo queries issued by the warm (post-restart) pass.
    pub warm_queries: u64,
    /// Memo hits in the warm pass (served by the reloaded store).
    pub warm_hits: u64,
    /// Bytes the store serialized to on shutdown.
    pub store_bytes: u64,
    /// Entries the second daemon generation loaded.
    pub store_entries: usize,
}

impl CacheComparison {
    /// Cold-pass hit rate in `[0, 1]`.
    pub fn cold_rate(&self) -> f64 {
        self.cold_hits as f64 / (self.cold_queries as f64).max(1.0)
    }

    /// Warm-pass hit rate in `[0, 1]`.
    pub fn warm_rate(&self) -> f64 {
        self.warm_hits as f64 / (self.warm_queries as f64).max(1.0)
    }
}

/// Everything one load run measured (and wrote to the artifact).
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Quote levels, one per concurrency.
    pub quote: Vec<LoadRow>,
    /// Optimize levels, one per concurrency.
    pub optimize: Vec<LoadRow>,
    /// The restart experiment.
    pub cache: CacheComparison,
    /// Cold single-request optimize mean, microseconds.
    pub optimize_cold_mean_us: u64,
    /// Quote p50 at concurrency 1, microseconds.
    pub quote_p50_us: u64,
    /// `optimize_cold_mean_us / quote_p50_us`.
    pub quote_ratio: f64,
}

/// The served kernel mix: `(name, request)` for one optimize each.
/// Small probe sizes keep a full search in tens of milliseconds so the
/// harness finishes quickly even in debug builds.
fn mix() -> Vec<(&'static str, Request)> {
    vec![
        (
            "matmul_ijk",
            Request::Optimize {
                probe_n: 24,
                width: 8,
                init: "ones".into(),
                source: to_source(&kernels::matmul_ijk()),
            },
        ),
        (
            "gauss",
            Request::Optimize {
                probe_n: 16,
                width: 8,
                init: "ones".into(),
                source: to_source(&kernels::gauss()),
            },
        ),
        (
            "cholesky_right",
            Request::Optimize {
                probe_n: 12,
                width: 4,
                init: "spd:A:3".into(),
                source: to_source(&kernels::cholesky_right()),
            },
        ),
    ]
}

/// Start one daemon generation on an ephemeral loopback port. The
/// store is loaded synchronously *before* the serve thread spawns, so
/// the caller can observe the loaded entry count without racing the
/// daemon (`serve_tcp` re-loads, which is an idempotent overwrite).
fn start_server(
    workers: usize,
    store: Option<PathBuf>,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server = Arc::new(Server::new().with_workers(workers).with_store(store));
    server.load_store().expect("load store");
    let handle = std::thread::spawn(move || {
        server.serve_tcp(listener).expect("serve_tcp");
    });
    (addr, handle)
}

/// Send a shutdown frame and join the daemon thread (the shutdown path
/// persists the store).
fn stop_server(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    match c.request(&Request::Shutdown).expect("shutdown request") {
        Response::ShuttingDown => {}
        r => panic!("unexpected shutdown response {r:?}"),
    }
    drop(c);
    handle.join().expect("daemon thread");
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn expect_ok(resp: &Response) {
    match resp {
        Response::Optimized { .. } | Response::Quoted { .. } => {}
        r => panic!("load request failed: {r:?}"),
    }
}

/// Run one load level: `concurrency` clients, each sending
/// `per_client` requests from `reqs` round-robin, recording
/// per-request latencies.
fn load_level(
    mode: &'static str,
    addr: SocketAddr,
    concurrency: usize,
    per_client: usize,
    reqs: &[Request],
) -> LoadRow {
    let wall = Instant::now();
    let handles: Vec<_> = (0..concurrency)
        .map(|c| {
            let reqs = reqs.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut lat = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let req = &reqs[(c + i) % reqs.len()];
                    let t = Instant::now();
                    let resp = client.request(req).expect("request");
                    lat.push(t.elapsed().as_micros() as u64);
                    expect_ok(&resp);
                }
                lat
            })
        })
        .collect();
    let mut lat: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = wall.elapsed().as_secs_f64();
    lat.sort_unstable();
    let requests = lat.len();
    let mean = lat.iter().sum::<u64>() / requests.max(1) as u64;
    LoadRow {
        mode,
        concurrency,
        requests,
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
        mean_us: mean,
        req_per_s: requests as f64 / wall.max(1e-9),
    }
}

/// Snapshot of the memo-cache query/hit totals.
fn poly_totals() -> (u64, u64) {
    let s = cache::stats();
    (
        s.feasibility_queries + s.projection_queries + s.gist_queries,
        s.feasibility_hits + s.projection_hits + s.gist_hits,
    )
}

fn row_json(r: &LoadRow) -> String {
    format!(
        "{{\"mode\": \"{}\", \"concurrency\": {}, \"requests\": {}, \
         \"p50_us\": {}, \"p99_us\": {}, \"mean_us\": {}, \
         \"req_per_s\": {:.1}}}",
        r.mode, r.concurrency, r.requests, r.p50_us, r.p99_us, r.mean_us, r.req_per_s
    )
}

fn print_row(r: &LoadRow) {
    println!(
        "{:<10} {:>5} {:>9} {:>10} {:>10} {:>10} {:>10.1}",
        r.mode, r.concurrency, r.requests, r.p50_us, r.p99_us, r.mean_us, r.req_per_s
    );
}

/// Run the full load experiment and write the artifact.
///
/// # Panics
///
/// With `opts.enforce`, panics if the warm hit rate does not strictly
/// exceed the cold rate, or the quote path is not at least 100× (10×
/// quick — debug builds compress the gap) faster than a cold optimize.
pub fn run(opts: &LoadOptions) -> ServeReport {
    assert!(
        opts.concurrency.len() >= 3,
        "the load sweep needs at least three concurrency levels"
    );
    let store =
        std::env::temp_dir().join(format!("shackle-serveperf-{}.store", std::process::id()));
    let _ = std::fs::remove_file(&store);
    let mix = mix();
    let optimize_reqs: Vec<Request> = mix.iter().map(|(_, r)| r.clone()).collect();
    let quote_reqs: Vec<Request> = mix
        .iter()
        .map(|(_, r)| match r {
            Request::Optimize {
                probe_n, source, ..
            } => Request::Quote {
                probe_n: *probe_n,
                source: source.clone(),
            },
            _ => unreachable!("mix is optimize requests"),
        })
        .collect();

    println!(
        "{:<10} {:>5} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "mode", "conc", "requests", "p50 us", "p99 us", "mean us", "req/s"
    );

    // Generation 1: cold daemon, empty cache and no store on disk.
    cache::clear_cache();
    cache::reset_stats();
    let (addr, handle) = start_server(opts.workers, Some(store.clone()));

    // Phase 1: quote load. The quote path never touches the polyhedral
    // cache, so this leaves the cold/warm bookkeeping undisturbed.
    let mut quote_rows = Vec::new();
    for &c in &opts.concurrency {
        let row = load_level("quote", addr, c, opts.quote_requests, &quote_reqs);
        print_row(&row);
        quote_rows.push(row);
    }

    // Phase 2: the cold pass — each kernel optimized exactly once, one
    // client, so the hit rate is pure intra-search memoization.
    let (q0, h0) = poly_totals();
    let mut cold_lat = Vec::with_capacity(optimize_reqs.len());
    {
        let mut client = Client::connect(addr).expect("connect");
        for req in &optimize_reqs {
            let t = Instant::now();
            let resp = client.request(req).expect("cold optimize");
            cold_lat.push(t.elapsed().as_micros() as u64);
            expect_ok(&resp);
        }
    }
    let (q1, h1) = poly_totals();
    let optimize_cold_mean_us = cold_lat.iter().sum::<u64>() / cold_lat.len().max(1) as u64;

    // Phase 3: optimize load over the (now in-memory-warm) mix.
    let mut optimize_rows = Vec::new();
    for &c in &opts.concurrency {
        let row = load_level("optimize", addr, c, opts.optimize_requests, &optimize_reqs);
        print_row(&row);
        optimize_rows.push(row);
    }

    // Phase 4: restart. Shutdown persists the store; wipe the
    // in-memory cache; the next generation reloads from disk and
    // replays the same mix.
    stop_server(addr, handle);
    let store_bytes = std::fs::metadata(&store).map(|m| m.len()).unwrap_or(0);
    cache::clear_cache();
    let store_entries_before = cache::entry_count();
    assert_eq!(store_entries_before, 0, "clear_cache left entries behind");
    let (addr, handle) = start_server(opts.workers, Some(store.clone()));
    let store_entries = cache::entry_count();
    let (q2, h2) = poly_totals();
    {
        let mut client = Client::connect(addr).expect("connect");
        for req in &optimize_reqs {
            expect_ok(&client.request(req).expect("warm optimize"));
        }
    }
    let (q3, h3) = poly_totals();

    if opts.profile {
        let mut client = Client::connect(addr).expect("connect");
        match client.request(&Request::Stats).expect("stats") {
            Response::Stats { json } => println!("daemon stats: {json}"),
            r => panic!("unexpected stats response {r:?}"),
        }
        print!("{}", shackle_probe::profile().render_tree());
    }
    stop_server(addr, handle);
    let _ = std::fs::remove_file(&store);

    let cache_cmp = CacheComparison {
        cold_queries: q1 - q0,
        cold_hits: h1 - h0,
        warm_queries: q3 - q2,
        warm_hits: h3 - h2,
        store_bytes,
        store_entries,
    };
    let quote_p50_us = quote_rows
        .iter()
        .find(|r| r.concurrency == opts.concurrency[0])
        .map_or(1, |r| r.p50_us);
    let quote_ratio = optimize_cold_mean_us as f64 / quote_p50_us.max(1) as f64;
    println!(
        "cold hit rate {:.1}% ({} / {}), warm hit rate {:.1}% ({} / {}), \
         store {} entries / {} bytes",
        100.0 * cache_cmp.cold_rate(),
        cache_cmp.cold_hits,
        cache_cmp.cold_queries,
        100.0 * cache_cmp.warm_rate(),
        cache_cmp.warm_hits,
        cache_cmp.warm_queries,
        cache_cmp.store_entries,
        cache_cmp.store_bytes,
    );
    println!(
        "quote p50 {} us vs cold optimize mean {} us: {:.0}x",
        quote_p50_us, optimize_cold_mean_us, quote_ratio
    );

    let quote_floor = if opts.quick { 10.0 } else { 100.0 };
    if opts.enforce {
        assert!(
            cache_cmp.warm_rate() > cache_cmp.cold_rate(),
            "warm hit rate {:.3} must strictly exceed cold {:.3}: \
             the persistent store is not paying for itself",
            cache_cmp.warm_rate(),
            cache_cmp.cold_rate()
        );
        assert!(
            quote_ratio >= quote_floor,
            "quote path only {quote_ratio:.1}x faster than cold optimize \
             (floor {quote_floor}x)"
        );
        assert!(store_entries > 0, "restart loaded an empty store");
    }

    let mut report = BenchReport::new();
    report.field_str("schema", "shackle-serve-v1");
    report.field_raw(
        "options",
        format!(
            "{{\"quick\": {}, \"concurrency\": {:?}, \"quote_requests\": {}, \
             \"optimize_requests\": {}, \"workers\": {}}}",
            opts.quick, opts.concurrency, opts.quote_requests, opts.optimize_requests, opts.workers
        ),
    );
    report.section("quote_load");
    for r in &quote_rows {
        report.row(row_json(r));
    }
    report.section("optimize_load");
    for r in &optimize_rows {
        report.row(row_json(r));
    }
    report.field_raw(
        "cache",
        format!(
            "{{\"cold_queries\": {}, \"cold_hits\": {}, \"cold_hit_rate\": {:.4}, \
             \"warm_queries\": {}, \"warm_hits\": {}, \"warm_hit_rate\": {:.4}, \
             \"store_bytes\": {}, \"store_entries\": {}}}",
            cache_cmp.cold_queries,
            cache_cmp.cold_hits,
            cache_cmp.cold_rate(),
            cache_cmp.warm_queries,
            cache_cmp.warm_hits,
            cache_cmp.warm_rate(),
            cache_cmp.store_bytes,
            cache_cmp.store_entries,
        ),
    );
    report.field_raw(
        "quote_vs_optimize",
        format!(
            "{{\"quote_p50_us\": {}, \"optimize_cold_mean_us\": {}, \
             \"ratio\": {:.1}, \"floor\": {:.1}}}",
            quote_p50_us, optimize_cold_mean_us, quote_ratio, quote_floor
        ),
    );
    report.write(&opts.out).expect("write BENCH_serve.json");
    println!("wrote {}", opts.out.display());

    ServeReport {
        quote: quote_rows,
        optimize: optimize_rows,
        cache: cache_cmp,
        optimize_cold_mean_us,
        quote_p50_us,
        quote_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_nearest_rank() {
        let v = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        // nearest rank over (len - 1): (9 * 0.5).round() = index 5
        assert_eq!(percentile(&v, 0.50), 60);
        assert_eq!(percentile(&v, 0.99), 100);
        assert_eq!(percentile(&v, 0.0), 10);
        assert_eq!(percentile(&[11, 22, 33], 0.5), 22);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn quick_load_measures_all_levels_and_writes_artifact() {
        let out = std::env::temp_dir().join(format!(
            "shackle-serveperf-test-{}.json",
            std::process::id()
        ));
        let opts = LoadOptions {
            quote_requests: 5,
            optimize_requests: 1,
            // The memo cache and its stats are process-global and this
            // binary's other tests run concurrently, so hit-rate
            // ordering cannot be asserted here; the serveperf binary
            // (single-tenant process) enforces it.
            enforce: false,
            out: out.clone(),
            ..LoadOptions::quick()
        };
        let report = run(&opts);
        assert_eq!(report.quote.len(), 3);
        assert_eq!(report.optimize.len(), 3);
        for r in report.quote.iter().chain(&report.optimize) {
            assert!(r.requests > 0);
            assert!(r.p50_us <= r.p99_us);
            assert!(r.req_per_s > 0.0);
        }
        assert!(report.cache.cold_queries > 0);
        assert!(report.cache.store_entries > 0);
        assert!(report.quote_ratio > 1.0);
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("\"schema\": \"shackle-serve-v1\""));
        assert!(text.contains("\"quote_load\""));
        assert!(text.contains("\"optimize_load\""));
        assert!(text.contains("\"cold_hit_rate\""));
        let _ = std::fs::remove_file(&out);
    }
}
