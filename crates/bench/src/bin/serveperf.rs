//! Load generator for the optimization daemon: p50/p99 latency and
//! throughput at several concurrency levels, plus the cold-vs-warm
//! polyhedral-store comparison across a daemon restart. Writes
//! `BENCH_serve.json` (schema `shackle-serve-v1`).
//!
//! ```text
//! serveperf [--quick] [--profile] [--out PATH]
//! ```
//!
//! `--quick` is the CI smoke configuration (fewer requests per level,
//! relaxed quote-speedup floor); `--profile` enables `shackle-probe`
//! and renders the daemon's span tree after the run.

use shackle_bench::serveperf::{run, LoadOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut opts = LoadOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                opts = LoadOptions {
                    out: opts.out,
                    profile: opts.profile,
                    ..LoadOptions::quick()
                }
            }
            "--profile" => opts.profile = true,
            "--out" => match args.next() {
                Some(p) => opts.out = p.into(),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    if opts.profile {
        shackle_probe::set_enabled(true);
    }
    run(&opts);
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("serveperf: {err}\nusage: serveperf [--quick] [--profile] [--out PATH]");
    ExitCode::FAILURE
}
