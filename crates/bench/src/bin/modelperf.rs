//! `modelperf` — the analytical-model validation sweep.
//!
//! Runs `shackle_bench::modelperf::run` over every in-repo kernel:
//! ranks a dense candidate grid with the `shackle-model` predictor,
//! re-scores the top-K survivors exactly, compares against a
//! simulate-everything baseline, and writes `BENCH_model.json`.
//!
//! Flags:
//!
//! * `--quick`        — 3-width grid, one timing run, relaxed speedup
//!   floor (the CI smoke configuration)
//! * `--top-k K`      — exact-rescore survivor count (default 8)
//! * `--runs R`       — timing repetitions per speedup row (default 5)
//! * `--widths 4,8,…` — override the block-width sweep for all kernels
//! * `--kernels a,b`  — restrict to the named kernels

use shackle_bench::modelperf::{run, SweepOptions};

fn main() {
    let mut opts = SweepOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--quick" => {
                opts.quick = true;
                opts.runs = 1;
            }
            "--top-k" => {
                opts.top_k = value("--top-k").parse().expect("--top-k: not a number");
            }
            "--runs" => {
                opts.runs = value("--runs").parse().expect("--runs: not a number");
            }
            "--widths" => {
                opts.widths = Some(
                    value("--widths")
                        .split(',')
                        .map(|w| w.trim().parse().expect("--widths: not a number"))
                        .collect(),
                );
            }
            "--kernels" => {
                opts.kernels = Some(
                    value("--kernels")
                        .split(',')
                        .map(|k| k.trim().to_string())
                        .collect(),
                );
            }
            other => {
                panic!("unknown flag {other}; known: --quick --top-k --runs --widths --kernels")
            }
        }
    }
    run(&opts);
}
