//! Ablation: physical data reshaping (§5.3 — "nothing prevents us from
//! reshaping the physical data array").
//!
//! Runs the same fully-blocked matmul trace through two storage layouts
//! — column-major and block-major with the matching block size — at a
//! power-of-two size where column-major leading-dimension strides cause
//! set conflicts in the 4-way simulated cache. Block-major storage makes
//! each block contiguous and removes the pathology with zero change to
//! the generated code (shackling "takes no position on how the remapped
//! data is stored").

use shackle_bench::prelude::*;
use std::collections::BTreeMap;

struct BlockMajorAll<'a> {
    n: usize,
    b: usize,
    hierarchy: &'a mut Hierarchy,
}

impl Observer for BlockMajorAll<'_> {
    fn record(&mut self, acc: Access<'_>) {
        // stack the three arrays' block-major regions 8 MB apart
        let region: u64 = match acc.array {
            "C" => 0,
            "A" => 8 << 20,
            _ => 16 << 20,
        };
        let i = acc.offset % self.n;
        let j = acc.offset / self.n;
        self.hierarchy
            .access(region + block_major_address(self.n, self.b, i, j));
    }
}

fn main() {
    let (n, b) = (256_i64, 32usize);
    let p = kernels::matmul_ijk();
    let blocked = generate_scanned(&p, &shackles::matmul_ca(&p, b as i64));
    let params = BTreeMap::from([("N".to_string(), n)]);
    let init = verify::hash_init(9);
    println!("Layout ablation: blocked matmul, n = {n} (power of two), block {b}");

    let mut h_col = Hierarchy::sp2_thin_node();
    trace_execution(&blocked, &params, &init, &mut h_col);

    let mut h_blk = Hierarchy::sp2_thin_node();
    {
        let mut ws = Workspace::for_program(&blocked, &params, &init);
        let mut obs = BlockMajorAll {
            n: n as usize,
            b,
            hierarchy: &mut h_blk,
        };
        execute_compiled(&blocked, &mut ws, &params, &mut obs);
    }

    println!("{:<28} {:>12} {:>14}", "layout", "L1 misses", "mem cycles");
    println!(
        "{:<28} {:>12} {:>14}",
        "column-major",
        h_col.level_stats()[0].misses,
        h_col.cycles()
    );
    println!(
        "{:<28} {:>12} {:>14}",
        format!("block-major ({b}x{b})"),
        h_blk.level_stats()[0].misses,
        h_blk.cycles()
    );
    let ratio = h_col.cycles() as f64 / h_blk.cycles() as f64;
    println!("reshaping speedup on memory cycles: {ratio:.2}x");
}
