//! Ablation: address translation. EXPERIMENTS.md notes our base SP-2
//! model omits TLB misses (one reason the simulated input Cholesky
//! bottoms out above the paper's 8 MFLOPS). Attaching a POWER2-like TLB
//! penalizes the strided input sweep far more than the blocked code,
//! pushing the input curve toward the paper's floor.

use shackle_bench::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let n = 300_i64;
    let p = kernels::cholesky_right();
    let blocked = generate_scanned(&p, &shackles::cholesky_product(&p, 32));
    let params = BTreeMap::from([("N".to_string(), n)]);
    let init = gen::spd_ws_init("A", n as usize, 5);
    println!("TLB ablation: Cholesky n = {n}, simulated SP-2");
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "configuration", "no TLB", "with TLB", "TLB misses", "TLB miss%", "walk cycles"
    );
    for (label, prog) in [
        ("input right-looking", &p),
        ("fully blocked (32)", &blocked),
    ] {
        let mut plain = Hierarchy::sp2_thin_node();
        let s1 = trace_execution(prog, &params, &init, &mut plain);
        let mut tlb = Hierarchy::sp2_thin_node().with_tlb(TlbConfig::power2_like());
        let s2 = trace_execution(prog, &params, &init, &mut tlb);
        let m = model::perf(model::SCALAR_CYCLES_PER_FLOP);
        let ts = tlb.tlb_stats().expect("TLB attached");
        println!(
            "{label:<26} {:>12.2} {:>12.2} {:>12} {:>9.2}% {:>12}",
            m.mflops(s1.flops, plain.cycles()),
            m.mflops(s2.flops, tlb.cycles()),
            ts.misses,
            100.0 * ts.miss_ratio(),
            tlb.tlb_walk_cycles(),
        );
    }
}
