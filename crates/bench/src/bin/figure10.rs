//! Regenerates the multi-level blocking experiment of §6.3 / Figure 10:
//! matrix multiplication blocked for two levels of memory hierarchy, on
//! the simulated two-level hierarchy (16 KB L1 / 512 KB L2).

use shackle_bench::prelude::*;

fn main() {
    let (n, w1, w2) = (192, 64, 8);
    println!("Figure 10 experiment: matmul n={n}, outer block {w1}, inner block {w2}");
    println!(
        "hierarchy: L1 16KB/64B/2-way (hits free), L2 128KB/128B/8-way (10 cyc), mem 80 cyc\n"
    );
    println!(
        "{:<22} {:>12} {:>12} {:>14}",
        "configuration", "L1 misses", "L2 misses", "mem cycles"
    );
    let (rows, phases) = timed_phases(|| figure10(n, w1, w2));
    for r in rows {
        println!(
            "{:<22} {:>12} {:>12} {:>14}",
            r.label, r.l1_misses, r.l2_misses, r.cycles
        );
    }
    eprint!("\n{phases}");
}
