//! Harness performance report: tree interpreter vs compiled engine.
//!
//! Times each evaluation kernel through both execution paths (same
//! program, same workspace contents, `NullObserver`) and writes
//! `BENCH_exec.json` with instances/second for each, plus the speedup.
//! The compiled engine is the hot path under every figure sweep, so
//! this is the number that decides how long the harness takes.
//!
//! Run in release mode: `cargo run --release --bin perf_report`.

use shackle_exec::{compile, execute, NullObserver, Workspace};
use shackle_ir::Program;
use std::collections::BTreeMap;
use std::time::Instant;

struct Row {
    kernel: &'static str,
    n: i64,
    instances: u64,
    tree_ips: f64,
    compiled_ips: f64,
}

/// Best-of-`reps` wall-clock seconds for one closure.
fn best_secs(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn measure(
    kernel: &'static str,
    program: &Program,
    params: &BTreeMap<String, i64>,
    n: i64,
    init: impl Fn(&str, &[usize]) -> f64,
) -> Row {
    let reps = 3;
    let template = Workspace::for_program(program, params, &init);

    let mut stats = Default::default();
    let tree = best_secs(reps, || {
        let mut ws = template.clone();
        stats = execute(program, &mut ws, params, &mut NullObserver);
    });
    let cp = compile(program);
    let compiled = best_secs(reps, || {
        let mut ws = template.clone();
        let s = cp.execute(&mut ws, params, &mut NullObserver);
        assert_eq!(s, stats, "engines must agree on {kernel}");
    });
    Row {
        kernel,
        n,
        instances: stats.instances,
        tree_ips: stats.instances as f64 / tree,
        compiled_ips: stats.instances as f64 / compiled,
    }
}

fn main() {
    let params_n = |n: i64| BTreeMap::from([("N".to_string(), n)]);
    let ones = |_: &str, _: &[usize]| 1.0;
    let mut rows = Vec::new();

    let n = 64;
    rows.push(measure(
        "matmul_ijk",
        &shackle_ir::kernels::matmul_ijk(),
        &params_n(n),
        n,
        ones,
    ));
    rows.push(measure(
        "cholesky_right",
        &shackle_ir::kernels::cholesky_right(),
        &params_n(n),
        n,
        shackle_exec::verify::spd_init("A", n as usize, 3),
    ));
    rows.push(measure(
        "qr_householder",
        &shackle_ir::kernels::qr_householder(),
        &params_n(48),
        48,
        shackle_exec::verify::hash_init(3),
    ));
    rows.push(measure(
        "gauss",
        &shackle_ir::kernels::gauss(),
        &params_n(n),
        n,
        shackle_exec::verify::spd_init("A", n as usize, 5),
    ));
    rows.push(measure(
        "adi",
        &shackle_ir::kernels::adi(),
        &params_n(96),
        96,
        |name: &str, idx: &[usize]| {
            if name == "B" {
                2.0 + (idx[0] % 7) as f64
            } else {
                (idx[0] % 5) as f64
            }
        },
    ));

    println!(
        "{:<16} {:>6} {:>10} {:>16} {:>16} {:>8}",
        "kernel", "n", "instances", "tree inst/s", "compiled inst/s", "speedup"
    );
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = r.compiled_ips / r.tree_ips;
        println!(
            "{:<16} {:>6} {:>10} {:>16.0} {:>16.0} {:>7.2}x",
            r.kernel, r.n, r.instances, r.tree_ips, r.compiled_ips, speedup
        );
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"instances\": {}, \
             \"tree_instances_per_sec\": {:.0}, \
             \"compiled_instances_per_sec\": {:.0}, \
             \"speedup\": {:.3}}}{}\n",
            r.kernel,
            r.n,
            r.instances,
            r.tree_ips,
            r.compiled_ips,
            speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    println!("\nwrote BENCH_exec.json");
}
