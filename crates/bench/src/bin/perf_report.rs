//! Harness performance report: tree interpreter vs compiled bytecode
//! engine vs native (`rustc`-compiled) tier, plus the auto-shackle
//! search and memsim sweep pipelines.
//!
//! Times each evaluation kernel through all three execution tiers
//! (same program, same workspace contents) with repeated-run
//! [`Timing`]s and writes `BENCH_exec.json`: per-kernel mean/min/max
//! seconds per tier and speedups computed from the means. The tree
//! interpreter is the semantics of record, so before timing, each
//! faster tier's [`ExecStats`] and final array contents are asserted
//! bit-identical to it. After the timed runs, every kernel is rebuilt
//! through the native build cache and the probe counters must show
//! zero `rustc` invocations — the warm-cache proof recorded in the
//! artifact. Without a working `rustc` the native columns record
//! `null` and the native speedup floor is skipped.
//!
//! Then times the §8 auto-shackle search (enumerate → grow → score →
//! select) through both pipelines of `shackle_bench::searchperf` —
//! asserting byte-identical results — and writes `BENCH_search.json`
//! with the wall times, the speedup, and the `PolyStats` cache
//! counters of the memoized run.
//!
//! Then times the multi-configuration cache sweep through both
//! simulator pipelines — the pre-stack-engine flow (re-execute the
//! kernel and direct-simulate once per cache configuration) against
//! capture-once + single stack pass — asserting bit-identical hit/miss
//! counts per configuration, and writes `BENCH_memsim.json`.
//!
//! Every run appends one line to `BENCH_history.jsonl`: the aggregate
//! speedups plus an environment fingerprint (CPU count,
//! `SHACKLE_THREADS`, build profile, toolchain, git SHA), so numbers
//! can be compared across time without conflating machines.
//!
//! With `--profile`, additionally runs an instrumented pass of the full
//! pipeline (search → legality → codegen → exec → memsim) for the
//! Cholesky and matmul kernels through `shackle-probe`, prints the
//! phase tree, measures the instrumentation overhead on the compiled
//! hot path (asserted ≤ 2%), and writes `BENCH_profile.json`. The
//! regular reports above always run with instrumentation disabled, so
//! their artifacts are byte-identical with or without the flag.
//!
//! Run in release mode: `cargo run --release --bin perf_report`.
//! `--quick` shrinks the problem sizes (and the native speedup floor)
//! to the CI smoke grid.

use shackle_bench::history;
use shackle_bench::prelude::*;
use shackle_bench::report::{assert_speedup, Timing};
use shackle_bench::searchperf::{auto_search, Mode, SearchOutcome};
use shackle_exec::native::{self, NativeKernel};
use shackle_polyhedra::cache;
use std::collections::BTreeMap;
use std::time::Instant;

/// Timed runs per tier per kernel. Five repetitions so the artifact's
/// mean/min/max spread makes run-to-run variance visible.
const EXEC_RUNS: usize = 5;

struct ExecRow {
    kernel: &'static str,
    n: i64,
    instances: u64,
    tree: Timing,
    bytecode: Timing,
    native: Option<Timing>,
}

/// Best-of-`reps` wall-clock seconds for one closure.
fn best_secs(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Assert two finished workspaces are bit-identical — the same
/// predicate the native differential tests use, applied here so the
/// timed artifact always rides on verified-equal results.
fn assert_ws_identical(reference: &Workspace, got: &Workspace, kernel: &str, tier: &str) {
    for (name, x) in reference.iter() {
        let y = got.array(name).expect("same arrays");
        assert_eq!(x.data().len(), y.data().len(), "{kernel}/{tier}: {name}");
        for (i, (u, v)) in x.data().iter().zip(y.data()).enumerate() {
            assert_eq!(
                u.to_bits(),
                v.to_bits(),
                "{kernel}/{tier}: array {name} diverges from the tree \
                 interpreter at flat index {i}: {u} vs {v}"
            );
        }
    }
}

fn measure_exec(
    kernel: &'static str,
    program: &Program,
    params: &BTreeMap<String, i64>,
    n: i64,
    init: impl Fn(&str, &[usize]) -> f64,
) -> ExecRow {
    let template = Workspace::for_program(program, params, &init);

    // Tree interpreter: the semantics of record and the speedup
    // denominator. One untimed run pins the reference stats and arrays.
    let mut tree_ws = template.clone();
    let stats = execute(program, &mut tree_ws, params, &mut NullObserver);
    let tree = Timing::measure(EXEC_RUNS, || {
        let mut ws = template.clone();
        execute(program, &mut ws, params, &mut NullObserver);
    });

    let cp = compile(program);
    let mut byte_ws = template.clone();
    let byte_stats = cp.execute(&mut byte_ws, params, &mut NullObserver);
    assert_eq!(byte_stats, stats, "engines must agree on {kernel}");
    assert_ws_identical(&tree_ws, &byte_ws, kernel, "bytecode");
    let bytecode = Timing::measure(EXEC_RUNS, || {
        let mut ws = template.clone();
        cp.execute(&mut ws, params, &mut NullObserver);
    });

    // Native tier: one persistent runner per kernel; the build (or
    // cache hit) happens before the clock starts, like `compile` above.
    let native = if native::rustc_available() {
        let mut k = NativeKernel::spawn(program).expect("native build");
        let mut nat_ws = template.clone();
        let nat_stats = k.run(&mut nat_ws, params).expect("native run");
        assert_eq!(
            nat_stats, stats,
            "native stats must match the interpreter on {kernel}"
        );
        assert_ws_identical(&tree_ws, &nat_ws, kernel, "native");
        Some(Timing::measure(EXEC_RUNS, || {
            let mut ws = template.clone();
            k.run(&mut ws, params).expect("native run");
        }))
    } else {
        None
    };

    ExecRow {
        kernel,
        n,
        instances: stats.instances,
        tree,
        bytecode,
        native,
    }
}

/// The exec-tier kernels: `(name, program, params, n, init)`.
#[allow(clippy::type_complexity)]
fn exec_kernels(
    quick: bool,
) -> Vec<(
    &'static str,
    Program,
    BTreeMap<String, i64>,
    i64,
    Box<dyn Fn(&str, &[usize]) -> f64>,
)> {
    let params_n = |n: i64| BTreeMap::from([("N".to_string(), n)]);
    let sz = |full: i64, small: i64| if quick { small } else { full };
    let (mm, ch, qr, ga, ad) = (sz(64, 32), sz(64, 32), sz(48, 24), sz(64, 32), sz(96, 48));
    let (bs, sy, jc, tc) = (sz(64, 32), sz(64, 32), sz(96, 48), sz(24, 12));
    vec![
        (
            "matmul_ijk",
            kernels::matmul_ijk(),
            params_n(mm),
            mm,
            Box::new(|_: &str, _: &[usize]| 1.0),
        ),
        (
            "cholesky_right",
            kernels::cholesky_right(),
            params_n(ch),
            ch,
            Box::new(shackle_exec::verify::spd_init("A", ch as usize, 3)),
        ),
        (
            "qr_householder",
            kernels::qr_householder(),
            params_n(qr),
            qr,
            Box::new(shackle_exec::verify::hash_init(3)),
        ),
        (
            "gauss",
            kernels::gauss(),
            params_n(ga),
            ga,
            Box::new(shackle_exec::verify::spd_init("A", ga as usize, 5)),
        ),
        (
            "adi",
            kernels::adi(),
            params_n(ad),
            ad,
            Box::new(|name: &str, idx: &[usize]| {
                if name == "B" {
                    2.0 + (idx[0] % 7) as f64
                } else {
                    (idx[0] % 5) as f64
                }
            }),
        ),
        (
            "backsolve",
            kernels::backsolve(),
            params_n(bs),
            bs,
            Box::new(shackle_exec::verify::hash_init(3)),
        ),
        (
            "syrk",
            kernels::syrk(),
            params_n(sy),
            sy,
            Box::new(shackle_exec::verify::hash_init(3)),
        ),
        (
            "jacobi2d",
            kernels::jacobi2d(),
            params_n(jc),
            jc,
            Box::new(shackle_exec::verify::hash_init(3)),
        ),
        (
            "tensor_contract",
            kernels::tensor_contract(),
            params_n(tc),
            tc,
            Box::new(shackle_exec::verify::hash_init(3)),
        ),
    ]
}

fn timing_or_null(t: &Option<Timing>) -> String {
    t.as_ref().map_or_else(|| "null".into(), Timing::to_json)
}

fn speedup_or_null(num: f64, t: &Option<Timing>) -> String {
    t.as_ref()
        .map_or_else(|| "null".into(), |t| format!("{:.3}", num / t.mean))
}

/// Tree vs bytecode vs native report. Returns the aggregate JSON object
/// recorded in the history line.
fn exec_report(quick: bool) -> String {
    let specs = exec_kernels(quick);
    let have_native = native::rustc_available();
    let mut rows = Vec::new();
    for (kernel, program, params, n, init) in &specs {
        rows.push(measure_exec(kernel, program, params, *n, init));
    }

    // Warm-cache proof: every kernel above was just built, so a rebuild
    // pass must be all cache hits — zero rustc invocations, counted by
    // the probe (Counter reads need no instrumentation toggle).
    let warm = if have_native {
        let rustc0 = probe::counter("native.rustc_invocations").get();
        let hits0 = probe::counter("native.cache_hits").get();
        for (_, program, _, _, _) in &specs {
            native::build(program).expect("warm rebuild");
        }
        let spawned = probe::counter("native.rustc_invocations").get() - rustc0;
        let hits = probe::counter("native.cache_hits").get() - hits0;
        assert_eq!(
            spawned, 0,
            "warm build cache must not spawn rustc ({spawned} invocations)"
        );
        format!(
            "{{\"rebuilds\": {}, \"rustc_invocations\": {spawned}, \"cache_hits\": {hits}}}",
            specs.len()
        )
    } else {
        "null".to_string()
    };

    println!(
        "{:<16} {:>5} {:>10} {:>11} {:>11} {:>11} {:>7} {:>8}",
        "kernel", "n", "instances", "tree s", "bytecode s", "native s", "byte x", "native x"
    );
    let mut report = BenchReport::new();
    report.section("benchmarks");
    for r in &rows {
        let byte_speedup = r.tree.mean / r.bytecode.mean;
        assert_speedup(r.kernel, byte_speedup, 1.0);
        println!(
            "{:<16} {:>5} {:>10} {:>11.4} {:>11.4} {:>11} {:>6.2}x {:>8}",
            r.kernel,
            r.n,
            r.instances,
            r.tree.mean,
            r.bytecode.mean,
            r.native
                .map_or_else(|| "skipped".into(), |t| format!("{:.4}", t.mean)),
            byte_speedup,
            r.native
                .map_or_else(|| "-".into(), |t| format!("{:.1}x", r.tree.mean / t.mean)),
        );
        report.row(format!(
            "{{\"kernel\": \"{}\", \"n\": {}, \"instances\": {}, \
             \"tree\": {}, \"bytecode\": {}, \"native\": {}, \
             \"bytecode_speedup\": {:.3}, \"native_speedup\": {}}}",
            r.kernel,
            r.n,
            r.instances,
            r.tree.to_json(),
            r.bytecode.to_json(),
            timing_or_null(&r.native),
            byte_speedup,
            speedup_or_null(r.tree.mean, &r.native),
        ));
    }

    let tree_secs: f64 = rows.iter().map(|r| r.tree.mean).sum();
    let byte_secs: f64 = rows.iter().map(|r| r.bytecode.mean).sum();
    let byte_agg = tree_secs / byte_secs;
    let native_secs: Option<f64> = rows
        .iter()
        .map(|r| r.native.map(|t| t.mean))
        .collect::<Option<Vec<f64>>>()
        .map(|v| v.iter().sum());
    let native_agg = native_secs.map(|s| tree_secs / s);
    assert_speedup("bytecode engine (aggregate)", byte_agg, 1.0);
    match native_agg {
        Some(agg) => {
            // The headline number: quick mode uses small sizes where
            // pipe I/O is a larger share, so its floor is lower.
            let floor = if quick { 3.0 } else { 20.0 };
            assert_speedup("native tier (aggregate)", agg, floor);
            println!(
                "{:<16} {:>16} {:>11.4} {:>11.4} {:>11.4} {:>6.2}x {:>7.1}x",
                "aggregate",
                "",
                tree_secs,
                byte_secs,
                native_secs.expect("native timed"),
                byte_agg,
                agg
            );
        }
        None => println!("native tier skipped: no working rustc on PATH"),
    }

    let aggregate = format!(
        "{{\"tree_secs\": {tree_secs:.6}, \"bytecode_secs\": {byte_secs:.6}, \
         \"native_secs\": {}, \"bytecode_speedup\": {byte_agg:.3}, \
         \"native_speedup\": {}}}",
        native_secs.map_or_else(|| "null".into(), |s| format!("{s:.6}")),
        native_agg.map_or_else(|| "null".into(), |s| format!("{s:.3}")),
    );
    report.field_raw("aggregate", aggregate.clone());
    report.field_raw("warm_cache", warm);
    if !have_native {
        report.field_str(
            "native_note",
            "native tier skipped: rustc unavailable in this environment",
        );
    }
    report
        .write("BENCH_exec.json")
        .expect("write BENCH_exec.json");
    println!("wrote BENCH_exec.json");
    aggregate
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    let exec_agg = exec_report(quick);
    let search_agg = search_report();
    let memsim_agg = memsim_report();

    // Model-vs-simulate sweep (BENCH_model.json). `--quick` shrinks it
    // to the CI smoke grid so the whole report fits in a CI minute.
    shackle_bench::modelperf::run(&shackle_bench::modelperf::SweepOptions {
        quick,
        runs: if quick { 1 } else { 5 },
        ..Default::default()
    });

    // One history line per run: the aggregates above plus where they
    // were measured.
    let env = history::EnvFingerprint::capture();
    let aggregates =
        format!("{{\"exec\": {exec_agg}, \"search\": {search_agg}, \"memsim\": {memsim_agg}}}");

    // `--check-history`: judge this run against the trajectory of
    // comparable prior runs (median over the history, generous 0.4x
    // tolerance) *before* appending it — the hardcoded speedup floors
    // above only catch collapses; the trajectory catches slow drift.
    if std::env::args().any(|a| a == "--check-history") {
        let checks = history::check_file("BENCH_history.jsonl", &env, &aggregates, 0.4, 3)
            .expect("read BENCH_history.jsonl");
        let mut failed = Vec::new();
        for c in &checks {
            println!(
                "history {:<22} current {:>8.3} vs median {:>8.3} of {} run(s): {}",
                c.metric,
                c.current,
                c.median,
                c.samples,
                if !c.enforced {
                    "thin history, not enforced"
                } else if c.ok {
                    "ok"
                } else {
                    "REGRESSION"
                }
            );
            if !c.ok {
                failed.push(c.metric);
            }
        }
        assert!(
            failed.is_empty(),
            "perf regression against the BENCH_history.jsonl trajectory: {failed:?}"
        );
    }

    history::append("BENCH_history.jsonl", &env, &aggregates).expect("append BENCH_history.jsonl");
    println!("appended BENCH_history.jsonl ({})", env.to_json());

    if std::env::args().any(|a| a == "--profile") {
        profile_report();
    }
}

struct MemsimRow {
    kernel: &'static str,
    n: i64,
    accesses: u64,
    configs: usize,
    baseline_secs: f64,
    stack_secs: f64,
}

/// Time one traced kernel through both sweep pipelines, asserting the
/// per-configuration hit/miss counts are bit-identical.
fn memsim_one(
    kernel: &'static str,
    program: &Program,
    params: &BTreeMap<String, i64>,
    n: i64,
    init: impl Fn(&str, &[usize]) -> f64 + Sync,
    grid: &[CacheConfig],
) -> MemsimRow {
    let reps = 2;

    // Baseline: the pre-stack-engine figure flow — one kernel
    // re-execution plus one direct LRU replay per configuration.
    let mut baseline_stats = Vec::new();
    let baseline_secs = best_secs(reps, || {
        baseline_stats = grid
            .iter()
            .map(|&cfg| {
                let mut h = Hierarchy::new(&[cfg], 60);
                trace_execution(program, params, &init, &mut h);
                h.level_stats()[0]
            })
            .collect();
    });

    // Stack engine: capture the trace once, derive every configuration
    // from a single Mattson pass.
    let mut accesses = 0u64;
    let mut stack_stats = Vec::new();
    let stack_secs = best_secs(reps, || {
        let (_, trace) = CompactTrace::capture(program, params, &init);
        accesses = trace.len() as u64;
        let mut sim = StackSim::new(grid[0].line, grid);
        trace.replay_into(&mut sim);
        stack_stats = grid.iter().map(|c| sim.stats_for(c)).collect();
    });

    assert_eq!(
        baseline_stats, stack_stats,
        "stack engine must be bit-identical to the direct sweep on {kernel}"
    );
    MemsimRow {
        kernel,
        n,
        accesses,
        configs: grid.len(),
        baseline_secs,
        stack_secs,
    }
}

fn memsim_report() -> String {
    let kb = 1024;
    let grid = shackle_bench::memsweep::config_grid(
        128,
        &[8 * kb, 16 * kb, 32 * kb, 64 * kb, 128 * kb, 256 * kb],
        &[1, 2, 4],
    );
    let params_n = |n: i64| BTreeMap::from([("N".to_string(), n)]);

    let chol = kernels::cholesky_right();
    let chol_blocked = generate_scanned(&chol, &shackles::cholesky_product(&chol, 16));
    let mm = kernels::matmul_ijk();
    let mm_blocked = generate_scanned(&mm, &shackles::matmul_ca(&mm, 8));
    let rows = [
        memsim_one("matmul_ijk", &mm, &params_n(48), 48, |_, _| 1.0, &grid),
        memsim_one(
            "matmul_blocked_w8",
            &mm_blocked,
            &params_n(48),
            48,
            |_, _| 1.0,
            &grid,
        ),
        memsim_one(
            "cholesky_right",
            &chol,
            &params_n(64),
            64,
            gen::spd_ws_init("A", 64, 3),
            &grid,
        ),
        memsim_one(
            "cholesky_blocked_w16",
            &chol_blocked,
            &params_n(64),
            64,
            gen::spd_ws_init("A", 64, 3),
            &grid,
        ),
    ];

    println!(
        "\n{:<22} {:>5} {:>10} {:>8} {:>12} {:>12} {:>8}",
        "memsim sweep", "n", "accesses", "configs", "baseline s", "stack s", "speedup"
    );
    let mut report = BenchReport::new();
    report.section("memsim");
    for r in &rows {
        let speedup = r.baseline_secs / r.stack_secs;
        println!(
            "{:<22} {:>5} {:>10} {:>8} {:>12.4} {:>12.4} {:>7.2}x",
            r.kernel, r.n, r.accesses, r.configs, r.baseline_secs, r.stack_secs, speedup
        );
        report.row(format!(
            "{{\"kernel\": \"{}\", \"n\": {}, \"accesses\": {}, \
             \"configs\": {}, \"baseline_secs\": {:.6}, \
             \"stack_secs\": {:.6}, \"speedup\": {:.3}}}",
            r.kernel, r.n, r.accesses, r.configs, r.baseline_secs, r.stack_secs, speedup,
        ));
    }
    let total_base: f64 = rows.iter().map(|r| r.baseline_secs).sum();
    let total_stack: f64 = rows.iter().map(|r| r.stack_secs).sum();
    let aggregate = total_base / total_stack;
    println!(
        "{:<22} {:>25} {:>12.4} {:>12.4} {:>7.2}x",
        "aggregate", "", total_base, total_stack, aggregate
    );
    assert_speedup("memsim stack engine (aggregate)", aggregate, 1.0);
    let aggregate_json = format!(
        "{{\"baseline_secs\": {total_base:.6}, \
         \"stack_secs\": {total_stack:.6}, \"speedup\": {aggregate:.3}}}"
    );
    report.field_raw("aggregate", aggregate_json.clone());
    report
        .write("BENCH_memsim.json")
        .expect("write BENCH_memsim.json");
    println!("wrote BENCH_memsim.json");
    aggregate_json
}

struct SearchRow {
    kernel: &'static str,
    outcome: SearchOutcome,
    baseline_secs: f64,
    memoized_secs: f64,
    stats: shackle_polyhedra::PolyStats,
}

/// Time one kernel's auto-shackle search through both pipelines,
/// asserting they select the same shackles with the same verdicts.
fn search_one(
    kernel: &'static str,
    program: &Program,
    cfg: &SearchConfig,
    probe_n: i64,
    init: impl Fn(&str, &[usize]) -> f64 + Sync,
) -> SearchRow {
    let reps = 5;

    // Uncached serial baseline: memoization off, pre-memoization
    // pipeline. (Disabling also bypasses lookups, so entries cached by
    // other kernels cannot leak into the baseline.)
    let was = cache::set_cache_enabled(false);
    let base = auto_search(program, cfg, probe_n, &init, Mode::Baseline);
    let baseline_secs = best_secs(reps, || {
        auto_search(program, cfg, probe_n, &init, Mode::Baseline);
    });
    cache::set_cache_enabled(was);

    // Memoized parallel pipeline, cold cache every rep so one rep's
    // fills do not subsidize the next measurement.
    cache::clear_cache();
    cache::reset_stats();
    let memo = auto_search(program, cfg, probe_n, &init, Mode::Memoized);
    let stats = cache::stats();
    let memoized_secs = best_secs(reps, || {
        cache::clear_cache();
        auto_search(program, cfg, probe_n, &init, Mode::Memoized);
    });

    assert_eq!(
        base.report, memo.report,
        "baseline and memoized searches must select identical shackles \
         with identical verdicts on {kernel}"
    );
    SearchRow {
        kernel,
        outcome: memo,
        baseline_secs,
        memoized_secs,
        stats,
    }
}

fn search_report() -> String {
    let w16 = SearchConfig {
        width: 16,
        ..Default::default()
    };
    // matmul used to be excluded from the aggregate ("score_bound"):
    // its 6-candidate search was dominated by the mode-independent
    // probe-cache scoring simulation. Two-phase scoring collapsed that
    // floor — the analytical model ranks every product and only the
    // top-K survivors are simulated — so it rejoined the aggregate.
    // probe_n is the smallest size whose 3·n² working set exceeds the
    // 8KB probe cache.
    let rows = [
        search_one(
            "cholesky_right",
            &kernels::cholesky_right(),
            &w16,
            48,
            shackle_kernels_spd_init(48),
        ),
        search_one(
            "cholesky_left",
            &kernels::cholesky_left(),
            &w16,
            32,
            shackle_kernels_spd_init(32),
        ),
        search_one(
            "gauss",
            &kernels::gauss(),
            &w16,
            24,
            shackle_kernels_spd_init(24),
        ),
        search_one(
            "matmul_ijk",
            &kernels::matmul_ijk(),
            &SearchConfig {
                width: 25,
                ..Default::default()
            },
            24,
            |_: &str, _: &[usize]| 1.0,
        ),
        // Wave-1 kernels. backsolve exercises the §8 reversed-cut-set
        // fallback; tensor_contract exercises the partially-blocking
        // fallback (its rank-2 reduction chain forbids operand
        // blockings); gauss_seidel_1d is the negative row — zero legal
        // candidates, so the search reports products=0 without ever
        // executing a trace.
        search_one(
            "backsolve",
            &kernels::backsolve(),
            &w16,
            48,
            shackle_exec::verify::hash_init(3),
        ),
        search_one(
            "syrk",
            &kernels::syrk(),
            &w16,
            32,
            shackle_exec::verify::hash_init(3),
        ),
        search_one(
            "jacobi2d",
            &kernels::jacobi2d(),
            &w16,
            48,
            shackle_exec::verify::hash_init(3),
        ),
        search_one(
            "tensor_contract",
            &kernels::tensor_contract(),
            &SearchConfig {
                width: 8,
                ..Default::default()
            },
            16,
            shackle_exec::verify::hash_init(3),
        ),
        search_one(
            "gauss_seidel_1d",
            &kernels::gauss_seidel_1d(),
            &w16,
            32,
            shackle_exec::verify::hash_init(3),
        ),
    ];

    println!(
        "\n{:<16} {:>5} {:>5} {:>8} {:>12} {:>12} {:>8} {:>9} {:>9}",
        "search",
        "cand",
        "prod",
        "queries",
        "baseline s",
        "memoized s",
        "speedup",
        "feas hit",
        "proj hit"
    );
    let mut report = BenchReport::new();
    report.section("search");
    for r in &rows {
        print_search_row(r);
        report.row(search_row_json(r));
    }
    let total_base: f64 = rows.iter().map(|r| r.baseline_secs).sum();
    let total_memo: f64 = rows.iter().map(|r| r.memoized_secs).sum();
    let aggregate = total_base / total_memo;
    println!(
        "{:<16} {:>33} {:>12.4} {:>12.4} {:>7.2}x",
        "aggregate", "", total_base, total_memo, aggregate
    );
    assert_speedup("memoized search (aggregate)", aggregate, 1.0);
    report.field_str(
        "score_bound_note",
        "matmul_ijk rejoined the aggregate: two-phase scoring (analytical \
         model ranks every product, exact simulation only for the top-K \
         survivors) removed the mode-independent scoring floor that used \
         to dominate its end-to-end time",
    );
    let aggregate_json = format!(
        "{{\"baseline_secs\": {total_base:.6}, \
         \"memoized_secs\": {total_memo:.6}, \"speedup\": {aggregate:.3}}}"
    );
    report.field_raw("aggregate", aggregate_json.clone());
    report
        .write("BENCH_search.json")
        .expect("write BENCH_search.json");
    println!("wrote BENCH_search.json");
    aggregate_json
}

fn print_search_row(r: &SearchRow) {
    println!(
        "{:<16} {:>5} {:>5} {:>8} {:>12.4} {:>12.4} {:>7.2}x {:>8.1}% {:>8.1}%",
        r.kernel,
        r.outcome.candidates,
        r.outcome.products,
        r.stats.feasibility_queries,
        r.baseline_secs,
        r.memoized_secs,
        r.baseline_secs / r.memoized_secs,
        100.0 * r.stats.feasibility_hit_rate(),
        100.0 * r.stats.projection_hit_rate(),
    );
}

fn search_row_json(r: &SearchRow) -> String {
    format!(
        "{{\"kernel\": \"{}\", \"candidates\": {}, \"legal\": {}, \
         \"products\": {}, \"rescored\": {}, \"winner_cycles\": {}, \
         \"baseline_secs\": {:.6}, \"memoized_secs\": {:.6}, \
         \"speedup\": {:.3}, \
         \"feasibility_queries\": {}, \"feasibility_hit_rate\": {:.4}, \
         \"projection_queries\": {}, \"projection_hit_rate\": {:.4}, \
         \"gist_queries\": {}, \"gist_hit_rate\": {:.4}, \
         \"splinters\": {}, \"dark_shadow_fallbacks\": {}, \
         \"fm_rows_combined\": {}, \"fm_rows_pruned\": {}}}",
        r.kernel,
        r.outcome.candidates,
        r.outcome.legal,
        r.outcome.products,
        r.outcome.rescored,
        r.outcome.winner_cycles,
        r.baseline_secs,
        r.memoized_secs,
        r.baseline_secs / r.memoized_secs,
        r.stats.feasibility_queries,
        r.stats.feasibility_hit_rate(),
        r.stats.projection_queries,
        r.stats.projection_hit_rate(),
        r.stats.gist_queries,
        r.stats.gist_hit_rate(),
        r.stats.splinters,
        r.stats.dark_shadow_fallbacks,
        r.stats.fm_rows_combined,
        r.stats.fm_rows_pruned,
    )
}

/// SPD workspace initializer for the Cholesky search probe.
fn shackle_kernels_spd_init(n: usize) -> impl Fn(&str, &[usize]) -> f64 + Sync {
    gen::spd_ws_init("A", n, 3)
}

/// Instrumented pipeline pass: measure the probe overhead on the
/// compiled hot path, profile the full pipeline for two kernels, print
/// the phase tree and write `BENCH_profile.json`.
fn profile_report() {
    // 1. Overhead on the hot path: the same compiled execution, probe
    // off vs probe on. The instrumentation is batch-level (one span and
    // a handful of counter adds per run), so the two must be within
    // noise of each other; the 2% bound is the CI tripwire for someone
    // accidentally adding per-access instrumentation.
    let n = 96i64;
    let p = kernels::matmul_ijk();
    let params = BTreeMap::from([("N".to_string(), n)]);
    let template = Workspace::for_program(&p, &params, |_, _| 1.0);
    let cp = compile(&p);
    let mut warm = template.clone();
    cp.execute(&mut warm, &params, &mut NullObserver);
    assert!(!probe::enabled(), "reports above must run uninstrumented");
    // Interleave the disabled/enabled samples pairwise: scheduler and
    // frequency drift then hits both sides equally, so best-of-10 is
    // stable to well under a percent where back-to-back blocks are not.
    let mut disabled_secs = f64::MAX;
    let mut enabled_secs = f64::MAX;
    for _ in 0..10 {
        let t = Instant::now();
        let mut ws = template.clone();
        cp.execute(&mut ws, &params, &mut NullObserver);
        disabled_secs = disabled_secs.min(t.elapsed().as_secs_f64());
        probe::set_enabled(true);
        let t = Instant::now();
        let mut ws = template.clone();
        cp.execute(&mut ws, &params, &mut NullObserver);
        enabled_secs = enabled_secs.min(t.elapsed().as_secs_f64());
        probe::set_enabled(false);
    }
    let ratio = enabled_secs / disabled_secs;
    println!(
        "\nprobe overhead on compiled matmul n={n}: disabled {disabled_secs:.4}s, \
         enabled {enabled_secs:.4}s, ratio {ratio:.4}"
    );
    assert!(
        ratio <= 1.02,
        "instrumentation overhead {ratio:.4} exceeds the 2% bound"
    );

    // 2. Instrumented pipeline pass per kernel — cold polyhedral cache
    // so the search does real omega/FM work, not lookups.
    probe::reset();
    cache::clear_cache();
    cache::reset_stats();
    probe::set_enabled(true);
    profile_kernel(
        "cholesky_right",
        &kernels::cholesky_right(),
        16,
        32,
        gen::spd_ws_init("A", 32, 3),
    );
    profile_kernel(
        "matmul_ijk",
        &kernels::matmul_ijk(),
        8,
        32,
        |_: &str, _: &[usize]| 1.0,
    );
    cache::publish_stats();
    probe::set_enabled(false);
    let profile = probe::profile();
    print!("\n{}", profile.render_tree());

    // 3. Emit the machine-readable artifact.
    let mut report = BenchReport::new();
    report.field_str("schema", "shackle-probe-profile-v1");
    report.field_raw(
        "overhead",
        format!(
            "{{\"disabled_secs\": {disabled_secs:.6}, \
             \"enabled_secs\": {enabled_secs:.6}, \"ratio\": {ratio:.4}}}"
        ),
    );
    report.field_raw("profile", profile.to_json().trim_end());
    report
        .write("BENCH_profile.json")
        .expect("write BENCH_profile.json");
    println!("wrote BENCH_profile.json");
}

/// One instrumented pipeline pass: search (enumerate + grow, with the
/// Theorem-1 legality queries nested inside), codegen, compiled
/// execution and the memory-hierarchy sweep, all under a per-kernel
/// span so the phase tree groups by kernel.
fn profile_kernel(
    kernel: &'static str,
    program: &Program,
    width: i64,
    n: i64,
    init: impl Fn(&str, &[usize]) -> f64 + Sync,
) {
    let _kernel = probe::span(kernel);
    let deps = dependences(program);
    let product = {
        let _s = probe::span("search");
        let cfg = SearchConfig {
            width,
            ..Default::default()
        };
        let legal = enumerate_legal_with_deps(program, &cfg, &deps);
        let seed = vec![legal[0].shackle.clone()];
        complete_product_with_deps(program, seed, &legal, &deps)
    };
    let blocked = generate_scanned(program, &product);
    let params = BTreeMap::from([("N".to_string(), n)]);
    {
        let _s = probe::span("exec");
        let mut ws = Workspace::for_program(&blocked, &params, &init);
        execute_compiled(&blocked, &mut ws, &params, &mut NullObserver);
    }
    {
        let _s = probe::span("memsim");
        let (_, trace) = CompactTrace::capture(&blocked, &params, &init);
        let kb = 1024;
        let grid = shackle_bench::memsweep::config_grid(64, &[8 * kb, 32 * kb, 128 * kb], &[2, 4]);
        let mut sim = StackSim::new(grid[0].line, &grid);
        trace.replay_into(&mut sim);
        let mut h = Hierarchy::sp2_thin_node();
        trace.replay_into(&mut h);
    }
}
