//! Regenerates Figure 15: banded Cholesky factorization versus
//! half-bandwidth (input dense-storage code, compiler-blocked code on
//! band storage, LAPACK dpbtrf-style with native BLAS).

use shackle_bench::prelude::*;

fn main() {
    let n = 400;
    let bands = [8, 16, 32, 64, 96, 128];
    let (series, phases) = timed_phases(|| figure15(n, &bands, 32));
    print!(
        "{}",
        render_table(
            &format!("Figure 15: banded Cholesky, n={n} (simulated SP-2, MFLOPS)"),
            "band p",
            &series
        )
    );
    eprint!("\n{phases}");
}
