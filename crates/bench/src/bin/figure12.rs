//! Regenerates Figure 12: QR factorization by Householder reflections,
//! four curves (input pointwise code, column-blocked compiler code, the
//! same with DGEMM-style updates, LAPACK compact-WY).

use shackle_bench::prelude::*;

fn main() {
    let sizes = [50, 100, 150, 200, 250, 300];
    let (series, phases) = timed_phases(|| figure12(&sizes, 32));
    print!(
        "{}",
        render_table(
            "Figure 12: QR factorization (simulated SP-2, MFLOPS)",
            "n",
            &series
        )
    );
    eprint!("\n{phases}");
}
