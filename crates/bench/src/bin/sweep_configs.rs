//! Multi-configuration cache sweep: one trace capture per block size,
//! every cache geometry derived from a single stack pass.
//!
//! Sweeps the block width of the fully-blocked Cholesky product (plus
//! the unblocked input code) and evaluates each trace against a whole
//! size × associativity grid at the SP-2's 128-byte line — the regime
//! of "which tiling wins on which machine" that the paper's §8 block
//! size question opens. Each (kernel, width) pair executes exactly
//! once; the grid of hit/miss counts comes from the Mattson stack
//! engine and is bit-identical to direct per-configuration simulation
//! (asserted continuously by `perf_report` and the proptests).
//!
//! `--quick` shrinks the problem size and width set (CI perf smoke).

use shackle_bench::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: i64 = if quick { 96 } else { 250 };
    let widths: &[i64] = if quick { &[8, 32] } else { &[4, 8, 16, 32, 64] };

    let p = kernels::cholesky_right();
    let mut points: Vec<(String, Program)> = vec![("input".to_string(), p.clone())];
    for &w in widths {
        let blocked = generate_scanned(&p, &shackles::cholesky_product(&p, w));
        points.push((format!("blocked w={w}"), blocked));
    }

    // the SP-2 line with capacities bracketing its 64 KB L1
    let kb = 1024;
    let grid = config_grid(
        128,
        &[8 * kb, 16 * kb, 32 * kb, 64 * kb, 128 * kb, 256 * kb],
        &[1, 2, 4],
    );

    let params = BTreeMap::from([("N".to_string(), n)]);
    let init = gen::spd_ws_init("A", n as usize, 11);
    let rows = sweep_programs(&points, &params, &init, &grid);
    print!(
        "{}",
        render_sweep(
            &format!(
                "Multi-configuration sweep: Cholesky n = {n}, miss ratio per \
                 cache geometry (128 B lines, one stack pass per trace)"
            ),
            "variant",
            &grid,
            &rows
        )
    );
}
