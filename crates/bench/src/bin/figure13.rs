//! Regenerates Figure 13: (i) the GMTRY Gaussian-elimination kernel
//! (paper: elimination ~3x faster, whole benchmark ~2x), and (ii) the
//! ADI kernel (paper: 8.9x faster at n = 1000).

fn main() {
    let (elim, whole) = shackle_bench::figure13_gmtry(320, 32);
    println!("Figure 13(i) GMTRY, n=320, block 32 (simulated SP-2):");
    println!("  Gaussian elimination speedup: {elim:.2}x   (paper: ~3x)");
    println!("  whole benchmark speedup:      {whole:.2}x   (paper: ~2x)");
    let n = 1000;
    let sp = shackle_bench::figure13_adi(n);
    println!("\nFigure 13(ii) ADI, n={n} (simulated SP-2):");
    println!("  transformed vs input speedup: {sp:.2}x   (paper: 8.9x)");
}
