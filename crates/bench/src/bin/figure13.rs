//! Regenerates Figure 13: (i) the GMTRY Gaussian-elimination kernel
//! (paper: elimination ~3x faster, whole benchmark ~2x), and (ii) the
//! ADI kernel (paper: 8.9x faster at n = 1000).

use shackle_bench::prelude::*;

fn main() {
    let n = 1000;
    let (((elim, whole), sp), phases) = timed_phases(|| (figure13_gmtry(320, 32), figure13_adi(n)));
    println!("Figure 13(i) GMTRY, n=320, block 32 (simulated SP-2):");
    println!("  Gaussian elimination speedup: {elim:.2}x   (paper: ~3x)");
    println!("  whole benchmark speedup:      {whole:.2}x   (paper: ~2x)");
    println!("\nFigure 13(ii) ADI, n={n} (simulated SP-2):");
    println!("  transformed vs input speedup: {sp:.2}x   (paper: 8.9x)");
    eprint!("\n{phases}");
}
