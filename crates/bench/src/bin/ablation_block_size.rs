//! Ablation: block-size selection (the §8 open problem — "determination
//! of good block sizes can also be tricky").
//!
//! Sweeps the block width of the fully-blocked Cholesky product on the
//! simulated SP-2 at a fixed problem size and prints simulated MFLOPS
//! and misses per width, exposing the classic U-shape: tiny blocks
//! cannot amortize reuse, oversized blocks stop fitting in the cache.

use shackle_bench::{model, par};
use shackle_kernels::shackles;
use shackle_kernels::trace::trace_execution;
use shackle_memsim::Hierarchy;
use std::collections::BTreeMap;

fn main() {
    let n = 300_i64;
    let p = shackle_ir::kernels::cholesky_right();
    println!("Block-size ablation: fully-blocked Cholesky, n = {n}, simulated SP-2");
    println!(
        "{:>8} {:>12} {:>14} {:>10}",
        "width", "misses", "mem cycles", "MFLOPS"
    );
    let widths = [2i64, 4, 8, 16, 32, 64, 128];
    // each width is an independent simulation; sweep them in parallel
    // and print in width order
    let rows = par::map(&widths, |&width| {
        let factors = shackles::cholesky_product(&p, width);
        let blocked = shackle_core::scan::generate_scanned(&p, &factors);
        let params = BTreeMap::from([("N".to_string(), n)]);
        let init = shackle_kernels::gen::spd_ws_init("A", n as usize, 5);
        let mut h = Hierarchy::sp2_thin_node();
        let stats = trace_execution(&blocked, &params, &init, &mut h);
        let mflops = model::perf(model::SCALAR_CYCLES_PER_FLOP).mflops(stats.flops, h.cycles());
        (h.level_stats()[0].misses, h.cycles(), mflops)
    });
    for (&width, (misses, cycles, mflops)) in widths.iter().zip(rows) {
        println!("{width:>8} {misses:>12} {cycles:>14} {mflops:>10.2}");
    }
}
