//! Ablation: block-size selection (the §8 open problem — "determination
//! of good block sizes can also be tricky").
//!
//! Sweeps the block width of the fully-blocked Cholesky product at a
//! fixed problem size and prints simulated MFLOPS and misses per width,
//! exposing the classic U-shape: tiny blocks cannot amortize reuse,
//! oversized blocks stop fitting in the cache.
//!
//! Each width's trace is captured **once** (`CompactTrace`) and every
//! cache geometry is derived from a single stack pass: the SP-2 column
//! reproduces the original direct-simulated numbers exactly, and the
//! extra capacity columns show where each tiling choice stops fitting —
//! the multi-configuration view the stack engine makes free.

use shackle_bench::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let n = 300_i64;
    let p = kernels::cholesky_right();
    println!("Block-size ablation: fully-blocked Cholesky, n = {n}, one capture per width");
    println!(
        "{:>8} {:>12} {:>14} {:>10} {:>9} {:>9} {:>9}",
        "width", "misses", "mem cycles", "MFLOPS", "16K miss%", "64K miss%", "256K miss%"
    );
    // the SP-2 L1 plus bracketing capacities, all derived per capture
    let mk = |size: usize| CacheConfig {
        size,
        line: 128,
        assoc: 4,
        latency: 0,
    };
    let sp2 = mk(64 * 1024);
    let grid = [mk(16 * 1024), sp2, mk(256 * 1024)];
    let widths = [2i64, 4, 8, 16, 32, 64, 128];
    // each width is an independent capture + stack pass; sweep them in
    // parallel and print in width order
    let rows = par::map(&widths, |&width| {
        let factors = shackles::cholesky_product(&p, width);
        let blocked = generate_scanned(&p, &factors);
        let params = BTreeMap::from([("N".to_string(), n)]);
        let init = gen::spd_ws_init("A", n as usize, 5);
        let (stats, trace) = CompactTrace::capture(&blocked, &params, &init);
        let mut sim = StackSim::new(128, &grid);
        trace.replay_into(&mut sim);
        let cycles = sim.cycles_for(&sp2, 60);
        let mflops = model::perf(model::SCALAR_CYCLES_PER_FLOP).mflops(stats.flops, cycles);
        let ratios: Vec<f64> = grid.iter().map(|c| sim.stats_for(c).miss_ratio()).collect();
        (sim.stats_for(&sp2).misses, cycles, mflops, ratios)
    });
    for (&width, (misses, cycles, mflops, ratios)) in widths.iter().zip(rows) {
        println!(
            "{width:>8} {misses:>12} {cycles:>14} {mflops:>10.2} {:>8.2}% {:>8.2}% {:>8.2}%",
            100.0 * ratios[0],
            100.0 * ratios[1],
            100.0 * ratios[2]
        );
    }
}
