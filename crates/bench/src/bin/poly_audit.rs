//! Differential fuzz-oracle audit of the polyhedral substrate
//! (`shackle-polyhedra`): random boxed constraint systems plus a pinned
//! overflow corpus, cross-checked against brute-force enumeration. See
//! `shackle_polyhedra::audit` for the harness itself.
//!
//! Writes `BENCH_poly_audit.json` (schema `shackle-poly-audit-v1`) and
//! exits non-zero if any verdict disagrees with the oracle — a panic
//! anywhere in the solver also fails the run, which is the point: this
//! binary is the CI tripwire for the crate's panic-freedom contract.
//!
//! `--quick` runs 10 000 systems (the CI smoke size); the default is
//! 50 000. `--seed N` reruns a specific generator stream.

use shackle_bench::report::BenchReport;
use shackle_polyhedra::audit::{run, AuditConfig};
use shackle_polyhedra::cache;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0x5eed_cafe);
    let cfg = AuditConfig {
        systems: if quick { 10_000 } else { 50_000 },
        seed,
        ..AuditConfig::default()
    };

    let rep = run(&cfg);
    let stats = cache::stats();

    println!(
        "poly_audit: {} systems (seed {:#x}) + {} corpus cases",
        rep.systems, seed, rep.corpus_cases
    );
    println!(
        "  default budget: {} feasible, {} infeasible, {} unknown",
        rep.feasible, rep.infeasible, rep.unknown
    );
    println!(
        "  strict budget:  {} unknown (refusals are expected here)",
        rep.strict_unknown
    );
    println!(
        "  cross-checked simplify/projection on {} cases",
        rep.simplify_checked
    );
    for m in &rep.mismatches {
        eprintln!("  MISMATCH: {m}");
    }

    let mut report = BenchReport::new();
    report.field_str("schema", "shackle-poly-audit-v1");
    report.field_raw("systems", rep.systems.to_string());
    report.field_raw("corpus_cases", rep.corpus_cases.to_string());
    report.field_raw("seed", seed.to_string());
    report.field_raw(
        "verdicts",
        format!(
            "{{\"feasible\": {}, \"infeasible\": {}, \"unknown\": {}, \"strict_unknown\": {}}}",
            rep.feasible, rep.infeasible, rep.unknown, rep.strict_unknown
        ),
    );
    report.field_raw("simplify_checked", rep.simplify_checked.to_string());
    report.field_raw("poly_unknown_counter", stats.unknown_verdicts.to_string());
    report.section("mismatches");
    for m in &rep.mismatches {
        let escaped = m.replace('\\', "\\\\").replace('"', "\\\"");
        report.row(format!("{{\"finding\": \"{escaped}\"}}"));
    }
    report.field_str("verdict", if rep.ok() { "pass" } else { "fail" });
    report
        .write("BENCH_poly_audit.json")
        .expect("write BENCH_poly_audit.json");
    println!("wrote BENCH_poly_audit.json");

    if !rep.ok() {
        eprintln!(
            "poly_audit FAILED: {} oracle mismatches",
            rep.mismatches.len()
        );
        std::process::exit(1);
    }
}
