//! Regenerates Figure 11: Cholesky factorization on the simulated
//! SP-2-like memory hierarchy, four curves (input right-looking code,
//! compiler-generated fully blocked code, the same with one
//! matrix-multiply section in DGEMM, LAPACK with native BLAS).
//!
//! `--quick` runs a reduced size sweep (CI perf smoke); the full sweep
//! reproduces the paper's x-axis.

use shackle_bench::prelude::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // non-power-of-two sizes avoid leading-dimension set-conflict
    // pathologies in the 4-way cache (real, but orthogonal to blocking)
    let sizes: &[i64] = if quick {
        &[100, 150, 200]
    } else {
        &[100, 150, 200, 250, 300, 400, 500]
    };
    let (series, phases) = timed_phases(|| figure11(sizes, 32));
    print!(
        "{}",
        render_table(
            "Figure 11: Cholesky factorization (simulated SP-2, MFLOPS)",
            "n",
            &series
        )
    );
    eprint!("\n{phases}");
}
