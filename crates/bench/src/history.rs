//! Append-only benchmark history (`BENCH_history.jsonl`).
//!
//! The `BENCH_*.json` artifacts are snapshots: each run overwrites the
//! last, so a perf regression is only visible if someone diffs two CI
//! artifact downloads. The history file complements them — every
//! `perf_report` run appends one JSON line carrying the run's aggregate
//! speedups together with an [`EnvFingerprint`], so drift over time can
//! be separated from drift across machines (different CPU count,
//! `SHACKLE_THREADS`, build profile, toolchain, or commit).

use std::io::{self, Write};
use std::path::Path;
use std::process::Command;

/// Where the run happened: everything that could plausibly move a
/// benchmark number without a code change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnvFingerprint {
    /// Logical CPUs available to the process.
    pub cpus: usize,
    /// The `SHACKLE_THREADS` override, if set.
    pub shackle_threads: Option<String>,
    /// Build profile of the harness binary (`release` or `debug`).
    pub profile: &'static str,
    /// `rustc -V` of the toolchain on `PATH`, if any.
    pub rustc: Option<String>,
    /// Current git commit (short SHA), if the repo is available.
    pub git_sha: Option<String>,
}

impl EnvFingerprint {
    /// Capture the current environment. Missing pieces (no `rustc`, no
    /// git checkout) record as `null` rather than failing — history is
    /// observability, not a gate.
    pub fn capture() -> Self {
        Self {
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
            shackle_threads: std::env::var("SHACKLE_THREADS").ok(),
            profile: if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
            rustc: first_line_of(Command::new("rustc").arg("-V")),
            git_sha: first_line_of(Command::new("git").args(["rev-parse", "--short", "HEAD"])),
        }
    }

    /// The fingerprint as a raw JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cpus\": {}, \"shackle_threads\": {}, \"profile\": {}, \
             \"rustc\": {}, \"git_sha\": {}}}",
            self.cpus,
            json_opt_str(self.shackle_threads.as_deref()),
            json_str(self.profile),
            json_opt_str(self.rustc.as_deref()),
            json_opt_str(self.git_sha.as_deref()),
        )
    }
}

fn first_line_of(cmd: &mut Command) -> Option<String> {
    let out = cmd.output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let line = text.lines().next()?.trim();
    (!line.is_empty()).then(|| line.to_string())
}

fn json_str(s: &str) -> String {
    let mut quoted = String::with_capacity(s.len() + 2);
    quoted.push('"');
    for c in s.chars() {
        match c {
            '"' => quoted.push_str("\\\""),
            '\\' => quoted.push_str("\\\\"),
            '\n' => quoted.push_str("\\n"),
            c if (c as u32) < 0x20 => quoted.push_str(&format!("\\u{:04x}", c as u32)),
            c => quoted.push(c),
        }
    }
    quoted.push('"');
    quoted
}

fn json_opt_str(s: Option<&str>) -> String {
    s.map_or_else(|| "null".to_string(), json_str)
}

/// Render one history line: epoch timestamp, environment fingerprint,
/// and the run's aggregates (a raw, pre-serialized JSON object).
pub fn render_line(epoch_secs: u64, env: &EnvFingerprint, aggregates_json: &str) -> String {
    format!(
        "{{\"epoch_secs\": {}, \"env\": {}, \"aggregates\": {}}}\n",
        epoch_secs,
        env.to_json(),
        aggregates_json.trim(),
    )
}

/// Append one run to the history file (created on first use). The line
/// is written with a single `write_all`, so concurrent appenders on the
/// same machine interleave at line granularity, not mid-record.
pub fn append(
    path: impl AsRef<Path>,
    env: &EnvFingerprint,
    aggregates_json: &str,
) -> io::Result<()> {
    let epoch_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let line = render_line(epoch_secs, env, aggregates_json);
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(line.as_bytes())
}

// --- trajectory regression check ---

/// The aggregate metrics compared against the history trajectory
/// (dotted paths into one history line's `aggregates` object). Higher
/// is better for all of them.
pub const TRAJECTORY_METRICS: [&str; 4] = [
    "exec.bytecode_speedup",
    "exec.native_speedup",
    "search.speedup",
    "memsim.speedup",
];

/// One metric's comparison against the median of comparable history.
#[derive(Clone, Debug)]
pub struct TrajectoryCheck {
    /// Dotted metric path (one of [`TRAJECTORY_METRICS`]).
    pub metric: &'static str,
    /// The current run's value.
    pub current: f64,
    /// Median across the comparable history entries (0 when none).
    pub median: f64,
    /// Comparable history entries that carried this metric.
    pub samples: usize,
    /// `current / median` (infinity when no samples).
    pub ratio: f64,
    /// Whether enough samples existed to enforce the floor.
    pub enforced: bool,
    /// `!enforced || ratio >= tolerance`.
    pub ok: bool,
}

/// Seek past `"key":` in `json`, returning the remainder starting at
/// the value. Purely lexical — good enough for the flat, known-shape
/// objects this module itself renders, which is the point: no JSON
/// dependency.
fn seek<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let i = json.find(&needle)?;
    Some(json[i + needle.len()..].trim_start())
}

/// Extract the number at a dotted path (`"exec.bytecode_speedup"`).
/// `None` for a missing path or an explicit `null`.
pub fn extract_number(json: &str, path: &str) -> Option<f64> {
    let mut rest = json;
    for seg in path.split('.') {
        rest = seek(rest, seg)?;
    }
    if rest.starts_with("null") {
        return None;
    }
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract the string at a dotted path. `None` for missing or
/// non-string values.
pub fn extract_string(json: &str, path: &str) -> Option<String> {
    let mut rest = json;
    for seg in path.split('.') {
        rest = seek(rest, seg)?;
    }
    let rest = rest.strip_prefix('"')?;
    // The strings this module renders never contain escaped quotes
    // (profile names, rustc versions, short SHAs).
    Some(rest[..rest.find('"')?].to_string())
}

/// Whether a history line is a single, complete JSON object: starts
/// with `{`, brace-balanced outside string literals, and closes exactly
/// at the end of the line. Purely lexical like the rest of this module,
/// but enough to reject the two real corruption modes of an append-only
/// log — a torn (truncated) final line and interleaved garbage — before
/// their half-parsed numbers pollute the trajectory median (a line cut
/// mid-value, e.g. `"bytecode_speedup": 6.`, would otherwise still
/// extract `6.0` and silently skew the comparison).
pub fn line_is_wellformed(line: &str) -> bool {
    let line = line.trim();
    if !line.starts_with('{') {
        return false;
    }
    let (mut depth, mut in_str, mut escape) = (0i64, false, false);
    for (i, c) in line.char_indices() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return i == line.len() - 1;
                }
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    false
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite metric"));
    let n = values.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Compare the current run's aggregates against the trajectory of
/// *comparable* history entries — same build profile, since a debug
/// number against a release trajectory measures the compiler, not a
/// regression. Each metric with at least `min_samples` comparable
/// entries must reach `tolerance` × the historical median; metrics
/// with thinner history are reported but not enforced. The tolerance
/// is deliberately generous (the ROADMAP suggests ~0.4×): machine
/// noise and CPU-count drift must not trip it, only a genuine
/// pipeline regression.
pub fn check_trajectory(
    history_text: &str,
    env: &EnvFingerprint,
    current_aggregates: &str,
    tolerance: f64,
    min_samples: usize,
) -> Vec<TrajectoryCheck> {
    let comparable: Vec<&str> = history_text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter(|l| {
            if line_is_wellformed(l) {
                return true;
            }
            let shown: String = l.chars().take(80).collect();
            eprintln!("warning: skipping malformed history line: {shown}");
            false
        })
        .filter(|l| extract_string(l, "env.profile").as_deref() == Some(env.profile))
        .collect();
    TRAJECTORY_METRICS
        .iter()
        .filter_map(|&metric| {
            let current = extract_number(current_aggregates, metric)?;
            let mut values: Vec<f64> = comparable
                .iter()
                .filter_map(|l| {
                    let aggregates = seek(l, "aggregates")?;
                    extract_number(aggregates, metric)
                })
                .filter(|v| v.is_finite())
                .collect();
            let samples = values.len();
            let med = median(&mut values);
            let ratio = if med > 0.0 {
                current / med
            } else {
                f64::INFINITY
            };
            let enforced = samples >= min_samples;
            Some(TrajectoryCheck {
                metric,
                current,
                median: med,
                samples,
                ratio,
                enforced,
                ok: !enforced || ratio >= tolerance,
            })
        })
        .collect()
}

/// [`check_trajectory`] over a history file. A missing file is an
/// empty (all-pass) trajectory, not an error: the first run on a fresh
/// checkout has nothing to regress against.
pub fn check_file(
    path: impl AsRef<Path>,
    env: &EnvFingerprint,
    current_aggregates: &str,
    tolerance: f64,
    min_samples: usize,
) -> io::Result<Vec<TrajectoryCheck>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    Ok(check_trajectory(
        &text,
        env,
        current_aggregates,
        tolerance,
        min_samples,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> EnvFingerprint {
        EnvFingerprint {
            cpus: 8,
            shackle_threads: Some("4".into()),
            profile: "release",
            rustc: Some("rustc 1.0.0".into()),
            git_sha: None,
        }
    }

    #[test]
    fn fingerprint_renders_nulls_and_strings() {
        let json = fp().to_json();
        assert_eq!(
            json,
            "{\"cpus\": 8, \"shackle_threads\": \"4\", \"profile\": \"release\", \
             \"rustc\": \"rustc 1.0.0\", \"git_sha\": null}"
        );
    }

    #[test]
    fn capture_never_fails() {
        let env = EnvFingerprint::capture();
        assert!(env.cpus >= 1);
        assert!(matches!(env.profile, "debug" | "release"));
    }

    #[test]
    fn lines_append_and_stay_one_record_per_line() {
        let dir = std::env::temp_dir().join(format!("shackle_history_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_history.jsonl");
        append(&path, &fp(), "{\"exec\": {\"speedup\": 21.0}}").unwrap();
        append(&path, &fp(), "{\"exec\": {\"speedup\": 22.0}}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with("{\"epoch_secs\": "));
            assert!(line.contains("\"env\": {\"cpus\": 8"));
            assert!(
                line.ends_with("\"aggregates\": {\"exec\": {\"speedup\": 22.0}}}")
                    || line.contains("21.0")
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn agg(search: f64, native: &str) -> String {
        format!(
            "{{\"exec\": {{\"bytecode_speedup\": 6.0, \"native_speedup\": {native}}}, \
             \"search\": {{\"speedup\": {search:.3}}}, \"memsim\": {{\"speedup\": 7.0}}}}"
        )
    }

    fn history_of(entries: &[(f64, &str)]) -> String {
        entries
            .iter()
            .map(|(s, profile)| {
                let mut e = fp();
                e.profile = if *profile == "release" {
                    "release"
                } else {
                    "debug"
                };
                render_line(1, &e, &agg(*s, "72.0"))
            })
            .collect()
    }

    #[test]
    fn extract_number_walks_paths_and_handles_null() {
        let a = agg(7.0, "null");
        assert_eq!(extract_number(&a, "search.speedup"), Some(7.0));
        assert_eq!(extract_number(&a, "memsim.speedup"), Some(7.0));
        assert_eq!(extract_number(&a, "exec.bytecode_speedup"), Some(6.0));
        assert_eq!(extract_number(&a, "exec.native_speedup"), None);
        assert_eq!(extract_number(&a, "exec.missing"), None);
        let line = render_line(9, &fp(), &a);
        assert_eq!(extract_string(&line, "env.profile"), Some("release".into()));
        assert_eq!(extract_number(&line, "epoch_secs"), Some(9.0));
    }

    #[test]
    fn trajectory_passes_on_flat_history_and_trips_on_regression() {
        let hist = history_of(&[(7.0, "release"), (7.2, "release"), (6.8, "release")]);
        let ok = check_trajectory(&hist, &fp(), &agg(6.9, "70.0"), 0.4, 3);
        assert!(ok.iter().all(|c| c.ok), "{ok:?}");
        assert!(ok.iter().all(|c| c.enforced));
        let search = ok.iter().find(|c| c.metric == "search.speedup").unwrap();
        assert_eq!(search.median, 7.0);
        assert_eq!(search.samples, 3);

        // A 10x collapse of the search speedup trips the check; the
        // untouched metrics still pass.
        let bad = check_trajectory(&hist, &fp(), &agg(0.7, "70.0"), 0.4, 3);
        let search = bad.iter().find(|c| c.metric == "search.speedup").unwrap();
        assert!(!search.ok && search.enforced);
        assert!(bad
            .iter()
            .filter(|c| c.metric != "search.speedup")
            .all(|c| c.ok));
    }

    #[test]
    fn trajectory_reports_but_does_not_enforce_thin_history() {
        let hist = history_of(&[(7.0, "release")]);
        let checks = check_trajectory(&hist, &fp(), &agg(0.1, "1.0"), 0.4, 3);
        assert!(!checks.is_empty());
        assert!(checks.iter().all(|c| c.ok && !c.enforced), "{checks:?}");
    }

    #[test]
    fn trajectory_ignores_other_build_profiles_and_null_metrics() {
        // Three debug entries, one release: a release run must not be
        // judged against the debug trajectory.
        let hist = history_of(&[
            (0.5, "debug"),
            (0.5, "debug"),
            (0.5, "debug"),
            (7.0, "release"),
        ]);
        let checks = check_trajectory(&hist, &fp(), &agg(7.0, "70.0"), 0.4, 3);
        let search = checks
            .iter()
            .find(|c| c.metric == "search.speedup")
            .unwrap();
        assert_eq!(search.samples, 1);
        assert!(!search.enforced);
        // A current run without a native tier skips that metric
        // entirely rather than comparing null to numbers.
        let no_native = check_trajectory(&hist, &fp(), &agg(7.0, "null"), 0.4, 3);
        assert!(no_native.iter().all(|c| c.metric != "exec.native_speedup"));
    }

    #[test]
    fn wellformed_accepts_real_lines_and_rejects_corruption() {
        let line = render_line(1, &fp(), &agg(7.0, "72.0"));
        assert!(line_is_wellformed(&line));
        // Truncated mid-number: would lexically extract 6.0 and pollute
        // the median if admitted.
        let cut = &line[..line.find("bytecode_speedup").unwrap() + 21];
        assert!(cut.ends_with("6."), "{cut}");
        assert!(!line_is_wellformed(cut));
        assert!(!line_is_wellformed("total garbage, not json"));
        assert!(!line_is_wellformed("{\"a\": 1}}"));
        assert!(!line_is_wellformed("{\"a\": 1} trailing"));
        assert!(!line_is_wellformed(""));
        // Braces inside strings don't confuse the balance check.
        assert!(line_is_wellformed("{\"a\": \"{\\\"}\"}"));
    }

    #[test]
    fn trajectory_skips_truncated_and_garbage_lines() {
        let clean = history_of(&[(7.0, "release"), (7.2, "release"), (6.8, "release")]);
        // A torn final append (cut mid-number so the lexical extractor
        // would read a low value) plus interleaved garbage.
        let torn = render_line(2, &fp(), &agg(0.1, "1.0"));
        let torn = &torn[..torn.len() - 25];
        let dirty = format!("{clean}{torn}\nnot json at all\n{{\"epoch_secs\": 3\n");
        let from_clean = check_trajectory(&clean, &fp(), &agg(6.9, "70.0"), 0.4, 3);
        let from_dirty = check_trajectory(&dirty, &fp(), &agg(6.9, "70.0"), 0.4, 3);
        assert_eq!(from_clean.len(), from_dirty.len());
        for (a, b) in from_clean.iter().zip(&from_dirty) {
            assert_eq!(a.metric, b.metric);
            assert_eq!(a.median, b.median, "{}", a.metric);
            assert_eq!(a.samples, b.samples, "{}", a.metric);
            assert!(b.ok, "{}", b.metric);
        }
        // All-corrupt history degrades to an unenforced (empty) trajectory.
        let all_bad = check_trajectory("garbage\n{\"x\": 1\n", &fp(), &agg(6.9, "70.0"), 0.4, 3);
        assert!(all_bad
            .iter()
            .all(|c| c.samples == 0 && !c.enforced && c.ok));
    }

    #[test]
    fn check_file_treats_missing_history_as_empty() {
        let path = std::env::temp_dir().join(format!(
            "shackle-history-missing-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let checks = check_file(&path, &fp(), &agg(7.0, "70.0"), 0.4, 3).unwrap();
        assert!(checks.iter().all(|c| c.ok && !c.enforced && c.samples == 0));
    }

    #[test]
    fn render_line_embeds_aggregates_verbatim() {
        let line = render_line(123, &fp(), "{\"a\": 1}\n");
        assert_eq!(
            line,
            format!(
                "{{\"epoch_secs\": 123, \"env\": {}, \"aggregates\": {{\"a\": 1}}}}\n",
                fp().to_json()
            )
        );
    }
}
