//! Append-only benchmark history (`BENCH_history.jsonl`).
//!
//! The `BENCH_*.json` artifacts are snapshots: each run overwrites the
//! last, so a perf regression is only visible if someone diffs two CI
//! artifact downloads. The history file complements them — every
//! `perf_report` run appends one JSON line carrying the run's aggregate
//! speedups together with an [`EnvFingerprint`], so drift over time can
//! be separated from drift across machines (different CPU count,
//! `SHACKLE_THREADS`, build profile, toolchain, or commit).

use std::io::{self, Write};
use std::path::Path;
use std::process::Command;

/// Where the run happened: everything that could plausibly move a
/// benchmark number without a code change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnvFingerprint {
    /// Logical CPUs available to the process.
    pub cpus: usize,
    /// The `SHACKLE_THREADS` override, if set.
    pub shackle_threads: Option<String>,
    /// Build profile of the harness binary (`release` or `debug`).
    pub profile: &'static str,
    /// `rustc -V` of the toolchain on `PATH`, if any.
    pub rustc: Option<String>,
    /// Current git commit (short SHA), if the repo is available.
    pub git_sha: Option<String>,
}

impl EnvFingerprint {
    /// Capture the current environment. Missing pieces (no `rustc`, no
    /// git checkout) record as `null` rather than failing — history is
    /// observability, not a gate.
    pub fn capture() -> Self {
        Self {
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
            shackle_threads: std::env::var("SHACKLE_THREADS").ok(),
            profile: if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
            rustc: first_line_of(Command::new("rustc").arg("-V")),
            git_sha: first_line_of(Command::new("git").args(["rev-parse", "--short", "HEAD"])),
        }
    }

    /// The fingerprint as a raw JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cpus\": {}, \"shackle_threads\": {}, \"profile\": {}, \
             \"rustc\": {}, \"git_sha\": {}}}",
            self.cpus,
            json_opt_str(self.shackle_threads.as_deref()),
            json_str(self.profile),
            json_opt_str(self.rustc.as_deref()),
            json_opt_str(self.git_sha.as_deref()),
        )
    }
}

fn first_line_of(cmd: &mut Command) -> Option<String> {
    let out = cmd.output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let line = text.lines().next()?.trim();
    (!line.is_empty()).then(|| line.to_string())
}

fn json_str(s: &str) -> String {
    let mut quoted = String::with_capacity(s.len() + 2);
    quoted.push('"');
    for c in s.chars() {
        match c {
            '"' => quoted.push_str("\\\""),
            '\\' => quoted.push_str("\\\\"),
            '\n' => quoted.push_str("\\n"),
            c if (c as u32) < 0x20 => quoted.push_str(&format!("\\u{:04x}", c as u32)),
            c => quoted.push(c),
        }
    }
    quoted.push('"');
    quoted
}

fn json_opt_str(s: Option<&str>) -> String {
    s.map_or_else(|| "null".to_string(), json_str)
}

/// Render one history line: epoch timestamp, environment fingerprint,
/// and the run's aggregates (a raw, pre-serialized JSON object).
pub fn render_line(epoch_secs: u64, env: &EnvFingerprint, aggregates_json: &str) -> String {
    format!(
        "{{\"epoch_secs\": {}, \"env\": {}, \"aggregates\": {}}}\n",
        epoch_secs,
        env.to_json(),
        aggregates_json.trim(),
    )
}

/// Append one run to the history file (created on first use). The line
/// is written with a single `write_all`, so concurrent appenders on the
/// same machine interleave at line granularity, not mid-record.
pub fn append(
    path: impl AsRef<Path>,
    env: &EnvFingerprint,
    aggregates_json: &str,
) -> io::Result<()> {
    let epoch_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let line = render_line(epoch_secs, env, aggregates_json);
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(line.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> EnvFingerprint {
        EnvFingerprint {
            cpus: 8,
            shackle_threads: Some("4".into()),
            profile: "release",
            rustc: Some("rustc 1.0.0".into()),
            git_sha: None,
        }
    }

    #[test]
    fn fingerprint_renders_nulls_and_strings() {
        let json = fp().to_json();
        assert_eq!(
            json,
            "{\"cpus\": 8, \"shackle_threads\": \"4\", \"profile\": \"release\", \
             \"rustc\": \"rustc 1.0.0\", \"git_sha\": null}"
        );
    }

    #[test]
    fn capture_never_fails() {
        let env = EnvFingerprint::capture();
        assert!(env.cpus >= 1);
        assert!(matches!(env.profile, "debug" | "release"));
    }

    #[test]
    fn lines_append_and_stay_one_record_per_line() {
        let dir = std::env::temp_dir().join(format!("shackle_history_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_history.jsonl");
        append(&path, &fp(), "{\"exec\": {\"speedup\": 21.0}}").unwrap();
        append(&path, &fp(), "{\"exec\": {\"speedup\": 22.0}}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with("{\"epoch_secs\": "));
            assert!(line.contains("\"env\": {\"cpus\": 8"));
            assert!(
                line.ends_with("\"aggregates\": {\"exec\": {\"speedup\": 22.0}}}")
                    || line.contains("21.0")
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn render_line_embeds_aggregates_verbatim() {
        let line = render_line(123, &fp(), "{\"a\": 1}\n");
        assert_eq!(
            line,
            format!(
                "{{\"epoch_secs\": 123, \"env\": {}, \"aggregates\": {{\"a\": 1}}}}\n",
                fp().to_json()
            )
        );
    }
}
