//! Timing harness surface for the §8 auto-shackle search.
//!
//! The pipeline itself — [`auto_search`], [`Mode`], [`SearchOutcome`],
//! [`PROBE_CACHE`], [`TOP_K`] — lives in
//! [`shackle_serve::pipeline`] so the optimization daemon's `optimize`
//! handler and this batch harness share one implementation: a served
//! response is byte-identical to a batch run by construction. This
//! module re-exports it under the historical `searchperf` path used by
//! `perf_report` and the figure binaries.

pub use shackle_serve::pipeline::{auto_search, Mode, SearchOutcome, PROBE_CACHE, TOP_K};
