//! One report builder for every `BENCH_*.json` artifact.
//!
//! The performance report used to carry three copy-pasted JSON
//! emitters, each hand-assembling braces, commas and indentation.
//! [`BenchReport`] centralizes that: a report is an ordered list of
//! *sections* (named arrays of row objects) and *fields* (named raw
//! values), rendered with the exact two-space layout the existing
//! artifacts use — the output is byte-identical to the old inline
//! writers — and written atomically (temp file + rename) so a crashed
//! run never leaves a truncated artifact behind.

use std::io;
use std::path::Path;

enum Part {
    Section { name: String, rows: Vec<String> },
    Field { name: String, raw: String },
}

/// Builder for a `BENCH_*.json` report.
///
/// # Examples
///
/// ```
/// use shackle_bench::report::BenchReport;
/// let mut r = BenchReport::new();
/// r.section("benchmarks")
///     .row("{\"kernel\": \"matmul\", \"speedup\": 3.0}");
/// assert_eq!(
///     r.render(),
///     "{\n  \"benchmarks\": [\n    {\"kernel\": \"matmul\", \"speedup\": 3.0}\n  ]\n}\n"
/// );
/// ```
#[derive(Default)]
pub struct BenchReport {
    parts: Vec<Part>,
}

impl BenchReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new named section (a JSON array of row objects).
    /// Subsequent [`BenchReport::row`] calls append to it.
    pub fn section(&mut self, name: &str) -> &mut Self {
        self.parts.push(Part::Section {
            name: name.to_string(),
            rows: Vec::new(),
        });
        self
    }

    /// Append one row — a complete JSON object, no indentation or
    /// trailing comma — to the most recent section.
    ///
    /// # Panics
    ///
    /// Panics if no section has been started.
    pub fn row(&mut self, json_object: impl Into<String>) -> &mut Self {
        match self.parts.last_mut() {
            Some(Part::Section { rows, .. }) => rows.push(json_object.into()),
            _ => panic!("BenchReport::row called before BenchReport::section"),
        }
        self
    }

    /// Append a named top-level field with a raw (pre-serialized) JSON
    /// value — an object, number, or already-quoted string.
    pub fn field_raw(&mut self, name: &str, raw: impl Into<String>) -> &mut Self {
        self.parts.push(Part::Field {
            name: name.to_string(),
            raw: raw.into(),
        });
        self
    }

    /// Append a named top-level string field (quoted and escaped).
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        let mut quoted = String::with_capacity(value.len() + 2);
        quoted.push('"');
        for c in value.chars() {
            match c {
                '"' => quoted.push_str("\\\""),
                '\\' => quoted.push_str("\\\\"),
                '\n' => quoted.push_str("\\n"),
                c if (c as u32) < 0x20 => quoted.push_str(&format!("\\u{:04x}", c as u32)),
                c => quoted.push(c),
            }
        }
        quoted.push('"');
        self.field_raw(name, quoted)
    }

    /// Render the report to its canonical text form.
    pub fn render(&self) -> String {
        let mut parts = Vec::with_capacity(self.parts.len());
        for part in &self.parts {
            match part {
                Part::Section { name, rows } => {
                    let mut s = format!("  \"{name}\": [\n");
                    for (i, row) in rows.iter().enumerate() {
                        s.push_str("    ");
                        s.push_str(row);
                        if i + 1 < rows.len() {
                            s.push(',');
                        }
                        s.push('\n');
                    }
                    s.push_str("  ]");
                    parts.push(s);
                }
                Part::Field { name, raw } => {
                    parts.push(format!("  \"{name}\": {raw}"));
                }
            }
        }
        format!("{{\n{}\n}}\n", parts.join(",\n"))
    }

    /// Render and write the report atomically: the rendered text goes
    /// to `<path>.tmp` first and is renamed over `path`, so a report
    /// either exists completely or not at all.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        std::fs::write(&tmp, self.render())?;
        std::fs::rename(&tmp, path)
    }
}

/// Repeated wall-clock measurement: `runs` repetitions with mean, min
/// and max seconds. Single-number timings hide run-to-run variance;
/// rows that feed speedup assertions (the model-vs-simulate rows of
/// `BENCH_model.json`) carry all three so a noisy measurement is
/// visible in the artifact instead of silently deciding a ratio.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Timing {
    /// Number of repetitions measured.
    pub runs: usize,
    /// Mean seconds across the runs.
    pub mean: f64,
    /// Fastest run, seconds.
    pub min: f64,
    /// Slowest run, seconds.
    pub max: f64,
}

impl Timing {
    /// Measure `run` `runs` times (at least once).
    ///
    /// # Examples
    ///
    /// ```
    /// use shackle_bench::report::Timing;
    /// let t = Timing::measure(5, || {
    ///     std::hint::black_box(42);
    /// });
    /// assert_eq!(t.runs, 5);
    /// assert!(t.min <= t.mean && t.mean <= t.max);
    /// ```
    pub fn measure(runs: usize, mut run: impl FnMut()) -> Self {
        let runs = runs.max(1);
        let mut min = f64::MAX;
        let mut max: f64 = 0.0;
        let mut sum = 0.0;
        for _ in 0..runs {
            let t = std::time::Instant::now();
            run();
            let secs = t.elapsed().as_secs_f64();
            min = min.min(secs);
            max = max.max(secs);
            sum += secs;
        }
        Self {
            runs,
            mean: sum / runs as f64,
            min,
            max,
        }
    }

    /// The timing as a raw JSON object (`runs`, `mean_secs`,
    /// `min_secs`, `max_secs`), for [`BenchReport::field_raw`] or row
    /// assembly.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"runs\": {}, \"mean_secs\": {:.6}, \"min_secs\": {:.6}, \"max_secs\": {:.6}}}",
            self.runs, self.mean, self.min, self.max
        )
    }
}

impl std::fmt::Display for Timing {
    /// `mean ± min/max` rendering for console tables.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4}s (min {:.4}, max {:.4}, n={})",
            self.mean, self.min, self.max, self.runs
        )
    }
}

/// Assert a measured speedup clears a floor — the report's regression
/// tripwire. Floors are deliberately far below typical measurements so
/// only a genuine pipeline regression (or a broken measurement) trips
/// them, not scheduler noise.
///
/// # Panics
///
/// Panics if `speedup` is not finite or falls below `floor`.
pub fn assert_speedup(label: &str, speedup: f64, floor: f64) {
    assert!(
        speedup.is_finite() && speedup >= floor,
        "{label}: speedup {speedup:.3}x below the {floor:.2}x floor"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_section_matches_legacy_exec_layout() {
        let mut r = BenchReport::new();
        r.section("benchmarks")
            .row("{\"kernel\": \"a\", \"n\": 1}")
            .row("{\"kernel\": \"b\", \"n\": 2}");
        assert_eq!(
            r.render(),
            "{\n  \"benchmarks\": [\n    {\"kernel\": \"a\", \"n\": 1},\n    \
             {\"kernel\": \"b\", \"n\": 2}\n  ]\n}\n"
        );
    }

    #[test]
    fn sections_and_fields_match_legacy_search_layout() {
        let mut r = BenchReport::new();
        r.section("search").row("{\"kernel\": \"x\"}");
        r.section("score_bound").row("{\"kernel\": \"y\"}");
        r.field_str("score_bound_note", "a note");
        r.field_raw("aggregate", "{\"speedup\": 2.000}");
        assert_eq!(
            r.render(),
            "{\n  \"search\": [\n    {\"kernel\": \"x\"}\n  ],\n  \
             \"score_bound\": [\n    {\"kernel\": \"y\"}\n  ],\n  \
             \"score_bound_note\": \"a note\",\n  \
             \"aggregate\": {\"speedup\": 2.000}\n}\n"
        );
    }

    #[test]
    fn empty_section_renders_as_empty_array() {
        let mut r = BenchReport::new();
        r.section("rows");
        assert_eq!(r.render(), "{\n  \"rows\": [\n  ]\n}\n");
    }

    #[test]
    fn field_str_escapes_quotes_and_backslashes() {
        let mut r = BenchReport::new();
        r.field_str("note", "say \"hi\"\\\n");
        assert_eq!(r.render(), "{\n  \"note\": \"say \\\"hi\\\"\\\\\\n\"\n}\n");
    }

    #[test]
    fn write_is_atomic_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join("shackle_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let mut r = BenchReport::new();
        r.section("rows").row("{\"k\": 1}");
        r.write(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), r.render());
        assert!(!path.with_extension("json.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "below the")]
    fn assert_speedup_trips_on_regression() {
        assert_speedup("exec", 0.5, 1.0);
    }

    #[test]
    fn timing_measures_at_least_once_and_orders_stats() {
        let mut calls = 0;
        let t = Timing::measure(0, || calls += 1);
        assert_eq!((t.runs, calls), (1, 1));
        let t = Timing::measure(7, || {
            std::hint::black_box(3 * 3);
        });
        assert_eq!(t.runs, 7);
        assert!(t.min <= t.mean && t.mean <= t.max);
        assert!(t.min >= 0.0);
        let json = t.to_json();
        assert!(json.starts_with("{\"runs\": 7, \"mean_secs\": "));
        assert!(json.contains("\"min_secs\": ") && json.ends_with('}'));
        assert!(t.to_string().contains("n=7"));
    }
}
