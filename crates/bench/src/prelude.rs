//! One-stop imports for the benchmark harness.
//!
//! Layers the full pipeline on top of [`shackle_core::prelude`]: the
//! execution engines, the memory-hierarchy simulators, the kernel
//! tracing bridge, and the probe instrumentation, plus this crate's
//! figure and report machinery. Every `src/bin` harness starts with
//! `use shackle_bench::prelude::*;`.

pub use shackle_core::prelude::*;

pub use shackle_exec::{
    compile, execute, execute_auto, execute_auto_traced, execute_compiled, verify, Access,
    CompiledProgram, ExecStats, NativeKernel, NullObserver, Observer, Tier, Workspace,
};
pub use shackle_kernels::compact::{CaptureObserver, CompactTrace};
pub use shackle_kernels::trace::{
    block_major_address, trace_execution, AddressMap, BandObserver, BlockMajorObserver,
    MemObserver, ELEM_BYTES,
};
pub use shackle_kernels::{gen, shackles, traced};
pub use shackle_memsim::{
    AccessSink, Cache, CacheConfig, ConfigError, Hierarchy, LevelStats, PerfModel, StackSim, Tlb,
    TlbConfig,
};
pub use shackle_probe as probe;

pub use crate::memsweep::{config_grid, render_sweep, sweep_programs};
pub use crate::report::BenchReport;
pub use crate::{
    figure10, figure10_on, figure11, figure12, figure13_adi, figure13_gmtry, figure15, model, par,
    render_table, timed_phases, MultiLevelRow, Series,
};
