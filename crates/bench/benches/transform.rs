//! Criterion benches of the transformation toolchain itself: dependence
//! analysis, the Omega-test legality check, and the polyhedra scanner —
//! the compile-time costs a user of the framework pays.

use criterion::{criterion_group, criterion_main, Criterion};
use shackle_core::{check_legality, scan::generate_scanned};
use shackle_ir::deps::dependences;
use shackle_ir::kernels;
use shackle_kernels::shackles;

fn bench_dependence_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("toolchain_dependences");
    g.sample_size(10);
    let chol = kernels::cholesky_right();
    g.bench_function("cholesky_right", |b| b.iter(|| dependences(&chol)));
    let qr = kernels::qr_householder();
    g.bench_function("qr_householder", |b| b.iter(|| dependences(&qr)));
    g.finish();
}

fn bench_legality(c: &mut Criterion) {
    let mut g = c.benchmark_group("toolchain_legality");
    g.sample_size(10);
    let chol = kernels::cholesky_right();
    let product = shackles::cholesky_product(&chol, 64);
    g.bench_function("cholesky_product", |b| {
        b.iter(|| check_legality(&chol, &product))
    });
    g.finish();
}

fn bench_scanner(c: &mut Criterion) {
    let mut g = c.benchmark_group("toolchain_scanner");
    g.sample_size(10);
    let chol = kernels::cholesky_right();
    let writes = shackles::cholesky_writes(&chol, 64);
    g.bench_function("cholesky_writes", |b| {
        b.iter(|| generate_scanned(&chol, &writes))
    });
    let mm = kernels::matmul_ijk();
    let two = shackles::matmul_two_level(&mm, 64, 8);
    g.bench_function("matmul_two_level", |b| {
        b.iter(|| generate_scanned(&mm, &two))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dependence_analysis,
    bench_legality,
    bench_scanner
);
criterion_main!(benches);
