//! Criterion wall-clock benches of the native kernel variants — the
//! host-machine counterpart of the simulated figures. One group per
//! paper figure; within each group the variants are the figure's curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shackle_kernels::adi::{adi_input, adi_transformed};
use shackle_kernels::banded::{pbtrf_lapack, pbtrf_pointwise, pbtrf_shackled, BandMat};
use shackle_kernels::cholesky::{
    cholesky_lapack, cholesky_pointwise, cholesky_shackled, cholesky_shackled_dgemm,
};
use shackle_kernels::gauss::{gauss_blocked_dgemm, gauss_pointwise, gauss_shackled};
use shackle_kernels::gen::{random_banded_spd, random_mat, random_spd};
use shackle_kernels::matmul::{matmul_blocked, matmul_dgemm, matmul_ijk, matmul_two_level};
use shackle_kernels::qr::{qr_col_blocked, qr_col_blocked_dgemm, qr_pointwise, qr_wy};
use shackle_kernels::Mat;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig03_fig10_matmul");
    g.sample_size(10);
    let n = 256;
    let a = random_mat(n, n, 1);
    let b = random_mat(n, n, 2);
    g.bench_function(BenchmarkId::new("input_ijk", n), |bch| {
        bch.iter(|| {
            let mut out = Mat::zeros(n, n);
            matmul_ijk(&mut out, &a, &b);
            out
        })
    });
    g.bench_function(BenchmarkId::new("blocked_64", n), |bch| {
        bch.iter(|| {
            let mut out = Mat::zeros(n, n);
            matmul_blocked(&mut out, &a, &b, 64);
            out
        })
    });
    g.bench_function(BenchmarkId::new("two_level_64_8", n), |bch| {
        bch.iter(|| {
            let mut out = Mat::zeros(n, n);
            matmul_two_level(&mut out, &a, &b, 64, 8);
            out
        })
    });
    g.bench_function(BenchmarkId::new("dgemm", n), |bch| {
        bch.iter(|| {
            let mut out = Mat::zeros(n, n);
            matmul_dgemm(&mut out, &a, &b);
            out
        })
    });
    g.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_cholesky");
    g.sample_size(10);
    let n = 384;
    let a0 = random_spd(n, 3);
    g.bench_function(BenchmarkId::new("input_right_looking", n), |b| {
        b.iter(|| {
            let mut a = a0.clone();
            cholesky_pointwise(&mut a);
            a
        })
    });
    g.bench_function(BenchmarkId::new("compiler_shackled_64", n), |b| {
        b.iter(|| {
            let mut a = a0.clone();
            cholesky_shackled(&mut a, 64);
            a
        })
    });
    g.bench_function(BenchmarkId::new("shackled_dgemm_64", n), |b| {
        b.iter(|| {
            let mut a = a0.clone();
            cholesky_shackled_dgemm(&mut a, 64);
            a
        })
    });
    g.bench_function(BenchmarkId::new("lapack_blas3_64", n), |b| {
        b.iter(|| {
            let mut a = a0.clone();
            cholesky_lapack(&mut a, 64);
            a
        })
    });
    g.finish();
}

fn bench_qr(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_qr");
    g.sample_size(10);
    let n = 256;
    let a0 = random_mat(n, n, 4);
    g.bench_function(BenchmarkId::new("input_pointwise", n), |b| {
        b.iter(|| {
            let mut a = a0.clone();
            qr_pointwise(&mut a)
        })
    });
    g.bench_function(BenchmarkId::new("compiler_col_blocked_32", n), |b| {
        b.iter(|| {
            let mut a = a0.clone();
            qr_col_blocked(&mut a, 32)
        })
    });
    g.bench_function(BenchmarkId::new("col_blocked_dgemm_32", n), |b| {
        b.iter(|| {
            let mut a = a0.clone();
            qr_col_blocked_dgemm(&mut a, 32)
        })
    });
    g.bench_function(BenchmarkId::new("lapack_wy_32", n), |b| {
        b.iter(|| {
            let mut a = a0.clone();
            qr_wy(&mut a, 32)
        })
    });
    g.finish();
}

fn bench_gauss(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13i_gmtry_gauss");
    g.sample_size(10);
    let n = 320;
    let a0 = random_spd(n, 5);
    g.bench_function(BenchmarkId::new("input_pointwise", n), |b| {
        b.iter(|| {
            let mut a = a0.clone();
            gauss_pointwise(&mut a);
            a
        })
    });
    g.bench_function(BenchmarkId::new("compiler_shackled_32", n), |b| {
        b.iter(|| {
            let mut a = a0.clone();
            gauss_shackled(&mut a, 32);
            a
        })
    });
    g.bench_function(BenchmarkId::new("blocked_dgemm_32", n), |b| {
        b.iter(|| {
            let mut a = a0.clone();
            gauss_blocked_dgemm(&mut a, 32);
            a
        })
    });
    g.finish();
}

fn bench_adi(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13ii_adi");
    g.sample_size(10);
    let n = 1000;
    let a = random_mat(n, n, 6);
    let b0 = {
        let mut b = random_mat(n, n, 7);
        for v in b.data_mut() {
            *v += 2.0;
        }
        b
    };
    let x0 = random_mat(n, n, 8);
    g.bench_function(BenchmarkId::new("input", n), |bch| {
        bch.iter(|| {
            let (mut x, mut b) = (x0.clone(), b0.clone());
            adi_input(&mut x, &a, &mut b);
            (x, b)
        })
    });
    g.bench_function(
        BenchmarkId::new("transformed_fused_interchanged", n),
        |bch| {
            bch.iter(|| {
                let (mut x, mut b) = (x0.clone(), b0.clone());
                adi_transformed(&mut x, &a, &mut b);
                (x, b)
            })
        },
    );
    g.finish();
}

fn bench_banded(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_banded_cholesky");
    g.sample_size(10);
    let n = 1200;
    for p in [16usize, 64, 128] {
        let a0 = random_banded_spd(n, p, 9);
        let band0 = BandMat::from_dense(&a0, p);
        g.bench_function(BenchmarkId::new("input_pointwise", p), |b| {
            b.iter(|| {
                let mut band = band0.clone();
                pbtrf_pointwise(&mut band);
                band
            })
        });
        g.bench_function(BenchmarkId::new("compiler_shackled_32", p), |b| {
            b.iter(|| {
                let mut band = band0.clone();
                pbtrf_shackled(&mut band, 32);
                band
            })
        });
        g.bench_function(BenchmarkId::new("lapack_pbtrf_32", p), |b| {
            b.iter(|| {
                let mut band = band0.clone();
                pbtrf_lapack(&mut band, 32.min(p + 1));
                band
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_cholesky,
    bench_qr,
    bench_gauss,
    bench_adi,
    bench_banded
);
criterion_main!(benches);
