//! Criterion benches of the memoized polyhedral query engine on the
//! dependence systems of the right-looking Cholesky kernel — the exact
//! workload the auto-shackle search hammers. Three regimes per query:
//! uncached (engine flag off, pre-memoization pipeline), cold (engine
//! on, cache cleared), and warm (every query a cache hit).

use criterion::{criterion_group, criterion_main, Criterion};
use shackle_ir::deps::dependences;
use shackle_ir::kernels;
use shackle_polyhedra::{cache, System};

fn cholesky_systems() -> Vec<System> {
    dependences(&kernels::cholesky_right())
        .iter()
        .flat_map(|d| d.systems.iter().cloned())
        .collect()
}

fn bench_feasibility(c: &mut Criterion) {
    let systems = cholesky_systems();
    let mut g = c.benchmark_group("polyhedra_feasibility");
    g.sample_size(10);
    g.bench_function("cholesky_uncached", |b| {
        let was = cache::set_cache_enabled(false);
        b.iter(|| systems.iter().filter(|s| s.is_integer_feasible()).count());
        cache::set_cache_enabled(was);
    });
    g.bench_function("cholesky_cold", |b| {
        b.iter(|| {
            cache::clear_cache();
            systems.iter().filter(|s| s.is_integer_feasible()).count()
        })
    });
    g.bench_function("cholesky_warm", |b| {
        cache::clear_cache();
        systems.iter().for_each(|s| {
            s.is_integer_feasible();
        });
        b.iter(|| systems.iter().filter(|s| s.is_integer_feasible()).count())
    });
    g.finish();
}

fn bench_projection(c: &mut Criterion) {
    let systems = cholesky_systems();
    // project each dependence system onto its first two variables (the
    // outer source iterators), as the span analysis does
    let project_all = |systems: &[System]| -> usize {
        systems
            .iter()
            .map(|s| {
                let keep: Vec<&str> = s.vars().iter().take(2).map(|v| v.as_str()).collect();
                let (p, _) = s.project_onto(&keep);
                p.constraints().len()
            })
            .sum()
    };
    let mut g = c.benchmark_group("polyhedra_projection");
    g.sample_size(10);
    g.bench_function("cholesky_uncached", |b| {
        let was = cache::set_cache_enabled(false);
        b.iter(|| project_all(&systems));
        cache::set_cache_enabled(was);
    });
    g.bench_function("cholesky_cold", |b| {
        b.iter(|| {
            cache::clear_cache();
            project_all(&systems)
        })
    });
    g.bench_function("cholesky_warm", |b| {
        cache::clear_cache();
        project_all(&systems);
        b.iter(|| project_all(&systems))
    });
    g.finish();
}

criterion_group!(benches, bench_feasibility, bench_projection);
criterion_main!(benches);
