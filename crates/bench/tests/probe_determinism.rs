//! The probe's thread-local span stacks must merge deterministically:
//! the same figure sweep at any `SHACKLE_THREADS` setting yields
//! identical span call counts, counter values, and histograms — wall
//! time is the only thing allowed to differ. This is what makes
//! `BENCH_profile.json` diffable across CI runs that pick different
//! worker counts.

use shackle_bench::prelude::*;

/// Everything in a [`probe::Profile`] except wall time.
type Fingerprint = (
    Vec<(String, u64)>,
    Vec<(String, u64)>,
    Vec<probe::ProfileHistogram>,
);

fn run_sweep(threads: usize) -> Fingerprint {
    // with_threads serializes the process-global override and restores
    // the previous value when the guard drops
    let _t = shackle_core::par::with_threads(threads);
    // cold polyhedral cache each run, so the serial codegen inside the
    // sweep does identical omega/FM work regardless of run order
    shackle_polyhedra::cache::clear_cache();
    probe::reset();
    probe::set_enabled(true);
    let series = figure11(&[16, 24, 32], 8);
    probe::set_enabled(false);
    assert_eq!(series.len(), 4);
    let profile = probe::profile();
    (
        profile
            .spans
            .iter()
            .map(|s| (s.path.clone(), s.calls))
            .collect(),
        profile.counters.clone(),
        profile.histograms.clone(),
    )
}

#[test]
fn profile_is_identical_at_any_thread_count() {
    let serial = run_sweep(1);
    // the sweep's spans actually landed under the figure's phase, from
    // every worker thread
    let sim = serial
        .0
        .iter()
        .find(|(path, _)| path == "figure11/simulate")
        .expect("simulate spans nest under figure11");
    assert_eq!(sim.1, 3, "one simulate span per sweep point");
    for threads in [2, 4] {
        let parallel = run_sweep(threads);
        assert_eq!(serial, parallel, "{threads} threads");
    }
}
