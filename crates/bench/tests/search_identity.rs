//! The memoized parallel auto-shackle search must be byte-identical to
//! a serial run at any thread count, and to the uncached serial
//! baseline pipeline — memoization and parallelism change the cost of
//! the search, never its result.

use shackle_bench::searchperf::{auto_search, Mode};
use shackle_core::par;
use shackle_core::search::SearchConfig;
use shackle_ir::kernels;
use shackle_polyhedra::cache;
use std::sync::Mutex;

/// The engine flag is process-global; `SHACKLE_THREADS` overrides are
/// already serialized inside [`par::with_threads`], but the two tests
/// here also toggle the cache flag, so they still exclude each other.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn w8() -> SearchConfig {
    SearchConfig {
        width: 8,
        ..Default::default()
    }
}

#[test]
fn matmul_report_identical_across_thread_counts() {
    let _g = lock();
    let p = kernels::matmul_ijk();
    let ones = |_: &str, _: &[usize]| 1.0;
    let serial = {
        let _t = par::with_threads(1);
        auto_search(&p, &w8(), 24, ones, Mode::Memoized)
    };
    let wide = {
        let _t = par::with_threads(8);
        auto_search(&p, &w8(), 24, ones, Mode::Memoized)
    };
    assert_eq!(serial.report, wide.report);
    assert!(serial.products > 0);
}

#[test]
fn cholesky_memoized_parallel_matches_uncached_serial_baseline() {
    let _g = lock();
    let p = kernels::cholesky_right();
    let init = shackle_kernels::gen::spd_ws_init("A", 16, 3);
    let was = cache::set_cache_enabled(false);
    let base = auto_search(&p, &w8(), 16, &init, Mode::Baseline);
    cache::set_cache_enabled(was);
    cache::clear_cache();
    let memo = {
        let _t = par::with_threads(8);
        auto_search(&p, &w8(), 16, &init, Mode::Memoized)
    };
    assert_eq!(base.report, memo.report);
    assert!(memo.legal > 0);
}
