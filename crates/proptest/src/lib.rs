//! Offline stand-in for the `proptest` crate.
//!
//! The workspace must build and test with no registry access, so this
//! in-repo crate provides the (small) slice of the proptest API the
//! test suites use: the [`Strategy`] trait over ranges, tuples, mapped
//! strategies, collection/bool strategies, the [`proptest!`] macro, and
//! the `prop_assert*` macros. Sampling is deterministic — every test
//! function derives a splitmix64 stream from its own name, so runs are
//! reproducible without a persisted failure file.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case panics with the sampled values in
//!   the assertion message instead of a minimized counterexample;
//! * no persistence, forking, or configurable RNG;
//! * only the strategy combinators used in this workspace exist.

/// Deterministic splitmix64 stream used to sample strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream keyed by a test name and case index.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            state: h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Run configuration: how many cases each property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A source of values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every sampled value.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Strategy namespace mirroring `proptest::prop`/module re-exports.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for vectors with element strategy `S` and a length
        /// sampled from `len`.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            elem: S,
            len: std::ops::Range<usize>,
        }

        /// `Vec` strategy: elements from `elem`, length from `len`.
        pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().sample(rng);
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Strategy over both booleans.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// Uniformly random booleans.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// The usual proptest prelude.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Assert a condition inside a property, reporting the failing message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `body` over sampled
/// arguments for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:pat_param in $strat:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (1i64..9).sample(&mut rng);
            assert!((1..9).contains(&v));
            let w = (-3i64..=3).sample(&mut rng);
            assert!((-3..=3).contains(&w));
            let f = (1e-3..1.0).sample(&mut rng);
            assert!((1e-3..1.0).contains(&f));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = crate::TestRng::for_case("det", 7);
        let mut b = crate::TestRng::for_case("det", 7);
        let s = prop::collection::vec(0u64..4096, 1..400);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: tuples, maps, vec and bool strategies all
        /// produce in-range values.
        #[test]
        fn macro_samples_all_forms(
            (a, b) in (0i64..10, 0i64..10).prop_map(|(x, y)| (x.min(y), x.max(y))),
            v in prop::collection::vec(0usize..3, 1..5),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(a <= b, "sorted pair {a} {b}");
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 3));
            prop_assert_eq!(u8::from(flag) <= 1, true);
        }
    }
}
