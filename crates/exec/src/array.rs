//! Concrete dense arrays (column-major, 1-based) and workspaces.

use shackle_ir::Program;
use std::collections::BTreeMap;
use std::fmt;

/// A dense `f64` array stored in column-major (FORTRAN) order with
/// 1-based subscripts, matching the paper's codes and the BLAS/LAPACK
/// convention its baselines assume.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseArray {
    dims: Vec<usize>,
    data: Vec<f64>,
}

impl DenseArray {
    /// A zero-filled array with the given extents.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or an extent is zero.
    pub fn zeros(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "arrays need at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "extents must be positive");
        let len = dims.iter().product();
        Self {
            dims,
            data: vec![0.0; len],
        }
    }

    /// Build from a function of the (1-based) subscripts.
    pub fn from_fn(dims: Vec<usize>, f: impl Fn(&[usize]) -> f64) -> Self {
        let mut a = Self::zeros(dims);
        let rank = a.dims.len();
        let mut idx = vec![1usize; rank];
        loop {
            let off = a.offset_usize(&idx);
            a.data[off] = f(&idx);
            // column-major odometer: first index varies fastest
            let mut d = 0;
            loop {
                if d == rank {
                    return a;
                }
                if idx[d] < a.dims[d] {
                    idx[d] += 1;
                    break;
                }
                idx[d] = 1;
                d += 1;
            }
        }
    }

    /// The extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array has no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data in column-major order.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    fn offset_usize(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.dims.len());
        let mut off = 0;
        let mut stride = 1;
        for (d, &i) in idx.iter().enumerate() {
            debug_assert!(i >= 1 && i <= self.dims[d], "index {i} out of range");
            off += (i - 1) * stride;
            stride *= self.dims[d];
        }
        off
    }

    /// Column-major offset of a 1-based subscript vector.
    ///
    /// # Panics
    ///
    /// Panics if a subscript is out of range.
    pub fn offset(&self, idx: &[i64]) -> usize {
        let mut off = 0;
        let mut stride = 1;
        for (d, &i) in idx.iter().enumerate() {
            assert!(
                i >= 1 && (i as usize) <= self.dims[d],
                "index {i} out of range 1..={} in dimension {d}",
                self.dims[d]
            );
            off += (i as usize - 1) * stride;
            stride *= self.dims[d];
        }
        off
    }

    /// Read element at 1-based subscripts.
    pub fn get(&self, idx: &[i64]) -> f64 {
        self.data[self.offset(idx)]
    }

    /// Write element at 1-based subscripts.
    pub fn set(&mut self, idx: &[i64], v: f64) {
        let off = self.offset(idx);
        self.data[off] = v;
    }
}

/// A named collection of arrays: the memory a program executes against.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Workspace {
    arrays: BTreeMap<String, DenseArray>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate every array a program declares, with extents evaluated
    /// under `params`, initialized by `init(name, subscripts)`.
    ///
    /// # Panics
    ///
    /// Panics if a parameter needed by an extent is missing or an extent
    /// is non-positive.
    pub fn for_program(
        program: &Program,
        params: &BTreeMap<String, i64>,
        init: impl Fn(&str, &[usize]) -> f64,
    ) -> Self {
        let mut ws = Self::new();
        for decl in program.arrays() {
            let dims: Vec<usize> = decl
                .dims()
                .iter()
                .map(|e| {
                    let v = e.eval(&|p| {
                        *params
                            .get(p)
                            .unwrap_or_else(|| panic!("missing parameter {p}"))
                    });
                    assert!(v > 0, "extent of {} must be positive, got {v}", decl.name());
                    v as usize
                })
                .collect();
            let name = decl.name().to_string();
            ws.insert(
                name.clone(),
                DenseArray::from_fn(dims, |idx| init(&name, idx)),
            );
        }
        ws
    }

    /// Insert (or replace) an array.
    pub fn insert(&mut self, name: impl Into<String>, a: DenseArray) {
        self.arrays.insert(name.into(), a);
    }

    /// Look up an array.
    pub fn array(&self, name: &str) -> Option<&DenseArray> {
        self.arrays.get(name)
    }

    /// Look up an array mutably.
    pub fn array_mut(&mut self, name: &str) -> Option<&mut DenseArray> {
        self.arrays.get_mut(name)
    }

    /// Iterate over `(name, array)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &DenseArray)> {
        self.arrays.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate mutably over `(name, array)` in name order. The compiled
    /// execution engine uses this to split the workspace into disjoint
    /// per-array borrows up front instead of looking names up per
    /// access.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&str, &mut DenseArray)> {
        self.arrays.iter_mut().map(|(k, v)| (k.as_str(), v))
    }

    /// The largest relative element-wise difference against another
    /// workspace with the same shape (∞ on shape mismatch).
    pub fn max_rel_diff(&self, other: &Workspace) -> f64 {
        let mut worst: f64 = 0.0;
        for (name, a) in &self.arrays {
            let Some(b) = other.arrays.get(name) else {
                return f64::INFINITY;
            };
            if a.dims() != b.dims() {
                return f64::INFINITY;
            }
            for (x, y) in a.data().iter().zip(b.data()) {
                let scale = x.abs().max(y.abs()).max(1.0);
                worst = worst.max((x - y).abs() / scale);
            }
        }
        if other.arrays.len() != self.arrays.len() {
            return f64::INFINITY;
        }
        worst
    }
}

impl fmt::Display for Workspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, a) in &self.arrays {
            writeln!(f, "{name}: dims {:?}", a.dims())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_layout() {
        let a = DenseArray::from_fn(vec![3, 2], |idx| (idx[0] * 10 + idx[1]) as f64);
        // column-major: (1,1),(2,1),(3,1),(1,2),(2,2),(3,2)
        assert_eq!(a.data(), &[11.0, 21.0, 31.0, 12.0, 22.0, 32.0]);
        assert_eq!(a.offset(&[1, 2]), 3);
        assert_eq!(a.get(&[3, 2]), 32.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bounds_checked() {
        let a = DenseArray::zeros(vec![2, 2]);
        let _ = a.get(&[3, 1]);
    }

    #[test]
    fn workspace_from_program() {
        let p = shackle_ir::kernels::matmul_ijk();
        let params = BTreeMap::from([("N".to_string(), 4i64)]);
        let ws = Workspace::for_program(&p, &params, |name, idx| {
            if name == "C" {
                0.0
            } else {
                (idx[0] + idx[1]) as f64
            }
        });
        assert_eq!(ws.array("A").unwrap().dims(), &[4, 4]);
        assert_eq!(ws.array("C").unwrap().get(&[2, 2]), 0.0);
        assert_eq!(ws.array("B").unwrap().get(&[1, 3]), 4.0);
    }

    #[test]
    fn rel_diff() {
        let mut w1 = Workspace::new();
        w1.insert("A", DenseArray::from_fn(vec![2], |_| 1.0));
        let mut w2 = Workspace::new();
        w2.insert("A", DenseArray::from_fn(vec![2], |_| 1.0 + 1e-12));
        assert!(w1.max_rel_diff(&w2) < 1e-10);
        let w3 = Workspace::new();
        assert_eq!(w1.max_rel_diff(&w3), f64::INFINITY);
    }
}
