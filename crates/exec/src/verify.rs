//! Equivalence harness: run source and transformed programs on the same
//! inputs and compare workspaces.
//!
//! Shackling reorders reduction updates, so floating-point results can
//! differ by rounding; comparisons are therefore relative with a
//! configurable tolerance (exact transformations of non-associative-free
//! code still come out bit-identical).

use crate::{execute_compiled, ExecStats, NullObserver, Workspace};
use shackle_ir::Program;
use std::collections::BTreeMap;

/// Deterministic pseudo-random initializer for workspaces: a hash of the
/// array name, the subscripts and a seed, mapped to `(0, 1]`.
///
/// Useful defaults for equivalence testing; numerical kernels that need
/// structured inputs (SPD matrices, positive pivots) should supply their
/// own initializers.
pub fn hash_init(seed: u64) -> impl Fn(&str, &[usize]) -> f64 {
    move |name: &str, idx: &[usize]| {
        let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in name.bytes() {
            h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        for &i in idx {
            h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(i as u64);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        ((h % 1_000_000) as f64 + 1.0) / 1_000_000.0
    }
}

/// A symmetric positive-definite initializer for one square array
/// (`diag_boost` added on the diagonal makes it diagonally dominant),
/// with every other array from [`hash_init`].
pub fn spd_init(array: &str, n: usize, seed: u64) -> impl Fn(&str, &[usize]) -> f64 + '_ {
    let base = hash_init(seed);
    let n = n as f64;
    move |name: &str, idx: &[usize]| {
        if name == array && idx.len() == 2 {
            // symmetric: key on the sorted pair
            let (lo, hi) = (idx[0].min(idx[1]), idx[0].max(idx[1]));
            let v = base(name, &[lo, hi]);
            if idx[0] == idx[1] {
                v + n + 1.0
            } else {
                v
            }
        } else {
            base(name, idx)
        }
    }
}

/// The outcome of an equivalence run.
#[derive(Clone, Copy, Debug)]
pub struct Equivalence {
    /// Largest relative element difference over all arrays.
    pub max_rel_diff: f64,
    /// Stats of the reference execution.
    pub reference: ExecStats,
    /// Stats of the transformed execution.
    pub transformed: ExecStats,
}

impl Equivalence {
    /// True if the difference is within `tol`.
    pub fn within(&self, tol: f64) -> bool {
        self.max_rel_diff <= tol
    }
}

/// Execute `reference` and `transformed` on identically initialized
/// workspaces and compare the results.
///
/// Both programs must declare the same arrays (shackled programs do:
/// code generation preserves declarations). Also checks that both
/// executions perform the *same number of statement instances* — a
/// transformation that drops or duplicates instances is caught even
/// when the numeric effect is small.
///
/// # Panics
///
/// Panics if the instance counts differ (that is a transformation bug,
/// not a numerical issue).
pub fn check_equivalence(
    reference: &Program,
    transformed: &Program,
    params: &BTreeMap<String, i64>,
    init: impl Fn(&str, &[usize]) -> f64,
) -> Equivalence {
    let mut w1 = Workspace::for_program(reference, params, &init);
    let mut w2 = Workspace::for_program(transformed, params, &init);
    // the compiled engine matches the tree interpreter bit-for-bit (see
    // `compile`'s differential tests), so equivalence checks run on it
    let s1 = execute_compiled(reference, &mut w1, params, &mut NullObserver);
    let s2 = execute_compiled(transformed, &mut w2, params, &mut NullObserver);
    assert_eq!(
        s1.instances, s2.instances,
        "transformed program executed a different number of statement \
         instances ({} vs {})",
        s1.instances, s2.instances
    );
    Equivalence {
        max_rel_diff: w1.max_rel_diff(&w2),
        reference: s1,
        transformed: s2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shackle_ir::kernels;

    #[test]
    fn hash_init_deterministic_and_positive() {
        let f = hash_init(42);
        let a = f("A", &[3, 4]);
        let b = f("A", &[3, 4]);
        assert_eq!(a, b);
        assert!(a > 0.0 && a <= 1.0);
        assert_ne!(f("A", &[3, 4]), f("A", &[4, 3]));
        assert_ne!(f("A", &[1, 1]), f("B", &[1, 1]));
    }

    #[test]
    fn spd_init_symmetric_dominant() {
        let f = spd_init("A", 10, 7);
        assert_eq!(f("A", &[2, 5]), f("A", &[5, 2]));
        assert!(f("A", &[3, 3]) > 10.0);
    }

    #[test]
    fn identical_programs_are_equivalent() {
        let p = kernels::matmul_ijk();
        let params = BTreeMap::from([("N".to_string(), 6i64)]);
        let eq = check_equivalence(&p, &p, &params, hash_init(1));
        assert_eq!(eq.max_rel_diff, 0.0);
        assert_eq!(eq.reference.flops, eq.transformed.flops);
    }

    #[test]
    #[should_panic(expected = "different number of statement instances")]
    fn instance_count_mismatch_detected() {
        let p = kernels::matmul_ijk();
        // a "transformed" program with one fewer iteration
        use shackle_ir::{loop_, stmt};
        use shackle_polyhedra::LinExpr;
        let smaller = p.with_body(vec![loop_(
            "I",
            LinExpr::constant(1),
            LinExpr::var("N") - LinExpr::constant(1),
            vec![loop_(
                "J",
                LinExpr::constant(1),
                LinExpr::var("N"),
                vec![loop_(
                    "K",
                    LinExpr::constant(1),
                    LinExpr::var("N"),
                    vec![stmt(0)],
                )],
            )],
        )]);
        let params = BTreeMap::from([("N".to_string(), 4i64)]);
        let _ = check_equivalence(&p, &smaller, &params, hash_init(1));
    }
}
