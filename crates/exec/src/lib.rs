//! Reference interpreter for the data-shackle IR.
//!
//! Part of the `data-shackle` workspace (PLDI 1997 "Data-centric
//! Multi-level Blocking" reproduction). The interpreter executes any
//! [`shackle_ir::Program`] — input codes and shackled codes alike —
//! against concrete [`Workspace`]s of column-major `f64` arrays. It is
//! the semantic ground truth used to validate every transformation, the
//! flop counter behind the performance model, and the source of memory
//! traces for the cache simulator (through the [`Observer`] hook).
//!
//! # Example: validating a transformation
//!
//! ```
//! use shackle_core::{naive::generate_naive, Blocking, Shackle};
//! use shackle_exec::{execute, NullObserver, Workspace};
//! use std::collections::BTreeMap;
//!
//! let p = shackle_ir::kernels::matmul_ijk();
//! let shackle = Shackle::on_writes(&p, Blocking::square("C", 2, &[0, 1], 3));
//! let blocked = generate_naive(&p, &[shackle]);
//!
//! let params = BTreeMap::from([("N".to_string(), 7i64)]);
//! let init = |name: &str, idx: &[usize]| {
//!     if name == "C" { 0.0 } else { (idx[0] * 2 + idx[1]) as f64 }
//! };
//! let mut w1 = Workspace::for_program(&p, &params, init);
//! let mut w2 = Workspace::for_program(&blocked, &params, init);
//! execute(&p, &mut w1, &params, &mut NullObserver);
//! execute(&blocked, &mut w2, &params, &mut NullObserver);
//! assert!(w1.max_rel_diff(&w2) < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod interp;

pub mod compile;
pub mod multipass;
pub mod native;
pub mod verify;

pub use array::{DenseArray, Workspace};
pub use compile::{compile, execute_compiled, CompiledProgram, InstanceRunner};
pub use interp::{execute, Access, ExecStats, NullObserver, Observer};
pub use native::{execute_auto, execute_auto_traced, NativeError, NativeKernel, Tier};

use std::sync::LazyLock;

static INSTANCES: LazyLock<&'static shackle_probe::Counter> =
    LazyLock::new(|| shackle_probe::counter("exec.instances"));
static LOADS: LazyLock<&'static shackle_probe::Counter> =
    LazyLock::new(|| shackle_probe::counter("exec.loads"));
static STORES: LazyLock<&'static shackle_probe::Counter> =
    LazyLock::new(|| shackle_probe::counter("exec.stores"));
static FLOPS: LazyLock<&'static shackle_probe::Counter> =
    LazyLock::new(|| shackle_probe::counter("exec.flops"));

/// Fold a finished execution's statistics into the probe counters
/// (`exec.instances` / `exec.loads` / `exec.stores` / `exec.flops`).
/// Called once per [`execute`] / [`execute_compiled`] run; no-op when
/// instrumentation is disabled.
pub(crate) fn publish_exec_stats(stats: &ExecStats) {
    if shackle_probe::enabled() {
        INSTANCES.add(stats.instances);
        LOADS.add(stats.loads);
        STORES.add(stats.stores);
        FLOPS.add(stats.flops);
    }
}
