//! The compiled execution engine.
//!
//! [`compile`] lowers a [`Program`] into a [`CompiledProgram`] whose
//! inner loop touches no maps, no strings and no allocations:
//!
//! * every variable (parameter or loop index) gets a dense **frame
//!   slot**; all name resolution happens once, at compile time, with
//!   lexical innermost-wins scoping exactly like the tree interpreter's
//!   shadowing environment;
//! * loop bounds and guards become **affine forms over slots**
//!   (`constant + Σ coeff·frame[slot]`), with divided bounds evaluated
//!   through the same `ceil_div`/`floor_div` as the interpreter;
//! * each array reference's column-major offset is **linearized into a
//!   single affine form** at link time (when parameters fix the array
//!   extents, the per-dimension strides fold into the subscript
//!   coefficients), so an access is one dot product over the frame;
//! * every statement's scalar expression tree is flattened into
//!   **register-style bytecode** evaluated on a flat `f64` register
//!   file, emitting loads in the tree interpreter's left-to-right
//!   depth-first order;
//! * the loop tree is lowered into a **flat structured-op program**
//!   (`LoopStart`/`LoopEnd`/`Guard`/`Stmt`) driven by a program
//!   counter.
//!
//! Accesses are buffered and delivered to the observer in chunks via
//! [`Observer::record_many`], eliminating a virtual call per element.
//!
//! The tree interpreter ([`crate::execute`]) remains the semantics of
//! record; this engine is validated against it bit-for-bit (values,
//! [`ExecStats`], and access traces, order included) by differential
//! tests on every kernel. In debug builds the engine also re-checks
//! every subscript dimension-by-dimension like the interpreter does; in
//! release builds it checks the linearized offset against the array
//! length.

use crate::interp::count_flops;
use crate::{Access, DenseArray, ExecStats, Observer, Workspace};
use shackle_ir::{Bound, Node, Program, ScalarExpr, StmtId};
use shackle_polyhedra::num::{ceil_div, floor_div};
use shackle_polyhedra::{LinExpr, Rel};
use std::collections::BTreeMap;

/// Accesses buffered before each [`Observer::record_many`] delivery.
const BATCH: usize = 4096;

/// An affine form over frame slots: `constant + Σ coeff·frame[slot]`.
#[derive(Clone, Debug, Default)]
struct Affine {
    constant: i64,
    terms: Vec<(usize, i64)>,
}

impl Affine {
    #[inline]
    fn eval(&self, frame: &[i64]) -> i64 {
        let mut v = self.constant;
        for &(s, c) in &self.terms {
            v += c * frame[s];
        }
        v
    }
}

/// One `expr/div` term of a compiled bound.
#[derive(Clone, Debug)]
struct CBoundTerm {
    expr: Affine,
    div: i64,
}

/// A compiled loop bound: max of `ceil(term)`s (lower) or min of
/// `floor(term)`s (upper).
#[derive(Clone, Debug)]
struct CBound {
    terms: Vec<CBoundTerm>,
}

impl CBound {
    #[inline]
    fn eval(&self, frame: &[i64], lower: bool) -> i64 {
        let vals = self.terms.iter().map(|t| {
            let num = t.expr.eval(frame);
            if lower {
                ceil_div(num, t.div)
            } else {
                floor_div(num, t.div)
            }
        });
        if lower {
            vals.max().expect("bounds are non-empty")
        } else {
            vals.min().expect("bounds are non-empty")
        }
    }
}

/// A compiled guard constraint: `expr == 0` or `expr >= 0`.
#[derive(Clone, Debug)]
struct CGuard {
    expr: Affine,
    eq: bool,
}

/// A compiled array reference: target array plus per-dimension
/// subscript affines (strides are folded in at link time).
#[derive(Clone, Debug)]
struct CRef {
    array: usize,
    subs: Vec<Affine>,
}

/// Register-style scalar bytecode. `dst`/`a`/`b` are register indices;
/// `re` indexes the statement's load table.
#[derive(Clone, Copy, Debug)]
enum SOp {
    /// `reg[dst] = val`
    Const { dst: u16, val: f64 },
    /// `reg[dst] = load(refs[re])`
    Load { dst: u16, re: u32 },
    /// `reg[dst] = reg[a] + reg[b]`
    Add { dst: u16, a: u16, b: u16 },
    /// `reg[dst] = reg[a] - reg[b]`
    Sub { dst: u16, a: u16, b: u16 },
    /// `reg[dst] = reg[a] * reg[b]`
    Mul { dst: u16, a: u16, b: u16 },
    /// `reg[dst] = reg[a] / reg[b]`
    Div { dst: u16, a: u16, b: u16 },
    /// `reg[dst] = sqrt(reg[a])`
    Sqrt { dst: u16, a: u16 },
    /// `reg[dst] = -reg[a]`
    Neg { dst: u16, a: u16 },
    /// `reg[dst] = sign(reg[a])` (−1 if negative else +1)
    Sign { dst: u16, a: u16 },
}

/// A compiled statement: bytecode, its load table, and the write ref.
#[derive(Clone, Debug)]
struct CStmt {
    code: Vec<SOp>,
    n_regs: usize,
    loads: Vec<CRef>,
    write: CRef,
    flops: u64,
}

/// Flat structured ops driven by a program counter.
#[derive(Clone, Debug)]
enum Op {
    /// Evaluate bounds; bind the slot and run the body, or jump past
    /// `end` when the range is empty. `hi_idx` caches the upper bound
    /// for the matching [`Op::LoopEnd`].
    LoopStart {
        slot: usize,
        lower: CBound,
        upper: CBound,
        hi_idx: usize,
        end: usize,
    },
    /// Advance the slot and jump back after `start`, or fall through.
    LoopEnd {
        slot: usize,
        hi_idx: usize,
        start: usize,
    },
    /// Run the body only if every guard holds; otherwise jump to `end`.
    Guard { guards: Vec<CGuard>, end: usize },
    /// Execute one statement instance.
    Stmt { id: StmtId },
}

/// A program lowered for the compiled engine. Build with [`compile`],
/// run with [`CompiledProgram::execute`] (or drive single instances
/// through an [`InstanceRunner`]).
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// Array names in declaration order; `CRef::array` indexes this.
    arrays: Vec<String>,
    /// Parameter names; parameter `i` lives in frame slot `i`.
    params: Vec<String>,
    n_slots: usize,
    n_loops: usize,
    ops: Vec<Op>,
    stmts: Vec<CStmt>,
    /// Per statement: frame slots of its surrounding loops, outermost
    /// first (parallel to an `Instance::ivec`).
    stmt_loop_slots: Vec<Vec<usize>>,
}

/// Compile `program` for the fast engine.
///
/// # Panics
///
/// Panics on malformed programs (an unbound variable in a bound,
/// subscript or guard) — conditions [`Program`] validation already
/// rejects.
pub fn compile(program: &Program) -> CompiledProgram {
    let _phase = shackle_probe::span("compile");
    shackle_probe::add("exec.programs_compiled", 1);
    let mut c = Compiler {
        program,
        scope: Vec::new(),
        loop_slots: Vec::new(),
        arrays: program
            .arrays()
            .iter()
            .map(|d| d.name().to_string())
            .collect(),
        n_slots: program.params().len(),
        n_loops: 0,
        ops: Vec::new(),
        stmts: vec![None; program.stmts().len()],
        stmt_loop_slots: vec![Vec::new(); program.stmts().len()],
    };
    for (i, p) in program.params().iter().enumerate() {
        c.scope.push((p.clone(), i));
    }
    c.lower_nodes(program.body());
    CompiledProgram {
        arrays: c.arrays,
        params: program.params().to_vec(),
        n_slots: c.n_slots,
        n_loops: c.n_loops,
        ops: c.ops,
        stmts: c
            .stmts
            .into_iter()
            .map(|s| s.expect("every statement appears in the loop tree"))
            .collect(),
        stmt_loop_slots: c.stmt_loop_slots,
    }
}

struct Compiler<'p> {
    program: &'p Program,
    /// `(name, slot)` pairs, innermost last (lexical shadowing).
    scope: Vec<(String, usize)>,
    /// Slots of the currently open loops, outermost first.
    loop_slots: Vec<usize>,
    arrays: Vec<String>,
    n_slots: usize,
    n_loops: usize,
    ops: Vec<Op>,
    stmts: Vec<Option<CStmt>>,
    stmt_loop_slots: Vec<Vec<usize>>,
}

impl Compiler<'_> {
    fn resolve(&self, name: &str) -> usize {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
            .unwrap_or_else(|| panic!("unbound variable {name} during compilation"))
    }

    fn affine(&self, e: &LinExpr) -> Affine {
        let mut terms: Vec<(usize, i64)> = e.iter().map(|(v, c)| (self.resolve(v), c)).collect();
        terms.sort_unstable_by_key(|&(s, _)| s);
        Affine {
            constant: e.constant_part(),
            terms,
        }
    }

    fn bound(&self, b: &Bound) -> CBound {
        CBound {
            terms: b
                .terms
                .iter()
                .map(|t| CBoundTerm {
                    expr: self.affine(&t.expr),
                    div: t.div,
                })
                .collect(),
        }
    }

    fn cref(&self, r: &shackle_ir::ArrayRef) -> CRef {
        let array = self
            .arrays
            .iter()
            .position(|a| a == r.array())
            .unwrap_or_else(|| panic!("unknown array {}", r.array()));
        CRef {
            array,
            subs: r.indices().iter().map(|e| self.affine(e)).collect(),
        }
    }

    fn lower_nodes(&mut self, nodes: &[Node]) {
        for n in nodes {
            match n {
                Node::Stmt(id) => {
                    self.lower_stmt(*id);
                    self.ops.push(Op::Stmt { id: *id });
                }
                Node::If(cs, body) => {
                    let guards = cs
                        .iter()
                        .map(|c| CGuard {
                            expr: self.affine(c.expr()),
                            eq: matches!(c.rel(), Rel::Eq),
                        })
                        .collect();
                    let at = self.ops.len();
                    self.ops.push(Op::Guard {
                        guards,
                        end: usize::MAX,
                    });
                    self.lower_nodes(body);
                    let end = self.ops.len();
                    let Op::Guard { end: e, .. } = &mut self.ops[at] else {
                        unreachable!()
                    };
                    *e = end;
                }
                Node::Loop(l) => {
                    let slot = self.n_slots;
                    self.n_slots += 1;
                    let hi_idx = self.n_loops;
                    self.n_loops += 1;
                    // bounds are evaluated in the enclosing scope
                    let lower = self.bound(&l.lower);
                    let upper = self.bound(&l.upper);
                    let start = self.ops.len();
                    self.ops.push(Op::LoopStart {
                        slot,
                        lower,
                        upper,
                        hi_idx,
                        end: usize::MAX,
                    });
                    self.scope.push((l.var.clone(), slot));
                    self.loop_slots.push(slot);
                    self.lower_nodes(&l.body);
                    self.loop_slots.pop();
                    self.scope.pop();
                    let end = self.ops.len();
                    self.ops.push(Op::LoopEnd {
                        slot,
                        hi_idx,
                        start,
                    });
                    let Op::LoopStart { end: e, .. } = &mut self.ops[start] else {
                        unreachable!()
                    };
                    *e = end;
                }
            }
        }
    }

    fn lower_stmt(&mut self, id: StmtId) {
        let stmt = &self.program.stmts()[id];
        let mut code = Vec::new();
        let mut loads = Vec::new();
        let mut n_regs = 1u16;
        self.flatten(stmt.rhs(), 0, &mut code, &mut loads, &mut n_regs);
        self.stmts[id] = Some(CStmt {
            code,
            n_regs: n_regs as usize,
            loads,
            write: self.cref(stmt.write()),
            flops: count_flops(stmt),
        });
        self.stmt_loop_slots[id] = self.loop_slots.clone();
    }

    /// Flatten `e` into `code`, leaving the result in register `dst`.
    /// Loads are emitted left-to-right depth-first — the exact order
    /// the tree interpreter reports them to observers.
    fn flatten(
        &self,
        e: &ScalarExpr,
        dst: u16,
        code: &mut Vec<SOp>,
        loads: &mut Vec<CRef>,
        n_regs: &mut u16,
    ) {
        *n_regs = (*n_regs).max(dst + 1);
        match e {
            ScalarExpr::Const(v) => code.push(SOp::Const { dst, val: *v }),
            ScalarExpr::Ref(r) => {
                let re = u32::try_from(loads.len()).expect("load table fits u32");
                loads.push(self.cref(r));
                code.push(SOp::Load { dst, re });
            }
            ScalarExpr::Add(a, b)
            | ScalarExpr::Sub(a, b)
            | ScalarExpr::Mul(a, b)
            | ScalarExpr::Div(a, b) => {
                self.flatten(a, dst, code, loads, n_regs);
                self.flatten(b, dst + 1, code, loads, n_regs);
                let (a, b) = (dst, dst + 1);
                code.push(match e {
                    ScalarExpr::Add(..) => SOp::Add { dst, a, b },
                    ScalarExpr::Sub(..) => SOp::Sub { dst, a, b },
                    ScalarExpr::Mul(..) => SOp::Mul { dst, a, b },
                    _ => SOp::Div { dst, a, b },
                });
            }
            ScalarExpr::Sqrt(a) => {
                self.flatten(a, dst, code, loads, n_regs);
                code.push(SOp::Sqrt { dst, a: dst });
            }
            ScalarExpr::Neg(a) => {
                self.flatten(a, dst, code, loads, n_regs);
                code.push(SOp::Neg { dst, a: dst });
            }
            ScalarExpr::Sign(a) => {
                self.flatten(a, dst, code, loads, n_regs);
                code.push(SOp::Sign { dst, a: dst });
            }
        }
    }
}

/// An array reference with parameters bound: a single linearized offset
/// affine over slots, plus the per-dimension forms for exact
/// (debug-build) subscript checking.
#[derive(Clone, Debug)]
struct LinkedRef {
    array: usize,
    offset: Affine,
    len: usize,
    /// `(subscript, extent)` per dimension, for debug-parity checks
    /// (compiled out of release builds along with the check).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    dims: Vec<(Affine, i64)>,
}

impl LinkedRef {
    /// Element offset of this reference under `frame`.
    ///
    /// Debug builds re-check every subscript dimension like the tree
    /// interpreter; release builds bound the linearized offset.
    #[inline]
    fn offset(&self, frame: &[i64], arrays: &[String]) -> usize {
        #[cfg(debug_assertions)]
        for (d, (sub, extent)) in self.dims.iter().enumerate() {
            let i = sub.eval(frame);
            assert!(
                i >= 1 && i <= *extent,
                "index {i} out of range 1..={extent} in dimension {d}"
            );
        }
        let off = self.offset.eval(frame);
        assert!(
            off >= 0 && (off as usize) < self.len,
            "element offset {off} out of range for array {} (len {})",
            arrays[self.array],
            self.len
        );
        off as usize
    }
}

/// Per-statement linked references.
#[derive(Clone, Debug)]
struct LinkedStmt {
    loads: Vec<LinkedRef>,
    write: LinkedRef,
}

fn link_ref(r: &CRef, dims: &[usize]) -> LinkedRef {
    assert_eq!(r.subs.len(), dims.len(), "subscript rank mismatch");
    let mut offset = Affine::default();
    let mut stride: i64 = 1;
    let mut checked = Vec::with_capacity(dims.len());
    for (sub, &extent) in r.subs.iter().zip(dims) {
        offset.constant += (sub.constant - 1) * stride;
        for &(slot, coeff) in &sub.terms {
            match offset.terms.iter_mut().find(|(s, _)| *s == slot) {
                Some((_, c)) => *c += coeff * stride,
                None => offset.terms.push((slot, coeff * stride)),
            }
        }
        checked.push((sub.clone(), extent as i64));
        stride *= extent as i64;
    }
    offset.terms.sort_unstable_by_key(|&(s, _)| s);
    offset.terms.retain(|&(_, c)| c != 0);
    LinkedRef {
        array: r.array,
        offset,
        len: dims.iter().product(),
        dims: checked,
    }
}

impl CompiledProgram {
    /// Array names in declaration order.
    pub fn arrays(&self) -> &[String] {
        &self.arrays
    }

    /// Frame slots of the loops surrounding statement `id`, outermost
    /// first (parallel to a `multipass::Instance::ivec`).
    pub fn stmt_loop_slots(&self, id: StmtId) -> &[usize] {
        &self.stmt_loop_slots[id]
    }

    /// Bind `params` into a fresh frame.
    fn frame(&self, params: &BTreeMap<String, i64>) -> Vec<i64> {
        let mut frame = vec![0i64; self.n_slots];
        for (i, p) in self.params.iter().enumerate() {
            frame[i] = *params
                .get(p)
                .unwrap_or_else(|| panic!("missing parameter {p}"));
        }
        frame
    }

    /// Link every statement's references against the arrays of `ws`.
    fn link(&self, ws: &Workspace) -> Vec<LinkedStmt> {
        let dims: Vec<Vec<usize>> = self
            .arrays
            .iter()
            .map(|name| {
                ws.array(name)
                    .unwrap_or_else(|| panic!("unknown array {name}"))
                    .dims()
                    .to_vec()
            })
            .collect();
        self.stmts
            .iter()
            .map(|s| LinkedStmt {
                loads: s
                    .loads
                    .iter()
                    .map(|r| link_ref(r, &dims[r.array]))
                    .collect(),
                write: link_ref(&s.write, &dims[s.write.array]),
            })
            .collect()
    }

    /// Execute against `workspace` under `params`, streaming batched
    /// accesses to `observer`. Matches [`crate::execute`] bit-for-bit:
    /// same array contents, same [`ExecStats`], same access sequence.
    ///
    /// # Panics
    ///
    /// Panics on missing parameters or arrays and on out-of-range
    /// subscripts, like the tree interpreter.
    pub fn execute(
        &self,
        workspace: &mut Workspace,
        params: &BTreeMap<String, i64>,
        observer: &mut dyn Observer,
    ) -> ExecStats {
        let _phase = shackle_probe::span("run");
        let mut frame = self.frame(params);
        let linked = self.link(workspace);

        // Split the workspace into disjoint per-array borrows once.
        let mut slots: Vec<Option<&mut DenseArray>> =
            (0..self.arrays.len()).map(|_| None).collect();
        for (name, arr) in workspace.iter_mut() {
            if let Some(i) = self.arrays.iter().position(|a| a == name) {
                slots[i] = Some(arr);
            }
        }
        let mut arrays: Vec<&mut DenseArray> = slots
            .into_iter()
            .enumerate()
            .map(|(i, a)| a.unwrap_or_else(|| panic!("unknown array {}", self.arrays[i])))
            .collect();

        let mut stats = ExecStats::default();
        let mut regs = vec![0.0f64; self.stmts.iter().map(|s| s.n_regs).max().unwrap_or(1)];
        let mut hi_cache = vec![0i64; self.n_loops];
        // Structure-of-arrays access buffer: packed `(offset << 8) |
        // (array << 1) | write` codes (8 bytes per access instead of a
        // 24-byte `Access`), decoded into a scratch batch only at flush.
        assert!(
            self.arrays.len() < 128,
            "packed access codes carry a 7-bit array index"
        );
        let mut buf: Vec<u64> = Vec::with_capacity(BATCH + 64);
        let mut scratch: Vec<Access<'_>> = Vec::with_capacity(BATCH + 64);

        let mut pc = 0usize;
        while pc < self.ops.len() {
            match &self.ops[pc] {
                Op::LoopStart {
                    slot,
                    lower,
                    upper,
                    hi_idx,
                    end,
                } => {
                    let lo = lower.eval(&frame, true);
                    let hi = upper.eval(&frame, false);
                    if lo > hi {
                        pc = *end + 1;
                    } else {
                        frame[*slot] = lo;
                        hi_cache[*hi_idx] = hi;
                        pc += 1;
                    }
                }
                Op::LoopEnd {
                    slot,
                    hi_idx,
                    start,
                } => {
                    if frame[*slot] < hi_cache[*hi_idx] {
                        frame[*slot] += 1;
                        pc = *start + 1;
                    } else {
                        pc += 1;
                    }
                }
                Op::Guard { guards, end } => {
                    let pass = guards.iter().all(|g| {
                        let v = g.expr.eval(&frame);
                        if g.eq {
                            v == 0
                        } else {
                            v >= 0
                        }
                    });
                    pc = if pass { pc + 1 } else { *end };
                }
                Op::Stmt { id } => {
                    let st = &self.stmts[*id];
                    let ln = &linked[*id];
                    for op in &st.code {
                        match *op {
                            SOp::Const { dst, val } => regs[dst as usize] = val,
                            SOp::Load { dst, re } => {
                                let r = &ln.loads[re as usize];
                                let off = r.offset(&frame, &self.arrays);
                                regs[dst as usize] = arrays[r.array].data()[off];
                                buf.push(((off as u64) << 8) | ((r.array as u64) << 1));
                                stats.loads += 1;
                            }
                            SOp::Add { dst, a, b } => {
                                regs[dst as usize] = regs[a as usize] + regs[b as usize]
                            }
                            SOp::Sub { dst, a, b } => {
                                regs[dst as usize] = regs[a as usize] - regs[b as usize]
                            }
                            SOp::Mul { dst, a, b } => {
                                regs[dst as usize] = regs[a as usize] * regs[b as usize]
                            }
                            SOp::Div { dst, a, b } => {
                                regs[dst as usize] = regs[a as usize] / regs[b as usize]
                            }
                            SOp::Sqrt { dst, a } => regs[dst as usize] = regs[a as usize].sqrt(),
                            SOp::Neg { dst, a } => regs[dst as usize] = -regs[a as usize],
                            SOp::Sign { dst, a } => {
                                regs[dst as usize] = if regs[a as usize] < 0.0 { -1.0 } else { 1.0 }
                            }
                        }
                    }
                    let off = ln.write.offset(&frame, &self.arrays);
                    arrays[ln.write.array].data_mut()[off] = regs[0];
                    buf.push(((off as u64) << 8) | ((ln.write.array as u64) << 1) | 1);
                    stats.stores += 1;
                    stats.instances += 1;
                    stats.flops += st.flops;
                    if buf.len() >= BATCH {
                        flush_codes(&self.arrays, &buf, &mut scratch, observer);
                        buf.clear();
                    }
                    pc += 1;
                }
            }
        }
        if !buf.is_empty() {
            flush_codes(&self.arrays, &buf, &mut scratch, observer);
        }
        crate::publish_exec_stats(&stats);
        stats
    }
}

/// Decode one batch of packed access codes into `scratch` and deliver
/// it through [`Observer::record_many`].
fn flush_codes<'a>(
    arrays: &'a [String],
    codes: &[u64],
    scratch: &mut Vec<Access<'a>>,
    observer: &mut dyn Observer,
) {
    scratch.clear();
    scratch.extend(codes.iter().map(|&c| Access {
        array: &arrays[((c & 0xff) >> 1) as usize],
        offset: (c >> 8) as usize,
        write: c & 1 == 1,
    }));
    observer.record_many(scratch);
}

/// Compile and execute in one call — the drop-in fast replacement for
/// [`crate::execute`]. Prefer [`compile`] + [`CompiledProgram::execute`]
/// when the same program runs more than once.
pub fn execute_compiled(
    program: &Program,
    workspace: &mut Workspace,
    params: &BTreeMap<String, i64>,
    observer: &mut dyn Observer,
) -> ExecStats {
    compile(program).execute(workspace, params, observer)
}

/// Runs single statement instances of a compiled program — the fast
/// path under the multipass executor, which schedules instances itself.
///
/// Linking (binding parameters, folding strides) happens once at
/// construction; [`InstanceRunner::run`] then needs only the instance's
/// loop-variable values.
#[derive(Debug)]
pub struct InstanceRunner<'p> {
    cp: &'p CompiledProgram,
    frame: Vec<i64>,
    regs: Vec<f64>,
    linked: Vec<LinkedStmt>,
}

impl<'p> InstanceRunner<'p> {
    /// Link `cp` against the arrays of `ws` under `params`.
    pub fn new(cp: &'p CompiledProgram, ws: &Workspace, params: &BTreeMap<String, i64>) -> Self {
        Self {
            cp,
            frame: cp.frame(params),
            regs: vec![0.0; cp.stmts.iter().map(|s| s.n_regs).max().unwrap_or(1)],
            linked: cp.link(ws),
        }
    }

    fn bind(&mut self, stmt: StmtId, ivec: &[i64]) {
        let slots = &self.cp.stmt_loop_slots[stmt];
        assert_eq!(slots.len(), ivec.len(), "instance rank mismatch");
        for (&slot, &v) in slots.iter().zip(ivec) {
            self.frame[slot] = v;
        }
    }

    /// The memory locations instance `(stmt, ivec)` touches: read
    /// locations appended to `reads` (in evaluation order) as
    /// `(array index, element offset)` pairs, write location returned.
    pub fn locations(
        &mut self,
        stmt: StmtId,
        ivec: &[i64],
        reads: &mut Vec<(usize, usize)>,
    ) -> (usize, usize) {
        self.bind(stmt, ivec);
        let ln = &self.linked[stmt];
        for r in &ln.loads {
            reads.push((r.array, r.offset(&self.frame, &self.cp.arrays)));
        }
        (
            ln.write.array,
            ln.write.offset(&self.frame, &self.cp.arrays),
        )
    }

    /// Execute one statement instance against `ws`.
    pub fn run(&mut self, ws: &mut Workspace, stmt: StmtId, ivec: &[i64]) {
        self.bind(stmt, ivec);
        let st = &self.cp.stmts[stmt];
        let ln = &self.linked[stmt];
        for op in &st.code {
            match *op {
                SOp::Const { dst, val } => self.regs[dst as usize] = val,
                SOp::Load { dst, re } => {
                    let r = &ln.loads[re as usize];
                    let off = r.offset(&self.frame, &self.cp.arrays);
                    let arr = ws
                        .array(&self.cp.arrays[r.array])
                        .unwrap_or_else(|| panic!("unknown array {}", self.cp.arrays[r.array]));
                    self.regs[dst as usize] = arr.data()[off];
                }
                SOp::Add { dst, a, b } => {
                    self.regs[dst as usize] = self.regs[a as usize] + self.regs[b as usize]
                }
                SOp::Sub { dst, a, b } => {
                    self.regs[dst as usize] = self.regs[a as usize] - self.regs[b as usize]
                }
                SOp::Mul { dst, a, b } => {
                    self.regs[dst as usize] = self.regs[a as usize] * self.regs[b as usize]
                }
                SOp::Div { dst, a, b } => {
                    self.regs[dst as usize] = self.regs[a as usize] / self.regs[b as usize]
                }
                SOp::Sqrt { dst, a } => self.regs[dst as usize] = self.regs[a as usize].sqrt(),
                SOp::Neg { dst, a } => self.regs[dst as usize] = -self.regs[a as usize],
                SOp::Sign { dst, a } => {
                    self.regs[dst as usize] = if self.regs[a as usize] < 0.0 {
                        -1.0
                    } else {
                        1.0
                    }
                }
            }
        }
        let off = ln.write.offset(&self.frame, &self.cp.arrays);
        let arr = ws
            .array_mut(&self.cp.arrays[ln.write.array])
            .unwrap_or_else(|| panic!("unknown array {}", self.cp.arrays[ln.write.array]));
        arr.data_mut()[off] = self.regs[0];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, NullObserver};
    use shackle_ir::kernels;

    fn params(n: i64) -> BTreeMap<String, i64> {
        BTreeMap::from([("N".to_string(), n)])
    }

    /// Observer that records every access (owned copies).
    #[derive(Default)]
    struct Collect(Vec<(String, usize, bool)>);
    impl Observer for Collect {
        fn record(&mut self, a: Access<'_>) {
            self.0.push((a.array.to_string(), a.offset, a.write));
        }
    }

    fn assert_matches_tree(
        p: &shackle_ir::Program,
        params: &BTreeMap<String, i64>,
        init_seed: u64,
    ) {
        let init = crate::verify::hash_init(init_seed);
        let mut w1 = Workspace::for_program(p, params, &init);
        let mut w2 = Workspace::for_program(p, params, &init);
        let mut o1 = Collect::default();
        let mut o2 = Collect::default();
        let s1 = execute(p, &mut w1, params, &mut o1);
        let s2 = compile(p).execute(&mut w2, params, &mut o2);
        assert_eq!(s1, s2, "stats must match");
        assert_eq!(o1.0, o2.0, "access traces must match");
        for ((n1, a1), (n2, a2)) in w1.iter().zip(w2.iter()) {
            assert_eq!(n1, n2);
            assert!(
                a1.data()
                    .iter()
                    .zip(a2.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "array {n1} must be bit-identical"
            );
        }
    }

    #[test]
    fn matmul_matches_tree_interpreter() {
        assert_matches_tree(&kernels::matmul_ijk(), &params(6), 1);
    }

    #[test]
    fn qr_with_sign_matches_tree_interpreter() {
        assert_matches_tree(&kernels::qr_householder(), &params(5), 3);
    }

    #[test]
    fn scanned_cholesky_with_guards_matches_tree() {
        use shackle_core::{scan::generate_scanned, Blocking, Shackle};
        let p = kernels::cholesky_right();
        let s = Shackle::on_writes(&p, Blocking::square("A", 2, &[1, 0], 3));
        let scanned = generate_scanned(&p, &[s]);
        let init = crate::verify::spd_init("A", 8, 5);
        let mut w1 = Workspace::for_program(&scanned, &params(8), &init);
        let mut w2 = Workspace::for_program(&scanned, &params(8), &init);
        let s1 = execute(&scanned, &mut w1, &params(8), &mut NullObserver);
        let s2 = compile(&scanned).execute(&mut w2, &params(8), &mut NullObserver);
        assert_eq!(s1, s2);
        assert_eq!(w1.max_rel_diff(&w2), 0.0);
    }

    #[test]
    fn empty_ranges_execute_nothing() {
        use shackle_ir::{loop_, stmt, ArrayDecl, ArrayRef, Statement};
        use shackle_polyhedra::LinExpr;
        let a = ArrayRef::vars("A", &["I"]);
        let s = Statement::new("S", a.clone(), ScalarExpr::from(a) + 1.0.into());
        let p = shackle_ir::Program::new(
            "empty",
            vec!["N".into()],
            vec![ArrayDecl::new("A", vec![LinExpr::var("N")])],
            vec![s],
            vec![loop_(
                "I",
                LinExpr::var("N") + LinExpr::constant(1),
                LinExpr::var("N"),
                vec![stmt(0)],
            )],
        );
        let mut ws = Workspace::for_program(&p, &params(3), |_, _| 0.0);
        let stats = compile(&p).execute(&mut ws, &params(3), &mut NullObserver);
        assert_eq!(stats.instances, 0);
    }

    #[test]
    fn shadowed_loop_variables_resolve_innermost() {
        // for I in 1..=N { A[I] += 1; for I in 1..=2 { B[I] += 1 } }
        // — the inner I shadows the outer one, and the outer I must
        // survive the inner loop.
        use shackle_ir::{loop_, stmt, ArrayDecl, ArrayRef, Statement};
        use shackle_polyhedra::LinExpr;
        let a = ArrayRef::vars("A", &["I"]);
        let b = ArrayRef::vars("B", &["I"]);
        let s0 = Statement::new("S0", a.clone(), ScalarExpr::from(a) + 1.0.into());
        let s1 = Statement::new("S1", b.clone(), ScalarExpr::from(b) + 1.0.into());
        let p = shackle_ir::Program::new(
            "shadow",
            vec!["N".into()],
            vec![
                ArrayDecl::new("A", vec![LinExpr::var("N")]),
                ArrayDecl::new("B", vec![LinExpr::var("N")]),
            ],
            vec![s0, s1],
            vec![loop_(
                "I",
                LinExpr::constant(1),
                LinExpr::var("N"),
                vec![
                    stmt(0),
                    loop_(
                        "I",
                        LinExpr::constant(1),
                        LinExpr::constant(2),
                        vec![stmt(1)],
                    ),
                ],
            )],
        );
        let n = 4;
        let init = |_: &str, _: &[usize]| 0.0;
        let mut w1 = Workspace::for_program(&p, &params(n), init);
        let mut w2 = Workspace::for_program(&p, &params(n), init);
        let s1 = execute(&p, &mut w1, &params(n), &mut NullObserver);
        let s2 = compile(&p).execute(&mut w2, &params(n), &mut NullObserver);
        assert_eq!(s1, s2);
        assert_eq!(w1.max_rel_diff(&w2), 0.0);
        // every A element bumped once; B[1..2] bumped once per outer
        // iteration
        assert_eq!(w2.array("A").unwrap().get(&[3]), 1.0);
        assert_eq!(w2.array("B").unwrap().get(&[2]), n as f64);
    }

    #[test]
    fn batches_are_flushed_in_order() {
        // an observer that checks batch boundaries never reorder
        #[derive(Default)]
        struct Batches {
            flat: Vec<usize>,
            batches: usize,
        }
        impl Observer for Batches {
            fn record(&mut self, a: Access<'_>) {
                self.flat.push(a.offset);
            }
            fn record_many(&mut self, accesses: &[Access<'_>]) {
                self.batches += 1;
                for &a in accesses {
                    self.record(a);
                }
            }
        }
        let p = kernels::matmul_ijk();
        let n = 12; // 4 accesses × 12³ = 6912 > one batch
        let mut ws = Workspace::for_program(&p, &params(n), |_, _| 1.0);
        let mut obs = Batches::default();
        let stats = compile(&p).execute(&mut ws, &params(n), &mut obs);
        assert!(obs.batches >= 2, "expected multiple batches");
        assert_eq!(obs.flat.len() as u64, stats.loads + stats.stores);
        let mut o2 = Collect::default();
        let mut w2 = Workspace::for_program(&p, &params(n), |_, _| 1.0);
        execute(&p, &mut w2, &params(n), &mut o2);
        let tree: Vec<usize> = o2.0.iter().map(|t| t.1).collect();
        assert_eq!(obs.flat, tree);
    }

    #[test]
    fn instance_runner_replays_interpreter() {
        let p = kernels::cholesky_right();
        let n = 6;
        let init = crate::verify::spd_init("A", n as usize, 9);
        let mut reference = Workspace::for_program(&p, &params(n), &init);
        execute(&p, &mut reference, &params(n), &mut NullObserver);

        let cp = compile(&p);
        let mut ws = Workspace::for_program(&p, &params(n), &init);
        let instances = crate::multipass::enumerate_instances(&p, &params(n));
        let mut runner = InstanceRunner::new(&cp, &ws, &params(n));
        for inst in &instances {
            runner.run(&mut ws, inst.stmt, &inst.ivec);
        }
        assert_eq!(ws.max_rel_diff(&reference), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_subscript_panics() {
        use shackle_ir::{loop_, stmt, ArrayDecl, ArrayRef, Statement};
        use shackle_polyhedra::LinExpr;
        let a = ArrayRef::new("A", vec![LinExpr::var("I") + LinExpr::constant(1)]);
        let s = Statement::new("S", a.clone(), ScalarExpr::from(a) + 1.0.into());
        let p = shackle_ir::Program::new(
            "oob",
            vec!["N".into()],
            vec![ArrayDecl::new("A", vec![LinExpr::var("N")])],
            vec![s],
            vec![loop_(
                "I",
                LinExpr::constant(1),
                LinExpr::var("N"),
                vec![stmt(0)],
            )],
        );
        let mut ws = Workspace::for_program(&p, &params(3), |_, _| 0.0);
        compile(&p).execute(&mut ws, &params(3), &mut NullObserver);
    }
}
