//! Native execution tier: `rustc`-compiled kernels behind a hash-keyed
//! build cache.
//!
//! The paper's premise is that a source-to-source blocking tool hands
//! its shackled output to a real compiler. This module closes that
//! loop: any legality-checked program is rendered with
//! [`shackle_ir::emit::emit_with`], compiled with `rustc -O` through a
//! **content-addressed build cache** (keyed by the FNV-1a hash of the
//! complete runner source plus the `rustc -V` string), and executed in
//! a **persistent runner process** that serves repeated run requests
//! over length-prefixed stdio frames — so per-run cost is pipe I/O
//! plus native execution, not process spawn.
//!
//! # Runner protocol
//!
//! Request (host → runner), all integers little-endian:
//!
//! ```text
//! u8  mode            0 = plain, 1 = traced
//! u64 nparams         then nparams × i64 (program.params() order)
//! u64 narrays         then per array (declaration order):
//!                       u64 len, len × f64
//! ```
//!
//! Response (runner → host), a sequence of `u8 tag + u64 len + payload`
//! frames:
//!
//! * tag 1 — trace chunk: `len` packed `u64` access codes
//!   (`(offset << 8) | (array_index << 1) | is_write`, arrays in
//!   declaration order), streamed whenever the in-kernel buffer reaches
//!   [`shackle_ir::emit::TRACE_FLUSH_CODES`]; traced mode only;
//! * tag 2 — per-statement instance counters: `len` = statement count,
//!   payload `len × u64`;
//! * tag 3 — array data: `len` = total element count, payload is every
//!   array's `f64` data concatenated in declaration order. Terminates
//!   the response.
//!
//! The runner loops until stdin reaches EOF, so one spawned process
//! serves any number of runs.
//!
//! # Observability without observation cost
//!
//! The kernel body never calls back into the host. Exact [`ExecStats`]
//! are reconstructed from the per-statement counters (`instances` and
//! `stores` are the counter sum; `loads`/`flops` weight each counter by
//! the statement's static load/flop count — the same accounting the
//! tree interpreter does incrementally). Traced mode reproduces the
//! interpreter's exact per-element access sequence (loads in
//! left-to-right depth-first order, then the store), so memory
//! simulation and probe observability are preserved bit-for-bit.

use crate::compile::execute_compiled;
use crate::interp::count_flops;
use crate::{Access, ExecStats, Observer, Workspace};
use shackle_ir::emit::{emit_with, Dialect, EmitOptions};
use shackle_ir::{Program, ScalarExpr};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::LazyLock;

/// Accesses delivered per [`Observer::record_many`] batch when
/// replaying a native trace — matches the compiled engine's batching.
const BATCH: usize = 4096;

static RUSTC_VERSION: LazyLock<Option<String>> = LazyLock::new(|| {
    Command::new("rustc")
        .arg("-V")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
});

static RUSTC_INVOCATIONS: LazyLock<&'static shackle_probe::Counter> =
    LazyLock::new(|| shackle_probe::counter("native.rustc_invocations"));
static CACHE_HITS: LazyLock<&'static shackle_probe::Counter> =
    LazyLock::new(|| shackle_probe::counter("native.cache_hits"));
static CACHE_MISSES: LazyLock<&'static shackle_probe::Counter> =
    LazyLock::new(|| shackle_probe::counter("native.cache_misses"));

/// Whether a working `rustc` is on `PATH` (checked once per process).
pub fn rustc_available() -> bool {
    RUSTC_VERSION.is_some()
}

/// Errors from the native tier.
#[derive(Debug)]
pub enum NativeError {
    /// `rustc` is not available in this environment.
    Unavailable,
    /// `rustc` rejected the generated kernel (its stderr inside).
    Build(String),
    /// An I/O failure talking to the cache or the runner process.
    Io(std::io::Error),
    /// The runner sent a malformed or truncated response.
    Protocol(String),
}

impl std::fmt::Display for NativeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NativeError::Unavailable => write!(f, "rustc is not available"),
            NativeError::Build(e) => write!(f, "rustc failed to build kernel: {e}"),
            NativeError::Io(e) => write!(f, "native runner I/O error: {e}"),
            NativeError::Protocol(e) => write!(f, "native runner protocol error: {e}"),
        }
    }
}

impl std::error::Error for NativeError {}

impl From<std::io::Error> for NativeError {
    fn from(e: std::io::Error) -> Self {
        NativeError::Io(e)
    }
}

/// FNV-1a 64-bit — stable, dependency-free content hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical kernel hash: runner source content plus the compiler
/// identity, so a toolchain upgrade never serves stale binaries.
pub fn kernel_hash(source: &str) -> u64 {
    let rustc = RUSTC_VERSION.as_deref().unwrap_or("no-rustc");
    fnv1a(format!("{source}\x00{rustc}").as_bytes())
}

/// The default build-cache directory: `$SHACKLE_NATIVE_CACHE` when set,
/// otherwise `shackle-native-cache` under the system temp dir.
pub fn default_cache_dir() -> PathBuf {
    std::env::var_os("SHACKLE_NATIVE_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("shackle-native-cache"))
}

/// Result of a [`build`]: where the kernel binary lives and whether the
/// cache already had it.
#[derive(Clone, Debug)]
pub struct BuildOutcome {
    /// Path of the compiled runner binary.
    pub path: PathBuf,
    /// True when the binary was served from the cache without invoking
    /// `rustc`.
    pub cache_hit: bool,
    /// The canonical kernel hash the cache entry is keyed by.
    pub hash: u64,
}

/// Loads (array references on the RHS) of a scalar expression.
fn count_loads(e: &ScalarExpr) -> u64 {
    match e {
        ScalarExpr::Ref(_) => 1,
        ScalarExpr::Const(_) => 0,
        ScalarExpr::Add(a, b)
        | ScalarExpr::Sub(a, b)
        | ScalarExpr::Mul(a, b)
        | ScalarExpr::Div(a, b) => count_loads(a) + count_loads(b),
        ScalarExpr::Sqrt(a) | ScalarExpr::Neg(a) | ScalarExpr::Sign(a) => count_loads(a),
    }
}

/// Render the complete self-contained runner program for `program`:
/// both kernel variants (plain-with-counters and traced) plus a `main`
/// that serves run requests over the stdio frame protocol until EOF.
pub fn runner_source(program: &Program) -> String {
    let plain = emit_with(
        program,
        Dialect::Rust,
        EmitOptions {
            trace: false,
            counters: true,
        },
    );
    let traced = emit_with(
        program,
        Dialect::Rust,
        EmitOptions {
            trace: true,
            counters: true,
        },
    );
    let fn_name = program.name().replace('-', "_");
    let written: BTreeSet<&str> = program.stmts().iter().map(|s| s.write().array()).collect();

    let mut src = String::new();
    let _ = writeln!(
        src,
        "// Generated by data-shackle native tier for program `{}`.\n\
         use std::io::{{Read, Write}};\n",
        program.name()
    );
    let _ = writeln!(src, "mod plain {{\n{plain}}}\n");
    let _ = writeln!(src, "mod traced {{\nuse super::flush_trace;\n{traced}}}\n");
    src.push_str(
        "fn flush_trace(tr_: &mut Vec<u64>) {\n\
         \x20   let so = std::io::stdout();\n\
         \x20   let mut o = so.lock();\n\
         \x20   o.write_all(&[1u8]).unwrap();\n\
         \x20   o.write_all(&(tr_.len() as u64).to_le_bytes()).unwrap();\n\
         \x20   let mut bytes = Vec::with_capacity(tr_.len() * 8);\n\
         \x20   for &c in tr_.iter() { bytes.extend_from_slice(&c.to_le_bytes()); }\n\
         \x20   o.write_all(&bytes).unwrap();\n\
         \x20   tr_.clear();\n\
         }\n\n\
         fn read_u64(r: &mut impl Read) -> u64 {\n\
         \x20   let mut b = [0u8; 8];\n\
         \x20   r.read_exact(&mut b).unwrap();\n\
         \x20   u64::from_le_bytes(b)\n\
         }\n\n\
         fn main() {\n\
         \x20   let si = std::io::stdin();\n\
         \x20   let mut inp = std::io::BufReader::new(si.lock());\n",
    );
    let nstmts = program.stmts().len();
    let _ = writeln!(src, "    let mut cnt = vec![0u64; {nstmts}];");
    let _ = writeln!(
        src,
        "    let mut tr: Vec<u64> = Vec::with_capacity({});",
        shackle_ir::emit::TRACE_FLUSH_CODES
    );
    for i in 0..program.arrays().len() {
        let _ = writeln!(src, "    let mut arr{i}: Vec<f64> = Vec::new();");
    }
    src.push_str(
        "    loop {\n\
         \x20       let mut mode = [0u8; 1];\n\
         \x20       if inp.read_exact(&mut mode).is_err() { return; }\n\
         \x20       let np = read_u64(&mut inp) as usize;\n\
         \x20       let mut ps = vec![0i64; np];\n\
         \x20       for p in ps.iter_mut() {\n\
         \x20           let mut b = [0u8; 8];\n\
         \x20           inp.read_exact(&mut b).unwrap();\n\
         \x20           *p = i64::from_le_bytes(b);\n\
         \x20       }\n\
         \x20       let _na = read_u64(&mut inp);\n",
    );
    for i in 0..program.arrays().len() {
        let _ = writeln!(
            src,
            "        let len{i} = read_u64(&mut inp) as usize;\n\
             \x20       arr{i}.clear();\n\
             \x20       arr{i}.reserve(len{i});\n\
             \x20       {{\n\
             \x20           let mut bytes = vec![0u8; len{i} * 8];\n\
             \x20           inp.read_exact(&mut bytes).unwrap();\n\
             \x20           for c in bytes.chunks_exact(8) {{\n\
             \x20               arr{i}.push(f64::from_le_bytes(c.try_into().unwrap()));\n\
             \x20           }}\n\
             \x20       }}"
        );
    }
    src.push_str("        cnt.iter_mut().for_each(|c| *c = 0);\n");
    let mut call_args: Vec<String> = (0..program.params().len())
        .map(|i| format!("ps[{i}]"))
        .collect();
    for (i, a) in program.arrays().iter().enumerate() {
        if written.contains(a.name()) {
            call_args.push(format!("&mut arr{i}"));
        } else {
            call_args.push(format!("&arr{i}"));
        }
    }
    let args = call_args.join(", ");
    let _ = writeln!(
        src,
        "        if mode[0] == 1 {{\n\
         \x20           tr.clear();\n\
         \x20           traced::{fn_name}({args}, &mut cnt, &mut tr);\n\
         \x20           if !tr.is_empty() {{ flush_trace(&mut tr); }}\n\
         \x20       }} else {{\n\
         \x20           plain::{fn_name}({args}, &mut cnt);\n\
         \x20       }}"
    );
    src.push_str(
        "        {\n\
         \x20           let so = std::io::stdout();\n\
         \x20           let mut o = so.lock();\n\
         \x20           o.write_all(&[2u8]).unwrap();\n\
         \x20           o.write_all(&(cnt.len() as u64).to_le_bytes()).unwrap();\n\
         \x20           for &c in cnt.iter() { o.write_all(&c.to_le_bytes()).unwrap(); }\n\
         \x20           o.write_all(&[3u8]).unwrap();\n",
    );
    let total: String = (0..program.arrays().len())
        .map(|i| format!("arr{i}.len()"))
        .collect::<Vec<_>>()
        .join(" + ");
    let _ = writeln!(
        src,
        "            o.write_all(&(({total}) as u64).to_le_bytes()).unwrap();"
    );
    for i in 0..program.arrays().len() {
        let _ = writeln!(
            src,
            "            {{\n\
             \x20               let mut bytes = Vec::with_capacity(arr{i}.len() * 8);\n\
             \x20               for &v in arr{i}.iter() {{ bytes.extend_from_slice(&v.to_le_bytes()); }}\n\
             \x20               o.write_all(&bytes).unwrap();\n\
             \x20           }}"
        );
    }
    src.push_str(
        "            o.flush().unwrap();\n\
         \x20       }\n\
         \x20   }\n\
         }\n",
    );
    src
}

/// Build `program`'s runner binary through the default cache directory
/// (see [`default_cache_dir`]).
pub fn build(program: &Program) -> Result<BuildOutcome, NativeError> {
    build_in(&default_cache_dir(), program)
}

/// Build `program`'s runner binary through an explicit cache directory.
///
/// A cache hit serves the existing binary without spawning `rustc`
/// (observable through the `native.cache_hits` /
/// `native.rustc_invocations` probe counters). Placement is atomic: the
/// binary is compiled in a scratch dir and renamed into its
/// content-addressed home, so concurrent builders race benignly.
pub fn build_in(cache_dir: &Path, program: &Program) -> Result<BuildOutcome, NativeError> {
    if !rustc_available() {
        return Err(NativeError::Unavailable);
    }
    let _phase = shackle_probe::span("native.build");
    let source = runner_source(program);
    let hash = kernel_hash(&source);
    let entry = cache_dir.join(format!("{hash:016x}"));
    let bin = entry.join("kernel");
    if bin.is_file() {
        CACHE_HITS.add(1);
        return Ok(BuildOutcome {
            path: bin,
            cache_hit: true,
            hash,
        });
    }
    CACHE_MISSES.add(1);
    let scratch = cache_dir.join(format!(".build-{hash:016x}-{}", std::process::id()));
    std::fs::create_dir_all(&scratch)?;
    let src_path = scratch.join("kernel.rs");
    std::fs::write(&src_path, &source)?;
    RUSTC_INVOCATIONS.add(1);
    let out = Command::new("rustc")
        .arg("-O")
        .arg("--edition")
        .arg("2021")
        .arg("-o")
        .arg(scratch.join("kernel"))
        .arg(&src_path)
        .output()?;
    if !out.status.success() {
        let _ = std::fs::remove_dir_all(&scratch);
        return Err(NativeError::Build(
            String::from_utf8_lossy(&out.stderr).into_owned(),
        ));
    }
    match std::fs::rename(&scratch, &entry) {
        Ok(()) => {}
        Err(e) => {
            // Lost a race with a concurrent builder: their entry wins.
            let _ = std::fs::remove_dir_all(&scratch);
            if !bin.is_file() {
                return Err(NativeError::Io(e));
            }
        }
    }
    Ok(BuildOutcome {
        path: bin,
        cache_hit: false,
        hash,
    })
}

/// Static per-statement accounting used to reconstruct [`ExecStats`]
/// from the runner's instance counters.
#[derive(Clone, Copy, Debug)]
struct StmtCost {
    loads: u64,
    flops: u64,
}

/// A compiled kernel attached to its persistent runner process.
///
/// Spawn once, [`run`](NativeKernel::run) many times: each run sends
/// parameters and array contents down the pipe and reads the results
/// back, so repeated executions pay pipe I/O plus native speed — no
/// process spawn, no rustc.
#[derive(Debug)]
pub struct NativeKernel {
    child: Child,
    stdin: Option<BufWriter<ChildStdin>>,
    stdout: BufReader<ChildStdout>,
    /// Which cache entry backs this kernel.
    outcome: BuildOutcome,
    params: Vec<String>,
    arrays: Vec<String>,
    costs: Vec<StmtCost>,
}

impl NativeKernel {
    /// Build (through the default cache) and spawn the runner for
    /// `program`.
    pub fn spawn(program: &Program) -> Result<Self, NativeError> {
        Self::spawn_in(&default_cache_dir(), program)
    }

    /// Build through an explicit cache directory and spawn the runner.
    pub fn spawn_in(cache_dir: &Path, program: &Program) -> Result<Self, NativeError> {
        let outcome = build_in(cache_dir, program)?;
        let mut child = Command::new(&outcome.path)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        Ok(Self {
            child,
            stdin: Some(BufWriter::new(stdin)),
            stdout: BufReader::new(stdout),
            outcome,
            params: program.params().to_vec(),
            arrays: program
                .arrays()
                .iter()
                .map(|a| a.name().to_string())
                .collect(),
            costs: program
                .stmts()
                .iter()
                .map(|s| StmtCost {
                    loads: count_loads(s.rhs()),
                    flops: count_flops(s),
                })
                .collect(),
        })
    }

    /// The build outcome (cache path/hit/hash) behind this kernel.
    pub fn build_outcome(&self) -> &BuildOutcome {
        &self.outcome
    }

    fn send_request(
        &mut self,
        mode: u8,
        workspace: &Workspace,
        params: &BTreeMap<String, i64>,
    ) -> Result<(), NativeError> {
        let w = self
            .stdin
            .as_mut()
            .ok_or_else(|| NativeError::Protocol("runner stdin already closed".into()))?;
        w.write_all(&[mode])?;
        w.write_all(&(self.params.len() as u64).to_le_bytes())?;
        for p in &self.params {
            let v = *params
                .get(p)
                .unwrap_or_else(|| panic!("missing parameter {p}"));
            w.write_all(&v.to_le_bytes())?;
        }
        w.write_all(&(self.arrays.len() as u64).to_le_bytes())?;
        for name in &self.arrays {
            let arr = workspace
                .array(name)
                .unwrap_or_else(|| panic!("unknown array {name}"));
            w.write_all(&(arr.len() as u64).to_le_bytes())?;
            let mut bytes = Vec::with_capacity(arr.len() * 8);
            for &v in arr.data() {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            w.write_all(&bytes)?;
        }
        w.flush()?;
        Ok(())
    }

    fn read_frame(&mut self) -> Result<(u8, Vec<u8>), NativeError> {
        let mut tag = [0u8; 1];
        self.stdout.read_exact(&mut tag)?;
        let mut lenb = [0u8; 8];
        self.stdout.read_exact(&mut lenb)?;
        let len = u64::from_le_bytes(lenb) as usize;
        let mut payload = vec![0u8; len * 8];
        self.stdout.read_exact(&mut payload)?;
        Ok((tag[0], payload))
    }

    /// Read response frames until tag 3.
    fn read_response(&mut self) -> Result<Response, NativeError> {
        let mut codes = Vec::new();
        let mut counters = Vec::new();
        loop {
            let (tag, payload) = self.read_frame()?;
            match tag {
                1 => {
                    codes.extend(
                        payload
                            .chunks_exact(8)
                            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
                    );
                }
                2 => {
                    counters = payload
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                        .collect();
                }
                3 => {
                    if counters.len() != self.costs.len() {
                        return Err(NativeError::Protocol(format!(
                            "expected {} statement counters, got {}",
                            self.costs.len(),
                            counters.len()
                        )));
                    }
                    return Ok(Response {
                        codes,
                        counters,
                        arrays: payload,
                    });
                }
                t => return Err(NativeError::Protocol(format!("unknown frame tag {t}"))),
            }
        }
    }

    /// Reconstruct exact [`ExecStats`] from the per-statement instance
    /// counters.
    fn stats_from_counters(&self, counters: &[u64]) -> ExecStats {
        let mut stats = ExecStats::default();
        for (cnt, cost) in counters.iter().zip(&self.costs) {
            stats.instances += cnt;
            stats.stores += cnt;
            stats.loads += cnt * cost.loads;
            stats.flops += cnt * cost.flops;
        }
        stats
    }

    /// Copy the returned array payload back into the workspace. Nothing
    /// is written until the whole response has been received, so a
    /// failed run leaves the workspace untouched.
    fn apply_arrays(&self, payload: &[u8], workspace: &mut Workspace) -> Result<(), NativeError> {
        let total: usize = self
            .arrays
            .iter()
            .map(|n| workspace.array(n).map_or(0, |a| a.len()))
            .sum();
        if payload.len() != total * 8 {
            return Err(NativeError::Protocol(format!(
                "array payload is {} bytes, expected {}",
                payload.len(),
                total * 8
            )));
        }
        let mut off = 0usize;
        for name in &self.arrays {
            let arr = workspace
                .array_mut(name)
                .unwrap_or_else(|| panic!("unknown array {name}"));
            for v in arr.data_mut() {
                let c: [u8; 8] = payload[off..off + 8].try_into().expect("8-byte chunk");
                *v = f64::from_le_bytes(c);
                off += 8;
            }
        }
        Ok(())
    }

    /// Execute once, without tracing. Matches the tree interpreter
    /// bit-for-bit on array contents and exactly on [`ExecStats`].
    ///
    /// # Panics
    ///
    /// Panics on missing parameters or arrays, like the interpreters.
    pub fn run(
        &mut self,
        workspace: &mut Workspace,
        params: &BTreeMap<String, i64>,
    ) -> Result<ExecStats, NativeError> {
        let _phase = shackle_probe::span("native.run");
        self.send_request(0, workspace, params)?;
        let r = self.read_response()?;
        self.apply_arrays(&r.arrays, workspace)?;
        let stats = self.stats_from_counters(&r.counters);
        crate::publish_exec_stats(&stats);
        Ok(stats)
    }

    /// Execute once with full access tracing: the interpreter's exact
    /// per-element access sequence is replayed into `observer` in
    /// batches after the run completes successfully.
    ///
    /// # Panics
    ///
    /// Panics on missing parameters or arrays, like the interpreters.
    pub fn run_traced(
        &mut self,
        workspace: &mut Workspace,
        params: &BTreeMap<String, i64>,
        observer: &mut dyn Observer,
    ) -> Result<ExecStats, NativeError> {
        let _phase = shackle_probe::span("native.run_traced");
        self.send_request(1, workspace, params)?;
        let r = self.read_response()?;
        self.apply_arrays(&r.arrays, workspace)?;
        let mut batch: Vec<Access<'_>> = Vec::with_capacity(BATCH);
        for &code in &r.codes {
            let idx = ((code & 0xff) >> 1) as usize;
            let array = self
                .arrays
                .get(idx)
                .ok_or_else(|| NativeError::Protocol(format!("trace names array {idx}")))?;
            batch.push(Access {
                array,
                offset: (code >> 8) as usize,
                write: code & 1 == 1,
            });
            if batch.len() >= BATCH {
                observer.record_many(&batch);
                batch.clear();
            }
        }
        if !batch.is_empty() {
            observer.record_many(&batch);
        }
        let stats = self.stats_from_counters(&r.counters);
        crate::publish_exec_stats(&stats);
        Ok(stats)
    }
}

/// One complete runner response: trace codes (traced mode only),
/// per-statement instance counters, and the raw array payload.
struct Response {
    codes: Vec<u64>,
    counters: Vec<u64>,
    arrays: Vec<u8>,
}

impl Drop for NativeKernel {
    fn drop(&mut self) {
        // Closing stdin makes the runner's read loop hit EOF and exit.
        self.stdin.take();
        let _ = self.child.wait();
    }
}

/// Execution tiers, slowest to fastest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// The tree-walking reference interpreter ([`crate::execute`]).
    Tree,
    /// The compiled bytecode engine ([`crate::compile()`]).
    Bytecode,
    /// `rustc`-compiled kernels in a runner process (this module).
    Native,
}

/// Execute on the fastest available tier (native when `rustc` works,
/// bytecode otherwise), returning the stats and the tier that ran.
///
/// Tier-selection policy: native is tried first; *any* native failure
/// (no rustc, build error, runner fault) falls back to the bytecode
/// engine, which shares the interpreter's exact semantics. The
/// workspace is only mutated by whichever tier completes, so the
/// fallback never observes partial native writes.
pub fn execute_auto(
    program: &Program,
    workspace: &mut Workspace,
    params: &BTreeMap<String, i64>,
) -> (ExecStats, Tier) {
    if rustc_available() {
        if let Ok(mut k) = NativeKernel::spawn(program) {
            if let Ok(stats) = k.run(workspace, params) {
                return (stats, Tier::Native);
            }
        }
    }
    (
        execute_compiled(program, workspace, params, &mut crate::NullObserver),
        Tier::Bytecode,
    )
}

/// [`execute_auto`] with access tracing: the observer receives the
/// interpreter's exact access sequence from whichever tier runs.
pub fn execute_auto_traced(
    program: &Program,
    workspace: &mut Workspace,
    params: &BTreeMap<String, i64>,
    observer: &mut dyn Observer,
) -> (ExecStats, Tier) {
    if rustc_available() {
        if let Ok(mut k) = NativeKernel::spawn(program) {
            if let Ok(stats) = k.run_traced(workspace, params, observer) {
                return (stats, Tier::Native);
            }
        }
    }
    (
        execute_compiled(program, workspace, params, observer),
        Tier::Bytecode,
    )
}
