//! The reference interpreter.
//!
//! Executes any [`Program`] — original input codes, naive shackled code
//! and scanned code alike — against a [`Workspace`], emitting one
//! [`Access`] event per array element touched. The interpreter is the
//! semantics of record for the whole workspace: every transformation is
//! validated by running source and transformed programs and comparing
//! workspaces.

use crate::{DenseArray, Workspace};
use shackle_ir::{Bound, Node, Program, ScalarExpr, Statement};
use shackle_polyhedra::num::{ceil_div, floor_div};
use std::collections::BTreeMap;

/// One array-element access, reported to an [`Observer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access<'a> {
    /// Name of the accessed array.
    pub array: &'a str,
    /// Column-major element offset within the array.
    pub offset: usize,
    /// True for stores, false for loads.
    pub write: bool,
}

/// Receives every memory access during execution, in program order.
///
/// The cache simulator implements this to turn executions into address
/// traces; [`NullObserver`] ignores everything.
///
/// Implement [`Observer::record`] (the per-element entry point);
/// override [`Observer::record_many`] where per-batch work can be
/// amortized — the compiled engine and the native tier buffer accesses
/// and deliver them through it, eliminating one virtual call per
/// element.
pub trait Observer {
    /// Called once per element load/store.
    fn record(&mut self, access: Access<'_>);

    /// Called with a chunk of consecutive accesses in program order.
    /// The default forwards each element to [`Observer::record`].
    fn record_many(&mut self, accesses: &[Access<'_>]) {
        for &a in accesses {
            self.record(a);
        }
    }
}

/// An [`Observer`] that does nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn record(&mut self, _access: Access<'_>) {}
    fn record_many(&mut self, _accesses: &[Access<'_>]) {}
}

/// Execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Statement instances executed.
    pub instances: u64,
    /// Array element loads.
    pub loads: u64,
    /// Array element stores.
    pub stores: u64,
    /// Floating-point operations: `+ - * /` and `sqrt` each count 1;
    /// negation and sign-extraction are free, matching the BLAS/LAPACK
    /// flop-counting convention.
    pub flops: u64,
}

/// Execute `program` against `workspace` under the given parameter
/// binding, reporting accesses to `observer`.
///
/// # Panics
///
/// Panics on missing parameters, out-of-range subscripts, or a loop
/// bound mentioning an unbound variable — all of which indicate a
/// malformed program or an incorrect transformation, which is exactly
/// what the interpreter exists to expose.
///
/// # Examples
///
/// ```
/// use shackle_exec::{execute, NullObserver, Workspace};
/// use std::collections::BTreeMap;
/// let p = shackle_ir::kernels::matmul_ijk();
/// let params = BTreeMap::from([("N".to_string(), 3i64)]);
/// let mut ws = Workspace::for_program(&p, &params, |name, _| {
///     if name == "C" { 0.0 } else { 1.0 }
/// });
/// let stats = execute(&p, &mut ws, &params, &mut NullObserver);
/// assert_eq!(stats.instances, 27);
/// // C = A·B where A = B = all-ones: every C entry is N
/// assert_eq!(ws.array("C").unwrap().get(&[2, 3]), 3.0);
/// ```
pub fn execute(
    program: &Program,
    workspace: &mut Workspace,
    params: &BTreeMap<String, i64>,
    observer: &mut dyn Observer,
) -> ExecStats {
    let _phase = shackle_probe::span("interp");
    let mut interp = Interp {
        program,
        workspace,
        env: params.clone(),
        observer,
        stats: ExecStats::default(),
        flops_per_stmt: program.stmts().iter().map(count_flops).collect(),
    };
    interp.run_nodes(program.body());
    crate::publish_exec_stats(&interp.stats);
    interp.stats
}

pub(crate) fn count_flops(s: &Statement) -> u64 {
    fn walk(e: &ScalarExpr) -> u64 {
        match e {
            ScalarExpr::Ref(_) | ScalarExpr::Const(_) => 0,
            ScalarExpr::Add(a, b)
            | ScalarExpr::Sub(a, b)
            | ScalarExpr::Mul(a, b)
            | ScalarExpr::Div(a, b) => 1 + walk(a) + walk(b),
            ScalarExpr::Sqrt(a) => 1 + walk(a),
            // sign flips carry no arithmetic cost (BLAS convention)
            ScalarExpr::Neg(a) | ScalarExpr::Sign(a) => walk(a),
        }
    }
    walk(s.rhs())
}

struct Interp<'a> {
    program: &'a Program,
    workspace: &'a mut Workspace,
    env: BTreeMap<String, i64>,
    observer: &'a mut dyn Observer,
    stats: ExecStats,
    flops_per_stmt: Vec<u64>,
}

impl Interp<'_> {
    fn lookup(&self, v: &str) -> i64 {
        *self
            .env
            .get(v)
            .unwrap_or_else(|| panic!("unbound variable {v} during execution"))
    }

    fn eval_lin(&self, e: &shackle_polyhedra::LinExpr) -> i64 {
        e.eval(&|v| self.lookup(v))
    }

    fn eval_bound(&self, b: &Bound, lower: bool) -> i64 {
        let vals = b.terms.iter().map(|t| {
            let num = self.eval_lin(&t.expr);
            if lower {
                ceil_div(num, t.div)
            } else {
                floor_div(num, t.div)
            }
        });
        if lower {
            vals.max().expect("bounds are non-empty")
        } else {
            vals.min().expect("bounds are non-empty")
        }
    }

    fn run_nodes(&mut self, nodes: &[Node]) {
        for n in nodes {
            match n {
                Node::Stmt(id) => self.run_stmt(*id),
                Node::If(cs, body) => {
                    if cs.iter().all(|c| c.eval(&|v| self.lookup(v))) {
                        self.run_nodes(body);
                    }
                }
                Node::Loop(l) => {
                    let lo = self.eval_bound(&l.lower, true);
                    let hi = self.eval_bound(&l.upper, false);
                    if lo > hi {
                        continue;
                    }
                    // Bind the variable once per loop *entry* — the key
                    // is cloned here and never again; iterations update
                    // the binding in place. The tail below is the scope
                    // guard: it restores the shadowed binding (inner
                    // loops reusing the name rely on it).
                    let shadowed = self.env.insert(l.var.clone(), lo);
                    let mut i = lo;
                    loop {
                        self.run_nodes(&l.body);
                        if i == hi {
                            break;
                        }
                        i += 1;
                        *self.env.get_mut(&l.var).expect("loop variable bound") = i;
                    }
                    match shadowed {
                        Some(v) => {
                            *self.env.get_mut(&l.var).expect("loop variable bound") = v;
                        }
                        None => {
                            self.env.remove(&l.var);
                        }
                    }
                }
            }
        }
    }

    fn run_stmt(&mut self, id: usize) {
        let stmt = &self.program.stmts()[id];
        let value = self.eval_scalar(stmt.rhs());
        let idx: Vec<i64> = stmt
            .write()
            .indices()
            .iter()
            .map(|e| self.eval_lin(e))
            .collect();
        let arr = self
            .workspace
            .array_mut(stmt.write().array())
            .unwrap_or_else(|| panic!("unknown array {}", stmt.write().array()));
        let offset = arr.offset(&idx);
        arr.data_mut()[offset] = value;
        self.observer.record(Access {
            array: stmt.write().array(),
            offset,
            write: true,
        });
        self.stats.stores += 1;
        self.stats.instances += 1;
        self.stats.flops += self.flops_per_stmt[id];
    }

    fn eval_scalar(&mut self, e: &ScalarExpr) -> f64 {
        match e {
            ScalarExpr::Const(c) => *c,
            ScalarExpr::Ref(r) => {
                let idx: Vec<i64> = r.indices().iter().map(|x| self.eval_lin(x)).collect();
                let arr: &DenseArray = self
                    .workspace
                    .array(r.array())
                    .unwrap_or_else(|| panic!("unknown array {}", r.array()));
                let offset = arr.offset(&idx);
                let v = arr.data()[offset];
                self.observer.record(Access {
                    array: r.array(),
                    offset,
                    write: false,
                });
                self.stats.loads += 1;
                v
            }
            ScalarExpr::Add(a, b) => self.eval_scalar(a) + self.eval_scalar(b),
            ScalarExpr::Sub(a, b) => self.eval_scalar(a) - self.eval_scalar(b),
            ScalarExpr::Mul(a, b) => self.eval_scalar(a) * self.eval_scalar(b),
            ScalarExpr::Div(a, b) => self.eval_scalar(a) / self.eval_scalar(b),
            ScalarExpr::Sqrt(a) => self.eval_scalar(a).sqrt(),
            ScalarExpr::Neg(a) => -self.eval_scalar(a),
            ScalarExpr::Sign(a) => {
                if self.eval_scalar(a) < 0.0 {
                    -1.0
                } else {
                    1.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shackle_ir::kernels;

    fn params(n: i64) -> BTreeMap<String, i64> {
        BTreeMap::from([("N".to_string(), n)])
    }

    #[test]
    fn matmul_counts_and_values() {
        let p = kernels::matmul_ijk();
        let n = 5;
        let mut ws = Workspace::for_program(&p, &params(n), |name, idx| match name {
            "C" => 0.0,
            "A" => idx[0] as f64,
            _ => idx[1] as f64,
        });
        let stats = execute(&p, &mut ws, &params(n), &mut NullObserver);
        assert_eq!(stats.instances, (n * n * n) as u64);
        assert_eq!(stats.flops, 2 * (n * n * n) as u64);
        assert_eq!(stats.loads, 3 * (n * n * n) as u64);
        // C[i,j] = sum_k i * j = i*j*n
        let c = ws.array("C").unwrap();
        assert_eq!(c.get(&[2, 3]), (2 * 3 * n) as f64);
    }

    #[test]
    fn cholesky_factorizes_identity_scaled() {
        let p = kernels::cholesky_right();
        let n = 4;
        // A = 4·I: Cholesky factor is 2·I (lower triangle)
        let mut ws =
            Workspace::for_program(
                &p,
                &params(n),
                |_, idx| {
                    if idx[0] == idx[1] {
                        4.0
                    } else {
                        0.0
                    }
                },
            );
        execute(&p, &mut ws, &params(n), &mut NullObserver);
        let a = ws.array("A").unwrap();
        for i in 1..=n {
            assert_eq!(a.get(&[i, i]), 2.0);
            for j in 1..i {
                assert_eq!(a.get(&[i, j]), 0.0);
            }
        }
    }

    #[test]
    fn cholesky_small_known_matrix() {
        // A = [[4,2],[2,5]] → L = [[2,0],[1,2]]
        let p = kernels::cholesky_right();
        let n = 2;
        let vals = [[4.0, 2.0], [2.0, 5.0]];
        let mut ws = Workspace::for_program(&p, &params(n), |_, idx| vals[idx[0] - 1][idx[1] - 1]);
        execute(&p, &mut ws, &params(n), &mut NullObserver);
        let a = ws.array("A").unwrap();
        assert!((a.get(&[1, 1]) - 2.0).abs() < 1e-12);
        assert!((a.get(&[2, 1]) - 1.0).abs() < 1e-12);
        assert!((a.get(&[2, 2]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn left_and_right_cholesky_agree() {
        let n = 8;
        let spd = |idx: &[usize]| {
            // diagonally dominant symmetric matrix
            if idx[0] == idx[1] {
                20.0 + idx[0] as f64
            } else {
                1.0 / ((idx[0] + idx[1]) as f64)
            }
        };
        let pr = kernels::cholesky_right();
        let mut wr = Workspace::for_program(&pr, &params(n), |_, idx| spd(idx));
        execute(&pr, &mut wr, &params(n), &mut NullObserver);
        let pl = kernels::cholesky_left();
        let mut wl = Workspace::for_program(&pl, &params(n), |_, idx| spd(idx));
        execute(&pl, &mut wl, &params(n), &mut NullObserver);
        // compare lower triangles
        let (ar, al) = (wr.array("A").unwrap(), wl.array("A").unwrap());
        for i in 1..=n {
            for j in 1..=i {
                assert!(
                    (ar.get(&[i, j]) - al.get(&[i, j])).abs() < 1e-9,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn flop_convention_ignores_neg_and_sign() {
        use shackle_ir::{ArrayRef, Statement};
        let a = || ScalarExpr::from(ArrayRef::vars("A", &["I"]));
        // -(sign(A[I]) * A[I]) + A[I]: one Mul + one Add; Neg and Sign
        // are free under the BLAS convention
        let rhs = ScalarExpr::Neg(Box::new(a().sign() * a())) + a();
        let s = Statement::new("S", ArrayRef::vars("A", &["I"]), rhs);
        assert_eq!(count_flops(&s), 2);
        // sqrt still costs one
        let s2 = Statement::new("S2", ArrayRef::vars("A", &["I"]), a().sqrt());
        assert_eq!(count_flops(&s2), 1);
    }

    #[test]
    fn cholesky_flop_formula() {
        // S1 (sqrt): n instances × 1 flop; S2 (div): n(n−1)/2 × 1;
        // S3 (sub+mul): Σ_j (n−j)(n−j+1)/2 instances × 2 — the classic
        // n³/3 + O(n²) Cholesky count.
        let p = kernels::cholesky_right();
        let n: i64 = 24;
        let init = crate::verify::spd_init("A", n as usize, 7);
        let mut ws = Workspace::for_program(&p, &params(n), init);
        let stats = execute(&p, &mut ws, &params(n), &mut NullObserver);
        let s3: i64 = (1..=n).map(|j| (n - j) * (n - j + 1) / 2).sum();
        let expect = n + n * (n - 1) / 2 + 2 * s3;
        assert_eq!(stats.flops, expect as u64);
        let ratio = stats.flops as f64 / (n as f64).powi(3);
        assert!((0.30..0.40).contains(&ratio), "n³/3 asymptotic: {ratio}");
    }

    #[test]
    fn observer_sees_accesses_in_order() {
        struct Collect(Vec<(String, usize, bool)>);
        impl Observer for Collect {
            fn record(&mut self, a: Access<'_>) {
                self.0.push((a.array.to_string(), a.offset, a.write));
            }
        }
        let p = kernels::matmul_ijk();
        let mut ws = Workspace::for_program(&p, &params(1), |_, _| 1.0);
        let mut obs = Collect(Vec::new());
        execute(&p, &mut ws, &params(1), &mut obs);
        // one instance: loads C, A, B then stores C
        assert_eq!(
            obs.0,
            vec![
                ("C".to_string(), 0, false),
                ("A".to_string(), 0, false),
                ("B".to_string(), 0, false),
                ("C".to_string(), 0, true),
            ]
        );
    }

    #[test]
    fn empty_loop_ranges_execute_nothing() {
        use shackle_ir::{loop_, stmt, ArrayDecl, ArrayRef, ScalarExpr, Statement};
        use shackle_polyhedra::LinExpr;
        let a = ArrayRef::vars("A", &["I"]);
        let s = Statement::new("S", a.clone(), ScalarExpr::from(a) + 1.0.into());
        let p = shackle_ir::Program::new(
            "empty",
            vec!["N".into()],
            vec![ArrayDecl::new("A", vec![LinExpr::var("N")])],
            vec![s],
            vec![loop_(
                "I",
                LinExpr::var("N") + LinExpr::constant(1),
                LinExpr::var("N"),
                vec![stmt(0)],
            )],
        );
        let mut ws = Workspace::for_program(&p, &params(3), |_, _| 0.0);
        let stats = execute(&p, &mut ws, &params(3), &mut NullObserver);
        assert_eq!(stats.instances, 0);
    }

    #[test]
    fn gauss_eliminates() {
        // A = [[2,1],[4,4]] → L\U in place: U = [[2,1],[0,2]], L21 = 2
        let p = kernels::gauss();
        let vals = [[2.0, 1.0], [4.0, 4.0]];
        let mut ws = Workspace::for_program(&p, &params(2), |_, idx| vals[idx[0] - 1][idx[1] - 1]);
        execute(&p, &mut ws, &params(2), &mut NullObserver);
        let a = ws.array("A").unwrap();
        assert_eq!(a.get(&[2, 1]), 2.0);
        assert_eq!(a.get(&[2, 2]), 2.0);
    }

    #[test]
    fn qr_householder_known_2x2() {
        // A = [[3,1],[4,1]]: ‖col1‖ = 5, v = (3+5, 4) = (8,4), vᵀv = 80.
        // Reflecting column 2: w = vᵀa₂ = 12;
        //   A[1,2] = 1 − 2·8·12/80 = −1.4  (this is R[1,2])
        //   A[2,2] = 1 − 2·4·12/80 = −0.2
        // K = 2 then overwrites A[2,2] with its Householder v₁ =
        // −0.2 + sign(−0.2)·0.2 = −0.4. (|R[2,2]| = |det|/‖col1‖ = 0.2.)
        let p = kernels::qr_householder();
        let vals = [[3.0, 1.0], [4.0, 1.0]];
        let mut ws = Workspace::for_program(&p, &params(2), |name, idx| {
            if name == "A" {
                vals[idx[0] - 1][idx[1] - 1]
            } else {
                0.0
            }
        });
        execute(&p, &mut ws, &params(2), &mut NullObserver);
        let a = ws.array("A").unwrap();
        assert!((a.get(&[1, 2]) + 1.4).abs() < 1e-12, "{}", a.get(&[1, 2]));
        assert!((a.get(&[2, 2]) + 0.4).abs() < 1e-12, "{}", a.get(&[2, 2]));
        // the Householder scalars survive in T
        assert!((ws.array("T").unwrap().get(&[1]) - 80.0).abs() < 1e-12);
    }
}
