//! Multipass shackled execution — the paper's §8 proposal for codes
//! where no single sweep over the blocked array is legal:
//!
//! > "rather than perform all shackled statement instances when we touch
//! > a block, we can perform only those instances for which dependences
//! > have been satisfied. The array is traversed repeatedly till all
//! > instances are performed."
//!
//! This module implements that executor exactly, for concrete problem
//! sizes: it enumerates every statement instance, builds the exact
//! instance-level dependence graph from the memory locations each
//! instance touches, assigns instances to blocks through the shackle
//! map, and then sweeps the blocks in lexicographic order — executing,
//! on each visit, the pending instances of the current block whose
//! dependence predecessors have all executed — until nothing is pending.
//!
//! Relaxation codes (the paper's motivating case: "an array element is
//! eventually affected by every other element") typically need several
//! sweeps; codes whose shackle is legal complete in exactly one.

use crate::compile::{compile, InstanceRunner};
use crate::Workspace;
use shackle_ir::{Bound, Node, Program, StmtId};
use shackle_polyhedra::num::{ceil_div, floor_div};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// An enumerated statement instance: which statement, and the values of
/// its surrounding loop variables (outermost first).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// The statement.
    pub stmt: StmtId,
    /// Loop variable values, outermost first.
    pub ivec: Vec<i64>,
}

/// Result of a multipass run.
#[derive(Clone, Debug)]
pub struct MultipassRun {
    /// Number of sweeps over the blocked array until completion.
    pub sweeps: usize,
    /// Total statement instances executed.
    pub instances: u64,
}

/// Enumerate all instances of a program in original program order, for
/// concrete parameters.
pub fn enumerate_instances(program: &Program, params: &BTreeMap<String, i64>) -> Vec<Instance> {
    fn walk(
        nodes: &[Node],
        env: &mut BTreeMap<String, i64>,
        ivec: &mut Vec<i64>,
        out: &mut Vec<Instance>,
    ) {
        for n in nodes {
            match n {
                Node::Stmt(id) => out.push(Instance {
                    stmt: *id,
                    ivec: ivec.clone(),
                }),
                Node::If(cs, body) => {
                    if cs.iter().all(|c| c.eval(&|v| env[v])) {
                        walk(body, env, ivec, out);
                    }
                }
                Node::Loop(l) => {
                    let eval_bound = |b: &Bound, lower: bool, env: &BTreeMap<String, i64>| {
                        let vals = b.terms.iter().map(|t| {
                            let num = t.expr.eval(&|v| env[v]);
                            if lower {
                                ceil_div(num, t.div)
                            } else {
                                floor_div(num, t.div)
                            }
                        });
                        if lower {
                            vals.max().unwrap()
                        } else {
                            vals.min().unwrap()
                        }
                    };
                    let lo = eval_bound(&l.lower, true, env);
                    let hi = eval_bound(&l.upper, false, env);
                    let shadowed = env.get(&l.var).copied();
                    for i in lo..=hi {
                        env.insert(l.var.clone(), i);
                        ivec.push(i);
                        walk(&l.body, env, ivec, out);
                        ivec.pop();
                    }
                    match shadowed {
                        Some(v) => {
                            env.insert(l.var.clone(), v);
                        }
                        None => {
                            env.remove(&l.var);
                        }
                    }
                }
            }
        }
    }
    let mut env = params.clone();
    let mut out = Vec::new();
    walk(program.body(), &mut env, &mut Vec::new(), &mut out);
    out
}

/// Execute `program` under a data-centric multipass schedule and return
/// the number of sweeps taken.
///
/// `block_of` maps each instance to its block coordinates (the shackle
/// map `M`; for the canonical axis blockings this is
/// `ceil(projection / width)` per cut). Blocks are visited in ascending
/// lexicographic order of the returned vectors, repeatedly, until every
/// instance has run; within one block visit, ready instances run in
/// original program order. Dependences are exact: they are derived from
/// the memory locations every instance reads and writes.
///
/// # Panics
///
/// Panics if the schedule cannot make progress (impossible: the first
/// pending instance in program order is always eventually ready) or on
/// the interpreter's usual errors.
pub fn execute_multipass(
    program: &Program,
    workspace: &mut Workspace,
    params: &BTreeMap<String, i64>,
    block_of: impl Fn(&Instance) -> Vec<i64>,
) -> MultipassRun {
    let instances = enumerate_instances(program, params);
    let n = instances.len();
    // The compiled engine resolves every instance's memory locations
    // (dense (array, offset) keys, no name lookups) and executes the
    // ready instances.
    let cp = compile(program);
    let mut runner = InstanceRunner::new(&cp, workspace, params);

    // Exact instance-level dependences via per-location access history.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    {
        #[derive(Default)]
        struct LocState {
            last_writer: Option<usize>,
            readers_since: Vec<usize>,
        }
        let mut locs: HashMap<(usize, usize), LocState> = HashMap::new();
        let mut reads = Vec::new();
        for (idx, inst) in instances.iter().enumerate() {
            reads.clear();
            let write = runner.locations(inst.stmt, &inst.ivec, &mut reads);
            for &key in &reads {
                let st = locs.entry(key).or_default();
                if let Some(w) = st.last_writer {
                    preds[idx].push(w);
                }
                st.readers_since.push(idx);
            }
            let st = locs.entry(write).or_default();
            if let Some(w) = st.last_writer {
                preds[idx].push(w);
            }
            preds[idx].append(&mut st.readers_since);
            st.last_writer = Some(idx);
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
            // self-loops from read+write of the same location
            p.retain(|&q| q != usize::MAX);
        }
    }
    for (idx, p) in preds.iter_mut().enumerate() {
        p.retain(|&q| q != idx);
    }

    // Group instances by block, blocks in lexicographic order.
    let mut blocks: BTreeMap<Vec<i64>, Vec<usize>> = BTreeMap::new();
    for (idx, inst) in instances.iter().enumerate() {
        blocks.entry(block_of(inst)).or_default().push(idx);
    }

    let mut done = vec![false; n];
    let mut remaining = n;
    let mut sweeps = 0;
    while remaining > 0 {
        sweeps += 1;
        assert!(
            sweeps <= n + 1,
            "multipass executor failed to make progress"
        );
        for members in blocks.values() {
            // within a visit, keep executing until no member becomes
            // ready (members are in program order already)
            loop {
                let mut progressed = false;
                for &idx in members {
                    if done[idx] {
                        continue;
                    }
                    if preds[idx].iter().all(|&q| done[q]) {
                        let inst = &instances[idx];
                        runner.run(workspace, inst.stmt, &inst.ivec);
                        done[idx] = true;
                        remaining -= 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
    }
    MultipassRun {
        sweeps,
        instances: n as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, NullObserver};
    use shackle_ir::kernels;

    fn params(n: i64) -> BTreeMap<String, i64> {
        BTreeMap::from([("N".to_string(), n)])
    }

    #[test]
    fn enumeration_matches_interpreter_order() {
        let p = kernels::cholesky_right();
        let insts = enumerate_instances(&p, &params(4));
        // first instances: S1 at J=1, then S2 at (1,2)...
        assert_eq!(insts[0].stmt, 0);
        assert_eq!(insts[0].ivec, vec![1]);
        assert_eq!(insts[1].stmt, 1);
        assert_eq!(insts[1].ivec, vec![1, 2]);
        // count matches the interpreter
        let init = crate::verify::spd_init("A", 4, 1);
        let mut ws = Workspace::for_program(&p, &params(4), init);
        let stats = execute(&p, &mut ws, &params(4), &mut NullObserver);
        assert_eq!(insts.len() as u64, stats.instances);
    }

    #[test]
    fn legal_shackle_completes_in_one_sweep() {
        // matmul shackled on C: one sweep suffices (the shackle is
        // legal), and the result matches the interpreter.
        let p = kernels::matmul_ijk();
        let n = 6;
        let init = crate::verify::hash_init(3);
        let mut ws = Workspace::for_program(&p, &params(n), init);
        let run = execute_multipass(&p, &mut ws, &params(n), |inst| {
            // block C[I,J] into 2x2: instance ivec = [I, J, K]
            vec![ceil_div(inst.ivec[0], 2), ceil_div(inst.ivec[1], 2)]
        });
        assert_eq!(run.sweeps, 1);
        let init = crate::verify::hash_init(3);
        let mut reference = Workspace::for_program(&p, &params(n), init);
        execute(&p, &mut reference, &params(n), &mut NullObserver);
        assert_eq!(ws.max_rel_diff(&reference), 0.0);
    }

    #[test]
    fn cholesky_writes_shackle_single_sweep() {
        let p = kernels::cholesky_right();
        let n = 8;
        let init = crate::verify::spd_init("A", n as usize, 2);
        let mut ws = Workspace::for_program(&p, &params(n), &init);
        let run = execute_multipass(&p, &mut ws, &params(n), |inst| {
            // writes shackle, width 3, column block then row block
            let (row, col) = match inst.stmt {
                0 => (inst.ivec[0], inst.ivec[0]), // A[J,J]
                1 => (inst.ivec[1], inst.ivec[0]), // A[I,J]
                _ => (inst.ivec[1], inst.ivec[2]), // A[L,K]
            };
            vec![ceil_div(col, 3), ceil_div(row, 3)]
        });
        assert_eq!(run.sweeps, 1, "legal shackle must finish in one sweep");
        let mut reference = Workspace::for_program(&p, &params(n), &init);
        execute(&p, &mut reference, &params(n), &mut NullObserver);
        assert!(ws.max_rel_diff(&reference) < 1e-12);
    }

    #[test]
    fn reversed_block_order_needs_multiple_sweeps_but_stays_correct() {
        // Walk matmul's K-reduction blocks in an order that violates
        // the accumulation dependences: the executor needs extra sweeps
        // but still computes the right answer. Blocking C[I,J] is
        // always legal; instead block on K descending, which reverses
        // the reduction chain.
        let p = kernels::matmul_ijk();
        let n = 4;
        let init = crate::verify::hash_init(5);
        let mut ws = Workspace::for_program(&p, &params(n), init);
        let run = execute_multipass(&p, &mut ws, &params(n), |inst| {
            vec![-ceil_div(inst.ivec[2], 2)] // K blocks, reversed
        });
        assert!(run.sweeps > 1, "reversed reduction requires re-sweeping");
        let init = crate::verify::hash_init(5);
        let mut reference = Workspace::for_program(&p, &params(n), init);
        execute(&p, &mut reference, &params(n), &mut NullObserver);
        assert_eq!(ws.max_rel_diff(&reference), 0.0);
    }
}

#[cfg(test)]
mod relaxation_tests {
    use super::*;
    use crate::{execute, NullObserver, Workspace};
    use shackle_ir::kernels;
    use shackle_polyhedra::num::ceil_div;
    use std::collections::BTreeMap;

    /// The §8 relaxation case end-to-end: no single-sweep traversal of
    /// the blocked array is legal (both directions are refuted by the
    /// exact test in `shackle-core`'s suite), yet the multipass executor
    /// completes in a few sweeps with the exact sequential result.
    #[test]
    fn gauss_seidel_needs_and_gets_multiple_sweeps() {
        let p = kernels::gauss_seidel_1d();
        let params = BTreeMap::from([("N".to_string(), 12_i64), ("S".to_string(), 3_i64)]);
        let init = |_: &str, idx: &[usize]| ((idx[0] * 17) % 23) as f64 / 23.0 + 1.0;
        let mut reference = Workspace::for_program(&p, &params, init);
        execute(&p, &mut reference, &params, &mut NullObserver);

        let mut ws = Workspace::for_program(&p, &params, init);
        let run = execute_multipass(&p, &mut ws, &params, |inst| {
            // shackle A[I] into width-4 blocks, forward order
            vec![ceil_div(inst.ivec[1], 4)]
        });
        assert!(
            run.sweeps > 1,
            "relaxation must require several sweeps, took {}",
            run.sweeps
        );
        // one sweep per time step is the expected shape
        assert!(run.sweeps <= 4, "took {} sweeps", run.sweeps);
        assert_eq!(ws.max_rel_diff(&reference), 0.0);
    }
}
