//! Property tests for the interpreter: statistics formulas, bound
//! evaluation and workspace comparison over random problem sizes.

use proptest::prelude::*;
use shackle_exec::{execute, verify, NullObserver, Workspace};
use shackle_ir::{
    kernels, loop_b, stmt, ArrayDecl, ArrayRef, Bound, BoundTerm, ScalarExpr, Statement,
};
use shackle_polyhedra::LinExpr;
use std::collections::BTreeMap;

fn params(n: i64) -> BTreeMap<String, i64> {
    BTreeMap::from([("N".to_string(), n)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact operation counts for matmul: n³ instances, 2n³ flops,
    /// 3n³ loads, n³ stores.
    #[test]
    fn matmul_stat_formulas(n in 1i64..12) {
        let p = kernels::matmul_ijk();
        let mut ws = Workspace::for_program(&p, &params(n), |_, _| 1.0);
        let stats = execute(&p, &mut ws, &params(n), &mut NullObserver);
        let n3 = (n * n * n) as u64;
        prop_assert_eq!(stats.instances, n3);
        prop_assert_eq!(stats.flops, 2 * n3);
        prop_assert_eq!(stats.loads, 3 * n3);
        prop_assert_eq!(stats.stores, n3);
    }

    /// Cholesky instance count: n sqrt + n(n-1)/2 scalings +
    /// Σ_j (n-j)(n-j+1)/2 updates.
    #[test]
    fn cholesky_instance_formula(n in 1i64..12) {
        let p = kernels::cholesky_right();
        let init = verify::spd_init("A", n as usize, 1);
        let mut ws = Workspace::for_program(&p, &params(n), init);
        let stats = execute(&p, &mut ws, &params(n), &mut NullObserver);
        let mut expect = n as u64; // S1
        expect += (n * (n - 1) / 2) as u64; // S2
        for j in 1..=n {
            let m = n - j;
            expect += (m * (m + 1) / 2) as u64; // S3
        }
        prop_assert_eq!(stats.instances, expect);
    }

    /// Divided loop bounds evaluate exactly: a loop
    /// `do t = ceild(1,w) .. floord(N, w)` runs floor(N/w) times.
    #[test]
    fn divided_bounds_trip_count(n in 1i64..40, w in 1i64..9) {
        let a = ArrayRef::vars("A", &["t"]);
        let s = Statement::new(
            "S",
            a.clone(),
            ScalarExpr::from(a) + ScalarExpr::Const(1.0),
        );
        let p = shackle_ir::Program::new(
            "trips",
            vec!["N".into()],
            vec![ArrayDecl::new("A", vec![LinExpr::var("N")])],
            vec![s],
            vec![loop_b(
                "t",
                Bound::new(vec![BoundTerm::div(LinExpr::constant(1), w)]),
                Bound::new(vec![BoundTerm::div(LinExpr::var("N"), w)]),
                vec![stmt(0)],
            )],
        );
        let mut ws = Workspace::for_program(&p, &params(n), |_, _| 0.0);
        let stats = execute(&p, &mut ws, &params(n), &mut NullObserver);
        prop_assert_eq!(stats.instances as i64, n / w);
    }

    /// `max_rel_diff` is a pseudometric on workspaces: zero on equal
    /// inputs, symmetric, positive on perturbation.
    #[test]
    fn workspace_diff_properties(n in 1i64..8, seed in 0u64..100, eps in 1e-6f64..1e-2) {
        let p = kernels::matmul_ijk();
        let init = verify::hash_init(seed);
        let w1 = Workspace::for_program(&p, &params(n), &init);
        let mut w2 = Workspace::for_program(&p, &params(n), &init);
        prop_assert_eq!(w1.max_rel_diff(&w2), 0.0);
        let a = w2.array_mut("A").unwrap();
        let v = a.get(&[1, 1]);
        a.set(&[1, 1], v + eps);
        let d12 = w1.max_rel_diff(&w2);
        let d21 = w2.max_rel_diff(&w1);
        prop_assert!(d12 > 0.0);
        prop_assert!((d12 - d21).abs() < 1e-15);
    }

    /// hash_init is pure and in range.
    #[test]
    fn hash_init_pure(seed in 0u64..1000, i in 1usize..50, j in 1usize..50) {
        let f = verify::hash_init(seed);
        let v = f("A", &[i, j]);
        prop_assert!(v > 0.0 && v <= 1.0);
        prop_assert_eq!(v, f("A", &[i, j]));
    }
}
