//! Differential property tests: the compiled engine must be
//! indistinguishable from the tree interpreter — bit-identical
//! workspaces, identical [`ExecStats`], and identical ordered access
//! traces — on random kernels, problem sizes and block widths,
//! including compiler-generated (scanned) programs with guards and
//! divided loop bounds.

use proptest::prelude::*;
use shackle_exec::{compile, execute, verify, Access, ExecStats, Observer, Workspace};
use shackle_ir::Program;
use std::collections::BTreeMap;

fn params(n: i64) -> BTreeMap<String, i64> {
    BTreeMap::from([("N".to_string(), n)])
}

/// Records every access in program order for trace comparison.
#[derive(Default)]
struct Collect(Vec<(String, usize, bool)>);

impl Observer for Collect {
    fn record(&mut self, a: Access) {
        self.0.push((a.array.to_string(), a.offset, a.write));
    }
}

type Init = Box<dyn Fn(&str, &[usize]) -> f64>;

/// Initializer suited to each kernel: SPD data where a factorization
/// takes square roots / divides by diagonals, hashed data elsewhere.
fn init_for(kernel: &str, n: i64, seed: u64) -> Init {
    if kernel.contains("cholesky") || kernel == "gauss" {
        Box::new(verify::spd_init("A", n as usize, seed))
    } else {
        Box::new(verify::hash_init(seed))
    }
}

/// Runs `program` through both engines and asserts the tree
/// interpreter and the compiled engine cannot be told apart.
fn assert_engines_agree(
    program: &Program,
    p: &BTreeMap<String, i64>,
    init: &dyn Fn(&str, &[usize]) -> f64,
) {
    let mut tree_ws = Workspace::for_program(program, p, init);
    let mut comp_ws = Workspace::for_program(program, p, init);

    let mut tree_trace = Collect::default();
    let mut comp_trace = Collect::default();
    let tree_stats: ExecStats = execute(program, &mut tree_ws, p, &mut tree_trace);
    let comp_stats = compile(program).execute(&mut comp_ws, p, &mut comp_trace);

    // Identical statistics and identical ordered traces.
    assert_eq!(tree_stats, comp_stats);
    assert_eq!(tree_trace.0.len(), comp_trace.0.len());
    assert_eq!(tree_trace.0, comp_trace.0);

    // Bit-identical workspaces: same arrays, same element bits.
    for (name, a) in tree_ws.iter() {
        let b = comp_ws.array(name).unwrap();
        assert_eq!(a.data().len(), b.data().len());
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "array {name} diverges at flat index {i}: {x} vs {y}"
            );
        }
    }
}

type KernelEntry = (&'static str, fn() -> Program);

/// The seven evaluation kernels from the paper's experiment suite.
const KERNELS: [KernelEntry; 7] = [
    ("matmul_ijk", shackle_ir::kernels::matmul_ijk),
    ("cholesky_right", shackle_ir::kernels::cholesky_right),
    ("cholesky_left", shackle_ir::kernels::cholesky_left),
    ("adi", shackle_ir::kernels::adi),
    ("gauss", shackle_ir::kernels::gauss),
    ("qr_householder", shackle_ir::kernels::qr_householder),
    ("banded_cholesky", shackle_ir::kernels::banded_cholesky),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any kernel, any size, any seed: both engines produce the same
    /// bits, the same stats and the same trace.
    #[test]
    fn compiled_matches_tree_on_kernels(
        k in 0usize..KERNELS.len(),
        n in 1i64..10,
        seed in 0u64..50,
    ) {
        let (name, mk) = KERNELS[k];
        let program = mk();
        let mut p = params(n);
        if name == "banded_cholesky" {
            p.insert("P".to_string(), 1 + seed as i64 % n);
        }
        let init = init_for(name, n, seed);
        assert_engines_agree(&program, &p, &*init);
    }

    /// Compiler-generated scanned programs (guards, ceil/floor-divided
    /// bounds, shadowed block loops) agree between engines too.
    #[test]
    fn compiled_matches_tree_on_scanned_programs(
        n in 2i64..10,
        width in 2i64..6,
        seed in 0u64..50,
    ) {
        use shackle_core::{scan::generate_scanned, Blocking, Shackle};
        let program = shackle_ir::kernels::cholesky_right();
        let s = Shackle::on_writes(&program, Blocking::square("A", 2, &[1, 0], width));
        let scanned = generate_scanned(&program, &[s]);
        let init = verify::spd_init("A", n as usize, seed);
        assert_engines_agree(&scanned, &params(n), &init);
    }

    /// Fully-blocked matmul (data shackles on the product) agrees too.
    #[test]
    fn compiled_matches_tree_on_blocked_matmul(
        n in 2i64..10,
        width in 2i64..6,
        seed in 0u64..50,
    ) {
        use shackle_core::{scan::generate_scanned, Blocking, Shackle};
        let program = shackle_ir::kernels::matmul_ijk();
        let s = Shackle::on_writes(&program, Blocking::square("C", 2, &[0, 1], width));
        let scanned = generate_scanned(&program, &[s]);
        let init = verify::hash_init(seed);
        assert_engines_agree(&scanned, &params(n), &init);
    }
}
