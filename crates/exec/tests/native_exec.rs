//! Differential tests for the native execution tier: a rustc-compiled
//! kernel must be indistinguishable from the tree interpreter and the
//! bytecode engine — bit-identical workspaces, identical [`ExecStats`],
//! and (in traced mode) the identical ordered access sequence — on
//! every in-repo kernel and on compiler-generated shackled programs.
//!
//! Every test skips gracefully when `rustc` is unavailable in the
//! sandbox.

use proptest::prelude::*;
use shackle_exec::native::rustc_available;
use shackle_exec::{
    compile, execute, execute_auto, execute_auto_traced, verify, Access, NativeKernel, Observer,
    Tier, Workspace,
};
use shackle_ir::Program;
use std::collections::BTreeMap;

fn params(n: i64) -> BTreeMap<String, i64> {
    BTreeMap::from([("N".to_string(), n)])
}

#[derive(Default)]
struct Collect(Vec<(String, usize, bool)>);

impl Observer for Collect {
    fn record(&mut self, a: Access) {
        self.0.push((a.array.to_string(), a.offset, a.write));
    }
}

type Init = Box<dyn Fn(&str, &[usize]) -> f64>;

fn init_for(kernel: &str, n: i64, seed: u64) -> Init {
    if kernel.contains("cholesky") || kernel == "gauss" {
        Box::new(verify::spd_init("A", n as usize, seed))
    } else {
        Box::new(verify::hash_init(seed))
    }
}

fn assert_bit_identical(a: &Workspace, b: &Workspace, what: &str) {
    for (name, x) in a.iter() {
        let y = b.array(name).unwrap();
        assert_eq!(x.data().len(), y.data().len());
        for (i, (u, v)) in x.data().iter().zip(y.data()).enumerate() {
            assert_eq!(
                u.to_bits(),
                v.to_bits(),
                "{what}: array {name} diverges at flat index {i}: {u} vs {v}"
            );
        }
    }
}

/// Runs `program` through the tree interpreter, the bytecode engine and
/// the native tier (plain *and* traced, on one persistent runner) and
/// asserts all four executions are indistinguishable.
fn assert_native_agrees(
    program: &Program,
    p: &BTreeMap<String, i64>,
    init: &dyn Fn(&str, &[usize]) -> f64,
) {
    let mut tree_ws = Workspace::for_program(program, p, init);
    let mut tree_trace = Collect::default();
    let tree_stats = execute(program, &mut tree_ws, p, &mut tree_trace);

    let mut byte_ws = Workspace::for_program(program, p, init);
    let byte_stats = compile(program).execute(&mut byte_ws, p, &mut shackle_exec::NullObserver);
    assert_eq!(tree_stats, byte_stats);
    assert_bit_identical(&tree_ws, &byte_ws, "bytecode vs tree");

    let mut kernel = NativeKernel::spawn(program).expect("native build");

    // Plain run: stats reconstructed from counters, arrays bit-identical.
    let mut nat_ws = Workspace::for_program(program, p, init);
    let nat_stats = kernel.run(&mut nat_ws, p).expect("native run");
    assert_eq!(tree_stats, nat_stats, "native stats vs tree");
    assert_bit_identical(&tree_ws, &nat_ws, "native vs tree");

    // Traced run on the same runner process: the exact interpreter
    // access sequence comes back over the pipe.
    let mut nat_ws2 = Workspace::for_program(program, p, init);
    let mut nat_trace = Collect::default();
    let nat_stats2 = kernel
        .run_traced(&mut nat_ws2, p, &mut nat_trace)
        .expect("native traced run");
    assert_eq!(tree_stats, nat_stats2, "native traced stats vs tree");
    assert_eq!(
        tree_trace.0, nat_trace.0,
        "native trace must equal the interpreter's access sequence"
    );
    assert_bit_identical(&tree_ws, &nat_ws2, "native traced vs tree");
}

type KernelEntry = (&'static str, fn() -> Program);

const KERNELS: [KernelEntry; 12] = [
    ("matmul_ijk", shackle_ir::kernels::matmul_ijk),
    ("cholesky_right", shackle_ir::kernels::cholesky_right),
    ("cholesky_left", shackle_ir::kernels::cholesky_left),
    ("adi", shackle_ir::kernels::adi),
    ("gauss", shackle_ir::kernels::gauss),
    ("qr_householder", shackle_ir::kernels::qr_householder),
    ("banded_cholesky", shackle_ir::kernels::banded_cholesky),
    ("backsolve", shackle_ir::kernels::backsolve),
    ("gauss_seidel_1d", shackle_ir::kernels::gauss_seidel_1d),
    ("syrk", shackle_ir::kernels::syrk),
    ("jacobi2d", shackle_ir::kernels::jacobi2d),
    ("tensor_contract", shackle_ir::kernels::tensor_contract),
];

fn kernel_params(name: &str, n: i64, seed: u64) -> BTreeMap<String, i64> {
    let mut p = params(n);
    if name == "banded_cholesky" {
        p.insert("P".to_string(), 1 + seed as i64 % n);
    }
    if name == "gauss_seidel_1d" {
        p.insert("S".to_string(), 2);
    }
    p
}

/// Every in-repo kernel at a fixed size: the native tier is
/// indistinguishable from interpreter and bytecode engine.
#[test]
fn native_matches_all_kernels() {
    if !rustc_available() {
        eprintln!("skipping: rustc unavailable");
        return;
    }
    for (name, mk) in KERNELS {
        let program = mk();
        let n = 7;
        let p = kernel_params(name, n, 3);
        let init = init_for(name, n, 3);
        assert_native_agrees(&program, &p, &*init);
    }
}

/// Shackled (scanned) programs with guards and divided bounds run
/// natively too.
#[test]
fn native_matches_scanned_cholesky() {
    if !rustc_available() {
        eprintln!("skipping: rustc unavailable");
        return;
    }
    use shackle_core::{scan::generate_scanned, Blocking, Shackle};
    let program = shackle_ir::kernels::cholesky_right();
    let s = Shackle::on_writes(&program, Blocking::square("A", 2, &[1, 0], 3));
    let scanned = generate_scanned(&program, &[s]);
    let init = verify::spd_init("A", 8, 5);
    assert_native_agrees(&scanned, &params(8), &init);
}

/// Tier selection: `execute_auto` lands on the native tier when rustc
/// exists and produces the interpreter's exact result.
#[test]
fn execute_auto_selects_native() {
    let program = shackle_ir::kernels::matmul_ijk();
    let p = params(6);
    let init = verify::hash_init(1);

    let mut tree_ws = Workspace::for_program(&program, &p, &init);
    let mut tree_trace = Collect::default();
    let tree_stats = execute(&program, &mut tree_ws, &p, &mut tree_trace);

    let mut ws = Workspace::for_program(&program, &p, &init);
    let (stats, tier) = execute_auto(&program, &mut ws, &p);
    if rustc_available() {
        assert_eq!(tier, Tier::Native);
    } else {
        assert_eq!(tier, Tier::Bytecode);
    }
    assert_eq!(stats, tree_stats);
    assert_bit_identical(&tree_ws, &ws, "execute_auto vs tree");

    let mut ws2 = Workspace::for_program(&program, &p, &init);
    let mut trace = Collect::default();
    let (stats2, _tier2) = execute_auto_traced(&program, &mut ws2, &p, &mut trace);
    assert_eq!(stats2, tree_stats);
    assert_eq!(trace.0, tree_trace.0);
    assert_bit_identical(&tree_ws, &ws2, "execute_auto_traced vs tree");
}

/// A persistent runner survives many runs with varying parameters —
/// the property the bench harness leans on for its ≥5 timed runs.
#[test]
fn persistent_runner_many_runs() {
    if !rustc_available() {
        eprintln!("skipping: rustc unavailable");
        return;
    }
    let program = shackle_ir::kernels::matmul_ijk();
    let mut kernel = NativeKernel::spawn(&program).expect("native build");
    for n in [1i64, 3, 5, 8, 8, 2] {
        let p = params(n);
        let init = verify::hash_init(n as u64);
        let mut tree_ws = Workspace::for_program(&program, &p, &init);
        let tree_stats = execute(&program, &mut tree_ws, &p, &mut shackle_exec::NullObserver);
        let mut ws = Workspace::for_program(&program, &p, &init);
        let stats = kernel.run(&mut ws, &p).expect("native run");
        assert_eq!(stats, tree_stats, "n={n}");
        assert_bit_identical(&tree_ws, &ws, "persistent runner");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random kernel, size and seed: the native tier matches the tree
    /// interpreter bit-for-bit. (The build cache keeps this cheap —
    /// each kernel's runner compiles once across the whole sweep.)
    #[test]
    fn native_matches_tree_on_random_sizes(
        k in 0usize..KERNELS.len(),
        n in 1i64..10,
        seed in 0u64..50,
    ) {
        if !rustc_available() {
            return;
        }
        let (name, mk) = KERNELS[k];
        let program = mk();
        let p = kernel_params(name, n, seed);
        let init = init_for(name, n, seed);
        assert_native_agrees(&program, &p, &*init);
    }
}
