//! Build-cache behaviour of the native tier, pinned via probe
//! counters: the first build of a kernel invokes `rustc` exactly once,
//! and every subsequent build of the same canonical kernel hash is a
//! cache hit that spawns no compiler at all.
//!
//! This file is its own integration-test binary (own process), so the
//! `native.rustc_invocations` counter deltas cannot be polluted by
//! other tests building kernels concurrently.

use shackle_exec::native::{build_in, kernel_hash, runner_source, rustc_available};
use shackle_exec::{execute, verify, NativeKernel, Workspace};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// A scratch cache dir unique to this test run (the process id keeps
/// parallel checkouts apart; the dir is removed at the end).
fn scratch_cache(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("shackle-native-test-{tag}-{}", std::process::id()))
}

#[test]
fn second_build_is_a_cache_hit_with_zero_rustc_spawns() {
    if !rustc_available() {
        eprintln!("skipping: rustc unavailable");
        return;
    }
    let dir = scratch_cache("hit");
    let _ = std::fs::remove_dir_all(&dir);
    let program = shackle_ir::kernels::matmul_ijk();

    let rustc = shackle_probe::counter("native.rustc_invocations");
    let hits = shackle_probe::counter("native.cache_hits");
    let misses = shackle_probe::counter("native.cache_misses");

    // Cold: one rustc invocation, one miss.
    let (r0, h0, m0) = (rustc.get(), hits.get(), misses.get());
    let cold = build_in(&dir, &program).expect("cold build");
    assert!(!cold.cache_hit);
    assert_eq!(rustc.get() - r0, 1, "cold build spawns rustc once");
    assert_eq!(misses.get() - m0, 1);
    assert_eq!(hits.get() - h0, 0);
    assert!(cold.path.is_file(), "binary placed at {:?}", cold.path);
    assert!(
        cold.path.with_file_name("kernel.rs").is_file(),
        "source kept beside the binary for debuggability"
    );

    // Warm: same hash, zero rustc spawns.
    let (r1, h1, m1) = (rustc.get(), hits.get(), misses.get());
    let warm = build_in(&dir, &program).expect("warm build");
    assert!(warm.cache_hit);
    assert_eq!(warm.hash, cold.hash);
    assert_eq!(warm.path, cold.path);
    assert_eq!(rustc.get() - r1, 0, "warm build must not spawn rustc");
    assert_eq!(hits.get() - h1, 1);
    assert_eq!(misses.get() - m1, 0);

    // The cached binary actually runs and matches the interpreter.
    let params = BTreeMap::from([("N".to_string(), 5i64)]);
    let init = verify::hash_init(11);
    let mut tree_ws = Workspace::for_program(&program, &params, &init);
    let tree_stats = execute(
        &program,
        &mut tree_ws,
        &params,
        &mut shackle_exec::NullObserver,
    );
    let mut kernel = NativeKernel::spawn_in(&dir, &program).expect("spawn from warm cache");
    assert!(kernel.build_outcome().cache_hit);
    let mut ws = Workspace::for_program(&program, &params, &init);
    let stats = kernel.run(&mut ws, &params).expect("run");
    assert_eq!(stats, tree_stats);
    for (name, a) in tree_ws.iter() {
        let b = ws.array(name).unwrap();
        assert!(a
            .data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }
    drop(kernel);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn distinct_programs_get_distinct_cache_entries() {
    if !rustc_available() {
        eprintln!("skipping: rustc unavailable");
        return;
    }
    let a = kernel_hash(&runner_source(&shackle_ir::kernels::matmul_ijk()));
    let b = kernel_hash(&runner_source(&shackle_ir::kernels::cholesky_right()));
    assert_ne!(a, b, "different programs must hash to different entries");
    // Hashing is deterministic within a toolchain.
    assert_eq!(
        a,
        kernel_hash(&runner_source(&shackle_ir::kernels::matmul_ijk()))
    );
}
