//! Offline stand-in for the `criterion` crate.
//!
//! The workspace must build with no registry access, so this in-repo
//! crate implements the subset of the criterion API the benches use —
//! groups, `bench_function`, `BenchmarkId`, the `criterion_group!`/
//! `criterion_main!` macros — with plain `std::time::Instant` timing.
//! No statistics, plotting, or baselines: each benchmark runs a warmup
//! pass plus `sample_size` timed passes and prints the mean and best
//! wall-clock time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// A group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed passes per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        // warmup (not recorded)
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let n = b.samples.len().max(1) as u32;
        let mean: Duration = b.samples.iter().sum::<Duration>() / n;
        let best = b.samples.iter().min().copied().unwrap_or_default();
        println!(
            "  {}/{}: mean {:?}  best {:?}  ({} samples)",
            self.name, id.id, mean, best, n
        );
        self
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Times one closure invocation per call to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f` once and record the sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        black_box(out);
    }
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.bench_function(BenchmarkId::new("inc", 1), |b| b.iter(|| ran += 1));
            g.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
            g.finish();
        }
        // warmup + 3 samples
        assert_eq!(ran, 4);
    }
}
