//! End-to-end daemon tests: byte-identity with the batch search path
//! under concurrency, one test per structured error class, request
//! coalescing, store persistence across a restart, and the `--stdio`
//! binary smoke.
//!
//! The polyhedral memo cache and the probe counters are process-global,
//! so every test here serializes behind [`LOCK`]; other test binaries
//! run in separate processes and cannot interfere.

use shackle_core::par;
use shackle_core::search::SearchConfig;
use shackle_ir::kernels;
use shackle_ir::parse::to_source;
use shackle_polyhedra::{cache, Budget};
use shackle_serve::pipeline::{auto_search, Mode};
use shackle_serve::proto::{read_response, send_request};
use shackle_serve::{Client, ErrorClass, Request, Response, Server, ServiceConfig};
use std::io::Write;
use std::net::TcpListener;
use std::sync::{Arc, Barrier, Mutex};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The kernel mix the stress test serves: (request, batch expectation
/// inputs). Small probe sizes keep the full search in tens of
/// milliseconds.
fn mix() -> Vec<(Request, u64, String)> {
    let specs: [(shackle_ir::Program, i64, i64); 6] = [
        (kernels::matmul_ijk(), 24, 8),
        (kernels::gauss(), 16, 8),
        // the scenario-diversity wave: a reversed-traversal solve, a
        // triangular update, a stencil, and a contraction only
        // partially-blockable — each must parse off the wire and answer
        // byte-identically to the batch pipeline
        (kernels::backsolve(), 16, 4),
        (kernels::syrk(), 12, 4),
        (kernels::jacobi2d(), 16, 4),
        (kernels::tensor_contract(), 8, 4),
    ];
    specs
        .into_iter()
        .map(|(p, probe_n, width)| {
            let cfg = SearchConfig {
                width,
                ..Default::default()
            };
            let ones = |_: &str, _: &[usize]| 1.0;
            let batch = auto_search(&p, &cfg, probe_n, ones, Mode::Memoized);
            (
                Request::Optimize {
                    probe_n,
                    width,
                    init: "ones".to_string(),
                    source: to_source(&p),
                },
                batch.winner_cycles,
                batch.report,
            )
        })
        .collect()
}

/// Satellite 3's stress test: concurrent TCP clients receive responses
/// byte-identical to the batch `searchperf::auto_search` path, at
/// `SHACKLE_THREADS` ∈ {1, 8}.
#[test]
fn concurrent_clients_match_batch_path_at_1_and_8_threads() {
    let _g = lock();
    for threads in [1usize, 8] {
        let _t = par::with_threads(threads);
        cache::clear_cache();
        let expected = mix();

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = Arc::new(Server::new().with_store(None));
        let srv = Arc::clone(&server);
        let accept = std::thread::spawn(move || srv.serve_tcp(listener).unwrap());

        let clients: Vec<_> = (0..6)
            .map(|i| {
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    for round in 0..2 {
                        let (req, cycles, report) = &expected[(i + round) % expected.len()];
                        match c.request(req).unwrap() {
                            Response::Optimized {
                                winner_cycles,
                                report: served,
                            } => {
                                assert_eq!(winner_cycles, *cycles, "threads={threads}");
                                assert_eq!(&served, report, "threads={threads}");
                            }
                            r => panic!("unexpected response {r:?}"),
                        }
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }

        let mut c = Client::connect(addr).unwrap();
        assert!(matches!(
            c.request(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        drop(c);
        accept.join().unwrap();
    }
}

#[test]
fn parse_errors_are_structured_frames() {
    let _g = lock();
    let server = Server::new().with_store(None);
    match server.handle(Request::Optimize {
        probe_n: 24,
        width: 8,
        init: "ones".into(),
        source: "this is not a kernel".into(),
    }) {
        Response::Error { class, message } => {
            assert_eq!(class, ErrorClass::Parse);
            assert!(!message.is_empty());
        }
        r => panic!("unexpected response {r:?}"),
    }
}

#[test]
fn undecidable_legality_refuses_with_unknown() {
    let _g = lock();
    cache::clear_cache();
    let server = Server::with_config(ServiceConfig {
        budget: Budget::strict(),
    })
    .with_store(None);
    match server.handle(Request::Optimize {
        probe_n: 12,
        width: 4,
        init: "spd:A:3".into(),
        source: to_source(&kernels::cholesky_right()),
    }) {
        Response::Error { class, message } => {
            assert_eq!(class, ErrorClass::Unknown);
            assert!(message.contains("undecided"), "message: {message}");
        }
        r => panic!("unexpected response {r:?}"),
    }
    // The same request under the default budget succeeds: the refusal
    // is about the budget, not the kernel.
    cache::clear_cache();
    let server = Server::new().with_store(None);
    match server.handle(Request::Optimize {
        probe_n: 12,
        width: 4,
        init: "spd:A:3".into(),
        source: to_source(&kernels::cholesky_right()),
    }) {
        Response::Optimized { winner_cycles, .. } => assert!(winner_cycles > 0),
        r => panic!("unexpected response {r:?}"),
    }
}

#[test]
fn invalid_parameters_are_internal_errors() {
    let _g = lock();
    let server = Server::new().with_store(None);
    match server.handle(Request::Optimize {
        probe_n: 0,
        width: 8,
        init: "ones".into(),
        source: to_source(&kernels::matmul_ijk()),
    }) {
        Response::Error { class, .. } => assert_eq!(class, ErrorClass::Internal),
        r => panic!("unexpected response {r:?}"),
    }
}

/// A payload the decoder rejects answers a `Protocol` error frame and
/// the connection keeps working.
#[test]
fn protocol_errors_keep_the_connection_alive() {
    let _g = lock();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Arc::new(Server::new().with_store(None));
    let srv = Arc::clone(&server);
    let accept = std::thread::spawn(move || srv.serve_tcp(listener).unwrap());

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    // Unknown request tag 0x63 with an empty payload: valid framing,
    // invalid request.
    stream.write_all(&[0x63]).unwrap();
    stream.write_all(&0u64.to_le_bytes()).unwrap();
    stream.flush().unwrap();
    match read_response(&mut stream).unwrap() {
        Response::Error { class, .. } => assert_eq!(class, ErrorClass::Protocol),
        r => panic!("unexpected response {r:?}"),
    }
    // Same connection, now a well-formed quote: still served.
    let quote = Request::Quote {
        probe_n: 24,
        source: to_source(&kernels::matmul_ijk()),
    };
    send_request(&mut stream, &quote).unwrap();
    match read_response(&mut stream).unwrap() {
        Response::Quoted { predicted_cycles } => assert!(predicted_cycles > 0),
        r => panic!("unexpected response {r:?}"),
    }
    send_request(&mut stream, &Request::Shutdown).unwrap();
    assert!(matches!(
        read_response(&mut stream).unwrap(),
        Response::ShuttingDown
    ));
    drop(stream);
    accept.join().unwrap();
}

/// Concurrent identical requests coalesce onto one search: all callers
/// get equal responses and `serve.coalesced` counts the followers.
#[test]
fn identical_concurrent_requests_coalesce() {
    let _g = lock();
    cache::clear_cache();
    let server = Arc::new(Server::new().with_store(None));
    let before = shackle_probe::counter("serve.coalesced").get();
    let n = 4;
    let barrier = Arc::new(Barrier::new(n));
    let req = Request::Optimize {
        probe_n: 24,
        width: 8,
        init: "ones".into(),
        // A renamed kernel must coalesce with the original: the flight
        // key uses the canonical name-free hash.
        source: to_source(&kernels::matmul_ijk().with_name("renamed_copy")),
    };
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let mut req = req.clone();
            if i == 0 {
                if let Request::Optimize { source, .. } = &mut req {
                    *source = to_source(&kernels::matmul_ijk());
                }
            }
            std::thread::spawn(move || {
                barrier.wait();
                server.handle(req)
            })
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &responses {
        assert!(matches!(r, Response::Optimized { .. }), "got {r:?}");
        match (r, &responses[0]) {
            (
                Response::Optimized {
                    winner_cycles: a,
                    report: ra,
                },
                Response::Optimized {
                    winner_cycles: b,
                    report: rb,
                },
            ) => {
                assert_eq!(a, b);
                assert_eq!(ra, rb);
            }
            _ => unreachable!(),
        }
    }
    let coalesced = shackle_probe::counter("serve.coalesced").get() - before;
    assert!(
        coalesced >= 1,
        "expected at least one coalesced follower, got {coalesced}"
    );
}

/// The cross-request store: entries survive a simulated daemon restart
/// and replay as cache hits for the next process.
#[test]
fn store_persists_across_restart() {
    let _g = lock();
    let path = std::env::temp_dir().join(format!(
        "shackle-serve-restart-{}.store",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    cache::clear_cache();
    cache::reset_stats();

    let req = Request::Optimize {
        probe_n: 24,
        width: 8,
        init: "ones".into(),
        source: to_source(&kernels::matmul_ijk()),
    };
    let first = {
        let server = Server::new().with_store(Some(path.clone()));
        let resp = server.handle(req.clone());
        let bytes = server.save_store().unwrap();
        assert!(bytes > 0, "save wrote nothing");
        resp
    };
    let entries_before = cache::entry_count();
    assert!(entries_before > 0);

    // "Restart": wipe the in-memory cache, reload from disk.
    cache::clear_cache();
    assert_eq!(cache::entry_count(), 0);
    let server = Server::new().with_store(Some(path.clone()));
    let loaded = server.load_store().unwrap();
    assert_eq!(loaded, entries_before);

    cache::reset_stats();
    let second = server.handle(req);
    match (&first, &second) {
        (
            Response::Optimized {
                winner_cycles: a,
                report: ra,
            },
            Response::Optimized {
                winner_cycles: b,
                report: rb,
            },
        ) => {
            assert_eq!(a, b);
            assert_eq!(ra, rb, "restarted daemon must answer byte-identically");
        }
        (a, b) => panic!("unexpected responses {a:?} / {b:?}"),
    }
    let stats = cache::stats();
    let hits = stats.feasibility_hits + stats.projection_hits + stats.gist_hits;
    assert!(hits > 0, "reloaded store produced no hits: {stats:?}");
    let _ = std::fs::remove_file(&path);
}

/// The `--stdio` mode the CI smoke drives: one quote, one optimize, one
/// stats over a pipe, well-formed responses for each.
#[test]
fn stdio_binary_answers_quote_optimize_stats() {
    let _g = lock();
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_shackle_serve"))
        .arg("--stdio")
        .env_remove("SHACKLE_POLY_CACHE")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    let src = to_source(&kernels::matmul_ijk());
    send_request(
        &mut stdin,
        &Request::Quote {
            probe_n: 24,
            source: src.clone(),
        },
    )
    .unwrap();
    send_request(
        &mut stdin,
        &Request::Optimize {
            probe_n: 16,
            width: 8,
            init: "ones".into(),
            source: src,
        },
    )
    .unwrap();
    send_request(&mut stdin, &Request::Stats).unwrap();
    drop(stdin); // EOF ends the stdio serve loop

    let mut stdout = child.stdout.take().unwrap();
    assert!(matches!(
        read_response(&mut stdout).unwrap(),
        Response::Quoted { predicted_cycles } if predicted_cycles > 0
    ));
    assert!(matches!(
        read_response(&mut stdout).unwrap(),
        Response::Optimized { winner_cycles, .. } if winner_cycles > 0
    ));
    match read_response(&mut stdout).unwrap() {
        Response::Stats { json } => {
            assert!(json.contains("\"requests\": 3"), "stats: {json}");
            assert!(json.contains("\"quote_requests\": 1"), "stats: {json}");
        }
        r => panic!("unexpected response {r:?}"),
    }
    assert!(child.wait().unwrap().success());
}
