//! The optimization daemon: `shackle_serve [--stdio | --tcp ADDR]
//! [--workers N] [--store PATH] [--profile]`.
//!
//! * `--stdio` answers frames on stdin/stdout — one connection, no
//!   sockets; what the CI smoke test drives with a pipe.
//! * `--tcp ADDR` (default `127.0.0.1:0`) serves multiple concurrent
//!   clients; the bound address is printed to stderr as
//!   `listening on <addr>` so callers binding port 0 can discover it.
//! * `--store PATH` overrides `$SHACKLE_POLY_CACHE` as the persistent
//!   polyhedral store (loaded on startup, saved on shutdown).
//! * `--profile` enables `shackle-probe` instrumentation so `stats`
//!   responses include per-request span trees.
//!
//! The daemon exits when a client sends a `shutdown` frame (TCP) or
//! the pipe closes (stdio).

use shackle_serve::Server;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut stdio = false;
    let mut addr = "127.0.0.1:0".to_string();
    let mut workers: Option<usize> = None;
    let mut store: Option<PathBuf> = None;
    let mut profile = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--stdio" => stdio = true,
            "--tcp" => match args.next() {
                Some(v) => addr = v,
                None => return usage("--tcp needs an address"),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => workers = Some(v),
                None => return usage("--workers needs a positive integer"),
            },
            "--store" => match args.next() {
                Some(v) => store = Some(PathBuf::from(v)),
                None => return usage("--store needs a path"),
            },
            "--profile" => profile = true,
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    if profile {
        shackle_probe::set_enabled(true);
    }

    let mut server = Server::new();
    if let Some(w) = workers {
        server = server.with_workers(w);
    }
    if store.is_some() {
        server = server.with_store(store);
    }

    let result = if stdio {
        server.serve_stdio()
    } else {
        match TcpListener::bind(&addr) {
            Ok(listener) => {
                match listener.local_addr() {
                    Ok(bound) => eprintln!("listening on {bound}"),
                    Err(_) => eprintln!("listening on {addr}"),
                }
                Arc::new(server).serve_tcp(listener)
            }
            Err(e) => {
                eprintln!("shackle_serve: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("shackle_serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "shackle_serve: {err}\n\
         usage: shackle_serve [--stdio | --tcp ADDR] [--workers N] \
         [--store PATH] [--profile]"
    );
    ExitCode::FAILURE
}
