//! The daemon itself: connection scheduling, request coalescing, the
//! persistent polyhedral store, and the stdio/TCP serve loops.
//!
//! # Shape
//!
//! A fixed pool of worker threads (default
//! [`shackle_core::par::thread_count`]) pulls accepted connections off
//! a channel; each worker owns one connection at a time and answers
//! every frame on it until the peer closes. Malformed frames answer
//! with [`ErrorClass::Protocol`] error frames; the connection stays up.
//!
//! # Coalescing
//!
//! Concurrent `optimize` requests for the same work — keyed by the
//! canonical name-free kernel hash plus `(probe_n, width, init)` —
//! share one search: the first requester computes, the rest block on a
//! condvar and clone the leader's response
//! (`serve.coalesced` counts the followers). The search result is a
//! pure function of the key, so sharing is sound.
//!
//! # Persistence
//!
//! When constructed with a store path (or `$SHACKLE_POLY_CACHE` is
//! set), the server loads the polyhedral memo store on startup and
//! saves it on shutdown, so a restarted daemon answers its first
//! requests from a warm cache. `serve.bytes_persisted` records the
//! bytes written by the last save.

use crate::proto::{read_frame, send_response, ErrorClass, Request, Response};
use crate::service::{self, ServiceConfig};
use shackle_core::par;
use shackle_polyhedra::cache;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};

/// In-flight key: canonical kernel hash + the scoring parameters that
/// change the answer.
type FlightKey = (u64, i64, i64, String);

/// One shared computation: the leader fills `slot` and notifies.
struct Flight {
    slot: Mutex<Option<Response>>,
    done: Condvar,
}

/// The daemon's shared state. Wrap it in an [`Arc`] and hand it to
/// [`Server::serve_tcp`] / [`Server::serve_stdio`]; tests can also call
/// [`Server::handle`] directly.
pub struct Server {
    cfg: ServiceConfig,
    workers: usize,
    store: Option<PathBuf>,
    inflight: Mutex<HashMap<FlightKey, Arc<Flight>>>,
    shutting_down: AtomicBool,
    /// Set by [`Server::serve_tcp`] so a `Shutdown` request can nudge
    /// the blocking accept loop awake from inside [`Server::handle`].
    listen_addr: Mutex<Option<std::net::SocketAddr>>,
}

impl Server {
    /// A server with default config: default legality budget, one
    /// worker per `par::thread_count()`, store path from
    /// `$SHACKLE_POLY_CACHE` if set.
    pub fn new() -> Self {
        Self::with_config(ServiceConfig::default())
    }

    /// A server with an explicit service config (tests use a strict
    /// budget here to drive `Unknown` refusals).
    pub fn with_config(cfg: ServiceConfig) -> Self {
        Server {
            cfg,
            workers: par::thread_count().max(1),
            store: cache::store_path(),
            inflight: Mutex::new(HashMap::new()),
            shutting_down: AtomicBool::new(false),
            listen_addr: Mutex::new(None),
        }
    }

    /// Override the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Override (or disable, with `None`) the persistent store path.
    pub fn with_store(mut self, store: Option<PathBuf>) -> Self {
        self.store = store;
        self
    }

    /// Load the persistent polyhedral store, if configured and present.
    /// Returns the number of entries loaded (0 when there is nothing to
    /// load — a cold start is not an error).
    pub fn load_store(&self) -> io::Result<usize> {
        let Some(path) = &self.store else {
            return Ok(0);
        };
        match cache::load_from(path) {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// Save the polyhedral store, if configured. Returns bytes written
    /// (0 when persistence is off) and records them in
    /// `serve.bytes_persisted`.
    pub fn save_store(&self) -> io::Result<u64> {
        let Some(path) = &self.store else {
            return Ok(0);
        };
        let bytes = cache::save_to(path)?;
        shackle_probe::counter("serve.bytes_persisted").set(bytes);
        Ok(bytes)
    }

    /// Has a shutdown request been received?
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Answer one decoded request. This is the scheduling-free core the
    /// serve loops and the tests share.
    pub fn handle(&self, req: Request) -> Response {
        shackle_probe::counter("serve.requests").add(1);
        let resp = match req {
            Request::Optimize {
                probe_n,
                width,
                init,
                source,
            } => {
                shackle_probe::counter("serve.optimize_requests").add(1);
                self.optimize_coalesced(probe_n, width, &init, &source)
            }
            Request::Quote { probe_n, source } => {
                shackle_probe::counter("serve.quote_requests").add(1);
                match service::quote(&source, probe_n) {
                    Ok(r) => r,
                    Err(e) => e.into_response(),
                }
            }
            Request::Stats => Response::Stats {
                json: self.stats_json(),
            },
            Request::Shutdown => {
                self.shutting_down.store(true, Ordering::SeqCst);
                if let Some(addr) = *self.listen_addr.lock().unwrap_or_else(|e| e.into_inner()) {
                    Server::nudge(addr);
                }
                Response::ShuttingDown
            }
        };
        if matches!(resp, Response::Error { .. }) {
            shackle_probe::counter("serve.errors").add(1);
        }
        resp
    }

    /// Optimize with request coalescing: identical concurrent requests
    /// (canonical kernel hash + parameters) share one search.
    fn optimize_coalesced(&self, probe_n: i64, width: i64, init: &str, source: &str) -> Response {
        // Validation and parsing happen before coalescing: an invalid
        // request must answer its own error, and the key needs the
        // parsed program's canonical hash.
        let (program, init_spec) = match service::prepare_optimize(probe_n, width, init, source) {
            Ok(p) => p,
            Err(e) => return e.into_response(),
        };
        let key: FlightKey = (
            service::canonical_kernel_hash(&program),
            probe_n,
            width,
            init_spec.to_spec(),
        );

        let (flight, leader) = {
            let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            match map.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        slot: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    map.insert(key.clone(), Arc::clone(&f));
                    (f, true)
                }
            }
        };

        if !leader {
            shackle_probe::counter("serve.coalesced").add(1);
            let mut slot = flight.slot.lock().unwrap_or_else(|e| e.into_inner());
            while slot.is_none() {
                slot = flight.done.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
            return slot.clone().expect("flight result filled");
        }

        let resp = match service::optimize(&program, probe_n, width, &init_spec, &self.cfg) {
            Ok(r) => r,
            Err(e) => e.into_response(),
        };
        // Publish before unkeying: followers still holding the Arc see
        // the result; new requests after removal start a fresh flight
        // (and hit the warm memo cache).
        {
            let mut slot = flight.slot.lock().unwrap_or_else(|e| e.into_inner());
            *slot = Some(resp.clone());
            flight.done.notify_all();
        }
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key);
        resp
    }

    /// Server + cache statistics as one JSON object (the `Stats`
    /// response). Includes the probe span tree when instrumentation is
    /// enabled, so `serveperf --profile` can render per-request phase
    /// breakdowns without a sidecar channel.
    fn stats_json(&self) -> String {
        let poly = cache::stats();
        cache::publish_stats();
        let counter = |n: &'static str| shackle_probe::counter(n).get();
        shackle_probe::counter("serve.cache_evictions").set(poly.evictions);
        let profile = if shackle_probe::enabled() {
            let p = shackle_probe::profile();
            format!(", \"profile\": {}", p.to_json().trim_end())
        } else {
            String::new()
        };
        format!(
            "{{\"requests\": {}, \"optimize_requests\": {}, \"quote_requests\": {}, \
             \"coalesced\": {}, \"errors\": {}, \"bytes_persisted\": {}, \
             \"cache_entries\": {}, \"cache_capacity\": {}, \
             \"poly\": {{\"feasibility_queries\": {}, \"feasibility_hits\": {}, \
             \"projection_queries\": {}, \"projection_hits\": {}, \
             \"gist_queries\": {}, \"gist_hits\": {}, \"unknown_verdicts\": {}, \
             \"evictions\": {}}}{}}}",
            counter("serve.requests"),
            counter("serve.optimize_requests"),
            counter("serve.quote_requests"),
            counter("serve.coalesced"),
            counter("serve.errors"),
            counter("serve.bytes_persisted"),
            cache::entry_count(),
            cache::cache_capacity(),
            poly.feasibility_queries,
            poly.feasibility_hits,
            poly.projection_queries,
            poly.projection_hits,
            poly.gist_queries,
            poly.gist_hits,
            poly.unknown_verdicts,
            poly.evictions,
            profile,
        )
    }

    /// Answer every frame on one byte stream until EOF or shutdown.
    /// Payloads that fail to decode answer [`ErrorClass::Protocol`];
    /// unreadable *framing* (bad length prefix, mid-frame EOF) ends the
    /// connection, since the stream position is no longer trustworthy.
    pub fn serve_connection(&self, r: &mut impl Read, w: &mut impl Write) -> io::Result<()> {
        loop {
            let Some((tag, payload)) = read_frame(r)? else {
                return Ok(());
            };
            let resp = match Request::decode(tag, &payload) {
                Ok(req) => self.handle(req),
                Err(e) => {
                    shackle_probe::counter("serve.requests").add(1);
                    shackle_probe::counter("serve.errors").add(1);
                    Response::Error {
                        class: ErrorClass::Protocol,
                        message: e.to_string(),
                    }
                }
            };
            let shutdown = matches!(resp, Response::ShuttingDown);
            send_response(w, &resp)?;
            if shutdown {
                return Ok(());
            }
        }
    }

    /// Serve stdin/stdout: the single-connection mode CI smoke uses
    /// (`shackle_serve --stdio`). Loads the store before and saves it
    /// after.
    pub fn serve_stdio(&self) -> io::Result<()> {
        self.load_store()?;
        let result = self.serve_connection(&mut io::stdin().lock(), &mut io::stdout().lock());
        self.save_store()?;
        result
    }

    /// Serve TCP connections until a `Shutdown` request arrives. Blocks
    /// the calling thread; workers are joined and the store saved
    /// before returning.
    pub fn serve_tcp(self: &Arc<Self>, listener: TcpListener) -> io::Result<()> {
        self.load_store()?;
        let addr = listener.local_addr()?;
        *self.listen_addr.lock().unwrap_or_else(|e| e.into_inner()) = Some(addr);
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let mut pool = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let rx = Arc::clone(&rx);
            let server = Arc::clone(self);
            pool.push(std::thread::spawn(move || loop {
                let conn = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                match conn {
                    Ok(stream) => {
                        stream.set_nodelay(true).ok();
                        let mut r = match stream.try_clone() {
                            Ok(s) => s,
                            Err(_) => continue,
                        };
                        let mut w = stream;
                        // Peer disconnects are that connection's
                        // problem, not the server's.
                        let _ = server.serve_connection(&mut r, &mut w);
                    }
                    Err(_) => return, // channel closed: shutting down
                }
            }));
        }

        for conn in listener.incoming() {
            if self.is_shutting_down() {
                break;
            }
            match conn {
                Ok(stream) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
            if self.is_shutting_down() {
                break;
            }
        }
        drop(tx);
        for t in pool {
            let _ = t.join();
        }
        *self.listen_addr.lock().unwrap_or_else(|e| e.into_inner()) = None;
        self.save_store()?;
        Ok(())
    }

    /// Unblock a [`Server::serve_tcp`] accept loop after
    /// [`Request::Shutdown`] set the flag: the acceptor only re-checks
    /// the flag per connection, so poke it with one empty connection.
    pub fn nudge(addr: std::net::SocketAddr) {
        let _ = TcpStream::connect(addr);
    }
}

impl Default for Server {
    fn default() -> Self {
        Self::new()
    }
}

/// A thin synchronous client for the daemon's TCP endpoint: one
/// request, one response, over a persistent connection.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a serving address.
    pub fn connect(addr: std::net::SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Send one request and wait for its response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        crate::proto::send_request(&mut self.stream, req)?;
        crate::proto::read_response(&mut self.stream)
    }

    /// The remote address (to [`Server::nudge`] after a shutdown).
    pub fn peer_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.stream.peer_addr()
    }
}
