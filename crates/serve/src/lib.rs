//! Shackle-as-a-service: a persistent, multi-client optimization
//! daemon for the data-shackling pipeline.
//!
//! Every prior layer of this repository made one *batch run* faster;
//! this crate makes the caches outlive the run. A long-lived server
//! accepts kernels over a std-only length-prefixed protocol
//! ([`proto`]; the `shackle_ir::parse` concrete syntax is the wire
//! format), runs search → legality → codegen → scoring ([`service`],
//! on the canonical [`pipeline`] shared with the batch harness), and
//! returns the transformed code plus predicted cycles. The polyhedral
//! memo cache persists to disk between processes
//! (`shackle_polyhedra::cache::{save_to, load_from}`), concurrent
//! identical requests coalesce onto one search, and a model-only
//! `quote` path answers in microseconds ([`server`]).
//!
//! Run the daemon with the `shackle_serve` binary (`--stdio` for a
//! pipe, `--tcp ADDR` for a socket); drive it with
//! `shackle-bench`'s `serveperf` load generator.

pub mod pipeline;
pub mod proto;
pub mod server;
pub mod service;

pub use proto::{ErrorClass, Request, Response};
pub use server::{Client, Server};
pub use service::ServiceConfig;
