//! Request semantics: validation, canonical kernel identity, and the
//! optimize/quote pipelines behind the daemon's protocol.
//!
//! The server ([`crate::server`]) owns connections, scheduling and
//! coalescing; this module owns what a request *means*. Everything here
//! is a pure function of the request plus the shared polyhedral cache,
//! so coalesced duplicates can share one computation safely.

use crate::pipeline::{auto_search, Mode, PROBE_CACHE};
use crate::proto::{ErrorClass, Response};
use shackle_core::check_legality_with_deps_budget;
use shackle_core::search::{candidate_shackles, SearchConfig};
use shackle_ir::deps::dependences;
use shackle_ir::parse::{parse, to_source};
use shackle_ir::Program;
use shackle_kernels::gen::spd_ws_init;
use shackle_model::{predict, KernelGeometry};
use shackle_polyhedra::Budget;
use std::collections::BTreeMap;

/// Bounds on request parameters: a daemon must not let one request ask
/// for an effectively unbounded simulation.
pub const MAX_PROBE_N: i64 = 512;
pub const MAX_WIDTH: i64 = 1024;

/// Per-service knobs, fixed at server construction.
#[derive(Clone, Debug, Default)]
pub struct ServiceConfig {
    /// Budget for the legality preflight: requests whose legality the
    /// solver cannot decide within it are refused with an
    /// [`ErrorClass::Unknown`] error frame instead of silently
    /// degrading. The preflight's proven queries warm the shared memo
    /// cache for the search that follows.
    pub budget: Budget,
}

/// A structured request failure, rendered as an error frame.
#[derive(Clone, Debug)]
pub struct ServeError {
    pub class: ErrorClass,
    pub message: String,
}

impl ServeError {
    fn new(class: ErrorClass, message: impl Into<String>) -> Self {
        ServeError {
            class,
            message: message.into(),
        }
    }

    pub fn into_response(self) -> Response {
        Response::Error {
            class: self.class,
            message: self.message,
        }
    }
}

/// FNV-1a over the canonical (name-free) source text: two kernels that
/// differ only in their `program` name hash identically, so concurrent
/// requests for a renamed copy coalesce onto one search. The init spec,
/// probe size and width are *not* part of this hash — the server keys
/// its in-flight map on `(hash, probe_n, width, init)`.
pub fn canonical_kernel_hash(program: &Program) -> u64 {
    let canonical = to_source(&program.clone().with_name("kernel"));
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in canonical.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A boxed workspace-initializer closure produced by [`InitSpec::build`].
type InitFn<'a> = Box<dyn Fn(&str, &[usize]) -> f64 + Sync + 'a>;

/// A named workspace initializer, parsed from the request's init spec.
/// Closures cannot travel over the wire, so the protocol names the
/// initializer families the harnesses use.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InitSpec {
    /// Every element `1.0`.
    Ones,
    /// `shackle_kernels::gen::spd_ws_init(array, probe_n, seed)` — the
    /// symmetric-positive-definite seeding factorization kernels need.
    Spd { array: String, seed: u64 },
}

impl InitSpec {
    /// Parse `"ones"` or `"spd:<array>:<seed>"`.
    pub fn parse(spec: &str) -> Result<InitSpec, String> {
        if spec == "ones" {
            return Ok(InitSpec::Ones);
        }
        if let Some(rest) = spec.strip_prefix("spd:") {
            let (array, seed) = rest
                .rsplit_once(':')
                .ok_or_else(|| format!("bad init spec `{spec}`: expected spd:<array>:<seed>"))?;
            let seed: u64 = seed
                .parse()
                .map_err(|_| format!("bad init spec `{spec}`: seed must be an integer"))?;
            if array.is_empty() {
                return Err(format!("bad init spec `{spec}`: empty array name"));
            }
            return Ok(InitSpec::Spd {
                array: array.to_string(),
                seed,
            });
        }
        Err(format!(
            "unknown init spec `{spec}`: expected `ones` or `spd:<array>:<seed>`"
        ))
    }

    /// The canonical string form ([`InitSpec::parse`]'s inverse).
    pub fn to_spec(&self) -> String {
        match self {
            InitSpec::Ones => "ones".to_string(),
            InitSpec::Spd { array, seed } => format!("spd:{array}:{seed}"),
        }
    }

    /// Materialize the initializer for a given probe size.
    fn build(&self, probe_n: i64) -> InitFn<'_> {
        match self {
            InitSpec::Ones => Box::new(|_: &str, _: &[usize]| 1.0),
            InitSpec::Spd { array, seed } => {
                let f = spd_ws_init(array, probe_n as usize, *seed);
                Box::new(f)
            }
        }
    }
}

fn parse_kernel(source: &str) -> Result<Program, ServeError> {
    parse(source).map_err(|e| ServeError::new(ErrorClass::Parse, e.to_string()))
}

fn check_probe_n(probe_n: i64) -> Result<(), ServeError> {
    if (1..=MAX_PROBE_N).contains(&probe_n) {
        Ok(())
    } else {
        Err(ServeError::new(
            ErrorClass::Internal,
            format!("probe_n {probe_n} outside 1..={MAX_PROBE_N}"),
        ))
    }
}

/// Validate and parse an optimize request's pieces (everything up to
/// the expensive search). The server calls this *before* coalescing so
/// that invalid requests answer immediately and the in-flight key can
/// use the canonical hash.
pub fn prepare_optimize(
    probe_n: i64,
    width: i64,
    init: &str,
    source: &str,
) -> Result<(Program, InitSpec), ServeError> {
    check_probe_n(probe_n)?;
    if !(1..=MAX_WIDTH).contains(&width) {
        return Err(ServeError::new(
            ErrorClass::Internal,
            format!("width {width} outside 1..={MAX_WIDTH}"),
        ));
    }
    let program = parse_kernel(source)?;
    let init = InitSpec::parse(init).map_err(|m| ServeError::new(ErrorClass::Internal, m))?;
    if let InitSpec::Spd { array, .. } = &init {
        if program.array(array).is_none() {
            return Err(ServeError::new(
                ErrorClass::Internal,
                format!("init spec references array `{array}` not declared by the kernel"),
            ));
        }
    }
    Ok((program, init))
}

/// The full optimize pipeline: legality preflight under the service
/// budget, then the canonical memoized search
/// ([`crate::pipeline::auto_search`]) whose report a batch run would
/// produce byte-identically.
pub fn optimize(
    program: &Program,
    probe_n: i64,
    width: i64,
    init: &InitSpec,
    cfg: &ServiceConfig,
) -> Result<Response, ServeError> {
    let _span = shackle_probe::span("optimize");

    // Legality preflight: decide every candidate's dependences under
    // the service budget. Candidates the solver cannot decide would
    // make the search's conservative rejection silent — surface them
    // as a structured refusal instead. The proven probes land in the
    // shared memo cache, so the search below replays them as hits.
    let search_cfg = SearchConfig {
        width,
        ..Default::default()
    };
    let raw = candidate_shackles(program, &search_cfg);
    let deps = dependences(program);
    let mut undecided = 0usize;
    {
        let _span = shackle_probe::span("preflight");
        for s in &raw {
            let report = check_legality_with_deps_budget(
                program,
                std::slice::from_ref(s),
                &deps,
                &cfg.budget,
            );
            undecided += report.unknown.len();
        }
    }
    if undecided > 0 {
        return Err(ServeError::new(
            ErrorClass::Unknown,
            format!(
                "legality not provable within the service budget: \
                 {undecided} undecided dependence probe(s) across {} candidate(s)",
                raw.len()
            ),
        ));
    }

    let init_fn = init.build(probe_n);
    let outcome = {
        let _span = shackle_probe::span("search");
        auto_search(program, &search_cfg, probe_n, &init_fn, Mode::Memoized)
    };
    if outcome.products == 0 {
        return Err(ServeError::new(
            ErrorClass::Internal,
            "no legal blocking product exists for this kernel at the requested width",
        ));
    }
    Ok(Response::Optimized {
        winner_cycles: outcome.winner_cycles,
        report: outcome.report,
    })
}

/// The fast path: analytical-model cycles for the *naive* (unblocked)
/// nest on the standard probe cache. No legality, no codegen, no
/// simulation — microseconds, in the spirit of latency-based tiling's
/// approximate-but-instant answers.
pub fn quote(source: &str, probe_n: i64) -> Result<Response, ServeError> {
    let _span = shackle_probe::span("quote");
    check_probe_n(probe_n)?;
    let program = parse_kernel(source)?;
    let params = BTreeMap::from([("N".to_string(), probe_n)]);
    let geom = KernelGeometry::new(&program, &params);
    let predicted = predict(&geom, &[], &[PROBE_CACHE], 60).cycles;
    Ok(Response::Quoted {
        predicted_cycles: predicted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shackle_ir::kernels;

    #[test]
    fn canonical_hash_ignores_program_name_only() {
        let p = kernels::matmul_ijk();
        let renamed = p.clone().with_name("totally_different");
        assert_eq!(canonical_kernel_hash(&p), canonical_kernel_hash(&renamed));
        let other = kernels::cholesky_right();
        assert_ne!(canonical_kernel_hash(&p), canonical_kernel_hash(&other));
    }

    #[test]
    fn init_specs_parse_and_round_trip() {
        assert_eq!(InitSpec::parse("ones"), Ok(InitSpec::Ones));
        let spd = InitSpec::parse("spd:A:3").unwrap();
        assert_eq!(
            spd,
            InitSpec::Spd {
                array: "A".into(),
                seed: 3
            }
        );
        assert_eq!(InitSpec::parse(&spd.to_spec()), Ok(spd));
        assert!(InitSpec::parse("gaussian").is_err());
        assert!(InitSpec::parse("spd:A").is_err());
        assert!(InitSpec::parse("spd::3").is_err());
        assert!(InitSpec::parse("spd:A:x").is_err());
    }

    #[test]
    fn quote_predicts_naive_cycles() {
        let src = to_source(&kernels::matmul_ijk());
        match quote(&src, 24).unwrap() {
            Response::Quoted { predicted_cycles } => assert!(predicted_cycles > 0),
            r => panic!("unexpected response {r:?}"),
        }
    }

    #[test]
    fn parse_failures_surface_as_parse_errors() {
        let err = quote("program broken\n  do i = 1 ..", 24).unwrap_err();
        assert_eq!(err.class, ErrorClass::Parse);
        let err = prepare_optimize(24, 8, "ones", "nonsense").unwrap_err();
        assert_eq!(err.class, ErrorClass::Parse);
    }

    #[test]
    fn invalid_parameters_are_internal_errors() {
        let src = to_source(&kernels::matmul_ijk());
        assert_eq!(
            prepare_optimize(0, 8, "ones", &src).unwrap_err().class,
            ErrorClass::Internal
        );
        assert_eq!(
            prepare_optimize(24, 0, "ones", &src).unwrap_err().class,
            ErrorClass::Internal
        );
        assert_eq!(
            prepare_optimize(24, 8, "spd:Z:3", &src).unwrap_err().class,
            ErrorClass::Internal
        );
    }
}
