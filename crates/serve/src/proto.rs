//! The daemon's wire protocol: length-prefixed frames over any
//! byte stream (TCP or stdio), std-only.
//!
//! # Frame layout
//!
//! Every frame is `tag (u8) + payload length (u64 LE) + payload` — the
//! same shape as the native runner's stdio protocol
//! (`shackle_exec::native`), so both sides can be read with one loop.
//! Payload fields are little-endian fixed-width integers and
//! `u32`-length-prefixed UTF-8 strings. Kernels travel as the
//! `shackle_ir::parse` concrete syntax — the human-readable text *is*
//! the wire format, so a request can be assembled with a text editor
//! and `printf`.
//!
//! # Requests
//!
//! | tag | frame | payload |
//! |-----|-------|---------|
//! | 1 | `Optimize` | `probe_n i64, width i64, init str, source str` |
//! | 2 | `Quote` | `probe_n i64, source str` |
//! | 3 | `Stats` | empty |
//! | 4 | `Shutdown` | empty |
//!
//! # Responses
//!
//! | tag | frame | payload |
//! |-----|-------|---------|
//! | 16 | `Optimized` | `winner_cycles u64, report str` |
//! | 17 | `Quoted` | `predicted_cycles u64` |
//! | 18 | `Stats` | `json str` |
//! | 19 | `ShuttingDown` | empty |
//! | 31 | `Error` | `class u8, message str` |
//!
//! Malformed input never drops the connection silently: the server
//! answers with an [`ErrorClass::Protocol`] frame where the stream
//! state permits, and every decode error here is a typed
//! [`ProtoError`], not a panic.

use std::io::{self, Read, Write};

/// Refuse frames larger than this: a corrupt or hostile length prefix
/// must not become a multi-gigabyte allocation.
pub const MAX_FRAME: u64 = 16 * 1024 * 1024;

pub const TAG_OPTIMIZE: u8 = 1;
pub const TAG_QUOTE: u8 = 2;
pub const TAG_STATS: u8 = 3;
pub const TAG_SHUTDOWN: u8 = 4;
pub const TAG_OPTIMIZED: u8 = 16;
pub const TAG_QUOTED: u8 = 17;
pub const TAG_STATS_RESP: u8 = 18;
pub const TAG_SHUTTING_DOWN: u8 = 19;
pub const TAG_ERROR: u8 = 31;

/// Why a request failed, as carried in an error frame's class byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// The kernel source did not parse (`shackle_ir::parse::ParseError`);
    /// the message carries the line and reason.
    Parse = 1,
    /// The polyhedral engine returned `Unknown` verdicts during
    /// legality — the search degraded conservatively and the result
    /// would not be a proof, so the server refuses instead.
    Unknown = 2,
    /// The request frame itself was malformed (bad tag, truncated
    /// payload, non-UTF-8 text, oversized length prefix).
    Protocol = 3,
    /// The request was well-formed but the pipeline could not satisfy
    /// it (e.g. no legal blocking exists, or an init spec references a
    /// missing array).
    Internal = 4,
}

impl ErrorClass {
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(Self::Parse),
            2 => Some(Self::Unknown),
            3 => Some(Self::Protocol),
            4 => Some(Self::Internal),
            _ => None,
        }
    }

    /// Stable lowercase name (used in reports and logs).
    pub fn name(self) -> &'static str {
        match self {
            Self::Parse => "parse",
            Self::Unknown => "unknown",
            Self::Protocol => "protocol",
            Self::Internal => "internal",
        }
    }
}

/// A decoded request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Full pipeline: search → legality → codegen → scoring.
    Optimize {
        /// Problem size bound to `N` for scoring.
        probe_n: i64,
        /// Block width driving candidate enumeration.
        width: i64,
        /// Workspace initializer spec: `ones` or `spd:<array>:<seed>`.
        init: String,
        /// Kernel in `shackle_ir::parse` concrete syntax.
        source: String,
    },
    /// Analytical-model-only estimate for the naive (unblocked) nest.
    Quote { probe_n: i64, source: String },
    /// Server counters + cache statistics as JSON.
    Stats,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// A decoded response frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Result of [`Request::Optimize`]: the winning product's simulated
    /// cycles and the full search report (verdicts, products, scores,
    /// generated code) — byte-identical to the batch
    /// `pipeline::auto_search` report.
    Optimized { winner_cycles: u64, report: String },
    /// Result of [`Request::Quote`].
    Quoted { predicted_cycles: u64 },
    /// Result of [`Request::Stats`].
    Stats { json: String },
    /// Acknowledges [`Request::Shutdown`].
    ShuttingDown,
    /// Structured failure; the connection stays open.
    Error { class: ErrorClass, message: String },
}

/// A malformed frame or payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn bad(msg: impl Into<String>) -> ProtoError {
    ProtoError(msg.into())
}

// --- payload primitives ---

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, ProtoError> {
        let n = u32::from_le_bytes(self.take(4)?.try_into().unwrap()) as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("string not utf-8"))
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes after payload"))
        }
    }
}

impl Request {
    /// Serialize to `(tag, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Request::Optimize {
                probe_n,
                width,
                init,
                source,
            } => {
                let mut p = Vec::new();
                p.extend_from_slice(&probe_n.to_le_bytes());
                p.extend_from_slice(&width.to_le_bytes());
                put_str(&mut p, init);
                put_str(&mut p, source);
                (TAG_OPTIMIZE, p)
            }
            Request::Quote { probe_n, source } => {
                let mut p = Vec::new();
                p.extend_from_slice(&probe_n.to_le_bytes());
                put_str(&mut p, source);
                (TAG_QUOTE, p)
            }
            Request::Stats => (TAG_STATS, Vec::new()),
            Request::Shutdown => (TAG_SHUTDOWN, Vec::new()),
        }
    }

    /// Decode a request frame; `Err` values become
    /// [`ErrorClass::Protocol`] error frames at the server.
    pub fn decode(tag: u8, payload: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cursor::new(payload);
        let req = match tag {
            TAG_OPTIMIZE => Request::Optimize {
                probe_n: c.i64()?,
                width: c.i64()?,
                init: c.str()?,
                source: c.str()?,
            },
            TAG_QUOTE => Request::Quote {
                probe_n: c.i64()?,
                source: c.str()?,
            },
            TAG_STATS => Request::Stats,
            TAG_SHUTDOWN => Request::Shutdown,
            t => return Err(bad(format!("unknown request tag {t}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialize to `(tag, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Response::Optimized {
                winner_cycles,
                report,
            } => {
                let mut p = Vec::new();
                p.extend_from_slice(&winner_cycles.to_le_bytes());
                put_str(&mut p, report);
                (TAG_OPTIMIZED, p)
            }
            Response::Quoted { predicted_cycles } => {
                (TAG_QUOTED, predicted_cycles.to_le_bytes().to_vec())
            }
            Response::Stats { json } => {
                let mut p = Vec::new();
                put_str(&mut p, json);
                (TAG_STATS_RESP, p)
            }
            Response::ShuttingDown => (TAG_SHUTTING_DOWN, Vec::new()),
            Response::Error { class, message } => {
                let mut p = vec![*class as u8];
                put_str(&mut p, message);
                (TAG_ERROR, p)
            }
        }
    }

    /// Decode a response frame (the client side of [`Request::decode`]).
    pub fn decode(tag: u8, payload: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cursor::new(payload);
        let resp = match tag {
            TAG_OPTIMIZED => Response::Optimized {
                winner_cycles: c.u64()?,
                report: c.str()?,
            },
            TAG_QUOTED => Response::Quoted {
                predicted_cycles: c.u64()?,
            },
            TAG_STATS_RESP => Response::Stats { json: c.str()? },
            TAG_SHUTTING_DOWN => Response::ShuttingDown,
            TAG_ERROR => {
                let b = c.u8()?;
                Response::Error {
                    class: ErrorClass::from_byte(b)
                        .ok_or_else(|| bad(format!("unknown error class {b}")))?,
                    message: c.str()?,
                }
            }
            t => return Err(bad(format!("unknown response tag {t}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

// --- stream framing ---

/// Write one frame: tag, length, payload, flush. The frame is
/// assembled into one buffer and written with a single `write_all` —
/// three small writes on a TCP stream interact with Nagle's algorithm
/// and delayed ACKs to stall every request by ~40 ms.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(9 + payload.len());
    frame.push(tag);
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one frame. `Ok(None)` on clean EOF before the tag byte — the
/// peer closed between requests, which is the normal end of a
/// connection. A length prefix beyond [`MAX_FRAME`] or EOF mid-frame is
/// `InvalidData` / `UnexpectedEof`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut tag = [0u8; 1];
    if r.read(&mut tag)? == 0 {
        return Ok(None);
    }
    let mut len = [0u8; 8];
    r.read_exact(&mut len)?;
    let len = u64::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((tag[0], payload)))
}

/// Send a request frame.
pub fn send_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    let (tag, payload) = req.encode();
    write_frame(w, tag, &payload)
}

/// Send a response frame.
pub fn send_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    let (tag, payload) = resp.encode();
    write_frame(w, tag, &payload)
}

/// Read and decode one response (client side). Clean EOF is an error
/// here: the client was waiting for an answer.
pub fn read_response(r: &mut impl Read) -> io::Result<Response> {
    let (tag, payload) = read_frame(r)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-request",
        )
    })?;
    Response::decode(tag, &payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(req: Request) {
        let mut buf = Vec::new();
        send_request(&mut buf, &req).unwrap();
        let (tag, payload) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(Request::decode(tag, &payload), Ok(req));
    }

    fn round_trip_resp(resp: Response) {
        let mut buf = Vec::new();
        send_response(&mut buf, &resp).unwrap();
        let got = read_response(&mut buf.as_slice()).unwrap();
        assert_eq!(got, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(Request::Optimize {
            probe_n: 48,
            width: 16,
            init: "spd:A:3".into(),
            source: "program p\n".into(),
        });
        round_trip_req(Request::Quote {
            probe_n: -1,
            source: String::new(),
        });
        round_trip_req(Request::Stats);
        round_trip_req(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_resp(Response::Optimized {
            winner_cycles: u64::MAX,
            report: "winner 0\ncode".into(),
        });
        round_trip_resp(Response::Quoted {
            predicted_cycles: 0,
        });
        round_trip_resp(Response::Stats {
            json: "{\"requests\": 1}".into(),
        });
        round_trip_resp(Response::ShuttingDown);
        round_trip_resp(Response::Error {
            class: ErrorClass::Parse,
            message: "line 3: expected `do`".into(),
        });
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        let mut buf = Vec::new();
        send_request(
            &mut buf,
            &Request::Quote {
                probe_n: 8,
                source: "program p\n".into(),
            },
        )
        .unwrap();
        // Cut the stream at every prefix length: tag-only, mid-length,
        // mid-payload. None may panic; all must error or EOF cleanly.
        for cut in 0..buf.len() {
            let mut r = &buf[..cut];
            match read_frame(&mut r) {
                Ok(None) => assert_eq!(cut, 0, "only an empty stream is clean EOF"),
                Ok(Some(_)) => panic!("truncated frame at {cut} bytes parsed"),
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            }
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        // Unknown tag.
        assert!(Request::decode(99, &[]).is_err());
        assert!(Response::decode(99, &[]).is_err());
        // Truncated string length.
        assert!(Request::decode(TAG_QUOTE, &[0; 9]).is_err());
        // String length pointing past the payload.
        let mut p = 8i64.to_le_bytes().to_vec();
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(TAG_QUOTE, &p).is_err());
        // Trailing garbage.
        let (tag, mut ok) = Request::Stats.encode();
        ok.push(0);
        assert!(Request::decode(tag, &ok).is_err());
        // Bad error class byte.
        let mut e = vec![200u8];
        e.extend_from_slice(&0u32.to_le_bytes());
        assert!(Response::decode(TAG_ERROR, &e).is_err());
        // Oversized length prefix refused before allocation.
        let mut stream = vec![TAG_QUOTE];
        stream.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let err = read_frame(&mut stream.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
