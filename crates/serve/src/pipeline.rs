//! The canonical §8 auto-shackle search pipeline: the uncached serial
//! baseline vs. the memoized parallel one, producing byte-comparable
//! outputs.
//!
//! This module is the single source of truth for the end-to-end search
//! used both by the batch harness (`shackle_bench::searchperf`
//! re-exports it) and by the daemon's `optimize` handler
//! ([`crate::service`]) — one implementation, so a served response is
//! byte-identical to a batch run by construction, not by test luck.
//!
//! Both modes run the same candidate space
//! ([`shackle_core::search::candidate_shackles`]), the same greedy
//! Theorem-2 product growth and the same two-phase scoring (the
//! `shackle-model` analytical predictor ranks every product, the exact
//! probe-cache simulator re-scores only the top [`TOP_K`]), and
//! render an identical textual report — so the performance report can
//! assert that memoization and parallelism change *nothing* about the
//! search result, only its cost:
//!
//! * [`Mode::Baseline`] reproduces the pre-memoization pipeline:
//!   per-dependence full-report legality
//!   ([`shackle_core::check_legality_reference`]) for every candidate,
//!   dependences recomputed for every product-growth call, every stage
//!   serial. Run it with the polyhedral cache disabled
//!   ([`shackle_polyhedra::cache::set_cache_enabled`]) to measure the
//!   uncached baseline.
//! * [`Mode::Memoized`] is the shipped path: shared dependences,
//!   early-exit cheapest-first legality, memoized queries, and
//!   [`shackle_core::par`] fan-out for enumeration, growth and scoring.

use shackle_core::search::{
    candidate_shackles, complete_product_with_deps, two_phase, Candidate, SearchConfig,
};
use shackle_core::{check_legality_reference, is_legal_with_deps, par, scan, span, Shackle};
use shackle_ir::deps::dependences;
use shackle_ir::Program;
use shackle_kernels::trace::trace_execution;
use shackle_memsim::{ground_truth, CacheConfig};
use shackle_model::{predict, KernelGeometry};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Which pipeline to run (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Uncached-era pipeline: serial, full-report legality, dependences
    /// recomputed per growth call.
    Baseline,
    /// Shared dependences + early-exit legality + memoized queries +
    /// parallel fan-out.
    Memoized,
}

/// The search result in comparable form.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Raw candidates enumerated (before the legality filter).
    pub candidates: usize,
    /// Legal distinct candidates.
    pub legal: usize,
    /// Fully-blocking distinct products grown from the legal seeds.
    pub products: usize,
    /// Products re-scored with the exact simulator (the analytical
    /// model ranks all of them; only the top [`TOP_K`] are simulated).
    pub rescored: usize,
    /// Simulated memory cycles of the selected product.
    pub winner_cycles: u64,
    /// Full textual report: every verdict, product, score and the
    /// winner's generated code. Byte-identical across modes and thread
    /// counts.
    pub report: String,
}

/// The probe cache used to score candidates (the §8 cost-model stand-in;
/// same as the `auto_shackle` example).
pub const PROBE_CACHE: CacheConfig = CacheConfig {
    size: 8 * 1024,
    line: 128,
    assoc: 4,
    latency: 0,
};

/// Survivors of the analytical first pass that get exact probe-cache
/// simulation (`shackle_core::search::two_phase`). Two is enough for
/// the handful of grown products this harness ranks; the dense-grid
/// sweep (`shackle_bench::modelperf`) uses a configurable K, default 8.
pub const TOP_K: usize = 2;

/// Run the full auto-shackle search — enumerate, grow, score, select —
/// in the given mode. `probe_n` is the problem size scored on the probe
/// cache; `init` seeds the workspace (use an SPD initializer for
/// factorizations).
pub fn auto_search(
    program: &Program,
    cfg: &SearchConfig,
    probe_n: i64,
    init: impl Fn(&str, &[usize]) -> f64 + Sync,
    mode: Mode,
) -> SearchOutcome {
    let raw = candidate_shackles(program, cfg);
    let deps = dependences(program);

    // 1. legality verdict per raw candidate
    let verdicts: Vec<bool> = match mode {
        Mode::Memoized => par::map(&raw, |s| {
            is_legal_with_deps(program, std::slice::from_ref(s), &deps)
        }),
        Mode::Baseline => raw
            .iter()
            .map(|s| check_legality_reference(program, std::slice::from_ref(s), &deps).is_legal())
            .collect(),
    };

    // legal candidates, deduped in enumeration order (exactly
    // `enumerate_legal`'s construction)
    let mut legal: Vec<Candidate> = Vec::new();
    for (shackle, &ok) in raw.iter().zip(&verdicts) {
        if ok && !legal.iter().any(|c| &c.shackle == shackle) {
            let unconstrained = span::unconstrained_refs(program, std::slice::from_ref(shackle));
            legal.push(Candidate {
                shackle: shackle.clone(),
                unconstrained,
            });
        }
    }

    // 2. grow each legal seed into a product (Theorem 2), keeping the
    //    distinct fully-blocking ones; maximal grown products that
    //    still leave references unconstrained are held back as the
    //    last-resort candidate set (step 2c)
    let mut products: Vec<Vec<Shackle>> = Vec::new();
    let mut partial: Vec<Vec<Shackle>> = Vec::new();
    for c in &legal {
        let seed = vec![c.shackle.clone()];
        let grown = match mode {
            Mode::Memoized => complete_product_with_deps(program, seed, &legal, &deps),
            Mode::Baseline => grow_baseline(program, seed, &legal),
        };
        if span::unconstrained_refs(program, &grown).is_empty() {
            if !products.contains(&grown) {
                products.push(grown);
            }
        } else if !partial.contains(&grown) {
            partial.push(grown);
        }
    }

    // 2b. codes whose data flows from high indices to low (triangular
    //     back-solve) have no legal forward traversal: when the forward
    //     space yields no fully-blocking product, rerun once with §8
    //     reversed cut sets enabled. The retry is a full re-entry so the
    //     report stays the single source of truth for both modes.
    if products.is_empty() && !cfg.reversed_directions {
        let cfg2 = SearchConfig {
            reversed_directions: true,
            ..cfg.clone()
        };
        let mut out = auto_search(program, &cfg2, probe_n, init, mode);
        out.report = format!(
            "no fully-blocking forward product; retrying with reversed cut sets\n{}",
            out.report
        );
        return out;
    }

    // 2c. some codes cannot be fully blocked at all — a rank-2
    //     reduction chain (tensor contraction's Σ over K,L into
    //     C[I,J]) makes every full-rank operand blocking illegal, so
    //     only output blockings survive and Theorem 2 growth stalls
    //     with references unconstrained. Ranking the maximal grown
    //     products is still the paper's best answer; the report says
    //     so explicitly.
    let mut partially_blocking = false;
    if products.is_empty() && !partial.is_empty() {
        products = partial;
        partially_blocking = true;
    }

    // 3. two-phase scoring: the analytical model ranks every product,
    //    then only the top-K survivors get the exact probe-cache
    //    simulation. Both phases tie-break by product index, so the
    //    outcome is deterministic; Baseline pins the fan-out to one
    //    worker so it stays the serial pipeline end to end.
    let params = BTreeMap::from([("N".to_string(), probe_n)]);
    let geom = KernelGeometry::new(program, &params);
    let model_score = |product: &Vec<Shackle>| predict(&geom, product, &[PROBE_CACHE], 60).cycles;
    let exact_score = |product: &Vec<Shackle>| {
        let code = scan::generate_scanned(program, product);
        ground_truth(&[PROBE_CACHE], 60, |h| {
            trace_execution(&code, &params, &init, h);
        })
        .cycles
    };
    let outcome = match mode {
        Mode::Memoized => two_phase(&products, TOP_K, model_score, exact_score),
        Mode::Baseline => {
            let _serial = par::with_threads(1);
            two_phase(&products, TOP_K, model_score, exact_score)
        }
    };

    let mut report = String::new();
    let _ = writeln!(report, "candidates {}", raw.len());
    for (s, ok) in raw.iter().zip(&verdicts) {
        let _ = writeln!(
            report,
            "candidate {s}: {}",
            if *ok { "legal" } else { "illegal" }
        );
    }
    if partially_blocking {
        let _ = writeln!(
            report,
            "no fully-blocking product; ranking {} partially-blocking grown products",
            products.len()
        );
    }
    for (i, p) in products.iter().enumerate() {
        let text: Vec<String> = p.iter().map(|s| s.to_string()).collect();
        let _ = writeln!(report, "product {i}: {}", text.join(" x "));
    }
    let (rescored, winner_cycles) = match &outcome {
        Some(o) => {
            for (i, &cycles) in o.model_scores.iter().enumerate() {
                let _ = writeln!(report, "model {i}: {cycles} cycles predicted");
            }
            for &(i, cycles) in &o.rescored {
                let _ = writeln!(report, "rescore {i}: {cycles} cycles at N={probe_n}");
            }
            let code = scan::generate_scanned(program, &products[o.winner]);
            let _ = writeln!(report, "winner {}\n{}", o.winner, code);
            (o.rescored.len(), o.winner_score)
        }
        None => {
            let _ = writeln!(report, "winner none");
            (0, 0)
        }
    };

    SearchOutcome {
        candidates: raw.len(),
        legal: legal.len(),
        products: products.len(),
        rescored,
        winner_cycles,
        report,
    }
}

/// The pre-memoization greedy growth: dependences recomputed per call,
/// full-report legality, serial scan. Selection rule (fewest remaining
/// unconstrained refs, ties by enumeration order) matches
/// [`complete_product_with_deps`], so both modes grow the same product.
fn grow_baseline(program: &Program, seed: Vec<Shackle>, candidates: &[Candidate]) -> Vec<Shackle> {
    let deps = dependences(program);
    let mut product = seed;
    loop {
        let open = span::unconstrained_refs(program, &product);
        if open.is_empty() {
            return product;
        }
        let mut best: Option<(usize, usize)> = None;
        for (i, c) in candidates.iter().enumerate() {
            let mut trial = product.clone();
            trial.push(c.shackle.clone());
            if !check_legality_reference(program, &trial, &deps).is_legal() {
                continue;
            }
            let remaining = span::unconstrained_refs(program, &trial).len();
            if remaining < open.len() && best.is_none_or(|(b, _)| remaining < b) {
                best = Some((remaining, i));
            }
        }
        match best {
            Some((_, i)) => product.push(candidates[i].shackle.clone()),
            None => return product,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shackle_ir::kernels;

    #[test]
    fn modes_agree_on_matmul() {
        let p = kernels::matmul_ijk();
        let cfg = SearchConfig {
            width: 8,
            ..Default::default()
        };
        let ones = |_: &str, _: &[usize]| 1.0;
        let memo = auto_search(&p, &cfg, 24, ones, Mode::Memoized);
        let base = auto_search(&p, &cfg, 24, ones, Mode::Baseline);
        assert_eq!(memo.report, base.report);
        assert!(memo.legal > 0 && memo.products > 0);
        assert!(memo.winner_cycles > 0);
    }
}
