//! Differential fuzz oracle for the polyhedral substrate.
//!
//! The panic-freedom contract of this crate ("no parser-accepted system
//! can abort the process, and every proven verdict is correct") is
//! checked empirically here: [`run`] generates deterministic pseudo-random
//! constraint systems whose ground truth is computable by brute-force
//! lattice enumeration over a bounding box, then cross-checks the
//! Omega test, Fourier–Motzkin projection, and simplification against
//! that oracle — under the default [`Budget`] and under
//! [`Budget::strict`] — asserting that
//!
//! * nothing panics (a panic fails the harness outright),
//! * every `Yes`/`No` verdict matches the enumeration,
//! * simplification and exact projection preserve the integer point set,
//! * `Unknown` is only ever a *refusal*, never a wrong answer.
//!
//! A pinned [`overflow_corpus`] of historically panic-provoking systems
//! (huge-coefficient equalities, FM combinations that overflow `i64`
//! mid-combine) rides along so the `i128` promotion path is exercised on
//! every run, not just when the generator happens to hit it.
//!
//! The module is deliberately dependency-free (a local splitmix64
//! generator, no clock, no I/O) so the same seed reproduces the same
//! audit everywhere: the `fuzz_oracle` integration test runs a small
//! audit in `cargo test`, and the `poly_audit` bench binary scales the
//! same harness up for CI.

use crate::error::Budget;
use crate::{Constraint, LinExpr, Rel, System, Verdict};

/// Deterministic splitmix64 pseudo-random generator.
///
/// Tiny, seedable, and stable across platforms — audit runs are exactly
/// reproducible from `(seed, systems)` alone.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    fn pick(&mut self, xs: &[i64]) -> i64 {
        xs[self.below(xs.len() as u64) as usize]
    }

    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// One generated test case: a boxed constraint system plus the raw row
/// data needed to compute its ground truth exactly in `i128`.
#[derive(Clone, Debug)]
pub struct Case {
    /// The system handed to the solver (box constraints included).
    pub system: System,
    /// Whether the case draws from the huge-coefficient pool.
    pub adversarial: bool,
    /// Extra rows beyond the box: `(coeffs, constant, rel)` over the
    /// case variables in order.
    rows: Vec<(Vec<i64>, i64, Rel)>,
    /// Per-variable inclusive bounds; enumeration iterates exactly this
    /// lattice, so the box rows are satisfied by construction.
    bounds: Vec<(i64, i64)>,
}

impl Case {
    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.bounds.len()
    }

    /// Exact ground truth by brute-force enumeration of the bounding
    /// box, with every row evaluated in `i128` (immune to the very
    /// overflows the solver is being audited for).
    pub fn ground_truth(&self) -> bool {
        let n = self.bounds.len();
        let mut point: Vec<i64> = self.bounds.iter().map(|&(lo, _)| lo).collect();
        'outer: loop {
            if self.rows.iter().all(|(coeffs, constant, rel)| {
                let v: i128 = coeffs
                    .iter()
                    .zip(&point)
                    .map(|(&c, &x)| c as i128 * x as i128)
                    .sum::<i128>()
                    + *constant as i128;
                match rel {
                    Rel::Geq => v >= 0,
                    Rel::Eq => v == 0,
                }
            }) {
                return true;
            }
            for i in 0..n {
                if point[i] < self.bounds[i].1 {
                    point[i] += 1;
                    for (p, b) in point.iter_mut().zip(&self.bounds).take(i) {
                        *p = b.0;
                    }
                    continue 'outer;
                }
            }
            return false;
        }
    }
}

/// Coefficients that force the `i64` fast path to overflow mid-combine,
/// so verdicts depend on the `i128` promotion (or on a clean refusal).
const HUGE: [i64; 6] = [
    1 << 40,
    (1 << 40) + 1,
    -(1 << 40),
    -((1 << 40) + 3),
    (1 << 41) + 5,
    3 << 39,
];

const SMALL: [i64; 8] = [-3, -2, -1, 0, 0, 1, 2, 3];

/// Generate one random boxed case. `adversarial` mixes huge
/// coefficients into the rows; the box itself stays tiny either way so
/// ground truth remains enumerable.
pub fn gen_case(rng: &mut Rng, adversarial: bool) -> Case {
    let nvars = 1 + rng.below(3) as usize;
    let mut bounds = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        let lo = rng.range(-4, 3);
        bounds.push((lo, lo + rng.range(0, 5)));
    }
    let nrows = 1 + rng.below(4) as usize;
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut coeffs: Vec<i64> = (0..nvars)
            .map(|_| {
                if adversarial && rng.chance(1, 3) {
                    rng.pick(&HUGE)
                } else {
                    rng.pick(&SMALL)
                }
            })
            .collect();
        if coeffs.iter().all(|&c| c == 0) {
            let i = rng.below(nvars as u64) as usize;
            coeffs[i] = rng.pick(&[-2, -1, 1, 2, 3]);
        }
        let constant = if adversarial && rng.chance(1, 5) {
            rng.pick(&HUGE)
        } else {
            rng.range(-6, 6)
        };
        let rel = if rng.chance(1, 5) { Rel::Eq } else { Rel::Geq };
        rows.push((coeffs, constant, rel));
    }

    let mut system = System::new();
    for (i, &(lo, hi)) in bounds.iter().enumerate() {
        let v = LinExpr::var(format!("v{i}"));
        system.add(Constraint::ge(v.clone(), LinExpr::constant(lo)));
        system.add(Constraint::le(v, LinExpr::constant(hi)));
    }
    for (coeffs, constant, rel) in &rows {
        let mut e = LinExpr::constant(*constant);
        for (i, &c) in coeffs.iter().enumerate() {
            if c != 0 {
                e.add_term(&format!("v{i}"), c);
            }
        }
        system.add(match rel {
            Rel::Geq => Constraint::geq_zero(e),
            Rel::Eq => Constraint::eq(e, LinExpr::constant(0)),
        });
    }
    Case {
        system,
        adversarial,
        rows,
        bounds,
    }
}

/// What a pinned corpus system is expected to produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// The solver must *prove* this feasibility verdict under the
    /// default budget — these cases historically panicked, and the
    /// `i128` promotion is what makes them provable.
    Proven(bool),
    /// The solver must refuse with a clean [`crate::PolyError`] (a
    /// reduced row genuinely exceeds `i64`): no panic, no wrong answer.
    CleanError,
}

/// One pinned regression system.
#[derive(Clone, Debug)]
pub struct CorpusCase {
    /// Stable name (appears in mismatch reports).
    pub name: &'static str,
    /// The system under test.
    pub system: System,
    /// Required outcome.
    pub expect: Expectation,
}

/// Pinned overflow-provoking systems. Every entry once panicked (or
/// would have, before the fallible rewrite) in `lcm`/`checked_combine`/
/// equality substitution; the corpus keeps the promotion and refusal
/// paths exercised on every audit run.
pub fn overflow_corpus() -> Vec<CorpusCase> {
    let v = |n: &str| LinExpr::var(n);
    let k = LinExpr::constant;
    let mut out = Vec::new();

    // Huge coprime equality: A·x = B·y with boxes. Only (0, 0) fits the
    // box, so the system is feasible; forcing x ≥ 1 makes the smallest
    // solution x = B, far outside the box — infeasible. Both run the
    // symmetric-residue elimination on 40-bit coefficients.
    let a_coef: i64 = 1 << 40;
    let b_coef: i64 = (1 << 40) + 1;
    let mut base = System::new();
    base.add(Constraint::eq(v("x") * a_coef, v("y") * b_coef));
    base.add(Constraint::ge(v("x"), k(0)));
    base.add(Constraint::le(v("x"), k(10)));
    base.add(Constraint::ge(v("y"), k(0)));
    base.add(Constraint::le(v("y"), k(10)));
    out.push(CorpusCase {
        name: "huge-coprime-equality-feasible",
        system: base.clone(),
        expect: Expectation::Proven(true),
    });
    let mut strict = base;
    strict.add(Constraint::ge(v("x"), k(1)));
    out.push(CorpusCase {
        name: "huge-coprime-equality-infeasible",
        system: strict,
        expect: Expectation::Proven(false),
    });

    // FM combination whose i64 fast path overflows but whose promoted,
    // GCD-reduced row fits: eliminating x from a·x + 6y ≥ 0 and
    // -b·x + 10z ≥ 0 combines into 6b·y + 10a·z ≥ 0 (≈ 2^62.6
    // intermediates) which reduces by 2 back into range.
    let a: i64 = (1 << 60) + 7;
    let b: i64 = (1 << 61) + 9;
    let mut fm = System::new();
    fm.add(Constraint::geq_zero(v("x") * a + v("y") * 6));
    fm.add(Constraint::geq_zero(v("z") * 10 - v("x") * b));
    fm.add(Constraint::ge(v("y"), k(0)));
    fm.add(Constraint::le(v("y"), k(1)));
    fm.add(Constraint::ge(v("z"), k(0)));
    fm.add(Constraint::le(v("z"), k(1)));
    out.push(CorpusCase {
        name: "fm-combine-promoted",
        system: fm,
        expect: Expectation::Proven(true),
    });

    // Unit-equality substitution producing a 2^64 coefficient on a row
    // that still involves another variable, so GCD reduction cannot
    // rescue it: x = -2^32·y substituted into 2^32·x + z ≥ 0 yields
    // -2^64·y + z ≥ 0. Must refuse cleanly (this is the minimal shape
    // that used to abort in `checked_combine`).
    let c32: i64 = 1 << 32;
    let mut ovf = System::new();
    ovf.add(Constraint::eq(v("x") + v("y") * c32, k(0)));
    ovf.add(Constraint::geq_zero(v("x") * c32 + v("z")));
    out.push(CorpusCase {
        name: "substitution-overflow-refuses",
        system: ovf,
        expect: Expectation::CleanError,
    });

    // One-sided huge system: x has lower bounds only, so the free
    // elimination path must fire (the `omega.rs` splinter phase once
    // `expect`ed an upper bound here).
    let mut lower = System::new();
    lower.add(Constraint::ge(v("x") * a_coef, v("y") * b_coef));
    lower.add(Constraint::ge(v("x"), v("y")));
    lower.add(Constraint::ge(v("y"), k(5)));
    out.push(CorpusCase {
        name: "one-sided-lower-bounds-only",
        system: lower,
        expect: Expectation::Proven(true),
    });

    out
}

/// Audit parameters.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Number of random systems to generate.
    pub systems: u64,
    /// Generator seed (same seed ⇒ same audit, bit for bit).
    pub seed: u64,
    /// Also decide every case under [`Budget::strict`], asserting that
    /// proven verdicts stay correct when resources are scarce.
    pub strict_pass: bool,
    /// Cross-check `simplified()` and exact projection against the
    /// enumeration on small non-adversarial cases.
    pub check_simplify: bool,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            systems: 1_000,
            seed: 0x5eed_cafe,
            strict_pass: true,
            check_simplify: true,
        }
    }
}

/// Audit outcome. `mismatches` empty ⇔ the oracle held.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Random systems generated.
    pub systems: u64,
    /// Pinned corpus systems checked.
    pub corpus_cases: u64,
    /// Default-budget verdicts: proven feasible.
    pub feasible: u64,
    /// Default-budget verdicts: proven infeasible.
    pub infeasible: u64,
    /// Default-budget refusals (budget/overflow → `Unknown`).
    pub unknown: u64,
    /// Strict-budget refusals (informational; strictness is the point).
    pub strict_unknown: u64,
    /// Cases whose simplification/projection was cross-checked.
    pub simplify_checked: u64,
    /// Oracle violations, human-readable. Must be empty.
    pub mismatches: Vec<String>,
}

impl AuditReport {
    /// Did every check pass?
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Run the differential audit. Never panics on solver refusals — a
/// panic reaching the caller is itself a finding (the harness crash
/// *is* the failed assertion).
pub fn run(cfg: &AuditConfig) -> AuditReport {
    let mut rep = AuditReport::default();
    let default_budget = Budget::default();
    let strict_budget = Budget::strict();

    for case in overflow_corpus() {
        rep.corpus_cases += 1;
        let got = case.system.try_is_integer_feasible();
        match (case.expect, got) {
            (Expectation::Proven(want), Ok(havefound)) if want == havefound => {}
            (Expectation::CleanError, Err(_)) => {}
            (want, got) => rep.mismatches.push(format!(
                "corpus `{}`: expected {:?}, got {:?}",
                case.name, want, got
            )),
        }
    }

    let mut rng = Rng::new(cfg.seed);
    for i in 0..cfg.systems {
        let case = gen_case(&mut rng, i % 3 == 0);
        let truth = case.ground_truth();
        match case.system.decide(&default_budget) {
            Verdict::Yes => {
                rep.feasible += 1;
                if !truth {
                    rep.mismatches.push(format!(
                        "system #{i}: proven Yes, oracle says empty: {}",
                        case.system
                    ));
                }
            }
            Verdict::No => {
                rep.infeasible += 1;
                if truth {
                    rep.mismatches.push(format!(
                        "system #{i}: proven No, oracle found a point: {}",
                        case.system
                    ));
                }
            }
            Verdict::Unknown => rep.unknown += 1,
        }

        if cfg.strict_pass {
            match case.system.decide(&strict_budget) {
                Verdict::Unknown => rep.strict_unknown += 1,
                v => {
                    if v.known() != Some(truth) {
                        rep.mismatches.push(format!(
                            "system #{i}: strict budget proved {v}, oracle disagrees: {}",
                            case.system
                        ));
                    }
                }
            }
        }

        if cfg.check_simplify && !case.adversarial && case.nvars() <= 2 {
            rep.simplify_checked += 1;
            let original = case.system.enumerate_box(-10, 10);
            let simplified = case.system.simplified().enumerate_box(-10, 10);
            if original != simplified {
                rep.mismatches.push(format!(
                    "system #{i}: simplified() changed the point set of {}",
                    case.system
                ));
            }
            if case.nvars() == 2 {
                let (proj, exact) = case
                    .system
                    .try_project_onto(&["v0"], &default_budget)
                    .unwrap_or_else(|_| {
                        // a refusal is acceptable; substitute a
                        // trivially-consistent projection
                        (System::new(), false)
                    });
                let mut shadow: Vec<i64> = original.iter().map(|p| p[0]).collect();
                shadow.sort_unstable();
                shadow.dedup();
                let idx = proj.var_index("v0");
                let mut projected: Vec<i64> = proj
                    .enumerate_box(-10, 10)
                    .into_iter()
                    .filter_map(|p| idx.map(|j| p[j]))
                    .collect();
                projected.sort_unstable();
                projected.dedup();
                if idx.is_some() {
                    // necessary direction always; equality when exact
                    let superset = shadow.iter().all(|x| projected.contains(x));
                    if !superset || (exact && projected != shadow) {
                        rep.mismatches.push(format!(
                            "system #{i}: projection oracle failed (exact={exact}) for {}",
                            case.system
                        ));
                    }
                }
            }
        }
    }

    rep.systems = cfg.systems;
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ground_truth_matches_enumerate_box_on_small_cases() {
        let mut rng = Rng::new(42);
        for _ in 0..50 {
            let case = gen_case(&mut rng, false);
            let brute = !case.system.enumerate_box(-12, 12).is_empty();
            assert_eq!(case.ground_truth(), brute, "case {}", case.system);
        }
    }

    #[test]
    fn corpus_expectations_hold() {
        let cfg = AuditConfig {
            systems: 0,
            ..AuditConfig::default()
        };
        let rep = run(&cfg);
        assert!(rep.ok(), "corpus mismatches: {:#?}", rep.mismatches);
        assert!(rep.corpus_cases >= 5);
    }
}
