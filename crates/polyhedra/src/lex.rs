//! Lexicographic-order constraints as disjunctions of conjunctive
//! systems.
//!
//! Both "blocks visited in the wrong order" (the legality test of the
//! paper's §5.1) and "instance *s* precedes instance *t* in program
//! order" are lexicographic comparisons of integer vectors. Over affine
//! constraints a strict lexicographic comparison is a *disjunction* — one
//! disjunct per position that can be the first to differ — so these
//! helpers return `Vec<System>`; a query holds iff any disjunct is
//! feasible in context.

use crate::error::Budget;
use crate::{Constraint, LinExpr, System, Verdict};

/// Per-dimension traversal direction for block orders.
///
/// `Decreasing` models the paper's §8 remark that for codes like
/// triangular back-solve the blocks must be walked "bottom to top or
/// right to left" (the data-centric analogue of loop reversal).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Smaller coordinates are visited first (the common case).
    #[default]
    Increasing,
    /// Larger coordinates are visited first.
    Decreasing,
}

/// Systems whose union expresses `a ≺ b` in lexicographic order, with an
/// optional per-dimension direction (default increasing).
///
/// Disjunct `k` states: `a[i] = b[i]` for `i < k` and `a[k]` strictly
/// precedes `b[k]` in dimension `k`'s direction.
///
/// # Panics
///
/// Panics if `a` and `b` have different lengths, or if `dirs` is
/// non-empty and its length differs.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::lex::{lex_lt, Direction};
/// use shackle_polyhedra::LinExpr;
/// let a = [LinExpr::var("a1"), LinExpr::var("a2")];
/// let b = [LinExpr::var("b1"), LinExpr::var("b2")];
/// let d = lex_lt(&a, &b, &[]);
/// assert_eq!(d.len(), 2);
/// // (1,5) < (2,0) via the first disjunct
/// let env = |v: &str| match v { "a1" => 1, "a2" => 5, "b1" => 2, _ => 0 };
/// assert!(d.iter().any(|s| s.eval(&env)));
/// ```
pub fn lex_lt(a: &[LinExpr], b: &[LinExpr], dirs: &[Direction]) -> Vec<System> {
    assert_eq!(a.len(), b.len(), "lex_lt: mismatched vector lengths");
    if !dirs.is_empty() {
        assert_eq!(a.len(), dirs.len(), "lex_lt: mismatched direction count");
    }
    let dir = |k: usize| dirs.get(k).copied().unwrap_or_default();
    let mut out = Vec::with_capacity(a.len());
    for k in 0..a.len() {
        let mut sys = System::new();
        for i in 0..k {
            sys.add(Constraint::eq(a[i].clone(), b[i].clone()));
        }
        match dir(k) {
            Direction::Increasing => sys.add(Constraint::lt(a[k].clone(), b[k].clone())),
            Direction::Decreasing => sys.add(Constraint::gt(a[k].clone(), b[k].clone())),
        }
        out.push(sys);
    }
    out
}

/// Systems whose union expresses `a ⪯ b` (strictly-before or equal):
/// the [`lex_lt`] disjuncts plus full equality.
pub fn lex_le(a: &[LinExpr], b: &[LinExpr], dirs: &[Direction]) -> Vec<System> {
    let mut out = lex_lt(a, b, dirs);
    let mut eq = System::new();
    for (x, y) in a.iter().zip(b) {
        eq.add(Constraint::eq(x.clone(), y.clone()));
    }
    out.push(eq);
    out
}

/// Is any disjunct feasible when conjoined with `context`?
///
/// This is the workhorse query of the legality test: "does there exist a
/// dependent instance pair whose blocks are visited in the wrong order".
pub fn any_feasible_with(disjuncts: &[System], context: &System) -> bool {
    disjuncts
        .iter()
        .any(|d| context.and(d).is_integer_feasible())
}

/// Three-valued form of [`any_feasible_with`] under an explicit
/// [`Budget`]. `Yes` as soon as any disjunct is proven feasible; `No`
/// only if *every* disjunct is proven infeasible; `Unknown` otherwise.
/// Never panics — legality checks use this so an adversarial kernel
/// degrades to a conservative rejection instead of aborting the search.
pub fn try_any_feasible_with(disjuncts: &[System], context: &System, budget: &Budget) -> Verdict {
    let mut unknown = false;
    for d in disjuncts {
        match context.and(d).decide(budget) {
            Verdict::Yes => return Verdict::Yes,
            Verdict::No => {}
            Verdict::Unknown => unknown = true,
        }
    }
    if unknown {
        Verdict::Unknown
    } else {
        Verdict::No
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exprs(names: &[&str]) -> Vec<LinExpr> {
        names.iter().map(|n| LinExpr::var(*n)).collect()
    }

    fn holds(disjuncts: &[System], env: &dyn Fn(&str) -> i64) -> bool {
        disjuncts.iter().any(|s| s.eval(env))
    }

    #[test]
    fn lex_lt_semantics_exhaustive() {
        let a = exprs(&["a1", "a2"]);
        let b = exprs(&["b1", "b2"]);
        let d = lex_lt(&a, &b, &[]);
        for a1 in 0..3 {
            for a2 in 0..3 {
                for b1 in 0..3 {
                    for b2 in 0..3 {
                        let env = move |v: &str| match v {
                            "a1" => a1,
                            "a2" => a2,
                            "b1" => b1,
                            _ => b2,
                        };
                        let expect = (a1, a2) < (b1, b2);
                        assert_eq!(holds(&d, &env), expect, "{:?}", (a1, a2, b1, b2));
                    }
                }
            }
        }
    }

    #[test]
    fn lex_le_includes_equality() {
        let a = exprs(&["a1"]);
        let b = exprs(&["b1"]);
        let d = lex_le(&a, &b, &[]);
        assert!(holds(&d, &|_| 4)); // equal vectors
    }

    #[test]
    fn reversed_dimension() {
        let a = exprs(&["a1"]);
        let b = exprs(&["b1"]);
        let d = lex_lt(&a, &b, &[Direction::Decreasing]);
        // with a decreasing first dimension, 5 precedes 3
        let env = |v: &str| if v == "a1" { 5 } else { 3 };
        assert!(holds(&d, &env));
        let env2 = |v: &str| if v == "a1" { 3 } else { 5 };
        assert!(!holds(&d, &env2));
    }

    #[test]
    fn mixed_directions() {
        let a = exprs(&["a1", "a2"]);
        let b = exprs(&["b1", "b2"]);
        let d = lex_lt(&a, &b, &[Direction::Increasing, Direction::Decreasing]);
        // equal first coordinate, second compared reversed
        let env = |v: &str| match v {
            "a1" | "b1" => 1,
            "a2" => 9,
            _ => 2,
        };
        assert!(holds(&d, &env));
    }

    #[test]
    fn empty_vectors_never_less() {
        let d = lex_lt(&[], &[], &[]);
        assert!(d.is_empty());
    }

    #[test]
    fn feasibility_query() {
        let a = exprs(&["a1"]);
        let b = exprs(&["b1"]);
        let d = lex_lt(&a, &b, &[]);
        let mut ctx = System::new();
        ctx.add(Constraint::eq(LinExpr::var("a1"), LinExpr::var("b1")));
        assert!(!any_feasible_with(&d, &ctx));
        let mut ctx2 = System::new();
        ctx2.add(Constraint::ge(LinExpr::var("b1"), LinExpr::constant(0)));
        assert!(any_feasible_with(&d, &ctx2));
    }

    #[test]
    fn three_valued_feasibility_query() {
        let a = exprs(&["a1"]);
        let b = exprs(&["b1"]);
        let d = lex_lt(&a, &b, &[]);
        let budget = Budget::default();
        let mut ctx = System::new();
        ctx.add(Constraint::eq(LinExpr::var("a1"), LinExpr::var("b1")));
        assert_eq!(try_any_feasible_with(&d, &ctx, &budget), Verdict::No);
        let mut ctx2 = System::new();
        ctx2.add(Constraint::ge(LinExpr::var("b1"), LinExpr::constant(0)));
        assert_eq!(try_any_feasible_with(&d, &ctx2, &budget), Verdict::Yes);
    }
}
