//! The Omega test: exact integer feasibility for conjunctions of affine
//! constraints (Pugh, CACM 1992).
//!
//! This is the decision procedure behind the paper's legality condition
//! (Theorem 1 of Kodukula–Ahmed–Pingali): a data shackle is legal iff a
//! certain conjunction of affine constraints has **no integer solution**.
//! A rational test is not enough — block-coordinate constraints such as
//! `25·b − 24 ≤ j ≤ 25·b` routinely admit rational points with no integer
//! witness — so we implement Pugh's complete procedure:
//!
//! 1. normalize (GCD-reduce; an equality whose GCD does not divide its
//!    constant is unsatisfiable, inequalities are floor-tightened);
//! 2. eliminate equalities exactly using symmetric residues
//!    ([`crate::num::mod_hat`]), introducing auxiliary variables that
//!    shrink coefficients geometrically;
//! 3. eliminate inequality variables by Fourier–Motzkin: if the **real
//!    shadow** has no integer point the system is infeasible; if the
//!    **dark shadow** has one it is feasible; otherwise recurse on
//!    finitely many **splinters** that pin the variable near a lower
//!    bound.

use crate::fm::{bound_profile, eliminate, eliminate_tracked, elimination_exact, Shadow};
use crate::num::mod_hat;
use crate::system::Row;
use crate::{Rel, System};

/// Hard cap on recursion; the systems produced by shackling are tiny, so
/// hitting this indicates a bug rather than a hard instance.
const MAX_DEPTH: usize = 500;

/// Decide whether the system has an integer solution.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::{Constraint, LinExpr, System};
/// // 2x = 3 has no integer solution
/// let mut s = System::new();
/// s.add(Constraint::eq(LinExpr::term("x", 2), LinExpr::constant(3)));
/// assert!(!s.is_integer_feasible());
/// ```
pub fn is_integer_feasible(sys: &System) -> bool {
    solve(sys.clone(), &mut 0, 0)
}

/// Recursion wrapper: memoize subproblem verdicts (shadows, splinters)
/// in the shared feasibility cache. Distinct top-level queries converge
/// to common subsystems after a few eliminations, so this is where the
/// cache earns most of its hits. Depth 0 is already memoized by
/// [`crate::cache::feasible`]; the whole path rides the engine flag.
fn solve(sys: System, fresh: &mut u64, depth: usize) -> bool {
    if depth == 0 || !crate::cache::cache_enabled() {
        return solve_inner(sys, fresh, depth);
    }
    if sys.is_contradictory() {
        return false;
    }
    if sys.rows().is_empty() {
        return true;
    }
    let key = match crate::cache::sub_lookup(&sys) {
        Ok(v) => return v,
        Err(key) => key,
    };
    let v = solve_inner(sys, fresh, depth);
    crate::cache::sub_store(key, v);
    v
}

fn solve_inner(mut sys: System, fresh: &mut u64, depth: usize) -> bool {
    assert!(depth < MAX_DEPTH, "omega test recursion exceeded");
    // Phase 1: eliminate all equalities exactly.
    let mut guard = 0usize;
    loop {
        if sys.is_contradictory() {
            return false;
        }
        guard += 1;
        assert!(guard < 10_000, "equality elimination diverged");
        let Some((row_i, var_k)) = pick_equality(&sys) else {
            break;
        };
        eliminate_equality(&mut sys, row_i, var_k, fresh);
    }
    if sys.is_contradictory() {
        return false;
    }

    // Phase 2: inequalities only.
    let used: Vec<usize> = (0..sys.vars().len())
        .filter(|&i| sys.rows().iter().any(|r| r.coeffs[i] != 0))
        .collect();
    if used.is_empty() {
        // push_row removes trivially-true rows and flags false ones
        return !sys.is_contradictory();
    }

    // Free elimination of variables unbounded on one side.
    for &i in &used {
        let (lo, hi) = bound_profile(&sys, i);
        if lo == 0 || hi == 0 {
            let next = eliminate(&sys, i, Shadow::Real); // no pairs: just drops rows
            return solve(next, fresh, depth + 1);
        }
    }

    // Choose a variable: prefer exact elimination, then fewest pairs.
    let idx = *used
        .iter()
        .min_by_key(|&&i| {
            let (lo, hi) = bound_profile(&sys, i);
            let exact = elimination_exact(&sys, i);
            (!exact, lo * hi, max_abs_coeff(&sys, i))
        })
        .expect("used vars nonempty");

    // Exactness fast path: when every combined lower/upper pair has a
    // zero dark-shadow correction (which subsumes the syntactic
    // `elimination_exact` test used for variable choice above), the
    // real and dark shadows coincide and one recursion decides the
    // system — no dark shadow, no splinters. The fast path rides the
    // engine flag (`cache::set_cache_enabled`): disabling it falls back
    // to the pre-memoization syntactic test so baseline measurements
    // exercise the old engine. Both tests are exactness proofs, so the
    // verdict is identical either way.
    let (real, pairwise_exact) = eliminate_tracked(&sys, idx, Shadow::Real);
    let exact = if crate::cache::cache_enabled() {
        pairwise_exact
    } else {
        elimination_exact(&sys, idx)
    };
    if exact {
        return solve(real, fresh, depth + 1);
    }

    // Inexact: real shadow necessary, dark shadow sufficient.
    crate::cache::note_dark_fallback();
    if !solve(real, fresh, depth + 1) {
        return false;
    }
    if solve(eliminate(&sys, idx, Shadow::Dark), fresh, depth + 1) {
        return true;
    }

    // Splinters: any integer solution must sit close to some lower bound.
    let m = sys
        .rows()
        .iter()
        .filter(|r| r.rel == Rel::Geq && r.coeffs[idx] < 0)
        .map(|r| -r.coeffs[idx])
        .max()
        .expect("bounded variable must have upper bounds");
    let lowers: Vec<Row> = sys
        .rows()
        .iter()
        .filter(|r| r.rel == Rel::Geq && r.coeffs[idx] > 0)
        .cloned()
        .collect();
    for low in lowers {
        let b = low.coeffs[idx];
        // 0 <= i <= (m*b - m - b)/m  (floor)
        let hi = (m * b - m - b).div_euclid(m);
        let mut i = 0;
        while i <= hi {
            // b*x + e >= 0 pinned to b*x + e = i  ⇔  b*x + e - i = 0
            crate::cache::note_splinter();
            let mut child = sys.clone();
            let mut eq = low.clone();
            eq.constant -= i;
            eq.rel = Rel::Eq;
            child.push_row(eq);
            if solve(child, fresh, depth + 1) {
                return true;
            }
            i += 1;
        }
    }
    false
}

/// Find a concrete integer solution with every variable in
/// `[-bound, bound]`, if one exists there.
///
/// Branch-and-prune: variables are fixed one at a time (each candidate
/// value checked for feasibility with the Omega test before descending),
/// so the search visits only feasible prefixes. Intended for
/// diagnostics — e.g. materializing a witness instance pair for a
/// legality violation — not for optimization.
///
/// Returns `(variable, value)` pairs in the system's variable order, or
/// `None` when no solution exists within the box (the system may still
/// be feasible outside it).
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::{Constraint, LinExpr, System};
/// use shackle_polyhedra::omega::find_point;
/// let mut s = System::new();
/// s.add(Constraint::eq(
///     LinExpr::var("x") + LinExpr::var("y"),
///     LinExpr::constant(7),
/// ));
/// s.add(Constraint::ge(LinExpr::var("x"), LinExpr::constant(5)));
/// let p = find_point(&s, 10).expect("feasible in the box");
/// let get = |n: &str| p.iter().find(|(v, _)| v == n).unwrap().1;
/// assert_eq!(get("x") + get("y"), 7);
/// assert!(get("x") >= 5);
/// ```
pub fn find_point(sys: &System, bound: i64) -> Option<Vec<(String, i64)>> {
    if !sys.is_integer_feasible() {
        return None;
    }
    let vars: Vec<String> = sys.vars().to_vec();
    let mut assignment: Vec<(String, i64)> = Vec::with_capacity(vars.len());
    let mut current = sys.clone();
    for v in &vars {
        let mut fixed = None;
        // try small magnitudes first so witnesses read naturally
        let mut candidates: Vec<i64> = (0..=bound).flat_map(|k| [k, -k]).collect();
        candidates.dedup();
        for val in candidates {
            let probe = current.substitute(v, &crate::LinExpr::constant(val));
            if probe.is_integer_feasible() {
                fixed = Some((val, probe));
                break;
            }
        }
        let (val, next) = fixed?;
        assignment.push((v.clone(), val));
        current = next;
    }
    Some(assignment)
}

fn max_abs_coeff(sys: &System, idx: usize) -> i64 {
    sys.rows()
        .iter()
        .map(|r| r.coeffs[idx].abs())
        .max()
        .unwrap_or(0)
}

/// Find an equality row and the index of its variable with the smallest
/// non-zero |coefficient|.
fn pick_equality(sys: &System) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize, i64)> = None;
    for (ri, r) in sys.rows().iter().enumerate() {
        if r.rel != Rel::Eq {
            continue;
        }
        for (vi, &c) in r.coeffs.iter().enumerate() {
            if c != 0 {
                let a = c.abs();
                if best.is_none_or(|(_, _, ba)| a < ba) {
                    best = Some((ri, vi, a));
                }
                if a == 1 {
                    return Some((ri, vi));
                }
            }
        }
    }
    best.map(|(ri, vi, _)| (ri, vi))
}

/// Exactly eliminate one equality (Pugh §2.3.1).
///
/// If the chosen variable has coefficient ±1 it is solved for and
/// substituted away. Otherwise a fresh variable `σ` is introduced via the
/// symmetric-residue trick, which strictly shrinks coefficients; the loop
/// in [`solve`] then retries.
fn eliminate_equality(sys: &mut System, row_i: usize, var_k: usize, fresh: &mut u64) {
    let row = sys.rows()[row_i].clone();
    debug_assert_eq!(row.rel, Rel::Eq);
    let ak = row.coeffs[var_k];
    debug_assert_ne!(ak, 0);

    // Dense substitution (rides the engine flag): same rows in the same
    // order as the sparse path below, minus the string-keyed round trip
    // through `LinExpr` — the dominant constant factor of the solver.
    if crate::cache::cache_enabled() {
        if ak.abs() == 1 {
            // x_k = -sign(ak) * (rest)
            let repl: Vec<i64> = row
                .coeffs
                .iter()
                .enumerate()
                .map(|(i, &c)| if i == var_k { 0 } else { -ak * c })
                .collect();
            *sys = sys.substitute_col(var_k, &repl, -ak * row.constant, None);
            return;
        }
        let m = ak.abs() + 1;
        let sign = ak.signum();
        *fresh += 1;
        let sigma = format!("omega$sigma{fresh}");
        debug_assert_eq!(mod_hat(ak, m), -sign);
        // x_k = sign * ( Σ_{i≠k} mod̂(a_i,m)·x_i + mod̂(c,m) − m·sigma )
        let repl: Vec<i64> = row
            .coeffs
            .iter()
            .enumerate()
            .map(|(i, &c)| if i == var_k { 0 } else { sign * mod_hat(c, m) })
            .collect();
        *sys = sys.substitute_col(
            var_k,
            &repl,
            sign * mod_hat(row.constant, m),
            Some((&sigma, -sign * m)),
        );
        return;
    }

    let name_k = sys.vars()[var_k].to_string();

    if ak.abs() == 1 {
        // x_k = -sign(ak) * (rest)
        let mut e = crate::LinExpr::constant(row.constant);
        for (i, &c) in row.coeffs.iter().enumerate() {
            if i != var_k {
                e.add_term(&sys.vars()[i], c);
            }
        }
        let replacement = e * (-ak);
        let mut next = sys.substitute(&name_k, &replacement);
        if let Some(i) = next.var_index(&name_k) {
            next.drop_var_column(i);
        }
        *sys = next;
        return;
    }

    // m = |a_k| + 1; introduce sigma with
    //   m·sigma = Σ mod̂(a_i, m)·x_i + mod̂(c, m)
    // and substitute
    //   x_k = -sign(a_k)·m·sigma + sign(a_k)·( Σ_{i≠k} mod̂(a_i,m)·x_i + mod̂(c,m) )
    // (using mod̂(a_k, m) = -sign(a_k)).
    let m = ak.abs() + 1;
    let sign = ak.signum();
    *fresh += 1;
    let sigma = format!("omega$sigma{fresh}");

    let mut rhs = crate::LinExpr::constant(mod_hat(row.constant, m));
    for (i, &c) in row.coeffs.iter().enumerate() {
        if i != var_k {
            rhs.add_term(&sys.vars()[i], mod_hat(c, m));
        }
    }
    debug_assert_eq!(mod_hat(ak, m), -sign);
    // x_k = sign * ( rhs - m*sigma )
    let replacement = (rhs - crate::LinExpr::term(&sigma, m)) * sign;

    let next = sys.substitute(&name_k, &replacement);
    let mut next = next;
    if let Some(i) = next.var_index(&name_k) {
        next.drop_var_column(i);
    }
    *sys = next;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constraint, LinExpr};

    fn v(n: &str) -> LinExpr {
        LinExpr::var(n)
    }

    fn c(k: i64) -> LinExpr {
        LinExpr::constant(k)
    }

    #[test]
    fn empty_system_is_feasible() {
        assert!(is_integer_feasible(&System::new()));
    }

    #[test]
    fn box_is_feasible() {
        let mut s = System::new();
        s.add(Constraint::ge(v("x"), c(1)));
        s.add(Constraint::le(v("x"), c(1)));
        assert!(is_integer_feasible(&s));
    }

    #[test]
    fn rational_but_not_integer() {
        // 2x = 1: rationally feasible, integrally not
        let mut s = System::new();
        s.add(Constraint::eq(v("x") * 2, c(1)));
        assert!(!is_integer_feasible(&s));
    }

    #[test]
    fn rational_gap_inequalities() {
        // 2 <= 3x <= 2 + something narrow: 3x >= 4 and 3x <= 5 → x in
        // [4/3, 5/3], no integer
        let mut s = System::new();
        s.add(Constraint::geq_zero(v("x") * 3 - c(4)));
        s.add(Constraint::geq_zero(c(5) - v("x") * 3));
        assert!(!is_integer_feasible(&s));
    }

    #[test]
    fn pugh_example_dark_shadow() {
        // Classic: 27 <= 11x + 13y <= 45, -10 <= 7x - 9y <= 4
        // (Pugh's running example — has NO integer solutions)
        let mut s = System::new();
        let e1 = v("x") * 11 + v("y") * 13;
        let e2 = v("x") * 7 - v("y") * 9;
        s.add(Constraint::ge(e1.clone(), c(27)));
        s.add(Constraint::le(e1, c(45)));
        s.add(Constraint::ge(e2.clone(), c(-10)));
        s.add(Constraint::le(e2, c(4)));
        assert!(!is_integer_feasible(&s));
    }

    #[test]
    fn pugh_example_relaxed_is_feasible() {
        // widening the second band admits (x, y) = (3, 1): 33+13=46 no..
        // use a point check instead: 11*2+13*1=35 in [27,45], 7*2-9*1=5
        // → widen upper bound to 5 and it becomes feasible at (2,1).
        let mut s = System::new();
        let e1 = v("x") * 11 + v("y") * 13;
        let e2 = v("x") * 7 - v("y") * 9;
        s.add(Constraint::ge(e1.clone(), c(27)));
        s.add(Constraint::le(e1, c(45)));
        s.add(Constraint::ge(e2.clone(), c(-10)));
        s.add(Constraint::le(e2, c(5)));
        assert!(is_integer_feasible(&s));
    }

    #[test]
    fn equality_chain_with_large_coefficients() {
        // 7x + 12y + 31z = 17 has integer solutions (Pugh's example)
        let mut s = System::new();
        s.add(Constraint::eq(
            v("x") * 7 + v("y") * 12 + v("z") * 31,
            c(17),
        ));
        assert!(is_integer_feasible(&s));
        // 3x + 6y = 2 does not (gcd 3 ∤ 2)
        let mut t = System::new();
        t.add(Constraint::eq(v("x") * 3 + v("y") * 6, c(2)));
        assert!(!is_integer_feasible(&t));
    }

    #[test]
    fn combined_equalities_and_inequalities() {
        // 7x + 12y + 31z = 17, 3x + 5y + 14z = 7, 1 <= x <= 40, -50 <= y <= 50
        // (Pugh's paper: solutions exist)
        let mut s = System::new();
        s.add(Constraint::eq(
            v("x") * 7 + v("y") * 12 + v("z") * 31,
            c(17),
        ));
        s.add(Constraint::eq(v("x") * 3 + v("y") * 5 + v("z") * 14, c(7)));
        s.add(Constraint::ge(v("x"), c(1)));
        s.add(Constraint::le(v("x"), c(40)));
        s.add(Constraint::ge(v("y"), c(-50)));
        s.add(Constraint::le(v("y"), c(50)));
        assert!(is_integer_feasible(&s));
    }

    #[test]
    fn block_coordinate_gap() {
        // The shackling pattern: 25b - 24 <= j <= 25b, with j fixed to a
        // value — always feasible for the right b; but two *different*
        // js in the same block being forced 30 apart is infeasible.
        let mut s = System::new();
        s.add(Constraint::ge(v("j1"), v("b") * 25 - c(24)));
        s.add(Constraint::le(v("j1"), v("b") * 25));
        s.add(Constraint::ge(v("j2"), v("b") * 25 - c(24)));
        s.add(Constraint::le(v("j2"), v("b") * 25));
        s.add(Constraint::eq(v("j2"), v("j1") + c(30)));
        assert!(!is_integer_feasible(&s));
        // 10 apart is fine
        let mut t = System::new();
        t.add(Constraint::ge(v("j1"), v("b") * 25 - c(24)));
        t.add(Constraint::le(v("j1"), v("b") * 25));
        t.add(Constraint::ge(v("j2"), v("b") * 25 - c(24)));
        t.add(Constraint::le(v("j2"), v("b") * 25));
        t.add(Constraint::eq(v("j2"), v("j1") + c(10)));
        assert!(is_integer_feasible(&t));
    }

    #[test]
    fn unbounded_variable_free_elimination() {
        let mut s = System::new();
        s.add(Constraint::ge(v("x"), v("n")));
        s.add(Constraint::ge(v("n"), c(100)));
        assert!(is_integer_feasible(&s));
    }

    #[test]
    fn agrees_with_brute_force_on_small_instances() {
        // a deterministic mini-fuzz over coefficient grids
        let coefs = [-3i64, -1, 0, 1, 2];
        let mut checked = 0;
        for &a in &coefs {
            for &b in &coefs {
                for &c1 in &[-2i64, 0, 3] {
                    for &d in &coefs {
                        for &e in &[-1i64, 1] {
                            let mut s = System::new();
                            s.add(Constraint::geq_zero(v("x") * a + v("y") * b + c(c1)));
                            s.add(Constraint::geq_zero(v("x") * d + v("y") * e + c(1)));
                            s.add(Constraint::ge(v("x"), c(-4)));
                            s.add(Constraint::le(v("x"), c(4)));
                            s.add(Constraint::ge(v("y"), c(-4)));
                            s.add(Constraint::le(v("y"), c(4)));
                            let brute = !s.enumerate_box(-4, 4).is_empty();
                            assert_eq!(is_integer_feasible(&s), brute, "mismatch on {s}");
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert!(checked > 100);
    }
}
