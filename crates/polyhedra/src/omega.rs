//! The Omega test: exact integer feasibility for conjunctions of affine
//! constraints (Pugh, CACM 1992).
//!
//! This is the decision procedure behind the paper's legality condition
//! (Theorem 1 of Kodukula–Ahmed–Pingali): a data shackle is legal iff a
//! certain conjunction of affine constraints has **no integer solution**.
//! A rational test is not enough — block-coordinate constraints such as
//! `25·b − 24 ≤ j ≤ 25·b` routinely admit rational points with no integer
//! witness — so we implement Pugh's complete procedure:
//!
//! 1. normalize (GCD-reduce; an equality whose GCD does not divide its
//!    constant is unsatisfiable, inequalities are floor-tightened);
//! 2. eliminate equalities exactly using symmetric residues
//!    ([`crate::num::mod_hat`]), introducing auxiliary variables that
//!    shrink coefficients geometrically;
//! 3. eliminate inequality variables by Fourier–Motzkin: if the **real
//!    shadow** has no integer point the system is infeasible; if the
//!    **dark shadow** has one it is feasible; otherwise recurse on
//!    finitely many **splinters** that pin the variable near a lower
//!    bound.

use crate::error::{Budget, PolyError, Resource};
use crate::fm::{bound_profile, eliminate, eliminate_tracked, elimination_exact, Shadow};
use crate::num::mod_hat;
use crate::system::Row;
use crate::{Rel, System};

/// Per-query mutable state: the configured limits plus the splinter
/// count consumed so far by this top-level query.
struct Gas<'a> {
    budget: &'a Budget,
    splinters: u64,
}

/// Decide whether the system has an integer solution.
///
/// # Panics
///
/// Panics if the default [`Budget`] is exhausted or arithmetic
/// overflows even after `i128` promotion; [`try_is_integer_feasible`]
/// is the fallible form.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::{Constraint, LinExpr, System};
/// // 2x = 3 has no integer solution
/// let mut s = System::new();
/// s.add(Constraint::eq(LinExpr::term("x", 2), LinExpr::constant(3)));
/// assert!(!s.is_integer_feasible());
/// ```
pub fn is_integer_feasible(sys: &System) -> bool {
    try_is_integer_feasible(sys, &Budget::default())
        .unwrap_or_else(|e| panic!("omega::is_integer_feasible: {e}"))
}

/// Fallible (uncached) Omega test under an explicit [`Budget`].
///
/// `Ok(bool)` answers are *proven* — they are exact regardless of which
/// budget produced them. `Err` means the budget ran out or a reduced
/// row genuinely exceeded `i64`; the memoizing entry points surface
/// that as [`crate::Verdict::Unknown`]. Never panics.
pub fn try_is_integer_feasible(sys: &System, budget: &Budget) -> Result<bool, PolyError> {
    let mut gas = Gas {
        budget,
        splinters: 0,
    };
    solve(sys.clone(), &mut 0, 0, &mut gas)
}

/// Recursion wrapper: memoize subproblem verdicts (shadows, splinters)
/// in the shared feasibility cache. Distinct top-level queries converge
/// to common subsystems after a few eliminations, so this is where the
/// cache earns most of its hits. Depth 0 is already memoized by
/// [`crate::cache::try_feasible`]; the whole path rides the engine
/// flag. Only proven (`Ok`) verdicts are stored — an `Err` propagates
/// without touching the cache, so a failed query can never poison a
/// later one with a different budget.
fn solve(sys: System, fresh: &mut u64, depth: usize, gas: &mut Gas<'_>) -> Result<bool, PolyError> {
    if depth == 0 || !crate::cache::cache_enabled() {
        return solve_inner(sys, fresh, depth, gas);
    }
    if sys.is_contradictory() {
        return Ok(false);
    }
    if sys.rows().is_empty() {
        return Ok(true);
    }
    let key = match crate::cache::sub_lookup(&sys) {
        Ok(v) => return Ok(v),
        Err(key) => key,
    };
    let v = solve_inner(sys, fresh, depth, gas)?;
    crate::cache::sub_store(key, v);
    Ok(v)
}

fn solve_inner(
    mut sys: System,
    fresh: &mut u64,
    depth: usize,
    gas: &mut Gas<'_>,
) -> Result<bool, PolyError> {
    if depth >= gas.budget.max_depth {
        return Err(PolyError::Budget {
            resource: Resource::Depth,
            limit: gas.budget.max_depth as u64,
        });
    }
    // Phase 1: eliminate all equalities exactly.
    let mut guard = 0usize;
    loop {
        if sys.is_contradictory() {
            return Ok(false);
        }
        guard += 1;
        if guard >= 10_000 {
            // The symmetric-residue substitution shrinks coefficients
            // geometrically, so this loop terminates for any correct
            // input; treat divergence as depth exhaustion rather than
            // aborting the process.
            return Err(PolyError::Budget {
                resource: Resource::Depth,
                limit: 10_000,
            });
        }
        let Some((row_i, var_k)) = pick_equality(&sys) else {
            break;
        };
        eliminate_equality(&mut sys, row_i, var_k, fresh, gas.budget)?;
    }
    if sys.is_contradictory() {
        return Ok(false);
    }

    // Phase 2: inequalities only.
    let used: Vec<usize> = (0..sys.vars().len())
        .filter(|&i| sys.rows().iter().any(|r| r.coeffs[i] != 0))
        .collect();
    if used.is_empty() {
        // push_row removes trivially-true rows and flags false ones
        return Ok(!sys.is_contradictory());
    }

    // Free elimination of variables unbounded on one side.
    for &i in &used {
        let (lo, hi) = bound_profile(&sys, i);
        if lo == 0 || hi == 0 {
            // no pairs: just drops rows
            let next = eliminate(&sys, i, Shadow::Real, gas.budget)?;
            return solve(next, fresh, depth + 1, gas);
        }
    }

    // Choose a variable: prefer exact elimination, then fewest pairs.
    let idx = *used
        .iter()
        .min_by_key(|&&i| {
            let (lo, hi) = bound_profile(&sys, i);
            let exact = elimination_exact(&sys, i);
            (!exact, lo * hi, max_abs_coeff(&sys, i))
        })
        .expect("used vars nonempty");

    // Exactness fast path: when every combined lower/upper pair has a
    // zero dark-shadow correction (which subsumes the syntactic
    // `elimination_exact` test used for variable choice above), the
    // real and dark shadows coincide and one recursion decides the
    // system — no dark shadow, no splinters. The fast path rides the
    // engine flag (`cache::set_cache_enabled`): disabling it falls back
    // to the pre-memoization syntactic test so baseline measurements
    // exercise the old engine. Both tests are exactness proofs, so the
    // verdict is identical either way.
    let (real, pairwise_exact) = eliminate_tracked(&sys, idx, Shadow::Real, gas.budget)?;
    let exact = if crate::cache::cache_enabled() {
        pairwise_exact
    } else {
        elimination_exact(&sys, idx)
    };
    if exact {
        return solve(real, fresh, depth + 1, gas);
    }

    // Inexact: real shadow necessary, dark shadow sufficient.
    crate::cache::note_dark_fallback();
    if !solve(real, fresh, depth + 1, gas)? {
        return Ok(false);
    }
    if solve(
        eliminate(&sys, idx, Shadow::Dark, gas.budget)?,
        fresh,
        depth + 1,
        gas,
    )? {
        return Ok(true);
    }

    // Splinters: any integer solution must sit close to some lower bound.
    let mut m: Option<i64> = None;
    for r in sys.rows() {
        if r.rel == Rel::Geq && r.coeffs[idx] < 0 {
            let v = r.coeffs[idx].checked_neg().ok_or(PolyError::Overflow {
                context: "splinter modulus",
            })?;
            m = Some(m.map_or(v, |a| a.max(v)));
        }
    }
    let Some(m) = m else {
        // The chosen variable has lower bounds but no upper bounds.
        // Variables picked for splintering normally have both (the free
        // elimination above catches one-sided ones), but a one-sided
        // system must take the free-elimination path — dropping the
        // variable's rows is exact — never abort. (This was
        // `expect("bounded variable must have upper bounds")`.)
        let next = eliminate(&sys, idx, Shadow::Real, gas.budget)?;
        return solve(next, fresh, depth + 1, gas);
    };
    let lowers: Vec<Row> = sys
        .rows()
        .iter()
        .filter(|r| r.rel == Rel::Geq && r.coeffs[idx] > 0)
        .cloned()
        .collect();
    for low in lowers {
        // 0 <= i <= (m*b - m - b)/m  (floor) — computed in i128 so huge
        // lower-bound coefficients cannot overflow the bound itself
        // (the splinter budget cuts long walks off first).
        let b = low.coeffs[idx] as i128;
        let m_wide = m as i128;
        let hi = (m_wide * b - m_wide - b).div_euclid(m_wide);
        let mut i: i128 = 0;
        while i <= hi {
            gas.splinters += 1;
            if gas.splinters > gas.budget.max_splinters {
                return Err(PolyError::Budget {
                    resource: Resource::Splinters,
                    limit: gas.budget.max_splinters,
                });
            }
            // b*x + e >= 0 pinned to b*x + e = i  ⇔  b*x + e - i = 0
            crate::cache::note_splinter();
            let mut child = sys.clone();
            let mut eq = low.clone();
            eq.constant = (eq.constant as i128)
                .checked_sub(i)
                .and_then(|c| i64::try_from(c).ok())
                .ok_or(PolyError::Overflow {
                    context: "splinter constant",
                })?;
            eq.rel = Rel::Eq;
            child.push_row(eq);
            if solve(child, fresh, depth + 1, gas)? {
                return Ok(true);
            }
            i += 1;
        }
    }
    Ok(false)
}

/// Find a concrete integer solution with every variable in
/// `[-bound, bound]`, if one exists there.
///
/// Branch-and-prune: variables are fixed one at a time (each candidate
/// value checked for feasibility with the Omega test before descending),
/// so the search visits only feasible prefixes. Intended for
/// diagnostics — e.g. materializing a witness instance pair for a
/// legality violation — not for optimization.
///
/// Returns `(variable, value)` pairs in the system's variable order, or
/// `None` when no solution exists within the box (the system may still
/// be feasible outside it).
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::{Constraint, LinExpr, System};
/// use shackle_polyhedra::omega::find_point;
/// let mut s = System::new();
/// s.add(Constraint::eq(
///     LinExpr::var("x") + LinExpr::var("y"),
///     LinExpr::constant(7),
/// ));
/// s.add(Constraint::ge(LinExpr::var("x"), LinExpr::constant(5)));
/// let p = find_point(&s, 10).expect("feasible in the box");
/// let get = |n: &str| p.iter().find(|(v, _)| v == n).unwrap().1;
/// assert_eq!(get("x") + get("y"), 7);
/// assert!(get("x") >= 5);
/// ```
pub fn find_point(sys: &System, bound: i64) -> Option<Vec<(String, i64)>> {
    if sys.try_is_integer_feasible() != Ok(true) {
        return None;
    }
    let vars: Vec<String> = sys.vars().to_vec();
    let mut assignment: Vec<(String, i64)> = Vec::with_capacity(vars.len());
    let mut current = sys.clone();
    for v in &vars {
        let mut fixed = None;
        // try small magnitudes first so witnesses read naturally
        let mut candidates: Vec<i64> = (0..=bound).flat_map(|k| [k, -k]).collect();
        candidates.dedup();
        for val in candidates {
            // witness extraction is best-effort: a substitution overflow
            // or a solver refusal just disqualifies this candidate
            let Ok(probe) = current.try_substitute(v, &crate::LinExpr::constant(val)) else {
                continue;
            };
            if probe.try_is_integer_feasible() == Ok(true) {
                fixed = Some((val, probe));
                break;
            }
        }
        let (val, next) = fixed?;
        assignment.push((v.clone(), val));
        current = next;
    }
    Some(assignment)
}

fn max_abs_coeff(sys: &System, idx: usize) -> i64 {
    sys.rows()
        .iter()
        .map(|r| r.coeffs[idx].abs())
        .max()
        .unwrap_or(0)
}

/// Find an equality row and the index of its variable with the smallest
/// non-zero |coefficient|.
fn pick_equality(sys: &System) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize, i64)> = None;
    for (ri, r) in sys.rows().iter().enumerate() {
        if r.rel != Rel::Eq {
            continue;
        }
        for (vi, &c) in r.coeffs.iter().enumerate() {
            if c != 0 {
                let a = c.abs();
                if best.is_none_or(|(_, _, ba)| a < ba) {
                    best = Some((ri, vi, a));
                }
                if a == 1 {
                    return Some((ri, vi));
                }
            }
        }
    }
    best.map(|(ri, vi, _)| (ri, vi))
}

/// Exactly eliminate one equality (Pugh §2.3.1).
///
/// If the chosen variable has coefficient ±1 it is solved for and
/// substituted away. Otherwise a fresh variable `σ` is introduced via the
/// symmetric-residue trick, which strictly shrinks coefficients; the loop
/// in [`solve`] then retries.
fn eliminate_equality(
    sys: &mut System,
    row_i: usize,
    var_k: usize,
    fresh: &mut u64,
    budget: &Budget,
) -> Result<(), PolyError> {
    const OVF: PolyError = PolyError::Overflow {
        context: "equality elimination",
    };
    let row = sys.rows()[row_i].clone();
    debug_assert_eq!(row.rel, Rel::Eq);
    let ak = row.coeffs[var_k];
    debug_assert_ne!(ak, 0);
    let ak_abs = ak.checked_abs().ok_or(OVF)?;

    // Dense substitution (rides the engine flag): same rows in the same
    // order as the sparse path below, minus the string-keyed round trip
    // through `LinExpr` — the dominant constant factor of the solver.
    if crate::cache::cache_enabled() {
        if ak_abs == 1 {
            // x_k = -sign(ak) * (rest)
            let mut repl = Vec::with_capacity(row.coeffs.len());
            for (i, &c) in row.coeffs.iter().enumerate() {
                repl.push(if i == var_k {
                    0
                } else {
                    c.checked_mul(-ak).ok_or(OVF)?
                });
            }
            let repl_const = row.constant.checked_mul(-ak).ok_or(OVF)?;
            *sys = sys.try_substitute_col(var_k, &repl, repl_const, None, budget.max_coeff)?;
            return Ok(());
        }
        let m = ak_abs.checked_add(1).ok_or(OVF)?;
        let sign = ak.signum();
        *fresh += 1;
        let sigma = format!("omega$sigma{fresh}");
        debug_assert_eq!(mod_hat(ak, m), -sign);
        // x_k = sign * ( Σ_{i≠k} mod̂(a_i,m)·x_i + mod̂(c,m) − m·sigma )
        // mod̂ values lie in (-m/2, m/2], so sign*mod̂ never overflows.
        let repl: Vec<i64> = row
            .coeffs
            .iter()
            .enumerate()
            .map(|(i, &c)| if i == var_k { 0 } else { sign * mod_hat(c, m) })
            .collect();
        *sys = sys.try_substitute_col(
            var_k,
            &repl,
            sign * mod_hat(row.constant, m),
            Some((&sigma, -sign * m)),
            budget.max_coeff,
        )?;
        return Ok(());
    }

    let name_k = sys.vars()[var_k].to_string();

    if ak_abs == 1 {
        // x_k = -sign(ak) * (rest)
        let mut e = crate::LinExpr::constant(row.constant);
        for (i, &c) in row.coeffs.iter().enumerate() {
            if i != var_k {
                e.add_term(&sys.vars()[i], c);
            }
        }
        let replacement = e.try_scale(-ak).map_err(|_| OVF)?;
        let mut next = sys.try_substitute(&name_k, &replacement).map_err(|_| OVF)?;
        if let Some(i) = next.var_index(&name_k) {
            next.drop_var_column(i);
        }
        *sys = next;
        return Ok(());
    }

    // m = |a_k| + 1; introduce sigma with
    //   m·sigma = Σ mod̂(a_i, m)·x_i + mod̂(c, m)
    // and substitute
    //   x_k = -sign(a_k)·m·sigma + sign(a_k)·( Σ_{i≠k} mod̂(a_i,m)·x_i + mod̂(c,m) )
    // (using mod̂(a_k, m) = -sign(a_k)).
    let m = ak_abs.checked_add(1).ok_or(OVF)?;
    let sign = ak.signum();
    *fresh += 1;
    let sigma = format!("omega$sigma{fresh}");

    let mut rhs = crate::LinExpr::constant(mod_hat(row.constant, m));
    for (i, &c) in row.coeffs.iter().enumerate() {
        if i != var_k {
            rhs.add_term(&sys.vars()[i], mod_hat(c, m));
        }
    }
    debug_assert_eq!(mod_hat(ak, m), -sign);
    // x_k = sign * ( rhs - m*sigma )
    let replacement = (rhs - crate::LinExpr::term(&sigma, m))
        .try_scale(sign)
        .map_err(|_| OVF)?;

    let mut next = sys.try_substitute(&name_k, &replacement).map_err(|_| OVF)?;
    if let Some(i) = next.var_index(&name_k) {
        next.drop_var_column(i);
    }
    *sys = next;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constraint, LinExpr};

    fn v(n: &str) -> LinExpr {
        LinExpr::var(n)
    }

    fn c(k: i64) -> LinExpr {
        LinExpr::constant(k)
    }

    #[test]
    fn empty_system_is_feasible() {
        assert!(is_integer_feasible(&System::new()));
    }

    #[test]
    fn box_is_feasible() {
        let mut s = System::new();
        s.add(Constraint::ge(v("x"), c(1)));
        s.add(Constraint::le(v("x"), c(1)));
        assert!(is_integer_feasible(&s));
    }

    #[test]
    fn rational_but_not_integer() {
        // 2x = 1: rationally feasible, integrally not
        let mut s = System::new();
        s.add(Constraint::eq(v("x") * 2, c(1)));
        assert!(!is_integer_feasible(&s));
    }

    #[test]
    fn one_sided_lower_bounds_take_the_free_elimination_path() {
        // Regression: a variable with lower bounds but no upper bounds
        // must be eliminated freely (dropping its rows is exact). An
        // earlier version reached the splinter chooser for such systems
        // and aborted on `expect("bounded variable must have upper
        // bounds")`. Coprime multi-digit coefficients keep the bounds
        // non-trivial so simplification cannot discharge them early.
        let mut s = System::new();
        s.add(Constraint::ge(v("x") * 3, v("y") * 2 + c(5)));
        s.add(Constraint::ge(v("x") * 7, v("y") * 5 - c(1)));
        s.add(Constraint::ge(v("y"), c(0)));
        s.add(Constraint::le(v("y"), c(10)));
        assert_eq!(try_is_integer_feasible(&s, &Budget::default()), Ok(true));

        // and with the surrounding box empty, the verdict flips without
        // the one-sided variable getting in the way
        s.add(Constraint::ge(v("y"), c(11)));
        assert_eq!(try_is_integer_feasible(&s, &Budget::default()), Ok(false));
    }

    #[test]
    fn one_sided_huge_coefficients_do_not_panic() {
        // The same shape at 2^40 scale: the free elimination must not
        // combine bound pairs, so no coefficient product is ever formed
        // and the verdict is proven, not refused.
        let mut s = System::new();
        s.add(Constraint::ge(v("x") * (1 << 40), v("y") * ((1 << 40) + 1)));
        s.add(Constraint::ge(v("x") * ((1 << 41) + 5), c(7)));
        s.add(Constraint::ge(v("y"), c(1)));
        s.add(Constraint::le(v("y"), c(100)));
        assert_eq!(try_is_integer_feasible(&s, &Budget::default()), Ok(true));
    }

    #[test]
    fn rational_gap_inequalities() {
        // 2 <= 3x <= 2 + something narrow: 3x >= 4 and 3x <= 5 → x in
        // [4/3, 5/3], no integer
        let mut s = System::new();
        s.add(Constraint::geq_zero(v("x") * 3 - c(4)));
        s.add(Constraint::geq_zero(c(5) - v("x") * 3));
        assert!(!is_integer_feasible(&s));
    }

    #[test]
    fn pugh_example_dark_shadow() {
        // Classic: 27 <= 11x + 13y <= 45, -10 <= 7x - 9y <= 4
        // (Pugh's running example — has NO integer solutions)
        let mut s = System::new();
        let e1 = v("x") * 11 + v("y") * 13;
        let e2 = v("x") * 7 - v("y") * 9;
        s.add(Constraint::ge(e1.clone(), c(27)));
        s.add(Constraint::le(e1, c(45)));
        s.add(Constraint::ge(e2.clone(), c(-10)));
        s.add(Constraint::le(e2, c(4)));
        assert!(!is_integer_feasible(&s));
    }

    #[test]
    fn pugh_example_relaxed_is_feasible() {
        // widening the second band admits (x, y) = (3, 1): 33+13=46 no..
        // use a point check instead: 11*2+13*1=35 in [27,45], 7*2-9*1=5
        // → widen upper bound to 5 and it becomes feasible at (2,1).
        let mut s = System::new();
        let e1 = v("x") * 11 + v("y") * 13;
        let e2 = v("x") * 7 - v("y") * 9;
        s.add(Constraint::ge(e1.clone(), c(27)));
        s.add(Constraint::le(e1, c(45)));
        s.add(Constraint::ge(e2.clone(), c(-10)));
        s.add(Constraint::le(e2, c(5)));
        assert!(is_integer_feasible(&s));
    }

    #[test]
    fn equality_chain_with_large_coefficients() {
        // 7x + 12y + 31z = 17 has integer solutions (Pugh's example)
        let mut s = System::new();
        s.add(Constraint::eq(
            v("x") * 7 + v("y") * 12 + v("z") * 31,
            c(17),
        ));
        assert!(is_integer_feasible(&s));
        // 3x + 6y = 2 does not (gcd 3 ∤ 2)
        let mut t = System::new();
        t.add(Constraint::eq(v("x") * 3 + v("y") * 6, c(2)));
        assert!(!is_integer_feasible(&t));
    }

    #[test]
    fn combined_equalities_and_inequalities() {
        // 7x + 12y + 31z = 17, 3x + 5y + 14z = 7, 1 <= x <= 40, -50 <= y <= 50
        // (Pugh's paper: solutions exist)
        let mut s = System::new();
        s.add(Constraint::eq(
            v("x") * 7 + v("y") * 12 + v("z") * 31,
            c(17),
        ));
        s.add(Constraint::eq(v("x") * 3 + v("y") * 5 + v("z") * 14, c(7)));
        s.add(Constraint::ge(v("x"), c(1)));
        s.add(Constraint::le(v("x"), c(40)));
        s.add(Constraint::ge(v("y"), c(-50)));
        s.add(Constraint::le(v("y"), c(50)));
        assert!(is_integer_feasible(&s));
    }

    #[test]
    fn block_coordinate_gap() {
        // The shackling pattern: 25b - 24 <= j <= 25b, with j fixed to a
        // value — always feasible for the right b; but two *different*
        // js in the same block being forced 30 apart is infeasible.
        let mut s = System::new();
        s.add(Constraint::ge(v("j1"), v("b") * 25 - c(24)));
        s.add(Constraint::le(v("j1"), v("b") * 25));
        s.add(Constraint::ge(v("j2"), v("b") * 25 - c(24)));
        s.add(Constraint::le(v("j2"), v("b") * 25));
        s.add(Constraint::eq(v("j2"), v("j1") + c(30)));
        assert!(!is_integer_feasible(&s));
        // 10 apart is fine
        let mut t = System::new();
        t.add(Constraint::ge(v("j1"), v("b") * 25 - c(24)));
        t.add(Constraint::le(v("j1"), v("b") * 25));
        t.add(Constraint::ge(v("j2"), v("b") * 25 - c(24)));
        t.add(Constraint::le(v("j2"), v("b") * 25));
        t.add(Constraint::eq(v("j2"), v("j1") + c(10)));
        assert!(is_integer_feasible(&t));
    }

    #[test]
    fn unbounded_variable_free_elimination() {
        let mut s = System::new();
        s.add(Constraint::ge(v("x"), v("n")));
        s.add(Constraint::ge(v("n"), c(100)));
        assert!(is_integer_feasible(&s));
    }

    #[test]
    fn agrees_with_brute_force_on_small_instances() {
        // a deterministic mini-fuzz over coefficient grids
        let coefs = [-3i64, -1, 0, 1, 2];
        let mut checked = 0;
        for &a in &coefs {
            for &b in &coefs {
                for &c1 in &[-2i64, 0, 3] {
                    for &d in &coefs {
                        for &e in &[-1i64, 1] {
                            let mut s = System::new();
                            s.add(Constraint::geq_zero(v("x") * a + v("y") * b + c(c1)));
                            s.add(Constraint::geq_zero(v("x") * d + v("y") * e + c(1)));
                            s.add(Constraint::ge(v("x"), c(-4)));
                            s.add(Constraint::le(v("x"), c(4)));
                            s.add(Constraint::ge(v("y"), c(-4)));
                            s.add(Constraint::le(v("y"), c(4)));
                            let brute = !s.enumerate_box(-4, 4).is_empty();
                            assert_eq!(is_integer_feasible(&s), brute, "mismatch on {s}");
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert!(checked > 100);
    }
}
