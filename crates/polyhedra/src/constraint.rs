//! Affine constraints: equalities `e = 0` and inequalities `e >= 0`.

use crate::LinExpr;
use std::fmt;

/// The relation of a [`Constraint`]: its expression is either exactly zero
/// or non-negative.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rel {
    /// `expr = 0`.
    Eq,
    /// `expr >= 0`.
    Geq,
}

/// An affine constraint over integer variables.
///
/// All comparison constructors normalize to the two canonical forms
/// `e = 0` / `e >= 0`; strict comparisons use the integrality of the
/// variables (`a < b` becomes `b - a - 1 >= 0`).
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::{Constraint, LinExpr};
/// let i = LinExpr::var("i");
/// let c = Constraint::le(i.clone(), LinExpr::constant(10));
/// assert_eq!(c.to_string(), "-i + 10 >= 0");
/// let s = Constraint::lt(i, LinExpr::constant(10));
/// assert_eq!(s.to_string(), "-i + 9 >= 0");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Constraint {
    expr: LinExpr,
    rel: Rel,
}

impl Constraint {
    /// `expr = 0`.
    pub fn eq_zero(expr: LinExpr) -> Self {
        Self { expr, rel: Rel::Eq }
    }

    /// `expr >= 0`.
    pub fn geq_zero(expr: LinExpr) -> Self {
        Self {
            expr,
            rel: Rel::Geq,
        }
    }

    /// `a = b`.
    pub fn eq(a: LinExpr, b: LinExpr) -> Self {
        Self::eq_zero(a - b)
    }

    /// `a >= b`.
    pub fn ge(a: LinExpr, b: LinExpr) -> Self {
        Self::geq_zero(a - b)
    }

    /// `a <= b`.
    pub fn le(a: LinExpr, b: LinExpr) -> Self {
        Self::geq_zero(b - a)
    }

    /// `a > b` over the integers (`a >= b + 1`).
    pub fn gt(a: LinExpr, b: LinExpr) -> Self {
        Self::geq_zero(a - b - LinExpr::constant(1))
    }

    /// `a < b` over the integers (`a <= b - 1`).
    pub fn lt(a: LinExpr, b: LinExpr) -> Self {
        Self::geq_zero(b - a - LinExpr::constant(1))
    }

    /// The underlying expression.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The relation kind.
    pub fn rel(&self) -> Rel {
        self.rel
    }

    /// True if this is an equality constraint.
    pub fn is_eq(&self) -> bool {
        self.rel == Rel::Eq
    }

    /// The negation of this constraint as a *disjunction* of constraints
    /// (an equality negates to two strict alternatives).
    ///
    /// Over the integers, `¬(e >= 0)` is `-e - 1 >= 0`, and `¬(e = 0)` is
    /// `e - 1 >= 0  ∨  -e - 1 >= 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use shackle_polyhedra::{Constraint, LinExpr};
    /// let c = Constraint::geq_zero(LinExpr::var("x"));
    /// let neg = c.negate();
    /// assert_eq!(neg.len(), 1);
    /// assert_eq!(neg[0].to_string(), "-x - 1 >= 0");
    /// ```
    pub fn negate(&self) -> Vec<Constraint> {
        let e = self.expr.clone();
        match self.rel {
            Rel::Geq => vec![Constraint::geq_zero(-e - LinExpr::constant(1))],
            Rel::Eq => vec![
                Constraint::geq_zero(e.clone() - LinExpr::constant(1)),
                Constraint::geq_zero(-e - LinExpr::constant(1)),
            ],
        }
    }

    /// Whether the constraint is trivially true/false/contingent when its
    /// expression is constant. Returns `None` if it mentions variables.
    pub fn constant_truth(&self) -> Option<bool> {
        if !self.expr.is_constant() {
            return None;
        }
        let c = self.expr.constant_part();
        Some(match self.rel {
            Rel::Eq => c == 0,
            Rel::Geq => c >= 0,
        })
    }

    /// Evaluate the constraint under a total assignment.
    pub fn eval(&self, env: &dyn Fn(&str) -> i64) -> bool {
        let v = self.expr.eval(env);
        match self.rel {
            Rel::Eq => v == 0,
            Rel::Geq => v >= 0,
        }
    }

    /// Rename a variable in the constraint.
    pub fn rename(&self, from: &str, to: &str) -> Constraint {
        Constraint {
            expr: self.expr.rename(from, to),
            rel: self.rel,
        }
    }

    /// Substitute an expression for a variable.
    pub fn substitute(&self, name: &str, replacement: &LinExpr) -> Constraint {
        Constraint {
            expr: self.expr.substitute(name, replacement),
            rel: self.rel,
        }
    }

    /// Fallible [`Self::substitute`]: overflow surfaces as a
    /// [`crate::error::PolyError`] instead of a panic.
    pub fn try_substitute(
        &self,
        name: &str,
        replacement: &LinExpr,
    ) -> Result<Constraint, crate::error::PolyError> {
        Ok(Constraint {
            expr: self.expr.try_substitute(name, replacement)?,
            rel: self.rel,
        })
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rel {
            Rel::Eq => write!(f, "{} = 0", self.expr),
            Rel::Geq => write!(f, "{} >= 0", self.expr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_normalize() {
        let a = LinExpr::var("a");
        let b = LinExpr::var("b");
        assert_eq!(
            Constraint::gt(a.clone(), b.clone()).to_string(),
            "a - b - 1 >= 0"
        );
        assert_eq!(
            Constraint::eq(a.clone(), b.clone()).to_string(),
            "a - b = 0"
        );
        assert!(Constraint::eq(a.clone(), b).is_eq());
        assert!(!Constraint::ge(a, LinExpr::zero()).is_eq());
    }

    #[test]
    fn negation_roundtrip_on_integers() {
        let c = Constraint::le(LinExpr::var("x"), LinExpr::constant(5));
        let n = &c.negate()[0];
        // x <= 5 negated is x >= 6
        assert!(n.eval(&|_| 6));
        assert!(!n.eval(&|_| 5));
        assert!(c.eval(&|_| 5));
    }

    #[test]
    fn eq_negation_has_two_branches() {
        let c = Constraint::eq(LinExpr::var("x"), LinExpr::constant(3));
        let n = c.negate();
        assert_eq!(n.len(), 2);
        assert!(n.iter().any(|b| b.eval(&|_| 4)));
        assert!(n.iter().any(|b| b.eval(&|_| 2)));
        assert!(!n.iter().any(|b| b.eval(&|_| 3)));
    }

    #[test]
    fn constant_truth() {
        assert_eq!(
            Constraint::geq_zero(LinExpr::constant(-1)).constant_truth(),
            Some(false)
        );
        assert_eq!(
            Constraint::eq_zero(LinExpr::zero()).constant_truth(),
            Some(true)
        );
        assert_eq!(
            Constraint::geq_zero(LinExpr::var("x")).constant_truth(),
            None
        );
    }
}
