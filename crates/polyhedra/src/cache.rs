//! Memoized polyhedral queries: a thread-safe cache for Omega
//! feasibility verdicts and Fourier–Motzkin projections, plus the
//! [`PolyStats`] instrumentation counters.
//!
//! The compile-time pipeline (dependence analysis, Theorem-1 legality,
//! Quilleré-style scanning) asks the same polyhedral questions over and
//! over: every candidate shackle of the §8 search re-probes dependences
//! that differ only in which disjunct of a lexicographic order is
//! conjoined, and the scanner re-projects identical piece domains for
//! every sibling loop nest. Both query families are *pure functions* of
//! the constraint system, so the answers are memoized here behind the
//! [`crate::System::is_integer_feasible`] and
//! [`crate::System::project_onto`] entry points.
//!
//! # Keys
//!
//! * **Feasibility** is invariant under variable renaming and under the
//!   order in which constraints were added, so its key is a *canonical
//!   form*: the used variables are sorted by name, the (already
//!   GCD-tightened) rows are permuted onto that order and sorted, and
//!   the variable names themselves are dropped. Systems that differ
//!   only by an order-preserving renaming or by constraint insertion
//!   order (the common case for flow/anti/output dependences over the
//!   same reference pair) therefore share one cache entry.
//! * **Projection** returns a `System` whose textual variable order
//!   feeds directly into generated code, so its key preserves the
//!   insertion order of variables and rows exactly; only the `keep`
//!   set is sorted (the computation never depends on `keep` order).
//!   A hit returns byte-for-byte the system a fresh computation would
//!   produce, which keeps codegen deterministic whether or not the
//!   cache is enabled — and at any thread count.
//!
//! Shard locks are never held while a query runs: recursive queries
//! (projection exactness checks re-enter the feasibility test) would
//! otherwise deadlock. Two threads may race to compute the same entry;
//! both compute the same pure value, so the duplicate insert is benign.
//!
//! # Cross-process persistence
//!
//! The proven maps (feasibility, projection, gist) survive process
//! restarts: [`save_to`] serializes them to a single versioned binary
//! file (atomic temp + rename, like the native build cache) and
//! [`load_from`] rebuilds them byte-for-byte — a reloaded projection
//! is indistinguishable from a fresh computation, so codegen stays
//! deterministic across restarts. `Unknown` outcomes are deliberately
//! *not* persisted: they record resource exhaustion at compute time,
//! not a property of the system. [`store_path`] resolves the on-disk
//! location from `$SHACKLE_POLY_CACHE` (a file path, kept beside the
//! `$SHACKLE_NATIVE_CACHE` artifact store by convention).
//!
//! # Size bounds
//!
//! Each shard holds at most [`cache_capacity`]`/16` entries. Inserting
//! into a full shard evicts its least-recently-touched quarter
//! (approximate LRU via a global logical clock stamped on every hit),
//! counted in [`PolyStats::evictions`].

use crate::error::{Budget, PolyError};
use crate::system::Row;
use crate::{fm, omega, Rel, System};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{LazyLock, Mutex};

/// Number of independent lock shards per cache; a small power of two so
/// the hash → shard map is a mask.
const SHARDS: usize = 16;

/// Default total entry bound per cache (feasibility, projection, gist
/// and unknown each get this many): generous enough that single-run
/// pipelines never evict, small enough that a long-lived server stays
/// bounded.
const DEFAULT_CAPACITY: usize = 1 << 16;

/// FNV-1a as a `HashMap` hasher: keys are already high-entropy
/// serialized systems, so SipHash's DoS resistance buys nothing here
/// and its per-byte cost is pure overhead on kilobyte-sized keys.
#[derive(Clone, Default)]
struct FnvBuild;

struct FnvHasher(u64);

impl BuildHasher for FnvBuild {
    type Hasher = FnvHasher;
    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// A cached value plus the logical time it was last touched (hit or
/// inserted) — the eviction ordering.
struct Stamped<V> {
    value: V,
    stamp: u64,
}

type Shard<V> = Mutex<HashMap<Vec<u8>, Stamped<V>, FnvBuild>>;

static FEASIBILITY: LazyLock<Vec<Shard<bool>>> = LazyLock::new(new_shards);
static PROJECTION: LazyLock<Vec<Shard<(System, bool)>>> = LazyLock::new(new_shards);
static GIST: LazyLock<Vec<Shard<System>>> = LazyLock::new(new_shards);
/// `Unknown` outcomes live in their own map, keyed by a query tag, the
/// budget fingerprint, *and* the exact query key: a verdict that merely
/// reflects resource exhaustion must never be replayed for a different
/// budget (that would "poison" stricter or looser queries), while the
/// proven caches above stay budget-independent.
static UNKNOWN: LazyLock<Vec<Shard<PolyError>>> = LazyLock::new(new_shards);

fn new_shards<V>() -> Vec<Shard<V>> {
    (0..SHARDS)
        .map(|_| Mutex::new(HashMap::default()))
        .collect()
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Global logical clock for approximate LRU: bumped on every hit and
/// insert. Relaxed is fine — eviction only needs a rough recency order,
/// not a total one.
static CLOCK: AtomicU64 = AtomicU64::new(0);

/// Total entry bound per cache (split evenly across shards).
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

fn tick() -> u64 {
    CLOCK.fetch_add(1, Ordering::Relaxed)
}

fn shard_capacity() -> usize {
    (CAPACITY.load(Ordering::Relaxed) / SHARDS).max(1)
}

/// Bound the number of entries each cache may hold (feasibility,
/// projection, gist and unknown each get `total` entries, split across
/// the shards). Inserting past the bound evicts the least-recently-used
/// quarter of the full shard. Returns the previous bound. Existing
/// oversized shards shrink lazily on their next insert.
pub fn set_cache_capacity(total: usize) -> usize {
    CAPACITY.swap(total.max(SHARDS), Ordering::Relaxed)
}

/// The current total entry bound per cache.
pub fn cache_capacity() -> usize {
    CAPACITY.load(Ordering::Relaxed)
}

static FEAS_QUERIES: AtomicU64 = AtomicU64::new(0);
static FEAS_HITS: AtomicU64 = AtomicU64::new(0);
static PROJ_QUERIES: AtomicU64 = AtomicU64::new(0);
static PROJ_HITS: AtomicU64 = AtomicU64::new(0);
static GIST_QUERIES: AtomicU64 = AtomicU64::new(0);
static GIST_HITS: AtomicU64 = AtomicU64::new(0);
static SPLINTERS: AtomicU64 = AtomicU64::new(0);
static DARK_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static FM_COMBINED: AtomicU64 = AtomicU64::new(0);
static FM_PRUNED: AtomicU64 = AtomicU64::new(0);
static UNKNOWN_VERDICTS: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Counters describing the polyhedral work done since the last
/// [`reset_stats`].
///
/// All counters are global (process-wide) and updated with relaxed
/// atomics, so they are cheap enough to leave on permanently and are
/// meaningful across worker threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PolyStats {
    /// Non-trivial Omega feasibility queries through the cached entry
    /// point (trivially contradictory / empty systems are answered
    /// before counting).
    pub feasibility_queries: u64,
    /// Feasibility queries answered from the cache.
    pub feasibility_hits: u64,
    /// `project_onto` queries through the cached entry point.
    pub projection_queries: u64,
    /// Projection queries answered from the cache.
    pub projection_hits: u64,
    /// `gist` simplification queries through the cached entry point.
    pub gist_queries: u64,
    /// Gist queries answered from the cache.
    pub gist_hits: u64,
    /// Splinter subproblems explored by the Omega test (each one is a
    /// full recursive solve).
    pub splinters: u64,
    /// Eliminations where the dark shadow had to be computed because
    /// the real shadow was not provably exact.
    pub dark_shadow_fallbacks: u64,
    /// Lower×upper row pairs combined by Fourier–Motzkin elimination.
    pub fm_rows_combined: u64,
    /// Rows discarded (or tightened in place) by dominance pruning in
    /// `System::push_row` instead of being kept as redundant rows.
    pub fm_rows_pruned: u64,
    /// Queries that ended `Unknown`: the budget ran out (or arithmetic
    /// overflowed `i64` even after `i128` promotion) before a proof.
    /// Consumers degrade conservatively; a healthy pipeline run keeps
    /// this at zero.
    pub unknown_verdicts: u64,
    /// Entries evicted to keep shards under [`cache_capacity`]. Zero in
    /// single-run pipelines; a long-lived server watches this to size
    /// the bound.
    pub evictions: u64,
}

impl PolyStats {
    /// Fraction of feasibility queries served from the cache, in
    /// `[0, 1]`; `0` when no queries ran.
    pub fn feasibility_hit_rate(&self) -> f64 {
        if self.feasibility_queries == 0 {
            0.0
        } else {
            self.feasibility_hits as f64 / self.feasibility_queries as f64
        }
    }

    /// Fraction of projection queries served from the cache, in
    /// `[0, 1]`; `0` when no queries ran.
    pub fn projection_hit_rate(&self) -> f64 {
        if self.projection_queries == 0 {
            0.0
        } else {
            self.projection_hits as f64 / self.projection_queries as f64
        }
    }

    /// Fraction of gist queries served from the cache, in `[0, 1]`;
    /// `0` when no queries ran.
    pub fn gist_hit_rate(&self) -> f64 {
        if self.gist_queries == 0 {
            0.0
        } else {
            self.gist_hits as f64 / self.gist_queries as f64
        }
    }
}

/// Snapshot the global counters.
pub fn stats() -> PolyStats {
    PolyStats {
        feasibility_queries: FEAS_QUERIES.load(Ordering::Relaxed),
        feasibility_hits: FEAS_HITS.load(Ordering::Relaxed),
        projection_queries: PROJ_QUERIES.load(Ordering::Relaxed),
        projection_hits: PROJ_HITS.load(Ordering::Relaxed),
        gist_queries: GIST_QUERIES.load(Ordering::Relaxed),
        gist_hits: GIST_HITS.load(Ordering::Relaxed),
        splinters: SPLINTERS.load(Ordering::Relaxed),
        dark_shadow_fallbacks: DARK_FALLBACKS.load(Ordering::Relaxed),
        fm_rows_combined: FM_COMBINED.load(Ordering::Relaxed),
        fm_rows_pruned: FM_PRUNED.load(Ordering::Relaxed),
        unknown_verdicts: UNKNOWN_VERDICTS.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
    }
}

/// Fold the current [`PolyStats`] snapshot into the probe counters
/// (`poly.feasibility_queries`, `poly.feasibility_hits`,
/// `poly.projection_queries`, `poly.projection_hits`,
/// `poly.gist_queries`, `poly.gist_hits`, `poly.splinters`,
/// `poly.dark_shadow_fallbacks`, `poly.fm_rows_combined`,
/// `poly.fm_rows_pruned`, `poly.unknown`).
///
/// The counters are *set* (not added), so repeated publishes are
/// idempotent: each probe counter mirrors the cumulative PolyStats
/// value since the last [`reset_stats`]. No-op when instrumentation is
/// disabled.
pub fn publish_stats() {
    if !shackle_probe::enabled() {
        return;
    }
    let s = stats();
    for (name, v) in [
        ("poly.feasibility_queries", s.feasibility_queries),
        ("poly.feasibility_hits", s.feasibility_hits),
        ("poly.projection_queries", s.projection_queries),
        ("poly.projection_hits", s.projection_hits),
        ("poly.gist_queries", s.gist_queries),
        ("poly.gist_hits", s.gist_hits),
        ("poly.splinters", s.splinters),
        ("poly.dark_shadow_fallbacks", s.dark_shadow_fallbacks),
        ("poly.fm_rows_combined", s.fm_rows_combined),
        ("poly.fm_rows_pruned", s.fm_rows_pruned),
        ("poly.unknown", s.unknown_verdicts),
        ("poly.evictions", s.evictions),
    ] {
        shackle_probe::counter(name).set(v);
    }
}

/// Zero all counters (the caches are left intact; see [`clear_cache`]).
pub fn reset_stats() {
    for c in [
        &FEAS_QUERIES,
        &FEAS_HITS,
        &PROJ_QUERIES,
        &PROJ_HITS,
        &GIST_QUERIES,
        &GIST_HITS,
        &SPLINTERS,
        &DARK_FALLBACKS,
        &FM_COMBINED,
        &FM_PRUNED,
        &UNKNOWN_VERDICTS,
        &EVICTIONS,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

/// Enable or disable memoization (it is on by default). Disabling does
/// not clear existing entries; re-enabling reuses them. Returns the
/// previous setting.
pub fn set_cache_enabled(on: bool) -> bool {
    ENABLED.swap(on, Ordering::SeqCst)
}

/// Is memoization currently enabled?
pub fn cache_enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Drop every cached verdict and projection (counters are untouched;
/// see [`reset_stats`]).
pub fn clear_cache() {
    for shard in FEASIBILITY.iter() {
        shard.lock().expect("cache shard poisoned").clear();
    }
    for shard in PROJECTION.iter() {
        shard.lock().expect("cache shard poisoned").clear();
    }
    for shard in GIST.iter() {
        shard.lock().expect("cache shard poisoned").clear();
    }
    for shard in UNKNOWN.iter() {
        shard.lock().expect("cache shard poisoned").clear();
    }
}

pub(crate) fn note_splinter() {
    SPLINTERS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_dark_fallback() {
    DARK_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_fm_combined(n: u64) {
    FM_COMBINED.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn note_fm_pruned(n: u64) {
    FM_PRUNED.fetch_add(n, Ordering::Relaxed);
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn shard_of(key: &[u8]) -> usize {
    (fnv(key) as usize) & (SHARDS - 1)
}

fn lookup<V: Clone>(shards: &[Shard<V>], key: &[u8]) -> Option<V> {
    let shard = &shards[shard_of(key)];
    let mut map = shard.lock().expect("cache shard poisoned");
    let entry = map.get_mut(key)?;
    entry.stamp = tick();
    Some(entry.value.clone())
}

fn insert<V>(shards: &[Shard<V>], key: Vec<u8>, value: V) {
    let idx = shard_of(&key);
    let mut map = shards[idx].lock().expect("cache shard poisoned");
    let cap = shard_capacity();
    if map.len() >= cap && !map.contains_key(&key) {
        let over = map.len() + 1 - cap;
        evict_oldest(&mut map, over + cap / 4);
    }
    map.insert(
        key,
        Stamped {
            value,
            stamp: tick(),
        },
    );
}

/// Drop the `n` least-recently-touched entries of one shard. O(shard)
/// per eviction burst, amortized by evicting a quarter-capacity batch
/// at a time rather than one entry per insert.
fn evict_oldest<V>(map: &mut HashMap<Vec<u8>, Stamped<V>, FnvBuild>, n: usize) {
    if n == 0 || map.is_empty() {
        return;
    }
    let n = n.min(map.len());
    let mut stamps: Vec<u64> = map.values().map(|e| e.stamp).collect();
    stamps.sort_unstable();
    let cutoff = stamps[n - 1];
    let before = map.len();
    // `<=` may overshoot `n` when stamps tie (only via bulk load, which
    // stamps per entry, so ties are rare); staying under capacity wins.
    map.retain(|_, e| e.stamp > cutoff);
    EVICTIONS.fetch_add((before - map.len()) as u64, Ordering::Relaxed);
}

fn count_shards<V>(shards: &[Shard<V>]) -> usize {
    shards
        .iter()
        .map(|s| s.lock().expect("cache shard poisoned").len())
        .sum()
}

/// Total entries currently resident across the proven maps
/// (feasibility + projection + gist; `Unknown` entries excluded).
pub fn entry_count() -> usize {
    count_shards(&FEASIBILITY) + count_shards(&PROJECTION) + count_shards(&GIST)
}

/// Zig-zag LEB128: one byte for the small coefficients that dominate
/// shackling systems, so keys stay short (faster to hash and compare).
fn push_i64(out: &mut Vec<u8>, v: i64) {
    let mut z = ((v << 1) ^ (v >> 63)) as u64;
    loop {
        let b = (z & 0x7f) as u8;
        z >>= 7;
        if z == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

/// Canonical, name-free key for feasibility: used columns sorted by
/// variable name, rows permuted onto that order and sorted.
fn feasibility_key(sys: &System) -> Vec<u8> {
    let vars = sys.vars();
    let mut used: Vec<usize> = (0..vars.len())
        .filter(|&i| sys.rows().iter().any(|r| r.coeffs[i] != 0))
        .collect();
    used.sort_by(|&a, &b| vars[a].cmp(&vars[b]));

    let rows = sys.rows();
    let rel_of = |i: usize| match rows[i].rel {
        Rel::Eq => 0u8,
        Rel::Geq => 1u8,
    };
    // Sort row *indices* with a comparator reading straight out of the
    // dense rows — same order as sorting materialized
    // `(rel, permuted coeffs, constant)` tuples, without the per-row
    // allocations.
    let mut idx: Vec<usize> = (0..rows.len()).collect();
    idx.sort_unstable_by(|&a, &b| {
        rel_of(a)
            .cmp(&rel_of(b))
            .then_with(|| {
                used.iter()
                    .map(|&i| rows[a].coeffs[i])
                    .cmp(used.iter().map(|&i| rows[b].coeffs[i]))
            })
            .then_with(|| rows[a].constant.cmp(&rows[b].constant))
    });

    let mut key = Vec::with_capacity(17 + rows.len() * (used.len() + 2) * 8);
    // Flag byte first: a contradiction-flagged system is empty whatever
    // its rows say, so it must never collide with a live system.
    key.push(sys.is_contradictory() as u8);
    push_i64(&mut key, used.len() as i64);
    for i in idx {
        key.push(rel_of(i));
        push_i64(&mut key, rows[i].constant);
        for &u in &used {
            push_i64(&mut key, rows[i].coeffs[u]);
        }
    }
    key
}

/// Append the system's variables and rows in insertion order — the
/// exact-input serialization shared by the projection and gist keys.
fn push_system(key: &mut Vec<u8>, sys: &System) {
    // The contradiction flag is part of the system's identity: a
    // flagged system is empty regardless of its rows, so it must never
    // share a key with a live system that happens to have equal rows.
    key.push(sys.is_contradictory() as u8);
    push_i64(key, sys.vars().len() as i64);
    for v in sys.vars() {
        push_i64(key, v.len() as i64);
        key.extend_from_slice(v.as_bytes());
    }
    push_i64(key, sys.rows().len() as i64);
    for r in sys.rows() {
        key.push(match r.rel {
            Rel::Eq => 0u8,
            Rel::Geq => 1u8,
        });
        push_i64(key, r.constant);
        for &c in &r.coeffs {
            push_i64(key, c);
        }
    }
}

/// Exact-input key for projection: the system's variables and rows in
/// insertion order plus the sorted `keep` set. Two systems with equal
/// keys are indistinguishable to `fm::project_onto`, so the cached
/// result is byte-identical to a fresh computation.
fn projection_key(sys: &System, keep: &[&str]) -> Vec<u8> {
    let mut key = Vec::new();
    push_system(&mut key, sys);
    let mut keep: Vec<&str> = keep.to_vec();
    keep.sort_unstable();
    keep.dedup();
    push_i64(&mut key, keep.len() as i64);
    for k in keep {
        push_i64(&mut key, k.len() as i64);
        key.extend_from_slice(k.as_bytes());
    }
    key
}

/// Exact-input key for gist: both operands serialized in insertion
/// order. As with projection, equal keys mean `simplify::gist` cannot
/// distinguish the inputs, so the cached system is byte-identical to a
/// fresh computation.
fn gist_key(sys: &System, context: &System) -> Vec<u8> {
    let mut key = Vec::new();
    push_system(&mut key, sys);
    push_system(&mut key, context);
    key
}

/// Recursive-subproblem memoization for the Omega test: `Ok(verdict)`
/// on a hit, `Err(key)` on a miss (store the computed verdict with
/// [`sub_store`]). Shares the feasibility cache and counters, so the
/// reported hit rate covers subproblems too.
pub(crate) fn sub_lookup(sys: &System) -> Result<bool, Vec<u8>> {
    FEAS_QUERIES.fetch_add(1, Ordering::Relaxed);
    let key = feasibility_key(sys);
    match lookup(&FEASIBILITY, &key) {
        Some(v) => {
            FEAS_HITS.fetch_add(1, Ordering::Relaxed);
            Ok(v)
        }
        None => Err(key),
    }
}

/// Store a subproblem verdict computed after a [`sub_lookup`] miss.
pub(crate) fn sub_store(key: Vec<u8>, v: bool) {
    insert(&FEASIBILITY, key, v);
}

/// Tags separating query families inside the [`UNKNOWN`] map.
const UNKNOWN_FEAS: u8 = 0;
const UNKNOWN_PROJ: u8 = 1;

/// Key for an `Unknown` outcome: query tag, budget fingerprint, then
/// the exact query key.
fn unknown_key(tag: u8, budget: &Budget, query_key: &[u8]) -> Vec<u8> {
    let mut key = Vec::with_capacity(9 + query_key.len());
    key.push(tag);
    key.extend_from_slice(&budget.fingerprint().to_le_bytes());
    key.extend_from_slice(query_key);
    key
}

fn note_unknown(e: PolyError) -> PolyError {
    UNKNOWN_VERDICTS.fetch_add(1, Ordering::Relaxed);
    e
}

/// Cached Omega feasibility (the implementation behind
/// [`crate::System::is_integer_feasible`], [`crate::System::decide`]
/// and [`crate::System::try_is_integer_feasible`]).
///
/// Proven answers are memoized on the canonical system key alone (they
/// are budget-independent); `Err` outcomes are memoized per
/// `(budget, system)` in the separate [`UNKNOWN`] map so they can never
/// poison a query with a different budget. Every `Err` returned —
/// computed or replayed — counts into `poly.unknown`.
pub(crate) fn try_feasible(sys: &System, budget: &Budget) -> Result<bool, PolyError> {
    if sys.is_contradictory() {
        return Ok(false);
    }
    if sys.rows().is_empty() {
        return Ok(true);
    }
    FEAS_QUERIES.fetch_add(1, Ordering::Relaxed);
    if !cache_enabled() {
        let _phase = shackle_probe::span("omega");
        return omega::try_is_integer_feasible(sys, budget).map_err(note_unknown);
    }
    let key = feasibility_key(sys);
    if let Some(v) = lookup(&FEASIBILITY, &key) {
        FEAS_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(v);
    }
    let ukey = unknown_key(UNKNOWN_FEAS, budget, &key);
    if let Some(e) = lookup(&UNKNOWN, &ukey) {
        FEAS_HITS.fetch_add(1, Ordering::Relaxed);
        return Err(note_unknown(e));
    }
    let _phase = shackle_probe::span("omega");
    match omega::try_is_integer_feasible(sys, budget) {
        Ok(v) => {
            insert(&FEASIBILITY, key, v);
            Ok(v)
        }
        Err(e) => {
            insert(&UNKNOWN, ukey, e);
            Err(note_unknown(e))
        }
    }
}

/// Cached Omega feasibility under the default budget, panicking on
/// `Unknown` (legacy entry point; see [`try_feasible`]).
#[cfg(test)]
pub(crate) fn feasible(sys: &System) -> bool {
    try_feasible(sys, &Budget::default()).unwrap_or_else(|e| panic!("cache::feasible: {e}"))
}

/// Cached projection (the implementation behind
/// [`crate::System::project_onto`] and
/// [`crate::System::try_project_onto`]).
///
/// The projection result (its exactness flag in particular) can depend
/// on the budget through conservative degradation, so the proven cache
/// key includes the budget fingerprint; `Err` outcomes go to the
/// [`UNKNOWN`] map like feasibility.
pub(crate) fn try_project(
    sys: &System,
    keep: &[&str],
    budget: &Budget,
) -> Result<(System, bool), PolyError> {
    PROJ_QUERIES.fetch_add(1, Ordering::Relaxed);
    if !cache_enabled() {
        let _phase = shackle_probe::span("fm");
        return fm::try_project_onto(sys, keep, budget).map_err(note_unknown);
    }
    let mut key = projection_key(sys, keep);
    key.extend_from_slice(&budget.fingerprint().to_le_bytes());
    if let Some(v) = lookup(&PROJECTION, &key) {
        PROJ_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(v);
    }
    let ukey = unknown_key(UNKNOWN_PROJ, budget, &key);
    if let Some(e) = lookup(&UNKNOWN, &ukey) {
        PROJ_HITS.fetch_add(1, Ordering::Relaxed);
        return Err(note_unknown(e));
    }
    let _phase = shackle_probe::span("fm");
    match fm::try_project_onto(sys, keep, budget) {
        Ok(v) => {
            insert(&PROJECTION, key, v.clone());
            Ok(v)
        }
        Err(e) => {
            insert(&UNKNOWN, ukey, e);
            Err(note_unknown(e))
        }
    }
}

/// Cached gist (the implementation behind [`crate::System::gist`]).
/// One hit replaces a per-constraint cascade of implication checks —
/// each itself a feasibility query — which makes this the highest-
/// leverage entry of the three for the code generator.
pub(crate) fn gist(sys: &System, context: &System) -> System {
    GIST_QUERIES.fetch_add(1, Ordering::Relaxed);
    if !cache_enabled() {
        let _phase = shackle_probe::span("gist");
        return crate::simplify::gist(sys, context);
    }
    let key = gist_key(sys, context);
    if let Some(v) = lookup(&GIST, &key) {
        GIST_HITS.fetch_add(1, Ordering::Relaxed);
        return v;
    }
    let _phase = shackle_probe::span("gist");
    let v = crate::simplify::gist(sys, context);
    insert(&GIST, key, v.clone());
    v
}

// ---------------------------------------------------------------------
// Cross-process persistence
// ---------------------------------------------------------------------

/// File magic + format version. Bump the version byte on any layout
/// change; [`load_from`] refuses mismatches instead of guessing.
const STORE_MAGIC: &[u8; 4] = b"SHPL";
const STORE_VERSION: u8 = 1;

/// Section tags inside the store file.
const SEC_FEAS: u8 = 0;
const SEC_PROJ: u8 = 1;
const SEC_GIST: u8 = 2;
const SEC_END: u8 = 0xff;

/// Resolve the on-disk store location from `$SHACKLE_POLY_CACHE` (a
/// file path). `None` when unset — persistence is strictly opt-in, so
/// batch runs never touch the filesystem.
pub fn store_path() -> Option<PathBuf> {
    let p = std::env::var_os("SHACKLE_POLY_CACHE")?;
    (!p.is_empty()).then(|| PathBuf::from(p))
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("poly cache store: {msg}"),
    )
}

/// Byte-slice cursor mirroring the `push_i64`/`push_system` writers.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> io::Result<u8> {
        let b = *self.buf.get(self.pos).ok_or_else(|| invalid("truncated"))?;
        self.pos += 1;
        Ok(b)
    }

    fn i64(&mut self) -> io::Result<i64> {
        // Inverse of `push_i64`: LEB128 then zig-zag.
        let mut z: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(invalid("varint overlong"));
            }
            z |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn len(&mut self) -> io::Result<usize> {
        let v = self.i64()?;
        // A length can never exceed what remains in the buffer; this
        // caps allocations on corrupt input before they happen.
        let remaining = self.buf.len() - self.pos;
        if v < 0 || v as usize > remaining {
            return Err(invalid("length out of range"));
        }
        Ok(v as usize)
    }

    fn bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| invalid("truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Inverse of [`push_system`], reconstructing the serialized system
    /// byte-for-byte via `System::from_raw_parts`.
    fn system(&mut self) -> io::Result<System> {
        let contradiction = match self.u8()? {
            0 => false,
            1 => true,
            _ => return Err(invalid("bad contradiction flag")),
        };
        let nvars = self.len()?;
        let mut vars = Vec::with_capacity(nvars);
        for _ in 0..nvars {
            let n = self.len()?;
            let name = std::str::from_utf8(self.bytes(n)?)
                .map_err(|_| invalid("variable name not utf-8"))?;
            vars.push(name.to_string());
        }
        let nrows = self.len()?;
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let rel = match self.u8()? {
                0 => Rel::Eq,
                1 => Rel::Geq,
                _ => return Err(invalid("bad relation byte")),
            };
            let constant = self.i64()?;
            let mut coeffs = Vec::with_capacity(nvars);
            for _ in 0..nvars {
                coeffs.push(self.i64()?);
            }
            rows.push(Row {
                coeffs,
                constant,
                rel,
            });
        }
        Ok(System::from_raw_parts(vars, rows, contradiction))
    }
}

/// Serialize one proven map as a tagged section: tag, entry count, then
/// `key_len key value` per entry (value layout per tag).
fn write_section<V>(
    out: &mut Vec<u8>,
    tag: u8,
    shards: &[Shard<V>],
    mut write_value: impl FnMut(&mut Vec<u8>, &V),
) {
    out.push(tag);
    let count: usize = count_shards(shards);
    push_i64(out, count as i64);
    for shard in shards {
        let map = shard.lock().expect("cache shard poisoned");
        for (key, entry) in map.iter() {
            push_i64(out, key.len() as i64);
            out.extend_from_slice(key);
            write_value(out, &entry.value);
        }
    }
}

/// Serialize the proven maps into the store's binary format.
fn serialize_store() -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(STORE_MAGIC);
    out.push(STORE_VERSION);
    write_section(&mut out, SEC_FEAS, &FEASIBILITY, |o, &v| o.push(v as u8));
    write_section(&mut out, SEC_PROJ, &PROJECTION, |o, (sys, exact)| {
        push_system(o, sys);
        o.push(*exact as u8);
    });
    write_section(&mut out, SEC_GIST, &GIST, push_system);
    out.push(SEC_END);
    out
}

/// Persist the proven maps (feasibility, projection, gist) to `path`.
/// The write is atomic — a scratch file in the same directory is
/// renamed into place — so a crash mid-save leaves the previous store
/// intact and concurrent savers last-write-win at file granularity.
/// Returns the number of bytes written.
pub fn save_to(path: impl AsRef<Path>) -> io::Result<u64> {
    let path = path.as_ref();
    let bytes = serialize_store();
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let scratch = path.with_extension(format!("tmp.{}", std::process::id()));
    {
        let mut f = std::fs::File::create(&scratch)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&scratch, path)?;
    Ok(bytes.len() as u64)
}

/// Load a store written by [`save_to`], merging its entries into the
/// live maps (existing entries are overwritten; capacity bounds and
/// eviction apply as for normal inserts). Returns the number of entries
/// loaded. Malformed or version-mismatched files yield
/// `ErrorKind::InvalidData` and leave the maps as they were before the
/// failing entry — never a panic.
pub fn load_from(path: impl AsRef<Path>) -> io::Result<usize> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    let mut r = Reader { buf: &buf, pos: 0 };
    if r.bytes(4)? != STORE_MAGIC {
        return Err(invalid("bad magic"));
    }
    if r.u8()? != STORE_VERSION {
        return Err(invalid("unsupported version"));
    }
    let mut loaded = 0usize;
    loop {
        let tag = r.u8()?;
        if tag == SEC_END {
            break;
        }
        let count = {
            let v = r.i64()?;
            if v < 0 {
                return Err(invalid("negative section count"));
            }
            v as usize
        };
        for _ in 0..count {
            let klen = r.len()?;
            let key = r.bytes(klen)?.to_vec();
            match tag {
                SEC_FEAS => {
                    let v = match r.u8()? {
                        0 => false,
                        1 => true,
                        _ => return Err(invalid("bad feasibility verdict")),
                    };
                    insert(&FEASIBILITY, key, v);
                }
                SEC_PROJ => {
                    let sys = r.system()?;
                    let exact = match r.u8()? {
                        0 => false,
                        1 => true,
                        _ => return Err(invalid("bad exactness flag")),
                    };
                    insert(&PROJECTION, key, (sys, exact));
                }
                SEC_GIST => {
                    let sys = r.system()?;
                    insert(&GIST, key, sys);
                }
                _ => return Err(invalid("unknown section tag")),
            }
            loaded += 1;
        }
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constraint, LinExpr};

    fn v(n: &str) -> LinExpr {
        LinExpr::var(n)
    }

    /// Tests that toggle the global enable flag or read hit counters
    /// must not interleave (the test harness is multi-threaded).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn feasibility_key_ignores_names_and_row_order() {
        let mut a = System::new();
        a.add(Constraint::ge(v("x"), LinExpr::constant(1)));
        a.add(Constraint::le(v("x"), v("n")));
        // same shape, renamed (preserving relative name order: n < x,
        // m < z), added in a different order
        let mut b = System::new();
        b.add(Constraint::le(v("z"), v("m")));
        b.add(Constraint::ge(v("z"), LinExpr::constant(1)));
        assert_eq!(feasibility_key(&a), feasibility_key(&b));
    }

    #[test]
    fn feasibility_key_separates_different_systems() {
        let mut a = System::new();
        a.add(Constraint::ge(v("x"), LinExpr::constant(1)));
        let mut b = System::new();
        b.add(Constraint::ge(v("x"), LinExpr::constant(2)));
        assert_ne!(feasibility_key(&a), feasibility_key(&b));
    }

    #[test]
    fn projection_key_distinguishes_keep_sets() {
        let mut s = System::new();
        s.add(Constraint::le(v("i"), v("n")));
        s.add(Constraint::le(v("j"), v("i")));
        let a = projection_key(&s, &["n"]);
        let b = projection_key(&s, &["n", "j"]);
        assert_ne!(a, b);
        // keep order and duplicates do not matter
        assert_eq!(
            projection_key(&s, &["j", "n"]),
            projection_key(&s, &["n", "j", "j"])
        );
    }

    #[test]
    fn contradiction_flag_is_part_of_every_key() {
        // Regression: a contradiction-flagged system with the same rows
        // as a live one used to share its projection/gist key, so each
        // could replay the other's cached result (found by the fuzz
        // oracle: `{ false }` projecting to a live interval and vice
        // versa).
        let live = {
            let mut s = System::new();
            s.add(Constraint::ge(v("x"), LinExpr::constant(2)));
            s.add(Constraint::le(v("x"), LinExpr::constant(5)));
            s
        };
        let mut flagged = live.clone();
        flagged.add(Constraint::geq_zero(LinExpr::constant(-1)));
        assert!(flagged.is_contradictory());
        // the trivially-false row is absorbed into the flag, leaving
        // identical rows — only the flag distinguishes the two systems
        assert_eq!(live.rows().len(), flagged.rows().len());
        assert_ne!(feasibility_key(&live), feasibility_key(&flagged));
        assert_ne!(
            projection_key(&live, &["x"]),
            projection_key(&flagged, &["x"])
        );
        // end-to-end through the cache: both directions stay sound
        clear_cache();
        let (p_live, _) = try_project(&live, &["x"], &Budget::default()).unwrap();
        let (p_flagged, _) = try_project(&flagged, &["x"], &Budget::default()).unwrap();
        assert!(!p_live.is_contradictory());
        assert!(p_flagged.is_contradictory());
    }

    #[test]
    fn cached_results_match_direct_computation() {
        let mut s = System::new();
        s.add(Constraint::ge(v("j"), v("b") * 25 - LinExpr::constant(24)));
        s.add(Constraint::le(v("j"), v("b") * 25));
        s.add(Constraint::ge(v("j"), LinExpr::constant(1)));
        s.add(Constraint::le(v("j"), v("n")));

        let direct_feas = omega::is_integer_feasible(&s);
        let direct_proj = fm::project_onto(&s, &["j", "n"]);
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear_cache();
        // miss then hit: both must equal the direct computation
        let budget = Budget::default();
        assert_eq!(feasible(&s), direct_feas);
        assert_eq!(feasible(&s), direct_feas);
        assert_eq!(
            try_project(&s, &["j", "n"], &budget),
            Ok(direct_proj.clone())
        );
        assert_eq!(try_project(&s, &["j", "n"], &budget), Ok(direct_proj));

        let st = stats();
        assert!(st.feasibility_hits >= 1);
        assert!(st.projection_hits >= 1);
    }

    #[test]
    fn unknown_results_are_keyed_per_budget_and_do_not_poison() {
        // A system whose splinter fan-out exhausts a tiny budget but
        // resolves instantly under the default one.
        let mut s = System::new();
        s.add(Constraint::ge(
            v("x") * 6,
            v("y") * 4 + LinExpr::constant(1),
        ));
        s.add(Constraint::le(
            v("x") * 6,
            v("y") * 4 + LinExpr::constant(2),
        ));
        s.add(Constraint::ge(v("y"), LinExpr::constant(0)));
        s.add(Constraint::le(v("y"), LinExpr::constant(1_000)));
        let tiny = Budget {
            max_depth: 1,
            ..Budget::default()
        };
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear_cache();
        let before = stats().unknown_verdicts;
        let first = try_feasible(&s, &tiny);
        if first.is_err() {
            // replayed from the Unknown map: same error, counted again
            assert_eq!(try_feasible(&s, &tiny), first);
            assert!(stats().unknown_verdicts >= before + 2);
        }
        // the default budget must not see the tiny budget's failure
        assert_eq!(try_feasible(&s, &Budget::default()), Ok(true));
    }

    #[test]
    fn disabling_bypasses_but_stays_correct() {
        let mut s = System::new();
        s.add(Constraint::eq(v("x") * 2, LinExpr::constant(3)));
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let was = set_cache_enabled(false);
        assert!(!feasible(&s));
        set_cache_enabled(was);
        assert!(!feasible(&s));
    }

    fn tmp_store(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("shackle_poly_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn store_round_trip_replays_saved_entries_byte_exactly() {
        let mut s = System::new();
        s.add(Constraint::ge(v("i"), LinExpr::constant(0)));
        s.add(Constraint::le(v("i"), v("n")));
        s.add(Constraint::le(v("j"), v("i")));
        let budget = Budget::default();

        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear_cache();
        let feas = try_feasible(&s, &budget).unwrap();
        let proj = try_project(&s, &["i", "n"], &budget).unwrap();
        let g = gist(&s, &System::new());

        let path = tmp_store("round_trip.bin");
        let bytes = save_to(&path).unwrap();
        assert!(bytes > 5, "store must hold more than the header");

        // A fresh process: nothing resident, then reload from disk.
        clear_cache();
        assert_eq!(entry_count(), 0);
        let loaded = load_from(&path).unwrap();
        assert!(
            loaded >= 3,
            "expected all proven entries back, got {loaded}"
        );

        // Replays must be cache hits returning byte-identical values.
        let h0 = stats();
        assert_eq!(try_feasible(&s, &budget), Ok(feas));
        assert_eq!(try_project(&s, &["i", "n"], &budget), Ok(proj));
        assert_eq!(gist(&s, &System::new()), g);
        let h1 = stats();
        assert!(h1.feasibility_hits > h0.feasibility_hits);
        assert!(h1.projection_hits > h0.projection_hits);
        assert!(h1.gist_hits > h0.gist_hits);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_malformed_stores() {
        let garbage = tmp_store("garbage.bin");
        std::fs::write(&garbage, b"not a store").unwrap();
        let err = load_from(&garbage).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Truncating a valid store mid-entry must error, not panic.
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut s = System::new();
        s.add(Constraint::ge(v("x"), LinExpr::constant(1)));
        let _ = try_project(&s, &["x"], &Budget::default());
        let full = serialize_store();
        let cut = tmp_store("truncated.bin");
        std::fs::write(&cut, &full[..full.len() - 1]).unwrap();
        if full.len() > 6 {
            let err = load_from(&cut).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        }
        std::fs::remove_file(&garbage).ok();
        std::fs::remove_file(&cut).ok();
    }

    #[test]
    fn capacity_bound_evicts_oldest_entries() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear_cache();
        // Shard capacity of 2 (tiny, deterministic): 200 distinct
        // systems cannot all stay resident.
        let was = set_cache_capacity(2 * SHARDS);
        let evicted0 = stats().evictions;
        for i in 0..200 {
            let mut s = System::new();
            s.add(Constraint::ge(v("x"), LinExpr::constant(i)));
            s.add(Constraint::le(v("x"), LinExpr::constant(i + 10)));
            let _ = try_feasible(&s, &Budget::default());
        }
        let resident = count_shards(&FEASIBILITY);
        assert!(
            resident <= 2 * SHARDS,
            "feasibility map exceeded its bound: {resident} entries"
        );
        assert!(stats().evictions > evicted0, "evictions must be counted");
        set_cache_capacity(was);
        clear_cache();
    }
}
