//! Memoized polyhedral queries: a thread-safe cache for Omega
//! feasibility verdicts and Fourier–Motzkin projections, plus the
//! [`PolyStats`] instrumentation counters.
//!
//! The compile-time pipeline (dependence analysis, Theorem-1 legality,
//! Quilleré-style scanning) asks the same polyhedral questions over and
//! over: every candidate shackle of the §8 search re-probes dependences
//! that differ only in which disjunct of a lexicographic order is
//! conjoined, and the scanner re-projects identical piece domains for
//! every sibling loop nest. Both query families are *pure functions* of
//! the constraint system, so the answers are memoized here behind the
//! [`crate::System::is_integer_feasible`] and
//! [`crate::System::project_onto`] entry points.
//!
//! # Keys
//!
//! * **Feasibility** is invariant under variable renaming and under the
//!   order in which constraints were added, so its key is a *canonical
//!   form*: the used variables are sorted by name, the (already
//!   GCD-tightened) rows are permuted onto that order and sorted, and
//!   the variable names themselves are dropped. Systems that differ
//!   only by an order-preserving renaming or by constraint insertion
//!   order (the common case for flow/anti/output dependences over the
//!   same reference pair) therefore share one cache entry.
//! * **Projection** returns a `System` whose textual variable order
//!   feeds directly into generated code, so its key preserves the
//!   insertion order of variables and rows exactly; only the `keep`
//!   set is sorted (the computation never depends on `keep` order).
//!   A hit returns byte-for-byte the system a fresh computation would
//!   produce, which keeps codegen deterministic whether or not the
//!   cache is enabled — and at any thread count.
//!
//! Shard locks are never held while a query runs: recursive queries
//! (projection exactness checks re-enter the feasibility test) would
//! otherwise deadlock. Two threads may race to compute the same entry;
//! both compute the same pure value, so the duplicate insert is benign.

use crate::error::{Budget, PolyError};
use crate::{fm, omega, Rel, System};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex};

/// Number of independent lock shards per cache; a small power of two so
/// the hash → shard map is a mask.
const SHARDS: usize = 16;

/// FNV-1a as a `HashMap` hasher: keys are already high-entropy
/// serialized systems, so SipHash's DoS resistance buys nothing here
/// and its per-byte cost is pure overhead on kilobyte-sized keys.
#[derive(Clone, Default)]
struct FnvBuild;

struct FnvHasher(u64);

impl BuildHasher for FnvBuild {
    type Hasher = FnvHasher;
    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

type Shard<V> = Mutex<HashMap<Vec<u8>, V, FnvBuild>>;

static FEASIBILITY: LazyLock<Vec<Shard<bool>>> = LazyLock::new(new_shards);
static PROJECTION: LazyLock<Vec<Shard<(System, bool)>>> = LazyLock::new(new_shards);
static GIST: LazyLock<Vec<Shard<System>>> = LazyLock::new(new_shards);
/// `Unknown` outcomes live in their own map, keyed by a query tag, the
/// budget fingerprint, *and* the exact query key: a verdict that merely
/// reflects resource exhaustion must never be replayed for a different
/// budget (that would "poison" stricter or looser queries), while the
/// proven caches above stay budget-independent.
static UNKNOWN: LazyLock<Vec<Shard<PolyError>>> = LazyLock::new(new_shards);

fn new_shards<V>() -> Vec<Shard<V>> {
    (0..SHARDS)
        .map(|_| Mutex::new(HashMap::default()))
        .collect()
}

static ENABLED: AtomicBool = AtomicBool::new(true);

static FEAS_QUERIES: AtomicU64 = AtomicU64::new(0);
static FEAS_HITS: AtomicU64 = AtomicU64::new(0);
static PROJ_QUERIES: AtomicU64 = AtomicU64::new(0);
static PROJ_HITS: AtomicU64 = AtomicU64::new(0);
static GIST_QUERIES: AtomicU64 = AtomicU64::new(0);
static GIST_HITS: AtomicU64 = AtomicU64::new(0);
static SPLINTERS: AtomicU64 = AtomicU64::new(0);
static DARK_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static FM_COMBINED: AtomicU64 = AtomicU64::new(0);
static FM_PRUNED: AtomicU64 = AtomicU64::new(0);
static UNKNOWN_VERDICTS: AtomicU64 = AtomicU64::new(0);

/// Counters describing the polyhedral work done since the last
/// [`reset_stats`].
///
/// All counters are global (process-wide) and updated with relaxed
/// atomics, so they are cheap enough to leave on permanently and are
/// meaningful across worker threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PolyStats {
    /// Non-trivial Omega feasibility queries through the cached entry
    /// point (trivially contradictory / empty systems are answered
    /// before counting).
    pub feasibility_queries: u64,
    /// Feasibility queries answered from the cache.
    pub feasibility_hits: u64,
    /// `project_onto` queries through the cached entry point.
    pub projection_queries: u64,
    /// Projection queries answered from the cache.
    pub projection_hits: u64,
    /// `gist` simplification queries through the cached entry point.
    pub gist_queries: u64,
    /// Gist queries answered from the cache.
    pub gist_hits: u64,
    /// Splinter subproblems explored by the Omega test (each one is a
    /// full recursive solve).
    pub splinters: u64,
    /// Eliminations where the dark shadow had to be computed because
    /// the real shadow was not provably exact.
    pub dark_shadow_fallbacks: u64,
    /// Lower×upper row pairs combined by Fourier–Motzkin elimination.
    pub fm_rows_combined: u64,
    /// Rows discarded (or tightened in place) by dominance pruning in
    /// `System::push_row` instead of being kept as redundant rows.
    pub fm_rows_pruned: u64,
    /// Queries that ended `Unknown`: the budget ran out (or arithmetic
    /// overflowed `i64` even after `i128` promotion) before a proof.
    /// Consumers degrade conservatively; a healthy pipeline run keeps
    /// this at zero.
    pub unknown_verdicts: u64,
}

impl PolyStats {
    /// Fraction of feasibility queries served from the cache, in
    /// `[0, 1]`; `0` when no queries ran.
    pub fn feasibility_hit_rate(&self) -> f64 {
        if self.feasibility_queries == 0 {
            0.0
        } else {
            self.feasibility_hits as f64 / self.feasibility_queries as f64
        }
    }

    /// Fraction of projection queries served from the cache, in
    /// `[0, 1]`; `0` when no queries ran.
    pub fn projection_hit_rate(&self) -> f64 {
        if self.projection_queries == 0 {
            0.0
        } else {
            self.projection_hits as f64 / self.projection_queries as f64
        }
    }

    /// Fraction of gist queries served from the cache, in `[0, 1]`;
    /// `0` when no queries ran.
    pub fn gist_hit_rate(&self) -> f64 {
        if self.gist_queries == 0 {
            0.0
        } else {
            self.gist_hits as f64 / self.gist_queries as f64
        }
    }
}

/// Snapshot the global counters.
pub fn stats() -> PolyStats {
    PolyStats {
        feasibility_queries: FEAS_QUERIES.load(Ordering::Relaxed),
        feasibility_hits: FEAS_HITS.load(Ordering::Relaxed),
        projection_queries: PROJ_QUERIES.load(Ordering::Relaxed),
        projection_hits: PROJ_HITS.load(Ordering::Relaxed),
        gist_queries: GIST_QUERIES.load(Ordering::Relaxed),
        gist_hits: GIST_HITS.load(Ordering::Relaxed),
        splinters: SPLINTERS.load(Ordering::Relaxed),
        dark_shadow_fallbacks: DARK_FALLBACKS.load(Ordering::Relaxed),
        fm_rows_combined: FM_COMBINED.load(Ordering::Relaxed),
        fm_rows_pruned: FM_PRUNED.load(Ordering::Relaxed),
        unknown_verdicts: UNKNOWN_VERDICTS.load(Ordering::Relaxed),
    }
}

/// Fold the current [`PolyStats`] snapshot into the probe counters
/// (`poly.feasibility_queries`, `poly.feasibility_hits`,
/// `poly.projection_queries`, `poly.projection_hits`,
/// `poly.gist_queries`, `poly.gist_hits`, `poly.splinters`,
/// `poly.dark_shadow_fallbacks`, `poly.fm_rows_combined`,
/// `poly.fm_rows_pruned`, `poly.unknown`).
///
/// The counters are *set* (not added), so repeated publishes are
/// idempotent: each probe counter mirrors the cumulative PolyStats
/// value since the last [`reset_stats`]. No-op when instrumentation is
/// disabled.
pub fn publish_stats() {
    if !shackle_probe::enabled() {
        return;
    }
    let s = stats();
    for (name, v) in [
        ("poly.feasibility_queries", s.feasibility_queries),
        ("poly.feasibility_hits", s.feasibility_hits),
        ("poly.projection_queries", s.projection_queries),
        ("poly.projection_hits", s.projection_hits),
        ("poly.gist_queries", s.gist_queries),
        ("poly.gist_hits", s.gist_hits),
        ("poly.splinters", s.splinters),
        ("poly.dark_shadow_fallbacks", s.dark_shadow_fallbacks),
        ("poly.fm_rows_combined", s.fm_rows_combined),
        ("poly.fm_rows_pruned", s.fm_rows_pruned),
        ("poly.unknown", s.unknown_verdicts),
    ] {
        shackle_probe::counter(name).set(v);
    }
}

/// Zero all counters (the caches are left intact; see [`clear_cache`]).
pub fn reset_stats() {
    for c in [
        &FEAS_QUERIES,
        &FEAS_HITS,
        &PROJ_QUERIES,
        &PROJ_HITS,
        &GIST_QUERIES,
        &GIST_HITS,
        &SPLINTERS,
        &DARK_FALLBACKS,
        &FM_COMBINED,
        &FM_PRUNED,
        &UNKNOWN_VERDICTS,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

/// Enable or disable memoization (it is on by default). Disabling does
/// not clear existing entries; re-enabling reuses them. Returns the
/// previous setting.
pub fn set_cache_enabled(on: bool) -> bool {
    ENABLED.swap(on, Ordering::SeqCst)
}

/// Is memoization currently enabled?
pub fn cache_enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Drop every cached verdict and projection (counters are untouched;
/// see [`reset_stats`]).
pub fn clear_cache() {
    for shard in FEASIBILITY.iter() {
        shard.lock().expect("cache shard poisoned").clear();
    }
    for shard in PROJECTION.iter() {
        shard.lock().expect("cache shard poisoned").clear();
    }
    for shard in GIST.iter() {
        shard.lock().expect("cache shard poisoned").clear();
    }
    for shard in UNKNOWN.iter() {
        shard.lock().expect("cache shard poisoned").clear();
    }
}

pub(crate) fn note_splinter() {
    SPLINTERS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_dark_fallback() {
    DARK_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_fm_combined(n: u64) {
    FM_COMBINED.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn note_fm_pruned(n: u64) {
    FM_PRUNED.fetch_add(n, Ordering::Relaxed);
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn shard_of(key: &[u8]) -> usize {
    (fnv(key) as usize) & (SHARDS - 1)
}

fn lookup<V: Clone>(shards: &[Shard<V>], key: &[u8]) -> Option<V> {
    let shard = &shards[shard_of(key)];
    shard
        .lock()
        .expect("cache shard poisoned")
        .get(key)
        .cloned()
}

fn insert<V>(shards: &[Shard<V>], key: Vec<u8>, value: V) {
    let idx = shard_of(&key);
    shards[idx]
        .lock()
        .expect("cache shard poisoned")
        .insert(key, value);
}

/// Zig-zag LEB128: one byte for the small coefficients that dominate
/// shackling systems, so keys stay short (faster to hash and compare).
fn push_i64(out: &mut Vec<u8>, v: i64) {
    let mut z = ((v << 1) ^ (v >> 63)) as u64;
    loop {
        let b = (z & 0x7f) as u8;
        z >>= 7;
        if z == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

/// Canonical, name-free key for feasibility: used columns sorted by
/// variable name, rows permuted onto that order and sorted.
fn feasibility_key(sys: &System) -> Vec<u8> {
    let vars = sys.vars();
    let mut used: Vec<usize> = (0..vars.len())
        .filter(|&i| sys.rows().iter().any(|r| r.coeffs[i] != 0))
        .collect();
    used.sort_by(|&a, &b| vars[a].cmp(&vars[b]));

    let rows = sys.rows();
    let rel_of = |i: usize| match rows[i].rel {
        Rel::Eq => 0u8,
        Rel::Geq => 1u8,
    };
    // Sort row *indices* with a comparator reading straight out of the
    // dense rows — same order as sorting materialized
    // `(rel, permuted coeffs, constant)` tuples, without the per-row
    // allocations.
    let mut idx: Vec<usize> = (0..rows.len()).collect();
    idx.sort_unstable_by(|&a, &b| {
        rel_of(a)
            .cmp(&rel_of(b))
            .then_with(|| {
                used.iter()
                    .map(|&i| rows[a].coeffs[i])
                    .cmp(used.iter().map(|&i| rows[b].coeffs[i]))
            })
            .then_with(|| rows[a].constant.cmp(&rows[b].constant))
    });

    let mut key = Vec::with_capacity(17 + rows.len() * (used.len() + 2) * 8);
    // Flag byte first: a contradiction-flagged system is empty whatever
    // its rows say, so it must never collide with a live system.
    key.push(sys.is_contradictory() as u8);
    push_i64(&mut key, used.len() as i64);
    for i in idx {
        key.push(rel_of(i));
        push_i64(&mut key, rows[i].constant);
        for &u in &used {
            push_i64(&mut key, rows[i].coeffs[u]);
        }
    }
    key
}

/// Append the system's variables and rows in insertion order — the
/// exact-input serialization shared by the projection and gist keys.
fn push_system(key: &mut Vec<u8>, sys: &System) {
    // The contradiction flag is part of the system's identity: a
    // flagged system is empty regardless of its rows, so it must never
    // share a key with a live system that happens to have equal rows.
    key.push(sys.is_contradictory() as u8);
    push_i64(key, sys.vars().len() as i64);
    for v in sys.vars() {
        push_i64(key, v.len() as i64);
        key.extend_from_slice(v.as_bytes());
    }
    push_i64(key, sys.rows().len() as i64);
    for r in sys.rows() {
        key.push(match r.rel {
            Rel::Eq => 0u8,
            Rel::Geq => 1u8,
        });
        push_i64(key, r.constant);
        for &c in &r.coeffs {
            push_i64(key, c);
        }
    }
}

/// Exact-input key for projection: the system's variables and rows in
/// insertion order plus the sorted `keep` set. Two systems with equal
/// keys are indistinguishable to `fm::project_onto`, so the cached
/// result is byte-identical to a fresh computation.
fn projection_key(sys: &System, keep: &[&str]) -> Vec<u8> {
    let mut key = Vec::new();
    push_system(&mut key, sys);
    let mut keep: Vec<&str> = keep.to_vec();
    keep.sort_unstable();
    keep.dedup();
    push_i64(&mut key, keep.len() as i64);
    for k in keep {
        push_i64(&mut key, k.len() as i64);
        key.extend_from_slice(k.as_bytes());
    }
    key
}

/// Exact-input key for gist: both operands serialized in insertion
/// order. As with projection, equal keys mean `simplify::gist` cannot
/// distinguish the inputs, so the cached system is byte-identical to a
/// fresh computation.
fn gist_key(sys: &System, context: &System) -> Vec<u8> {
    let mut key = Vec::new();
    push_system(&mut key, sys);
    push_system(&mut key, context);
    key
}

/// Recursive-subproblem memoization for the Omega test: `Ok(verdict)`
/// on a hit, `Err(key)` on a miss (store the computed verdict with
/// [`sub_store`]). Shares the feasibility cache and counters, so the
/// reported hit rate covers subproblems too.
pub(crate) fn sub_lookup(sys: &System) -> Result<bool, Vec<u8>> {
    FEAS_QUERIES.fetch_add(1, Ordering::Relaxed);
    let key = feasibility_key(sys);
    match lookup(&FEASIBILITY, &key) {
        Some(v) => {
            FEAS_HITS.fetch_add(1, Ordering::Relaxed);
            Ok(v)
        }
        None => Err(key),
    }
}

/// Store a subproblem verdict computed after a [`sub_lookup`] miss.
pub(crate) fn sub_store(key: Vec<u8>, v: bool) {
    insert(&FEASIBILITY, key, v);
}

/// Tags separating query families inside the [`UNKNOWN`] map.
const UNKNOWN_FEAS: u8 = 0;
const UNKNOWN_PROJ: u8 = 1;

/// Key for an `Unknown` outcome: query tag, budget fingerprint, then
/// the exact query key.
fn unknown_key(tag: u8, budget: &Budget, query_key: &[u8]) -> Vec<u8> {
    let mut key = Vec::with_capacity(9 + query_key.len());
    key.push(tag);
    key.extend_from_slice(&budget.fingerprint().to_le_bytes());
    key.extend_from_slice(query_key);
    key
}

fn note_unknown(e: PolyError) -> PolyError {
    UNKNOWN_VERDICTS.fetch_add(1, Ordering::Relaxed);
    e
}

/// Cached Omega feasibility (the implementation behind
/// [`crate::System::is_integer_feasible`], [`crate::System::decide`]
/// and [`crate::System::try_is_integer_feasible`]).
///
/// Proven answers are memoized on the canonical system key alone (they
/// are budget-independent); `Err` outcomes are memoized per
/// `(budget, system)` in the separate [`UNKNOWN`] map so they can never
/// poison a query with a different budget. Every `Err` returned —
/// computed or replayed — counts into `poly.unknown`.
pub(crate) fn try_feasible(sys: &System, budget: &Budget) -> Result<bool, PolyError> {
    if sys.is_contradictory() {
        return Ok(false);
    }
    if sys.rows().is_empty() {
        return Ok(true);
    }
    FEAS_QUERIES.fetch_add(1, Ordering::Relaxed);
    if !cache_enabled() {
        let _phase = shackle_probe::span("omega");
        return omega::try_is_integer_feasible(sys, budget).map_err(note_unknown);
    }
    let key = feasibility_key(sys);
    if let Some(v) = lookup(&FEASIBILITY, &key) {
        FEAS_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(v);
    }
    let ukey = unknown_key(UNKNOWN_FEAS, budget, &key);
    if let Some(e) = lookup(&UNKNOWN, &ukey) {
        FEAS_HITS.fetch_add(1, Ordering::Relaxed);
        return Err(note_unknown(e));
    }
    let _phase = shackle_probe::span("omega");
    match omega::try_is_integer_feasible(sys, budget) {
        Ok(v) => {
            insert(&FEASIBILITY, key, v);
            Ok(v)
        }
        Err(e) => {
            insert(&UNKNOWN, ukey, e);
            Err(note_unknown(e))
        }
    }
}

/// Cached Omega feasibility under the default budget, panicking on
/// `Unknown` (legacy entry point; see [`try_feasible`]).
#[cfg(test)]
pub(crate) fn feasible(sys: &System) -> bool {
    try_feasible(sys, &Budget::default()).unwrap_or_else(|e| panic!("cache::feasible: {e}"))
}

/// Cached projection (the implementation behind
/// [`crate::System::project_onto`] and
/// [`crate::System::try_project_onto`]).
///
/// The projection result (its exactness flag in particular) can depend
/// on the budget through conservative degradation, so the proven cache
/// key includes the budget fingerprint; `Err` outcomes go to the
/// [`UNKNOWN`] map like feasibility.
pub(crate) fn try_project(
    sys: &System,
    keep: &[&str],
    budget: &Budget,
) -> Result<(System, bool), PolyError> {
    PROJ_QUERIES.fetch_add(1, Ordering::Relaxed);
    if !cache_enabled() {
        let _phase = shackle_probe::span("fm");
        return fm::try_project_onto(sys, keep, budget).map_err(note_unknown);
    }
    let mut key = projection_key(sys, keep);
    key.extend_from_slice(&budget.fingerprint().to_le_bytes());
    if let Some(v) = lookup(&PROJECTION, &key) {
        PROJ_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(v);
    }
    let ukey = unknown_key(UNKNOWN_PROJ, budget, &key);
    if let Some(e) = lookup(&UNKNOWN, &ukey) {
        PROJ_HITS.fetch_add(1, Ordering::Relaxed);
        return Err(note_unknown(e));
    }
    let _phase = shackle_probe::span("fm");
    match fm::try_project_onto(sys, keep, budget) {
        Ok(v) => {
            insert(&PROJECTION, key, v.clone());
            Ok(v)
        }
        Err(e) => {
            insert(&UNKNOWN, ukey, e);
            Err(note_unknown(e))
        }
    }
}

/// Cached gist (the implementation behind [`crate::System::gist`]).
/// One hit replaces a per-constraint cascade of implication checks —
/// each itself a feasibility query — which makes this the highest-
/// leverage entry of the three for the code generator.
pub(crate) fn gist(sys: &System, context: &System) -> System {
    GIST_QUERIES.fetch_add(1, Ordering::Relaxed);
    if !cache_enabled() {
        let _phase = shackle_probe::span("gist");
        return crate::simplify::gist(sys, context);
    }
    let key = gist_key(sys, context);
    if let Some(v) = lookup(&GIST, &key) {
        GIST_HITS.fetch_add(1, Ordering::Relaxed);
        return v;
    }
    let _phase = shackle_probe::span("gist");
    let v = crate::simplify::gist(sys, context);
    insert(&GIST, key, v.clone());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constraint, LinExpr};

    fn v(n: &str) -> LinExpr {
        LinExpr::var(n)
    }

    /// Tests that toggle the global enable flag or read hit counters
    /// must not interleave (the test harness is multi-threaded).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn feasibility_key_ignores_names_and_row_order() {
        let mut a = System::new();
        a.add(Constraint::ge(v("x"), LinExpr::constant(1)));
        a.add(Constraint::le(v("x"), v("n")));
        // same shape, renamed (preserving relative name order: n < x,
        // m < z), added in a different order
        let mut b = System::new();
        b.add(Constraint::le(v("z"), v("m")));
        b.add(Constraint::ge(v("z"), LinExpr::constant(1)));
        assert_eq!(feasibility_key(&a), feasibility_key(&b));
    }

    #[test]
    fn feasibility_key_separates_different_systems() {
        let mut a = System::new();
        a.add(Constraint::ge(v("x"), LinExpr::constant(1)));
        let mut b = System::new();
        b.add(Constraint::ge(v("x"), LinExpr::constant(2)));
        assert_ne!(feasibility_key(&a), feasibility_key(&b));
    }

    #[test]
    fn projection_key_distinguishes_keep_sets() {
        let mut s = System::new();
        s.add(Constraint::le(v("i"), v("n")));
        s.add(Constraint::le(v("j"), v("i")));
        let a = projection_key(&s, &["n"]);
        let b = projection_key(&s, &["n", "j"]);
        assert_ne!(a, b);
        // keep order and duplicates do not matter
        assert_eq!(
            projection_key(&s, &["j", "n"]),
            projection_key(&s, &["n", "j", "j"])
        );
    }

    #[test]
    fn contradiction_flag_is_part_of_every_key() {
        // Regression: a contradiction-flagged system with the same rows
        // as a live one used to share its projection/gist key, so each
        // could replay the other's cached result (found by the fuzz
        // oracle: `{ false }` projecting to a live interval and vice
        // versa).
        let live = {
            let mut s = System::new();
            s.add(Constraint::ge(v("x"), LinExpr::constant(2)));
            s.add(Constraint::le(v("x"), LinExpr::constant(5)));
            s
        };
        let mut flagged = live.clone();
        flagged.add(Constraint::geq_zero(LinExpr::constant(-1)));
        assert!(flagged.is_contradictory());
        // the trivially-false row is absorbed into the flag, leaving
        // identical rows — only the flag distinguishes the two systems
        assert_eq!(live.rows().len(), flagged.rows().len());
        assert_ne!(feasibility_key(&live), feasibility_key(&flagged));
        assert_ne!(
            projection_key(&live, &["x"]),
            projection_key(&flagged, &["x"])
        );
        // end-to-end through the cache: both directions stay sound
        clear_cache();
        let (p_live, _) = try_project(&live, &["x"], &Budget::default()).unwrap();
        let (p_flagged, _) = try_project(&flagged, &["x"], &Budget::default()).unwrap();
        assert!(!p_live.is_contradictory());
        assert!(p_flagged.is_contradictory());
    }

    #[test]
    fn cached_results_match_direct_computation() {
        let mut s = System::new();
        s.add(Constraint::ge(v("j"), v("b") * 25 - LinExpr::constant(24)));
        s.add(Constraint::le(v("j"), v("b") * 25));
        s.add(Constraint::ge(v("j"), LinExpr::constant(1)));
        s.add(Constraint::le(v("j"), v("n")));

        let direct_feas = omega::is_integer_feasible(&s);
        let direct_proj = fm::project_onto(&s, &["j", "n"]);
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear_cache();
        // miss then hit: both must equal the direct computation
        let budget = Budget::default();
        assert_eq!(feasible(&s), direct_feas);
        assert_eq!(feasible(&s), direct_feas);
        assert_eq!(
            try_project(&s, &["j", "n"], &budget),
            Ok(direct_proj.clone())
        );
        assert_eq!(try_project(&s, &["j", "n"], &budget), Ok(direct_proj));

        let st = stats();
        assert!(st.feasibility_hits >= 1);
        assert!(st.projection_hits >= 1);
    }

    #[test]
    fn unknown_results_are_keyed_per_budget_and_do_not_poison() {
        // A system whose splinter fan-out exhausts a tiny budget but
        // resolves instantly under the default one.
        let mut s = System::new();
        s.add(Constraint::ge(
            v("x") * 6,
            v("y") * 4 + LinExpr::constant(1),
        ));
        s.add(Constraint::le(
            v("x") * 6,
            v("y") * 4 + LinExpr::constant(2),
        ));
        s.add(Constraint::ge(v("y"), LinExpr::constant(0)));
        s.add(Constraint::le(v("y"), LinExpr::constant(1_000)));
        let tiny = Budget {
            max_depth: 1,
            ..Budget::default()
        };
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear_cache();
        let before = stats().unknown_verdicts;
        let first = try_feasible(&s, &tiny);
        if first.is_err() {
            // replayed from the Unknown map: same error, counted again
            assert_eq!(try_feasible(&s, &tiny), first);
            assert!(stats().unknown_verdicts >= before + 2);
        }
        // the default budget must not see the tiny budget's failure
        assert_eq!(try_feasible(&s, &Budget::default()), Ok(true));
    }

    #[test]
    fn disabling_bypasses_but_stays_correct() {
        let mut s = System::new();
        s.add(Constraint::eq(v("x") * 2, LinExpr::constant(3)));
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let was = set_cache_enabled(false);
        assert!(!feasible(&s));
        set_cache_enabled(was);
        assert!(!feasible(&s));
    }
}
