//! Thread-local scratch pool for hot-path intermediates.
//!
//! FM elimination classifies every row and projection enumerates
//! candidate columns on every call; at search depth that is thousands
//! of small, short-lived `Vec`s per polyhedral query. The pool hands
//! out cleared index buffers that are returned on drop and reused per
//! thread, so the steady state allocates nothing.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Buffers kept per thread; anything beyond this is simply freed.
const MAX_POOLED: usize = 32;

thread_local! {
    static POOL: RefCell<Vec<Vec<u32>>> = const { RefCell::new(Vec::new()) };
}

/// A pooled `Vec<u32>`: handed out empty, returned to the thread's pool
/// on drop.
pub(crate) struct IdxVec(Vec<u32>);

/// Borrow a cleared index buffer from the thread-local pool.
pub(crate) fn idx_vec() -> IdxVec {
    IdxVec(POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default())
}

impl Drop for IdxVec {
    fn drop(&mut self) {
        let mut v = std::mem::take(&mut self.0);
        v.clear();
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(v);
            }
        });
    }
}

impl Deref for IdxVec {
    type Target = Vec<u32>;
    fn deref(&self) -> &Vec<u32> {
        &self.0
    }
}

impl DerefMut for IdxVec {
    fn deref_mut(&mut self) -> &mut Vec<u32> {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_and_cleared() {
        let cap_after_use;
        {
            let mut v = idx_vec();
            v.extend(0..100);
            cap_after_use = v.capacity();
        }
        let v2 = idx_vec();
        assert!(v2.is_empty(), "pooled buffer must come back cleared");
        assert_eq!(
            v2.capacity(),
            cap_after_use,
            "pooled buffer must keep its allocation"
        );
    }

    #[test]
    fn pool_is_bounded() {
        let many: Vec<IdxVec> = (0..2 * MAX_POOLED).map(|_| idx_vec()).collect();
        drop(many);
        POOL.with(|p| assert!(p.borrow().len() <= MAX_POOLED));
    }
}
