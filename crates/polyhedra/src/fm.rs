//! Fourier–Motzkin variable elimination on integer constraint systems.
//!
//! Elimination here always works over the *integers*: combined rows are
//! GCD-tightened, and the caller can request either the **real shadow**
//! (ordinary FM projection, an over-approximation of the integer
//! projection) or the **dark shadow** (Pugh's under-approximation, whose
//! integer points are guaranteed to lift to integer points of the
//! original system).
//!
//! FM coefficient growth is exponential in elimination depth, so every
//! combination step is fallible: pairs are combined in `i64` on the hot
//! path and **retried exactly in `i128`** (GCD-reduced before
//! narrowing) on overflow; only rows whose reduced form truly exceeds
//! `i64` — or a [`Budget`] limit — surface a [`PolyError`].

use crate::error::{Budget, PolyError, Resource};
use crate::num::combine_i128;
use crate::system::{narrow_row, NarrowedRow, Row};
use crate::{Rel, System, Verdict};

/// Which shadow to compute when eliminating a variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shadow {
    /// Ordinary Fourier–Motzkin projection: contains every point whose
    /// fiber is non-empty over the rationals (⊇ integer projection).
    Real,
    /// Pugh's dark shadow: every integer point lifts to an integer point
    /// of the original system (⊆ integer projection).
    Dark,
}

/// True if eliminating `idx` is *exact*: the real shadow equals the
/// integer projection. This holds when every lower-bound coefficient or
/// every upper-bound coefficient of the variable is 1 (and the variable
/// appears in no equality).
pub(crate) fn elimination_exact(sys: &System, idx: usize) -> bool {
    let mut all_lower_unit = true;
    let mut all_upper_unit = true;
    for r in sys.rows() {
        let c = r.coeffs[idx];
        if c == 0 {
            continue;
        }
        if r.rel == Rel::Eq {
            return c.abs() == 1;
        }
        if c > 0 {
            all_lower_unit &= c == 1;
        } else {
            all_upper_unit &= c == -1;
        }
    }
    all_lower_unit || all_upper_unit
}

/// Classify the bounds on variable `idx`: (has lower, has upper),
/// counting equalities as both.
pub(crate) fn bound_profile(sys: &System, idx: usize) -> (usize, usize) {
    let mut lo = 0;
    let mut hi = 0;
    for r in sys.rows() {
        let c = r.coeffs[idx];
        if c == 0 {
            continue;
        }
        match r.rel {
            Rel::Eq => {
                lo += 1;
                hi += 1;
            }
            Rel::Geq => {
                if c > 0 {
                    lo += 1;
                } else {
                    hi += 1;
                }
            }
        }
    }
    (lo, hi)
}

/// Eliminate variable `idx` from the system, producing a system over the
/// remaining variables.
///
/// Equalities involving the variable are first split into opposite
/// inequalities (exact elimination of equalities is the Omega test's job;
/// this function is the raw FM kernel).
pub(crate) fn eliminate(
    sys: &System,
    idx: usize,
    shadow: Shadow,
    budget: &Budget,
) -> Result<System, PolyError> {
    Ok(eliminate_tracked(sys, idx, shadow, budget)?.0)
}

/// Negate a row in place, failing cleanly on `i64::MIN`.
fn negate_row(row: &mut Row) -> Result<(), PolyError> {
    const CTX: PolyError = PolyError::Overflow {
        context: "row negation",
    };
    for k in &mut row.coeffs {
        *k = k.checked_neg().ok_or(CTX)?;
    }
    row.constant = row.constant.checked_neg().ok_or(CTX)?;
    Ok(())
}

/// Combine a lower/upper pair entirely in `i64`; `None` means some step
/// overflowed and the caller must retry in `i128`.
fn combine_pair_fast(lo: &Row, up: &Row, a: i64, b: i64, dark: bool) -> Option<Row> {
    let mut coeffs = Vec::with_capacity(lo.coeffs.len());
    for (&l, &u) in lo.coeffs.iter().zip(&up.coeffs) {
        let v = b
            .checked_mul(l)
            .and_then(|x| a.checked_mul(u).and_then(|y| x.checked_add(y)))?;
        coeffs.push(v);
    }
    let mut constant = b
        .checked_mul(lo.constant)
        .and_then(|x| a.checked_mul(up.constant).and_then(|y| x.checked_add(y)))?;
    if dark {
        // dark shadow: combined >= (a-1)(b-1)
        let correction = (a - 1).checked_mul(b - 1)?;
        constant = constant.checked_sub(correction)?;
    }
    Some(Row {
        coeffs,
        constant,
        rel: Rel::Geq,
    })
}

/// The `i128` retry: exact combination, GCD reduction, then narrowing.
fn combine_pair_promoted(
    lo: &Row,
    up: &Row,
    a: i64,
    b: i64,
    dark: bool,
    max_coeff: i64,
) -> Result<NarrowedRow, PolyError> {
    let coeffs: Vec<i128> = lo
        .coeffs
        .iter()
        .zip(&up.coeffs)
        .map(|(&l, &u)| combine_i128(b, l, a, u))
        .collect();
    let mut constant = combine_i128(b, lo.constant, a, up.constant);
    if dark {
        constant -= (a as i128 - 1) * (b as i128 - 1);
    }
    narrow_row(&coeffs, constant, Rel::Geq, max_coeff)
}

/// [`eliminate`], additionally reporting *pairwise exactness*: `true`
/// when every combined lower/upper pair had a zero dark-shadow
/// correction `(a-1)(b-1)`, in which case the real and dark shadows
/// coincide and the real shadow is exactly the integer projection. This
/// generalizes the syntactic [`elimination_exact`] test (all-unit lower
/// *or* upper coefficients) to mixed rows where each *pair* contains a
/// unit, letting the Omega test and `project_onto` skip the dark
/// shadow / splinter machinery.
pub(crate) fn eliminate_tracked(
    sys: &System,
    idx: usize,
    shadow: Shadow,
    budget: &Budget,
) -> Result<(System, bool), PolyError> {
    // Equality rows are split into a Geq pair; everything else is
    // partitioned *by index* into pooled scratch buffers (indices below
    // `nrows` name system rows, indices at or above it name splits), so
    // the (hot) all-inequality case clones a row only when it actually
    // enters the output and allocates nothing in steady state.
    let mut splits: Vec<Row> = Vec::new();
    for r in sys.rows() {
        if r.rel == Rel::Eq && r.coeffs[idx] != 0 {
            let mut pos = r.clone();
            pos.rel = Rel::Geq;
            let mut neg = pos.clone();
            negate_row(&mut neg)?;
            splits.push(pos);
            splits.push(neg);
        }
    }
    let nrows = u32::try_from(sys.rows().len()).expect("row count fits u32");
    let row_at = |i: u32| -> &Row {
        if i < nrows {
            &sys.rows()[i as usize]
        } else {
            &splits[(i - nrows) as usize]
        }
    };
    let mut lowers = crate::scratch::idx_vec();
    let mut uppers = crate::scratch::idx_vec();
    let mut rest = crate::scratch::idx_vec();
    let mut split_cursor = 0u32;
    for (ri, r) in sys.rows().iter().enumerate() {
        let c = r.coeffs[idx];
        if r.rel == Rel::Eq && c != 0 {
            let pos = nrows + split_cursor;
            let neg = nrows + split_cursor + 1;
            split_cursor += 2;
            if row_at(pos).coeffs[idx] > 0 {
                lowers.push(pos);
                uppers.push(neg);
            } else {
                uppers.push(pos);
                lowers.push(neg);
            }
        } else if c == 0 {
            rest.push(ri as u32);
        } else if c > 0 {
            lowers.push(ri as u32);
        } else {
            uppers.push(ri as u32);
        }
    }

    let mut out = System::with_vars_arc(sys.vars_arc());
    if sys.is_contradictory() {
        out.set_contradiction();
        return Ok((out, true));
    }
    for &ri in rest.iter() {
        out.push_row(row_at(ri).clone());
    }
    crate::cache::note_fm_combined((lowers.len() * uppers.len()) as u64);
    let dark = shadow == Shadow::Dark;
    // Tight coefficient ceilings must see the reduced form of every
    // row, so they skip the unreduced i64 fast path entirely.
    let fast_ok = budget.max_coeff == i64::MAX;
    let mut pairwise_exact = true;
    'pairs: for &li in lowers.iter() {
        let lo = row_at(li);
        let a = lo.coeffs[idx]; // > 0
        for &ui in uppers.iter() {
            let up = row_at(ui);
            let b = up.coeffs[idx].checked_neg().ok_or(PolyError::Overflow {
                context: "fm upper coefficient",
            })?; // > 0
            pairwise_exact &= a == 1 || b == 1; // correction (a-1)(b-1) == 0
            let fast = if fast_ok {
                combine_pair_fast(lo, up, a, b, dark)
            } else {
                None
            };
            match fast {
                // b*lo + a*up eliminates idx
                Some(row) => {
                    debug_assert_eq!(row.coeffs[idx], 0);
                    out.push_row(row);
                }
                None => match combine_pair_promoted(lo, up, a, b, dark, budget.max_coeff)? {
                    NarrowedRow::Row(row) => out.push_row(row),
                    NarrowedRow::True => {}
                    NarrowedRow::False => {
                        out.set_contradiction();
                        break 'pairs;
                    }
                },
            }
            if out.rows().len() > budget.max_rows {
                return Err(PolyError::Budget {
                    resource: Resource::Rows,
                    limit: budget.max_rows as u64,
                });
            }
        }
    }
    // With the engine on, leave the (all-zero) column in place: dropping
    // it would copy the shared variable universe at every elimination
    // level. Dead columns are invisible to the solver's used-variable
    // scan, to canonical cache keys, and to `project_onto` (which drops
    // unused columns as it encounters them).
    if !crate::cache::cache_enabled() {
        out.drop_var_column(idx);
    }
    Ok((out, pairwise_exact))
}

/// Project the system onto `keep`, eliminating every other variable.
///
/// Returns the projected system together with an exactness flag: when
/// `true`, the result is exactly the set of integer points whose fiber
/// contains an integer point; when `false`, it is an over-approximation
/// (every integer point of the true projection is included, but some
/// extra points may be too).
///
/// Equalities with a unit coefficient on an eliminated variable are used
/// for exact substitution before falling back to FM.
///
/// # Panics
///
/// Panics if elimination overflows `i64` even after `i128` promotion,
/// or exhausts the default [`Budget`]; [`try_project_onto`] is the
/// fallible form.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::{Constraint, LinExpr, System};
/// use shackle_polyhedra::fm::project_onto;
/// let mut s = System::new();
/// let (i, j, n) = (LinExpr::var("i"), LinExpr::var("j"), LinExpr::var("n"));
/// s.add(Constraint::ge(j.clone(), LinExpr::constant(1)));
/// s.add(Constraint::le(j.clone(), i.clone()));
/// s.add(Constraint::le(i, n));
/// let (p, exact) = project_onto(&s, &["j", "n"]);
/// assert!(exact);
/// // j <= i <= n collapses to j <= n
/// assert!(p.eval(&|v| if v == "j" { 5 } else { 5 }));
/// assert!(!p.eval(&|v| if v == "j" { 6 } else { 5 }));
/// ```
pub fn project_onto(sys: &System, keep: &[&str]) -> (System, bool) {
    try_project_onto(sys, keep, &Budget::default()).unwrap_or_else(|e| {
        panic!("project_onto: {e} (use try_project_onto for fallible projection)")
    })
}

/// Fallible [`project_onto`] under an explicit [`Budget`]. Never
/// panics: arithmetic that would overflow is retried in `i128`, and
/// genuine overflow or budget exhaustion surfaces as a [`PolyError`].
pub fn try_project_onto(
    sys: &System,
    keep: &[&str],
    budget: &Budget,
) -> Result<(System, bool), PolyError> {
    let mut s = sys.clone();
    let mut exact = true;
    loop {
        if s.is_contradictory() {
            return Ok((s, true));
        }
        // find next variable to eliminate, preferring exact unit-equality
        // substitutions, then exact FM, then inexact FM with lowest cost
        let mut candidates = crate::scratch::idx_vec();
        candidates.extend(
            (0..s.vars().len())
                .filter(|&i| !keep.contains(&s.vars()[i].as_str()))
                .map(|i| i as u32),
        );
        if candidates.is_empty() {
            break;
        }
        // unit equality substitution
        let mut best: Option<(usize, usize, bool)> = None; // (idx, cost, exact)
        let mut subst: Option<usize> = None;
        for &idx in candidates.iter() {
            let idx = idx as usize;
            let (lo, hi) = bound_profile(&s, idx);
            if lo == 0 && hi == 0 {
                // unused: just drop
                s.drop_var_column(idx);
                subst = Some(usize::MAX);
                break;
            }
            for r in s.rows() {
                if r.rel == Rel::Eq && r.coeffs[idx].abs() == 1 {
                    subst = Some(idx);
                    break;
                }
            }
            if subst.is_some() {
                break;
            }
            let ex = elimination_exact(&s, idx);
            let cost = lo * hi;
            let entry = (idx, cost, ex);
            best = Some(match best {
                None => entry,
                Some(b) => {
                    if (ex, std::cmp::Reverse(cost)) > (b.2, std::cmp::Reverse(b.1)) {
                        entry
                    } else {
                        b
                    }
                }
            });
            let _ = (lo, hi);
        }
        if let Some(idx) = subst {
            if idx == usize::MAX {
                continue; // dropped an unused column
            }
            // substitute from the equality with unit coefficient
            let row = s
                .rows()
                .iter()
                .find(|r| r.rel == Rel::Eq && r.coeffs[idx].abs() == 1)
                .cloned()
                .expect("unit equality vanished");
            let sign = row.coeffs[idx];
            // sign*x + e = 0  →  x = -sign*e
            const NEG: PolyError = PolyError::Overflow {
                context: "unit-equality substitution",
            };
            let mut repl = Vec::with_capacity(row.coeffs.len());
            for (k, &c) in row.coeffs.iter().enumerate() {
                repl.push(if k == idx {
                    0
                } else {
                    c.checked_mul(-sign).ok_or(NEG)?
                });
            }
            let repl_const = row.constant.checked_mul(-sign).ok_or(NEG)?;
            s = s.try_substitute_col(idx, &repl, repl_const, None, budget.max_coeff)?;
            continue;
        }
        let (idx, _cost, ex) = best.expect("no candidate chosen");
        let (real, pairwise) = eliminate_tracked(&s, idx, Shadow::Real, budget)?;
        // The pairwise-correction proof rides the engine flag so that
        // baseline measurements (`cache::set_cache_enabled(false)`)
        // exercise the pre-memoization semantic fallback.
        let pairwise = pairwise && crate::cache::cache_enabled();
        if !ex && !pairwise {
            // The syntactic unit-coefficient and pairwise-correction
            // tests both failed, but the elimination may still be
            // exact: compare the real and dark shadows semantically.
            // Since dark ⊆ integer-projection ⊆ real always holds,
            // equality of the two shadows proves the real shadow is
            // exactly the integer projection. This is what makes
            // block-coordinate variables (window constraints
            // `e ≤ w·z ≤ e + w − 1`) exactly projectable.
            //
            // The proof obligation degrades conservatively: if the dark
            // shadow cannot be computed, or a feasibility/implication
            // probe comes back `Unknown`, the projection is simply
            // marked inexact — never an error, never a panic.
            crate::cache::note_dark_fallback();
            let real_in_dark = match eliminate(&s, idx, Shadow::Dark, budget) {
                Ok(dark) if dark.is_contradictory() => {
                    // equal only if the real shadow is empty too
                    crate::cache::try_feasible(&real, budget) == Ok(false)
                }
                Ok(dark) => dark
                    .constraints()
                    .iter()
                    .all(|c| crate::simplify::try_implies(&real, c, budget) == Verdict::Yes),
                Err(_) => false,
            };
            if !real_in_dark {
                exact = false;
            }
        }
        s = real;
    }
    Ok((s, exact))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constraint, LinExpr};

    fn v(n: &str) -> LinExpr {
        LinExpr::var(n)
    }

    #[test]
    fn eliminate_simple_chain() {
        // 1 <= x <= y <= 10, eliminate x → y >= 1 and y <= 10
        let mut s = System::new();
        s.add(Constraint::ge(v("x"), LinExpr::constant(1)));
        s.add(Constraint::le(v("x"), v("y")));
        s.add(Constraint::le(v("y"), LinExpr::constant(10)));
        let idx = s.var_index("x").unwrap();
        let e = eliminate(&s, idx, Shadow::Real, &Budget::default()).unwrap();
        // with the engine on the column survives (all-zero); either way
        // the variable must no longer constrain anything
        assert!(!e.used_vars().iter().any(|v| v == "x"));
        assert!(e.eval(&|_| 1));
        assert!(e.eval(&|_| 10));
        assert!(!e.eval(&|_| 0));
        assert!(!e.eval(&|_| 11));
    }

    #[test]
    fn dark_shadow_is_tighter() {
        // 2x >= y and 3x <= n: real shadow 3y <= 2n;
        // dark shadow subtracts (2-1)(3-1)=2 from the combination.
        let mut s = System::new();
        s.add(Constraint::geq_zero(v("x") * 2 - v("y")));
        s.add(Constraint::geq_zero(v("n") - v("x") * 3));
        let idx = s.var_index("x").unwrap();
        let real = eliminate(&s, idx, Shadow::Real, &Budget::default()).unwrap();
        let dark = eliminate(&s, idx, Shadow::Dark, &Budget::default()).unwrap();
        // Soundness on a grid: every dark-shadow point lifts to an
        // integer x, and every point with an integer x is in the real
        // shadow.
        for y in -6i64..=6 {
            for n in -6i64..=6 {
                let env = move |name: &str| if name == "y" { y } else { n };
                let has_integer_x = (-20..=20).any(|x: i64| 2 * x >= y && 3 * x <= n);
                if dark.eval(&env) {
                    assert!(has_integer_x, "dark unsound at y={y} n={n}");
                }
                if has_integer_x {
                    assert!(real.eval(&env), "real too small at y={y} n={n}");
                }
            }
        }
        // point y=3, n=5: real: 9 <= 10 ok; integer x: 2x>=3 → x>=2;
        // 3x<=5 → x<=1 → none. dark must reject.
        let env2 = |name: &str| match name {
            "y" => 3,
            _ => 5,
        };
        assert!(real.eval(&env2));
        assert!(!dark.eval(&env2));
    }

    #[test]
    fn eliminate_unbounded_side_drops_rows() {
        let mut s = System::new();
        s.add(Constraint::ge(v("x"), v("y")));
        let idx = s.var_index("x").unwrap();
        let e = eliminate(&s, idx, Shadow::Real, &Budget::default()).unwrap();
        assert!(e.is_empty());
    }

    #[test]
    fn equality_split_in_fm() {
        // x = y and x <= 5 → y <= 5
        let mut s = System::new();
        s.add(Constraint::eq(v("x"), v("y")));
        s.add(Constraint::le(v("x"), LinExpr::constant(5)));
        let idx = s.var_index("x").unwrap();
        let e = eliminate(&s, idx, Shadow::Real, &Budget::default()).unwrap();
        assert!(e.eval(&|_| 5));
        assert!(!e.eval(&|_| 6));
    }

    #[test]
    fn project_keeps_params() {
        let mut s = System::new();
        s.add(Constraint::ge(v("i"), LinExpr::constant(1)));
        s.add(Constraint::le(v("i"), v("n")));
        let (p, exact) = project_onto(&s, &["n"]);
        assert!(exact);
        assert!(p.eval(&|_| 1));
        assert!(!p.eval(&|_| 0)); // n >= 1 required
    }

    #[test]
    fn project_via_unit_equality() {
        // k = j + 1, 1 <= k <= n : project out k
        let mut s = System::new();
        s.add(Constraint::eq(v("k"), v("j") + LinExpr::constant(1)));
        s.add(Constraint::ge(v("k"), LinExpr::constant(1)));
        s.add(Constraint::le(v("k"), v("n")));
        let (p, exact) = project_onto(&s, &["j", "n"]);
        assert!(exact);
        // j+1 <= n
        assert!(p.eval(&|x| if x == "j" { 4 } else { 5 }));
        assert!(!p.eval(&|_| 5));
    }

    #[test]
    fn bound_profile_counts() {
        let mut s = System::new();
        s.add(Constraint::ge(v("x"), LinExpr::constant(1)));
        s.add(Constraint::le(v("x"), LinExpr::constant(9)));
        s.add(Constraint::eq(v("y"), v("x")));
        let ix = s.var_index("x").unwrap();
        assert_eq!(bound_profile(&s, ix), (2, 2));
    }
}
