//! Redundancy removal and `gist` — the "polyhedral algebra tool" role the
//! paper delegates to the Omega calculator (§4.1: "the conditionals …
//! can be simplified using any polyhedral algebra tool").

use crate::error::Budget;
use crate::{Constraint, System, Verdict};

/// Is constraint `c` implied by `sys` (over the integers)?
///
/// Decided exactly when the budget holds: `sys ⊨ c` iff `sys ∧ ¬c` has
/// no integer solution (the negation of an equality is a disjunction,
/// so both branches must be infeasible). A branch the solver cannot
/// decide within the default [`Budget`] yields `false` — "not proven
/// implied" — which is the sound direction for every caller in this
/// crate (an unproven implication keeps a constraint rather than
/// dropping it). Use [`try_implies`] to distinguish a proven `No` from
/// an `Unknown`.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::{Constraint, LinExpr, System};
/// use shackle_polyhedra::simplify::implies;
/// let mut s = System::new();
/// s.add(Constraint::ge(LinExpr::var("x"), LinExpr::constant(5)));
/// assert!(implies(&s, &Constraint::ge(LinExpr::var("x"), LinExpr::constant(3))));
/// assert!(!implies(&s, &Constraint::ge(LinExpr::var("x"), LinExpr::constant(6))));
/// ```
pub fn implies(sys: &System, c: &Constraint) -> bool {
    try_implies(sys, c, &Budget::default()) == Verdict::Yes
}

/// Three-valued implication test under an explicit [`Budget`].
///
/// `Yes`/`No` are proven; `Unknown` means some branch of `sys ∧ ¬c`
/// exhausted the budget before being proven infeasible (while no branch
/// was proven feasible). Never panics.
pub fn try_implies(sys: &System, c: &Constraint, budget: &Budget) -> Verdict {
    // Fast path (rides the engine flag, like the rest of the memoized
    // query machinery): a single stored row syntactically dominating
    // `c` proves the implication without an Omega query.
    if crate::cache::cache_enabled() && (sys.dominates(c) || sys.dominates_pair(c)) {
        return Verdict::Yes;
    }
    let mut unknown = false;
    for branch in c.negate() {
        let mut probe = sys.clone();
        probe.add(branch);
        match crate::cache::try_feasible(&probe, budget) {
            Ok(true) => return Verdict::No,
            Ok(false) => {}
            Err(_) => unknown = true,
        }
    }
    if unknown {
        Verdict::Unknown
    } else {
        Verdict::Yes
    }
}

/// Remove constraints that are implied by the remaining ones.
///
/// Greedy and order-stable: constraints are considered in reverse
/// insertion order so that "earlier" constraints (typically loop bounds)
/// survive in preference to derived ones.
pub fn remove_redundant(sys: &System) -> System {
    if sys.is_contradictory() || crate::cache::try_feasible(sys, &Budget::default()) == Ok(false) {
        // an infeasible system must stay infeasible: the greedy loop
        // below would otherwise vacuously drop every constraint.
        // (An `Unknown` feasibility falls through: the loop only drops
        // constraints whose implication is *proven*, which is sound.)
        return contradiction_like(sys);
    }
    let mut cons = sys.constraints();
    let mut i = cons.len();
    while i > 0 {
        i -= 1;
        let candidate = cons[i].clone();
        let rest: System = cons
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, c)| c.clone())
            .collect();
        if implies(&rest, &candidate) {
            cons.remove(i);
        }
    }
    // preserve the full variable universe
    let mut out = System::with_vars_arc(sys.vars_arc());
    out.add_all(cons);
    out
}

/// A system with the same variables that is unsatisfiable.
fn contradiction_like(sys: &System) -> System {
    let mut out = System::with_vars_arc(sys.vars_arc());
    out.add(Constraint::geq_zero(crate::LinExpr::constant(-1)));
    out
}

/// `gist(sys, context)`: the constraints of `sys` that are *not* implied
/// when `context` is known to hold — the minimal guard to test inside a
/// region where `context` is already guaranteed.
///
/// The result `g` satisfies: `g ∧ context` has the same integer points as
/// `sys ∧ context`.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::{Constraint, LinExpr, System};
/// use shackle_polyhedra::simplify::gist;
/// let x = || LinExpr::var("x");
/// let mut sys = System::new();
/// sys.add(Constraint::ge(x(), LinExpr::constant(1)));
/// sys.add(Constraint::le(x(), LinExpr::constant(10)));
/// let mut ctx = System::new();
/// ctx.add(Constraint::ge(x(), LinExpr::constant(0)));
/// ctx.add(Constraint::le(x(), LinExpr::constant(10)));
/// let g = gist(&sys, &ctx);
/// // only the lower bound remains to be checked
/// assert_eq!(g.constraints().len(), 1);
/// ```
pub fn gist(sys: &System, context: &System) -> System {
    if crate::cache::try_feasible(&sys.and(context), &Budget::default()) == Ok(false) {
        // `g ∧ context` must stay empty; return a canonical false.
        // `Unknown` falls through, like in [`remove_redundant`].
        return contradiction_like(sys);
    }
    if crate::cache::cache_enabled() {
        return gist_dense(sys, context);
    }
    let mut kept: Vec<Constraint> = sys.constraints();
    let mut i = kept.len();
    while i > 0 {
        i -= 1;
        let candidate = kept[i].clone();
        let mut rest: System = kept
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, c)| c.clone())
            .collect();
        rest = rest.and(context);
        if implies(&rest, &candidate) {
            kept.remove(i);
        }
    }
    let mut out = System::with_vars_arc(sys.vars_arc());
    out.add_all(kept);
    out
}

/// The engine-flag fast variant of the [`gist`] loop: identical removal
/// decisions (and therefore an identical result), but `rest` is
/// assembled from dense rows instead of re-parsed sparse constraints,
/// and a candidate already dominated by a single `context` row is
/// dropped without building `rest` at all (if `context` alone implies
/// it, so does `rest ∧ context`).
fn gist_dense(sys: &System, context: &System) -> System {
    let all = sys.constraints();
    let mut keep = vec![true; all.len()];
    let mut i = all.len();
    while i > 0 {
        i -= 1;
        let candidate = &all[i];
        if context.dominates(candidate) {
            keep[i] = false;
            continue;
        }
        let mut rest = System::with_vars_arc(sys.vars_arc());
        for (j, row) in sys.rows().iter().enumerate() {
            if keep[j] && j != i {
                rest.push_row(row.clone());
            }
        }
        let rest = rest.and(context);
        if implies(&rest, candidate) {
            keep[i] = false;
        }
    }
    let mut out = System::with_vars_arc(sys.vars_arc());
    out.add_all(
        all.into_iter()
            .zip(keep)
            .filter(|&(_, k)| k)
            .map(|(c, _)| c),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinExpr;

    fn v(n: &str) -> LinExpr {
        LinExpr::var(n)
    }

    fn c(k: i64) -> LinExpr {
        LinExpr::constant(k)
    }

    #[test]
    fn redundant_bound_removed() {
        let mut s = System::new();
        s.add(Constraint::ge(v("x"), c(5)));
        s.add(Constraint::ge(v("x"), c(3))); // implied
        let r = remove_redundant(&s);
        assert_eq!(r.constraints().len(), 1);
        assert_eq!(r.constraints()[0].to_string(), "x - 5 >= 0");
    }

    #[test]
    fn nothing_removed_when_independent() {
        let mut s = System::new();
        s.add(Constraint::ge(v("x"), c(1)));
        s.add(Constraint::le(v("x"), v("n")));
        let r = remove_redundant(&s);
        assert_eq!(r.constraints().len(), 2);
    }

    #[test]
    fn equality_implication() {
        let mut s = System::new();
        s.add(Constraint::eq(v("x"), c(4)));
        assert!(implies(&s, &Constraint::ge(v("x"), c(4))));
        assert!(implies(&s, &Constraint::le(v("x"), c(4))));
        assert!(implies(&s, &Constraint::eq(v("x"), c(4))));
        assert!(!implies(&s, &Constraint::eq(v("x"), c(5))));
    }

    #[test]
    fn gist_against_loop_bounds() {
        // Inside a loop 1 <= i <= n, the guard 25b-24 <= i <= 25b
        // gists to itself; but a guard i >= 0 gists away entirely.
        let mut ctx = System::new();
        ctx.add(Constraint::ge(v("i"), c(1)));
        ctx.add(Constraint::le(v("i"), v("n")));
        let mut guard = System::new();
        guard.add(Constraint::ge(v("i"), c(0)));
        guard.add(Constraint::ge(v("i"), v("b") * 25 - c(24)));
        let g = gist(&guard, &ctx);
        assert_eq!(g.constraints().len(), 1);
        assert!(g.constraints()[0].to_string().contains('b'));
    }

    #[test]
    fn gist_preserves_conjunction_semantics() {
        let mut sys = System::new();
        sys.add(Constraint::ge(v("x"), c(2)));
        sys.add(Constraint::le(v("x"), c(8)));
        let mut ctx = System::new();
        ctx.add(Constraint::ge(v("x"), c(0)));
        ctx.add(Constraint::le(v("x"), c(8)));
        let g = gist(&sys, &ctx);
        for x in -2..=12 {
            let env = |_: &str| x;
            assert_eq!(
                g.eval(&env) && ctx.eval(&env),
                sys.eval(&env) && ctx.eval(&env),
                "x = {x}"
            );
        }
    }
}
