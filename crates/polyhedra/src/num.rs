//! Small exact integer helpers used throughout the crate.
//!
//! All polyhedral algorithms in this crate work over `i64` with explicit
//! overflow-checked combination steps. The systems arising from data
//! shackling are tiny (tens of variables, coefficients bounded by block
//! sizes), so `i64` leaves an enormous safety margin; nevertheless every
//! multiplication that combines user-supplied coefficients goes through
//! a checked path. The fallible [`try_lcm`]/[`try_combine`] forms first
//! **promote to `i128`** — where products of two `i64`s are always exact
//! — and only report [`PolyError::Overflow`] when the reduced result
//! genuinely does not fit back into `i64`; the legacy panicking names
//! ([`lcm`], [`checked_combine`]) remain as thin wrappers.

use crate::error::PolyError;

/// Greatest common divisor of two integers (always non-negative).
///
/// `gcd(0, 0)` is defined as `0`.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::num::gcd;
/// assert_eq!(gcd(12, -18), 6);
/// assert_eq!(gcd(0, 5), 5);
/// ```
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i64
}

/// Least common multiple of two integers (always non-negative).
///
/// # Panics
///
/// Panics on overflow.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::num::lcm;
/// assert_eq!(lcm(4, 6), 12);
/// ```
pub fn lcm(a: i64, b: i64) -> i64 {
    try_lcm(a, b).expect("lcm overflow")
}

/// Least common multiple of two integers (always non-negative),
/// computed in `i128` and narrowed.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::num::try_lcm;
/// assert_eq!(try_lcm(4, 6), Ok(12));
/// assert!(try_lcm(i64::MIN, 1).is_err());
/// ```
pub fn try_lcm(a: i64, b: i64) -> Result<i64, PolyError> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    // The product of two i64s always fits in i128, so the promotion is
    // exact; only the final narrowing can fail (e.g. lcm(i64::MIN, 1)
    // is 2^63, one past i64::MAX).
    let l = (a as i128 / gcd(a, b) as i128 * b as i128).unsigned_abs();
    i64::try_from(l).map_err(|_| PolyError::Overflow { context: "lcm" })
}

/// GCD of a slice, ignoring zeros; returns 0 for an all-zero slice.
pub fn gcd_slice(xs: &[i64]) -> i64 {
    xs.iter().fold(0, |g, &x| gcd(g, x))
}

/// Floor division: largest `q` with `q * b <= a`.
///
/// # Panics
///
/// Panics if `b == 0`.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::num::floor_div;
/// assert_eq!(floor_div(7, 2), 3);
/// assert_eq!(floor_div(-7, 2), -4);
/// assert_eq!(floor_div(7, -2), -4);
/// ```
pub fn floor_div(a: i64, b: i64) -> i64 {
    assert!(b != 0, "floor_div by zero");
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division: smallest `q` with `q * b >= a` (for `b > 0`).
///
/// # Panics
///
/// Panics if `b == 0`.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::num::ceil_div;
/// assert_eq!(ceil_div(7, 2), 4);
/// assert_eq!(ceil_div(-7, 2), -3);
/// ```
pub fn ceil_div(a: i64, b: i64) -> i64 {
    -floor_div(-a, b)
}

/// Symmetric ("hat") modulo from the Omega test: the unique value
/// congruent to `a` mod `m` that lies in `(-m/2, m/2]`.
///
/// Pugh writes this as `a mod̂ m`. It is the key to the exact integer
/// equality-elimination step: substituting with symmetric residues shrinks
/// coefficients geometrically.
///
/// # Panics
///
/// Panics if `m <= 0`.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::num::mod_hat;
/// assert_eq!(mod_hat(5, 3), -1); // 5 = 2*3 - 1
/// assert_eq!(mod_hat(4, 3), 1);
/// assert_eq!(mod_hat(3, 2), 1);
/// assert_eq!(mod_hat(-3, 2), 1);
/// ```
pub fn mod_hat(a: i64, m: i64) -> i64 {
    assert!(m > 0, "mod_hat with non-positive modulus");
    let r = a.rem_euclid(m);
    if 2 * r > m {
        r - m
    } else {
        r
    }
}

/// `a * b + c * d` with overflow checking, used when combining two
/// constraints in Fourier–Motzkin elimination.
///
/// # Panics
///
/// Panics on overflow.
pub fn checked_combine(a: i64, b: i64, c: i64, d: i64) -> i64 {
    try_combine(a, b, c, d).expect("integer overflow combining constraints")
}

/// `a * b + c * d` promoted to `i128` (exact for any `i64` inputs) and
/// narrowed back; errs only if the true value does not fit in `i64`.
///
/// Fourier–Motzkin callers prefer [`combine_i128`] and keep the wide
/// value, so a whole combined row can be GCD-reduced before narrowing.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::num::try_combine;
/// assert_eq!(try_combine(3, 4, 5, -2), Ok(2));
/// assert!(try_combine(i64::MAX, 2, 0, 0).is_err());
/// ```
pub fn try_combine(a: i64, b: i64, c: i64, d: i64) -> Result<i64, PolyError> {
    narrow(combine_i128(a, b, c, d), "combining constraints")
}

/// `a * b + c * d` in `i128`: exact for all `i64` inputs (each product
/// is below `2^126`, so the sum cannot overflow `i128`).
pub fn combine_i128(a: i64, b: i64, c: i64, d: i64) -> i128 {
    a as i128 * b as i128 + c as i128 * d as i128
}

/// Narrow an exact `i128` value back to `i64`.
pub fn narrow(v: i128, context: &'static str) -> Result<i64, PolyError> {
    i64::try_from(v).map_err(|_| PolyError::Overflow { context })
}

/// GCD over `i128` (always non-negative; `gcd(0, 0) = 0`).
pub fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i128
}

/// Floor division over `i128`: largest `q` with `q * b <= a`.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn floor_div_i128(a: i128, b: i128) -> i128 {
    assert!(b != 0, "floor_div by zero");
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(-4, -6), 2);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd_slice(&[0, 6, 9]), 3);
        assert_eq!(gcd_slice(&[]), 0);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(0, 3), 0);
        assert_eq!(lcm(-4, 6), 12);
    }

    #[test]
    #[should_panic(expected = "lcm overflow")]
    fn lcm_overflow_panics() {
        // |i64::MIN| does not fit in i64; before checked_abs this
        // wrapped to a negative value in release builds.
        lcm(i64::MIN, 1);
    }

    #[test]
    fn try_forms_report_clean_errors() {
        assert_eq!(
            try_lcm(i64::MIN, 1),
            Err(PolyError::Overflow { context: "lcm" })
        );
        assert_eq!(try_lcm(1 << 40, 1 << 41), Ok(1 << 41));
        assert_eq!(
            try_lcm(1 << 40, (1 << 40) + 1),
            Err(PolyError::Overflow { context: "lcm" })
        );
        assert!(try_combine(i64::MAX, 3, i64::MAX, 3).is_err());
        // exact in i128 even though both products overflow i64
        assert_eq!(try_combine(i64::MAX, 2, i64::MAX, -2), Ok(0));
    }

    #[test]
    fn i128_helpers_agree_with_i64_forms() {
        for a in [-9i64, -3, 0, 4, 27] {
            for b in [-6i64, -1, 2, 9] {
                assert_eq!(gcd_i128(a as i128, b as i128), gcd(a, b) as i128);
                if b != 0 {
                    assert_eq!(
                        floor_div_i128(a as i128, b as i128),
                        floor_div(a, b) as i128
                    );
                }
            }
        }
        assert_eq!(combine_i128(3, 4, 5, -2), 2);
    }

    #[test]
    fn floor_ceil_consistency() {
        for a in -20..=20 {
            for b in [-7i64, -2, -1, 1, 2, 7] {
                // f = floor(a/b) iff f <= a/b < f+1, i.e. (sign-aware)
                let f = floor_div(a, b);
                let expected = (a as f64 / b as f64).floor() as i64;
                assert_eq!(f, expected, "floor {a}/{b}");
                if b > 0 {
                    let c = ceil_div(a, b);
                    let expected_c = (a as f64 / b as f64).ceil() as i64;
                    assert_eq!(c, expected_c, "ceil {a}/{b}");
                }
            }
        }
    }

    #[test]
    fn mod_hat_range_and_congruence() {
        for a in -30..=30 {
            for m in 1..=9 {
                let r = mod_hat(a, m);
                assert!(2 * r <= m && 2 * r > -m, "range {a} mod^ {m} = {r}");
                assert_eq!((a - r).rem_euclid(m), 0, "congruence {a} mod^ {m}");
            }
        }
    }
}
