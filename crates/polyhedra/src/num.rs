//! Small exact integer helpers used throughout the crate.
//!
//! All polyhedral algorithms in this crate work over `i64` with explicit
//! overflow-checked combination steps. The systems arising from data
//! shackling are tiny (tens of variables, coefficients bounded by block
//! sizes), so `i64` leaves an enormous safety margin; nevertheless every
//! multiplication that combines user-supplied coefficients goes through
//! [`checked_combine`] so that an overflow aborts loudly instead of
//! producing a wrong legality verdict.

/// Greatest common divisor of two integers (always non-negative).
///
/// `gcd(0, 0)` is defined as `0`.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::num::gcd;
/// assert_eq!(gcd(12, -18), 6);
/// assert_eq!(gcd(0, 5), 5);
/// ```
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i64
}

/// Least common multiple of two integers (always non-negative).
///
/// # Panics
///
/// Panics on overflow.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::num::lcm;
/// assert_eq!(lcm(4, 6), 12);
/// ```
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    // checked_abs, not abs: the product can legitimately be i64::MIN
    // (e.g. lcm(i64::MIN, 1)), whose absolute value does not fit.
    (a / gcd(a, b))
        .checked_mul(b)
        .and_then(i64::checked_abs)
        .expect("lcm overflow")
}

/// GCD of a slice, ignoring zeros; returns 0 for an all-zero slice.
pub fn gcd_slice(xs: &[i64]) -> i64 {
    xs.iter().fold(0, |g, &x| gcd(g, x))
}

/// Floor division: largest `q` with `q * b <= a`.
///
/// # Panics
///
/// Panics if `b == 0`.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::num::floor_div;
/// assert_eq!(floor_div(7, 2), 3);
/// assert_eq!(floor_div(-7, 2), -4);
/// assert_eq!(floor_div(7, -2), -4);
/// ```
pub fn floor_div(a: i64, b: i64) -> i64 {
    assert!(b != 0, "floor_div by zero");
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division: smallest `q` with `q * b >= a` (for `b > 0`).
///
/// # Panics
///
/// Panics if `b == 0`.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::num::ceil_div;
/// assert_eq!(ceil_div(7, 2), 4);
/// assert_eq!(ceil_div(-7, 2), -3);
/// ```
pub fn ceil_div(a: i64, b: i64) -> i64 {
    -floor_div(-a, b)
}

/// Symmetric ("hat") modulo from the Omega test: the unique value
/// congruent to `a` mod `m` that lies in `(-m/2, m/2]`.
///
/// Pugh writes this as `a mod̂ m`. It is the key to the exact integer
/// equality-elimination step: substituting with symmetric residues shrinks
/// coefficients geometrically.
///
/// # Panics
///
/// Panics if `m <= 0`.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::num::mod_hat;
/// assert_eq!(mod_hat(5, 3), -1); // 5 = 2*3 - 1
/// assert_eq!(mod_hat(4, 3), 1);
/// assert_eq!(mod_hat(3, 2), 1);
/// assert_eq!(mod_hat(-3, 2), 1);
/// ```
pub fn mod_hat(a: i64, m: i64) -> i64 {
    assert!(m > 0, "mod_hat with non-positive modulus");
    let r = a.rem_euclid(m);
    if 2 * r > m {
        r - m
    } else {
        r
    }
}

/// `a * b + c * d` with overflow checking, used when combining two
/// constraints in Fourier–Motzkin elimination.
///
/// # Panics
///
/// Panics on overflow.
pub fn checked_combine(a: i64, b: i64, c: i64, d: i64) -> i64 {
    a.checked_mul(b)
        .and_then(|x| c.checked_mul(d).and_then(|y| x.checked_add(y)))
        .expect("integer overflow combining constraints")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(-4, -6), 2);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd_slice(&[0, 6, 9]), 3);
        assert_eq!(gcd_slice(&[]), 0);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(0, 3), 0);
        assert_eq!(lcm(-4, 6), 12);
    }

    #[test]
    #[should_panic(expected = "lcm overflow")]
    fn lcm_overflow_panics() {
        // |i64::MIN| does not fit in i64; before checked_abs this
        // wrapped to a negative value in release builds.
        lcm(i64::MIN, 1);
    }

    #[test]
    fn floor_ceil_consistency() {
        for a in -20..=20 {
            for b in [-7i64, -2, -1, 1, 2, 7] {
                // f = floor(a/b) iff f <= a/b < f+1, i.e. (sign-aware)
                let f = floor_div(a, b);
                let expected = (a as f64 / b as f64).floor() as i64;
                assert_eq!(f, expected, "floor {a}/{b}");
                if b > 0 {
                    let c = ceil_div(a, b);
                    let expected_c = (a as f64 / b as f64).ceil() as i64;
                    assert_eq!(c, expected_c, "ceil {a}/{b}");
                }
            }
        }
    }

    #[test]
    fn mod_hat_range_and_congruence() {
        for a in -30..=30 {
            for m in 1..=9 {
                let r = mod_hat(a, m);
                assert!(2 * r <= m && 2 * r > -m, "range {a} mod^ {m} = {r}");
                assert_eq!((a - r).rem_euclid(m), 0, "congruence {a} mod^ {m}");
            }
        }
    }
}
