//! Exact integer linear arithmetic for data-centric blocking.
//!
//! This crate is the polyhedral substrate of the `data-shackle` workspace,
//! a reproduction of *Kodukula, Ahmed & Pingali, "Data-centric Multi-level
//! Blocking" (PLDI 1997)*. It plays the role the **Omega calculator**
//! plays in the paper: deciding whether conjunctions of affine constraints
//! have integer solutions (the legality test of Theorem 1) and
//! simplifying guard conditions into loop bounds (the step from the
//! paper's Figure 5 to Figure 6).
//!
//! # Contents
//!
//! * [`LinExpr`] — sparse affine expressions over named variables.
//! * [`Constraint`] / [`System`] — affine constraints and conjunctions
//!   thereof (integer polyhedra).
//! * [`fm`] — Fourier–Motzkin elimination and projection with real/dark
//!   shadows.
//! * [`omega`] — the Omega test (Pugh 1992): exact integer feasibility.
//! * [`simplify`] — redundancy removal and `gist`.
//! * [`lex`] — lexicographic-order disjunction builders used by both the
//!   legality test and dependence analysis.
//!
//! # Example: a legality-style query
//!
//! The paper's §5.1 example asks whether a dependence can connect two
//! instances whose blocks are visited in the wrong order. The query
//! bottoms out in integer feasibility:
//!
//! ```
//! use shackle_polyhedra::{Constraint, LinExpr, System};
//!
//! let j = LinExpr::var("j");
//! let b = LinExpr::var("b");
//! let mut sys = System::new();
//! // j is in block b of width 25 (1-based): 25b - 24 <= j <= 25b
//! sys.add(Constraint::ge(j.clone(), b.clone() * 25 - LinExpr::constant(24)));
//! sys.add(Constraint::le(j.clone(), b.clone() * 25));
//! // ... and also in block b+1 — impossible:
//! let b1 = b + LinExpr::constant(1);
//! sys.add(Constraint::ge(j.clone(), b1.clone() * 25 - LinExpr::constant(24)));
//! sys.add(Constraint::le(j, b1 * 25));
//! assert!(!sys.is_integer_feasible());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constraint;
mod expr;
mod scratch;
mod system;

pub mod audit;
pub mod cache;
pub mod error;
pub mod fm;
pub mod lex;
pub mod num;
pub mod omega;
pub mod simplify;

pub use cache::PolyStats;
pub use constraint::{Constraint, Rel};
pub use error::{Budget, PolyError, Verdict};
pub use expr::LinExpr;
pub use system::System;

impl System {
    /// Decide integer feasibility with the Omega test.
    ///
    /// Verdicts are memoized on the system's canonical form (see
    /// [`cache`]); the underlying decision procedure is
    /// [`omega::is_integer_feasible`].
    ///
    /// # Panics
    ///
    /// Panics if the default [`Budget`] is exhausted or arithmetic
    /// overflows even after `i128` promotion — conditions no in-repo
    /// kernel reaches. Pipeline code that must survive adversarial
    /// input uses [`System::decide`] or
    /// [`System::try_is_integer_feasible`] instead.
    pub fn is_integer_feasible(&self) -> bool {
        cache::try_feasible(self, &Budget::default())
            .unwrap_or_else(|e| panic!("is_integer_feasible: {e} (use decide/try_is_integer_feasible for fallible queries)"))
    }

    /// Fallible integer feasibility under the default [`Budget`]:
    /// `Ok(bool)` is a proven answer, `Err` reports exactly why the
    /// solver gave up. Never panics.
    pub fn try_is_integer_feasible(&self) -> Result<bool, PolyError> {
        cache::try_feasible(self, &Budget::default())
    }

    /// Three-valued integer feasibility under an explicit [`Budget`].
    /// Never panics; budget exhaustion and arithmetic overflow both
    /// surface as [`Verdict::Unknown`] (and bump the `poly.unknown`
    /// probe counter via [`PolyStats`]).
    pub fn decide(&self, budget: &Budget) -> Verdict {
        match cache::try_feasible(self, budget) {
            Ok(b) => Verdict::proven(b),
            Err(_) => Verdict::Unknown,
        }
    }

    /// Find a concrete integer solution with all variables in
    /// `[-bound, bound]` (see [`omega::find_point`]).
    pub fn find_point(&self, bound: i64) -> Option<Vec<(String, i64)>> {
        omega::find_point(self, bound)
    }

    /// Project onto the named variables (see [`fm::project_onto`]);
    /// returns the projection and whether it is exact. Results are
    /// memoized (see [`cache`]); a hit is byte-identical to a fresh
    /// computation.
    ///
    /// # Panics
    ///
    /// Panics if projection overflows or exhausts the default
    /// [`Budget`]; [`System::try_project_onto`] is the fallible form.
    pub fn project_onto(&self, keep: &[&str]) -> (System, bool) {
        cache::try_project(self, keep, &Budget::default()).unwrap_or_else(|e| {
            panic!("project_onto: {e} (use try_project_onto for fallible projection)")
        })
    }

    /// Fallible projection under an explicit [`Budget`]. Never panics.
    pub fn try_project_onto(
        &self,
        keep: &[&str],
        budget: &Budget,
    ) -> Result<(System, bool), PolyError> {
        cache::try_project(self, keep, budget)
    }

    /// Remove constraints implied by the others
    /// (see [`simplify::remove_redundant`]).
    pub fn simplified(&self) -> System {
        simplify::remove_redundant(self)
    }

    /// Constraints not already implied by `context`
    /// (see [`simplify::gist`]); memoized via [`cache`].
    pub fn gist(&self, context: &System) -> System {
        cache::gist(self, context)
    }
}
