//! Conjunctions of affine constraints over named integer variables.

use crate::num::{floor_div, gcd_slice};
use crate::{Constraint, LinExpr, Rel};
use std::collections::BTreeSet;
use std::fmt;

/// A dense row: `coeffs · vars + constant (= | >=) 0`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Row {
    pub coeffs: Vec<i64>,
    pub constant: i64,
    pub rel: Rel,
}

impl Row {
    pub fn is_trivially_true(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
            && match self.rel {
                Rel::Eq => self.constant == 0,
                Rel::Geq => self.constant >= 0,
            }
    }

    pub fn is_trivially_false(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
            && match self.rel {
                Rel::Eq => self.constant != 0,
                Rel::Geq => self.constant < 0,
            }
    }
}

/// A conjunction of affine constraints — an integer polyhedron.
///
/// Variables are identified by name and shared structurally: conjoining
/// two systems aligns variables by name. All variables are interpreted as
/// ranging over the integers.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::{Constraint, LinExpr, System};
/// let mut s = System::new();
/// let x = LinExpr::var("x");
/// s.add(Constraint::ge(x.clone(), LinExpr::constant(1)));
/// s.add(Constraint::le(x, LinExpr::constant(10)));
/// assert!(s.is_integer_feasible());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct System {
    vars: Vec<String>,
    rows: Vec<Row>,
    contradiction: bool,
}

impl Default for System {
    fn default() -> Self {
        Self::new()
    }
}

impl System {
    /// An empty (universally true) system.
    pub fn new() -> Self {
        System {
            vars: Vec::new(),
            rows: Vec::new(),
            contradiction: false,
        }
    }

    /// A system over the given variables with no constraints yet.
    pub fn with_vars<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut s = Self::new();
        for n in names {
            s.ensure_var(&n.into());
        }
        s
    }

    /// Build a system from an iterator of constraints.
    pub fn from_constraints<I>(cons: I) -> Self
    where
        I: IntoIterator<Item = Constraint>,
    {
        let mut s = Self::new();
        for c in cons {
            s.add(c);
        }
        s
    }

    /// The variables of the system, in insertion order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Number of constraints (rows).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the system has no constraints and no recorded
    /// contradiction.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() && !self.contradiction
    }

    /// True if a trivially false constraint was added.
    pub fn is_contradictory(&self) -> bool {
        self.contradiction
    }

    /// Index of a variable, adding it if new.
    pub(crate) fn ensure_var(&mut self, name: &str) -> usize {
        if let Some(i) = self.vars.iter().position(|v| v == name) {
            i
        } else {
            self.vars.push(name.to_string());
            for r in &mut self.rows {
                r.coeffs.push(0);
            }
            self.vars.len() - 1
        }
    }

    /// Index of a variable if present.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// Add a constraint (normalizing by the GCD of its coefficients; for
    /// inequalities the constant is floor-tightened, which is sound over
    /// the integers).
    pub fn add(&mut self, c: Constraint) {
        if let Some(t) = c.constant_truth() {
            if !t {
                self.contradiction = true;
            }
            return;
        }
        let mut coeffs = vec![0i64; self.vars.len()];
        for (v, k) in c.expr().iter() {
            let i = self.ensure_var(v);
            if coeffs.len() < self.vars.len() {
                coeffs.resize(self.vars.len(), 0);
            }
            coeffs[i] = k;
        }
        coeffs.resize(self.vars.len(), 0);
        let row = Row {
            coeffs,
            constant: c.expr().constant_part(),
            rel: c.rel(),
        };
        self.push_row(row);
    }

    /// Add several constraints.
    pub fn add_all<I: IntoIterator<Item = Constraint>>(&mut self, cons: I) {
        for c in cons {
            self.add(c);
        }
    }

    pub(crate) fn push_row(&mut self, mut row: Row) {
        debug_assert_eq!(row.coeffs.len(), self.vars.len());
        let g = gcd_slice(&row.coeffs);
        if g == 0 {
            // constant row
            let ok = match row.rel {
                Rel::Eq => row.constant == 0,
                Rel::Geq => row.constant >= 0,
            };
            if !ok {
                self.contradiction = true;
            }
            return;
        }
        if g > 1 {
            match row.rel {
                Rel::Eq => {
                    if row.constant % g != 0 {
                        // e.g. 2x + 1 = 0 has no integer solution
                        self.contradiction = true;
                        return;
                    }
                    row.constant /= g;
                }
                Rel::Geq => {
                    // gcd-tighten: g·e + c >= 0  ⇔  e >= ceil(-c/g)
                    row.constant = floor_div(row.constant, g);
                }
            }
            for c in &mut row.coeffs {
                *c /= g;
            }
        }
        if row.is_trivially_false() {
            self.contradiction = true;
            return;
        }
        if row.is_trivially_true() {
            return;
        }
        if !self.rows.contains(&row) {
            self.rows.push(row);
        }
    }

    /// Conjoin with another system (aligning variables by name).
    pub fn and(&self, other: &System) -> System {
        let mut out = self.clone();
        if other.contradiction {
            out.contradiction = true;
            return out;
        }
        for c in other.constraints() {
            out.add(c);
        }
        out
    }

    /// Convert rows back to sparse constraints.
    pub fn constraints(&self) -> Vec<Constraint> {
        self.rows
            .iter()
            .map(|r| {
                let mut e = LinExpr::constant(r.constant);
                for (i, &c) in r.coeffs.iter().enumerate() {
                    e.add_term(&self.vars[i], c);
                }
                match r.rel {
                    Rel::Eq => Constraint::eq_zero(e),
                    Rel::Geq => Constraint::geq_zero(e),
                }
            })
            .collect()
    }

    pub(crate) fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub(crate) fn set_contradiction(&mut self) {
        self.contradiction = true;
    }

    /// Drop a variable column entirely (the caller guarantees no row uses
    /// it).
    pub(crate) fn drop_var_column(&mut self, idx: usize) {
        debug_assert!(self.rows.iter().all(|r| r.coeffs[idx] == 0));
        self.vars.remove(idx);
        for r in &mut self.rows {
            r.coeffs.remove(idx);
        }
    }

    /// Evaluate the whole system under a total assignment.
    pub fn eval(&self, env: &dyn Fn(&str) -> i64) -> bool {
        if self.contradiction {
            return false;
        }
        self.constraints().iter().all(|c| c.eval(env))
    }

    /// Rename a variable throughout.
    ///
    /// # Panics
    ///
    /// Panics if `to` is already a variable of the system.
    pub fn rename_var(&mut self, from: &str, to: &str) {
        if let Some(_i) = self.var_index(from) {
            assert!(
                self.var_index(to).is_none(),
                "rename_var would merge {from} into existing {to}"
            );
            for v in &mut self.vars {
                if v == from {
                    *v = to.to_string();
                }
            }
        }
    }

    /// Apply a renaming function to all variables at once.
    ///
    /// # Panics
    ///
    /// Panics if the renaming is not injective on this system's variables.
    pub fn rename_all(&mut self, f: &dyn Fn(&str) -> String) {
        let new: Vec<String> = self.vars.iter().map(|v| f(v)).collect();
        let distinct: BTreeSet<&String> = new.iter().collect();
        assert_eq!(distinct.len(), new.len(), "rename_all must be injective");
        self.vars = new;
    }

    /// Substitute an affine expression for a variable (exact; used when a
    /// variable is defined by an equality with unit coefficient).
    pub fn substitute(&self, name: &str, replacement: &LinExpr) -> System {
        let mut out = System::new();
        // keep variable universe stable (minus `name`, plus replacement's)
        for v in &self.vars {
            if v != name {
                out.ensure_var(v);
            }
        }
        for v in replacement.vars() {
            out.ensure_var(v);
        }
        if self.contradiction {
            out.contradiction = true;
            return out;
        }
        for c in self.constraints() {
            out.add(c.substitute(name, replacement));
        }
        out
    }

    /// The variables that actually occur with non-zero coefficient.
    pub fn used_vars(&self) -> Vec<String> {
        let mut used = Vec::new();
        for (i, v) in self.vars.iter().enumerate() {
            if self.rows.iter().any(|r| r.coeffs[i] != 0) {
                used.push(v.clone());
            }
        }
        used
    }

    /// Brute-force enumeration of all solutions with every variable in
    /// `[lo, hi]`. Only for tests on tiny boxes.
    pub fn enumerate_box(&self, lo: i64, hi: i64) -> Vec<Vec<i64>> {
        let n = self.vars.len();
        let mut out = Vec::new();
        if self.contradiction {
            return out;
        }
        let mut point = vec![lo; n];
        'outer: loop {
            let env = |v: &str| {
                let i = self.var_index(v).unwrap();
                point[i]
            };
            if self.eval(&env) {
                out.push(point.clone());
            }
            // odometer
            for i in 0..n {
                if point[i] < hi {
                    point[i] += 1;
                    for p in point.iter_mut().take(i) {
                        *p = lo;
                    }
                    continue 'outer;
                }
            }
            break;
        }
        if n == 0 && self.rows.is_empty() && !self.contradiction {
            // the empty system has the single empty solution (already
            // pushed above by the first loop pass)
        }
        out
    }
}

impl FromIterator<Constraint> for System {
    fn from_iter<I: IntoIterator<Item = Constraint>>(iter: I) -> Self {
        System::from_constraints(iter)
    }
}

impl Extend<Constraint> for System {
    fn extend<I: IntoIterator<Item = Constraint>>(&mut self, iter: I) {
        self.add_all(iter);
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.contradiction {
            return write!(f, "{{ false }}");
        }
        write!(f, "{{ ")?;
        for (i, c) in self.constraints().iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> LinExpr {
        LinExpr::var("x")
    }

    #[test]
    fn add_and_normalize() {
        let mut s = System::new();
        s.add(Constraint::geq_zero(x() * 2 - LinExpr::constant(3)));
        // 2x - 3 >= 0 tightens to x - 2 >= 0 (x >= ceil(3/2) = 2)
        let cs = s.constraints();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].to_string(), "x - 2 >= 0");
    }

    #[test]
    fn equality_divisibility_contradiction() {
        let mut s = System::new();
        s.add(Constraint::eq_zero(x() * 2 - LinExpr::constant(3)));
        assert!(s.is_contradictory());
    }

    #[test]
    fn trivial_rows() {
        let mut s = System::new();
        s.add(Constraint::geq_zero(LinExpr::constant(5)));
        assert!(s.is_empty());
        s.add(Constraint::geq_zero(LinExpr::constant(-1)));
        assert!(s.is_contradictory());
    }

    #[test]
    fn duplicate_rows_are_merged() {
        let mut s = System::new();
        s.add(Constraint::ge(x(), LinExpr::constant(1)));
        s.add(Constraint::ge(x(), LinExpr::constant(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn and_aligns_vars_by_name() {
        let mut a = System::new();
        a.add(Constraint::ge(x(), LinExpr::constant(0)));
        let mut b = System::new();
        b.add(Constraint::le(LinExpr::var("y"), x()));
        let c = a.and(&b);
        assert_eq!(c.len(), 2);
        assert!(c.eval(&|v| if v == "x" { 3 } else { 2 }));
        assert!(!c.eval(&|v| if v == "x" { 3 } else { 4 }));
    }

    #[test]
    fn substitute_eliminates() {
        let mut s = System::new();
        s.add(Constraint::le(x(), LinExpr::var("n")));
        let t = s.substitute("x", &(LinExpr::var("j") + LinExpr::constant(1)));
        assert!(t.var_index("x").is_none() || t.used_vars().iter().all(|v| v != "x"));
        assert!(t.eval(&|v| match v {
            "j" => 3,
            "n" => 4,
            _ => 0,
        }));
        assert!(!t.eval(&|v| match v {
            "j" => 4,
            "n" => 4,
            _ => 0,
        }));
    }

    #[test]
    fn enumerate_box_small() {
        let mut s = System::new();
        s.add(Constraint::ge(x(), LinExpr::constant(1)));
        s.add(Constraint::le(x(), LinExpr::constant(3)));
        let sols = s.enumerate_box(0, 5);
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn display() {
        let mut s = System::new();
        s.add(Constraint::ge(x(), LinExpr::constant(1)));
        assert_eq!(s.to_string(), "{ x - 1 >= 0 }");
    }
}
