//! Conjunctions of affine constraints over named integer variables.

use crate::error::{PolyError, Resource};
use crate::num::{floor_div, floor_div_i128, gcd_i128, gcd_slice, narrow};
use crate::{Constraint, LinExpr, Rel};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A dense row: `coeffs · vars + constant (= | >=) 0`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Row {
    pub coeffs: Vec<i64>,
    pub constant: i64,
    pub rel: Rel,
}

impl Row {
    pub fn is_trivially_true(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
            && match self.rel {
                Rel::Eq => self.constant == 0,
                Rel::Geq => self.constant >= 0,
            }
    }

    pub fn is_trivially_false(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
            && match self.rel {
                Rel::Eq => self.constant != 0,
                Rel::Geq => self.constant < 0,
            }
    }
}

/// Outcome of narrowing an exact `i128` row back to `i64`.
pub(crate) enum NarrowedRow {
    /// A representable row (GCD-reduced).
    Row(Row),
    /// The row is trivially satisfied and can be dropped.
    True,
    /// The row is a contradiction (the whole system is infeasible).
    False,
}

/// Reduce an exact `i128` row by its coefficient GCD (integer-tightening
/// the constant for `Geq`, detecting divisibility contradictions for
/// `Eq`) and narrow it to `i64`. This is the "promote to i128, reduce,
/// retry" half of the fallible arithmetic path: a row only yields
/// [`PolyError::Overflow`] if its *reduced* form genuinely does not fit.
pub(crate) fn narrow_row(
    coeffs: &[i128],
    constant: i128,
    rel: Rel,
    max_coeff: i64,
) -> Result<NarrowedRow, PolyError> {
    if coeffs.iter().all(|&c| c == 0) {
        let sat = match rel {
            Rel::Eq => constant == 0,
            Rel::Geq => constant >= 0,
        };
        return Ok(if sat {
            NarrowedRow::True
        } else {
            NarrowedRow::False
        });
    }
    let g = coeffs.iter().fold(0i128, |g, &c| gcd_i128(g, c));
    debug_assert!(g > 0);
    let constant = match rel {
        Rel::Eq => {
            if constant % g != 0 {
                return Ok(NarrowedRow::False);
            }
            constant / g
        }
        Rel::Geq => floor_div_i128(constant, g),
    };
    let ceiling = |v: i64| -> Result<i64, PolyError> {
        if v.unsigned_abs() > max_coeff.unsigned_abs() {
            Err(PolyError::Budget {
                resource: Resource::Coefficient,
                limit: max_coeff.unsigned_abs(),
            })
        } else {
            Ok(v)
        }
    };
    let mut out = Vec::with_capacity(coeffs.len());
    for &c in coeffs {
        out.push(ceiling(narrow(c / g, "row coefficient")?)?);
    }
    let constant = ceiling(narrow(constant, "row constant")?)?;
    Ok(NarrowedRow::Row(Row {
        coeffs: out,
        constant,
        rel,
    }))
}

/// A conjunction of affine constraints — an integer polyhedron.
///
/// Variables are identified by name and shared structurally: conjoining
/// two systems aligns variables by name. All variables are interpreted as
/// ranging over the integers.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::{Constraint, LinExpr, System};
/// let mut s = System::new();
/// let x = LinExpr::var("x");
/// s.add(Constraint::ge(x.clone(), LinExpr::constant(1)));
/// s.add(Constraint::le(x, LinExpr::constant(10)));
/// assert!(s.is_integer_feasible());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct System {
    // `Arc` so that the solver's many intermediate systems share one
    // allocation of the variable universe: cloning a system (the
    // Omega test, `implies` probes, `and`) bumps a refcount instead of
    // cloning every name; mutation goes through `Arc::make_mut` and
    // copies only when actually shared.
    vars: Arc<Vec<String>>,
    rows: Vec<Row>,
    contradiction: bool,
}

impl Default for System {
    fn default() -> Self {
        Self::new()
    }
}

impl System {
    /// An empty (universally true) system.
    pub fn new() -> Self {
        System {
            vars: Arc::new(Vec::new()),
            rows: Vec::new(),
            contradiction: false,
        }
    }

    /// A system over the given variables with no constraints yet.
    pub fn with_vars<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut s = Self::new();
        for n in names {
            s.ensure_var(&n.into());
        }
        s
    }

    /// A constraint-free system sharing an existing variable universe
    /// (no per-name allocation; see the `vars` field).
    pub(crate) fn with_vars_arc(vars: Arc<Vec<String>>) -> Self {
        System {
            vars,
            rows: Vec::new(),
            contradiction: false,
        }
    }

    /// The shared handle to this system's variable universe.
    pub(crate) fn vars_arc(&self) -> Arc<Vec<String>> {
        Arc::clone(&self.vars)
    }

    /// Rebuild a system from raw parts, bypassing `add`'s tightening
    /// and pruning. Deserialization only: the cache's persistence layer
    /// must reproduce a cached `System` byte-for-byte, and replaying
    /// rows through `add` would re-run dominance pruning and GCD
    /// tightening against a different insertion history. Every row must
    /// have exactly `vars.len()` coefficients.
    pub(crate) fn from_raw_parts(vars: Vec<String>, rows: Vec<Row>, contradiction: bool) -> Self {
        debug_assert!(rows.iter().all(|r| r.coeffs.len() == vars.len()));
        System {
            vars: Arc::new(vars),
            rows,
            contradiction,
        }
    }

    /// Build a system from an iterator of constraints.
    pub fn from_constraints<I>(cons: I) -> Self
    where
        I: IntoIterator<Item = Constraint>,
    {
        let mut s = Self::new();
        for c in cons {
            s.add(c);
        }
        s
    }

    /// The variables of the system, in insertion order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Number of constraints (rows).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the system has no constraints and no recorded
    /// contradiction.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() && !self.contradiction
    }

    /// True if a trivially false constraint was added.
    pub fn is_contradictory(&self) -> bool {
        self.contradiction
    }

    /// Index of a variable, adding it if new.
    pub(crate) fn ensure_var(&mut self, name: &str) -> usize {
        if let Some(i) = self.vars.iter().position(|v| v == name) {
            i
        } else {
            Arc::make_mut(&mut self.vars).push(name.to_string());
            for r in &mut self.rows {
                r.coeffs.push(0);
            }
            self.vars.len() - 1
        }
    }

    /// Index of a variable if present.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// Add a constraint (normalizing by the GCD of its coefficients; for
    /// inequalities the constant is floor-tightened, which is sound over
    /// the integers).
    pub fn add(&mut self, c: Constraint) {
        if let Some(t) = c.constant_truth() {
            if !t {
                self.contradiction = true;
            }
            return;
        }
        let mut coeffs = vec![0i64; self.vars.len()];
        for (v, k) in c.expr().iter() {
            let i = self.ensure_var(v);
            if coeffs.len() < self.vars.len() {
                coeffs.resize(self.vars.len(), 0);
            }
            coeffs[i] = k;
        }
        coeffs.resize(self.vars.len(), 0);
        let row = Row {
            coeffs,
            constant: c.expr().constant_part(),
            rel: c.rel(),
        };
        self.push_row(row);
    }

    /// Add several constraints.
    pub fn add_all<I: IntoIterator<Item = Constraint>>(&mut self, cons: I) {
        for c in cons {
            self.add(c);
        }
    }

    pub(crate) fn push_row(&mut self, mut row: Row) {
        debug_assert_eq!(row.coeffs.len(), self.vars.len());
        let g = gcd_slice(&row.coeffs);
        if g == 0 {
            // constant row
            let ok = match row.rel {
                Rel::Eq => row.constant == 0,
                Rel::Geq => row.constant >= 0,
            };
            if !ok {
                self.contradiction = true;
            }
            return;
        }
        if g > 1 {
            match row.rel {
                Rel::Eq => {
                    if row.constant % g != 0 {
                        // e.g. 2x + 1 = 0 has no integer solution
                        self.contradiction = true;
                        return;
                    }
                    row.constant /= g;
                }
                Rel::Geq => {
                    // gcd-tighten: g·e + c >= 0  ⇔  e >= ceil(-c/g)
                    row.constant = floor_div(row.constant, g);
                }
            }
            for c in &mut row.coeffs {
                *c /= g;
            }
        }
        if row.is_trivially_false() {
            self.contradiction = true;
            return;
        }
        if row.is_trivially_true() {
            return;
        }
        // Dominance pruning (Imbert-style, on normalized rows): a new row
        // whose coefficient vector matches an existing row — directly or
        // negated — is either redundant, tightens the existing row in
        // place, or exposes a contradiction. Keeping only the dominant
        // row shrinks every later Fourier–Motzkin product. Pruning rides
        // the engine flag (`cache::set_cache_enabled`) so baseline
        // measurements see pre-memoization row growth; the represented
        // set is identical either way.
        if !crate::cache::cache_enabled() {
            // Pre-memoization behavior: exact-duplicate elimination only.
            if !self.rows.contains(&row) {
                self.rows.push(row);
            }
            return;
        }
        enum Act {
            DropNew,
            Contradict,
            Replace(usize),
            Tighten(usize, i64),
        }
        let mut act = None;
        for (i, r) in self.rows.iter().enumerate() {
            let same = r.coeffs == row.coeffs;
            let negated = !same && r.coeffs.iter().zip(&row.coeffs).all(|(&a, &b)| a == -b);
            if !same && !negated {
                continue;
            }
            // `sum >= 0` iff the pair of constraints is consistent in the
            // negated cases; in i128 to sidestep overflow.
            let sum = r.constant as i128 + row.constant as i128;
            act = Some(match (same, r.rel, row.rel) {
                // e + c1 = 0 vs e + c2 = 0: equal or contradictory.
                (true, Rel::Eq, Rel::Eq) => {
                    if r.constant == row.constant {
                        Act::DropNew
                    } else {
                        Act::Contradict
                    }
                }
                // e + c1 >= 0 vs e + c2 >= 0: keep the smaller constant.
                (true, Rel::Geq, Rel::Geq) => {
                    if row.constant >= r.constant {
                        Act::DropNew
                    } else {
                        Act::Tighten(i, row.constant)
                    }
                }
                // e + c1 = 0 forces e = -c1; e + c2 >= 0 iff c2 >= c1.
                (true, Rel::Eq, Rel::Geq) => {
                    if row.constant >= r.constant {
                        Act::DropNew
                    } else {
                        Act::Contradict
                    }
                }
                // e + c1 >= 0 vs new e + c2 = 0: equality subsumes or
                // contradicts the inequality.
                (true, Rel::Geq, Rel::Eq) => {
                    if r.constant >= row.constant {
                        Act::Replace(i)
                    } else {
                        Act::Contradict
                    }
                }
                // e + c1 = 0 vs -e + c2 = 0: consistent iff c1 = -c2.
                (false, Rel::Eq, Rel::Eq) => {
                    if sum == 0 {
                        Act::DropNew
                    } else {
                        Act::Contradict
                    }
                }
                // e + c1 >= 0 and -e + c2 >= 0: empty band iff c1+c2 < 0.
                (false, Rel::Geq, Rel::Geq) => {
                    if sum < 0 {
                        Act::Contradict
                    } else {
                        continue; // a genuine two-sided bound: keep both
                    }
                }
                (false, Rel::Eq, Rel::Geq) => {
                    if sum >= 0 {
                        Act::DropNew
                    } else {
                        Act::Contradict
                    }
                }
                (false, Rel::Geq, Rel::Eq) => {
                    if sum >= 0 {
                        Act::Replace(i)
                    } else {
                        Act::Contradict
                    }
                }
            });
            break;
        }
        match act {
            None => self.rows.push(row),
            Some(Act::DropNew) => crate::cache::note_fm_pruned(1),
            Some(Act::Contradict) => self.contradiction = true,
            Some(Act::Replace(i)) => {
                self.rows[i] = row;
                crate::cache::note_fm_pruned(1);
            }
            Some(Act::Tighten(i, c)) => {
                self.rows[i].constant = c;
                crate::cache::note_fm_pruned(1);
            }
        }
    }

    /// Conjoin with another system (aligning variables by name).
    pub fn and(&self, other: &System) -> System {
        let mut out = self.clone();
        if other.contradiction {
            out.contradiction = true;
            return out;
        }
        if !crate::cache::cache_enabled() {
            // Pre-memoization path: round-trip through sparse
            // constraints (kept for baseline measurements).
            for c in other.constraints() {
                out.add(c);
            }
            return out;
        }
        // Dense conjunction: push the same rows in the same order as
        // the sparse path — including its variable-universe growth
        // order (within each row, unseen variables appear name-sorted)
        // — without materializing string-keyed constraints.
        let mut order: Vec<usize> = (0..other.vars.len()).collect();
        order.sort_by(|&a, &b| other.vars[a].cmp(&other.vars[b]));
        let mut map: Vec<Option<usize>> = other.vars.iter().map(|v| out.var_index(v)).collect();
        for r in &other.rows {
            for &j in &order {
                if r.coeffs[j] != 0 && map[j].is_none() {
                    map[j] = Some(out.ensure_var(&other.vars[j]));
                }
            }
            let mut coeffs = vec![0i64; out.vars.len()];
            for (j, &c) in r.coeffs.iter().enumerate() {
                if c != 0 {
                    coeffs[map[j].expect("mapped above")] = c;
                }
            }
            out.push_row(Row {
                coeffs,
                constant: r.constant,
                rel: r.rel,
            });
        }
        out
    }

    /// Convert rows back to sparse constraints.
    pub fn constraints(&self) -> Vec<Constraint> {
        self.rows
            .iter()
            .map(|r| {
                let mut e = LinExpr::constant(r.constant);
                for (i, &c) in r.coeffs.iter().enumerate() {
                    e.add_term(&self.vars[i], c);
                }
                match r.rel {
                    Rel::Eq => Constraint::eq_zero(e),
                    Rel::Geq => Constraint::geq_zero(e),
                }
            })
            .collect()
    }

    /// Syntactic domination: does some single row of `self` already
    /// imply constraint `c`? Sound but incomplete — used as a fast path
    /// in [`crate::simplify::implies`] to skip the Omega query for the
    /// common case where `c` is (a weakening of) a stored row. The
    /// check normalizes `c` exactly as [`Self::add`] would, so GCD
    /// tightening is taken into account.
    pub(crate) fn dominates(&self, c: &Constraint) -> bool {
        if let Some(t) = c.constant_truth() {
            return t;
        }
        let mut coeffs = vec![0i64; self.vars.len()];
        for (v, k) in c.expr().iter() {
            match self.var_index(v) {
                Some(i) => coeffs[i] = k,
                // a variable `self` knows nothing about: cannot be
                // implied by a single row
                None => return false,
            }
        }
        let mut constant = c.expr().constant_part();
        let g = gcd_slice(&coeffs);
        if g == 0 {
            return match c.rel() {
                Rel::Eq => constant == 0,
                Rel::Geq => constant >= 0,
            };
        }
        if g > 1 {
            match c.rel() {
                Rel::Eq => {
                    if constant % g != 0 {
                        return false;
                    }
                    constant /= g;
                }
                Rel::Geq => constant = floor_div(constant, g),
            }
            for x in &mut coeffs {
                *x /= g;
            }
        }
        self.rows.iter().any(|r| {
            let same = r.coeffs == coeffs;
            let negated = !same && r.coeffs.iter().zip(&coeffs).all(|(&a, &b)| a == -b);
            match (same, negated, r.rel, c.rel()) {
                // e + rc = 0 pins e; c follows iff it holds at -rc.
                (true, _, Rel::Eq, Rel::Eq) => r.constant == constant,
                (true, _, Rel::Eq, Rel::Geq) => constant >= r.constant,
                // e >= -rc >= -cc.
                (true, _, Rel::Geq, Rel::Geq) => constant >= r.constant,
                // -e + rc = 0 pins e = rc; evaluate c there.
                (_, true, Rel::Eq, Rel::Eq) => r.constant + constant == 0,
                (_, true, Rel::Eq, Rel::Geq) => r.constant + constant >= 0,
                _ => false,
            }
        })
    }

    /// Sound-but-incomplete two-row implication: does some nonnegative
    /// rational combination `λ1·r1 + λ2·r2` of two stored rows yield the
    /// (Geq) candidate's coefficient vector with at least its constant
    /// slack? This certifies transitive bound chains — `i ≤ j ∧ j ≤ N ⊨
    /// i ≤ N` — without an Omega query. Exact integer arithmetic via
    /// cross-multiplied 2×2 determinants (i128); equality rows admit
    /// either sign of λ. Only `Geq` candidates are attempted.
    pub(crate) fn dominates_pair(&self, c: &Constraint) -> bool {
        if c.rel() != Rel::Geq {
            return false;
        }
        let mut coeffs = vec![0i64; self.vars.len()];
        for (v, k) in c.expr().iter() {
            match self.var_index(v) {
                Some(i) => coeffs[i] = k,
                None => return false,
            }
        }
        let mut constant = c.expr().constant_part();
        let g = gcd_slice(&coeffs);
        if g == 0 {
            return constant >= 0;
        }
        if g > 1 {
            constant = floor_div(constant, g);
            for x in &mut coeffs {
                *x /= g;
            }
        }
        // Rows sharing a variable with the candidate; columns outside
        // the candidate's support must cancel between the pair, so a row
        // disjoint from the candidate can only contribute via such a
        // cancellation partner — rare enough to ignore.
        let relevant: Vec<&Row> = self
            .rows
            .iter()
            .filter(|r| {
                r.coeffs
                    .iter()
                    .zip(&coeffs)
                    .any(|(&a, &b)| b != 0 && a != 0)
            })
            .collect();
        for (i, r1) in relevant.iter().enumerate() {
            for r2 in &relevant[i + 1..] {
                // pick two columns giving an invertible 2×2 system
                let mut piv = None;
                'cols: for p in 0..coeffs.len() {
                    for q in (p + 1)..coeffs.len() {
                        let det = (r1.coeffs[p] as i128) * (r2.coeffs[q] as i128)
                            - (r1.coeffs[q] as i128) * (r2.coeffs[p] as i128);
                        if det != 0 {
                            piv = Some((p, q, det));
                            break 'cols;
                        }
                    }
                }
                let Some((p, q, det)) = piv else { continue };
                // λ1 = det1/det, λ2 = det2/det (Cramer)
                let det1 = (coeffs[p] as i128) * (r2.coeffs[q] as i128)
                    - (coeffs[q] as i128) * (r2.coeffs[p] as i128);
                let det2 = (r1.coeffs[p] as i128) * (coeffs[q] as i128)
                    - (r1.coeffs[q] as i128) * (coeffs[p] as i128);
                // sign conditions: λ ≥ 0 required for Geq rows
                let s = if det < 0 { -1i128 } else { 1 };
                if (r1.rel == Rel::Geq && s * det1 < 0) || (r2.rel == Rel::Geq && s * det2 < 0) {
                    continue;
                }
                // verify every column: det·c = det1·r1 + det2·r2
                let ok = (0..coeffs.len()).all(|k| {
                    det * (coeffs[k] as i128)
                        == det1 * (r1.coeffs[k] as i128) + det2 * (r2.coeffs[k] as i128)
                });
                if !ok {
                    continue;
                }
                // constant slack: det·cc ≥ det1·c1 + det2·c2 (flip if det < 0)
                let lhs = det * (constant as i128);
                let rhs = det1 * (r1.constant as i128) + det2 * (r2.constant as i128);
                if (det > 0 && lhs >= rhs) || (det < 0 && lhs <= rhs) {
                    return true;
                }
            }
        }
        false
    }

    pub(crate) fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub(crate) fn set_contradiction(&mut self) {
        self.contradiction = true;
    }

    /// Drop a variable column entirely (the caller guarantees no row uses
    /// it).
    pub(crate) fn drop_var_column(&mut self, idx: usize) {
        debug_assert!(self.rows.iter().all(|r| r.coeffs[idx] == 0));
        Arc::make_mut(&mut self.vars).remove(idx);
        for r in &mut self.rows {
            r.coeffs.remove(idx);
        }
    }

    /// Evaluate the whole system under a total assignment.
    pub fn eval(&self, env: &dyn Fn(&str) -> i64) -> bool {
        if self.contradiction {
            return false;
        }
        self.constraints().iter().all(|c| c.eval(env))
    }

    /// Rename a variable throughout.
    ///
    /// # Panics
    ///
    /// Panics if `to` is already a variable of the system.
    pub fn rename_var(&mut self, from: &str, to: &str) {
        if let Some(_i) = self.var_index(from) {
            assert!(
                self.var_index(to).is_none(),
                "rename_var would merge {from} into existing {to}"
            );
            for v in Arc::make_mut(&mut self.vars) {
                if v == from {
                    *v = to.to_string();
                }
            }
        }
    }

    /// Apply a renaming function to all variables at once.
    ///
    /// # Panics
    ///
    /// Panics if the renaming is not injective on this system's variables.
    pub fn rename_all(&mut self, f: &dyn Fn(&str) -> String) {
        let new: Vec<String> = self.vars.iter().map(|v| f(v)).collect();
        let distinct: BTreeSet<&String> = new.iter().collect();
        assert_eq!(distinct.len(), new.len(), "rename_all must be injective");
        self.vars = Arc::new(new);
    }

    /// Substitute an affine expression for a variable (exact; used when a
    /// variable is defined by an equality with unit coefficient).
    pub fn substitute(&self, name: &str, replacement: &LinExpr) -> System {
        let mut out = System::new();
        // keep variable universe stable (minus `name`, plus replacement's)
        for v in self.vars.iter() {
            if v != name {
                out.ensure_var(v);
            }
        }
        for v in replacement.vars() {
            out.ensure_var(v);
        }
        if self.contradiction {
            out.contradiction = true;
            return out;
        }
        for c in self.constraints() {
            out.add(c.substitute(name, replacement));
        }
        out
    }

    /// Fallible [`Self::substitute`]: the string-keyed (sparse) variant
    /// used by the engine-off Omega baseline, with every coefficient
    /// product overflow-checked.
    pub fn try_substitute(
        &self,
        name: &str,
        replacement: &LinExpr,
    ) -> Result<System, crate::error::PolyError> {
        let mut out = System::new();
        for v in self.vars.iter() {
            if v != name {
                out.ensure_var(v);
            }
        }
        for v in replacement.vars() {
            out.ensure_var(v);
        }
        if self.contradiction {
            out.contradiction = true;
            return Ok(out);
        }
        for c in self.constraints() {
            out.add(c.try_substitute(name, replacement)?);
        }
        Ok(out)
    }

    /// Dense variable substitution used by the Omega test's equality
    /// elimination: rebuild the system with column `k` replaced by the
    /// affine form `repl · vars + repl_const` (where `repl` is indexed
    /// by this system's columns and `repl[k]` is ignored), optionally
    /// appending one fresh variable with the given coefficient. Row
    /// values, row order and variable order are exactly those of the
    /// sparse path `self.substitute(...)` + column drop, so the two are
    /// interchangeable; this one skips the string-keyed round trip.
    ///
    /// Every row is computed exactly in `i128` and narrowed via
    /// [`narrow_row`], so substitution never wraps or panics: rows whose
    /// reduced form exceeds `i64` (or `max_coeff`) surface a
    /// [`PolyError`].
    pub(crate) fn try_substitute_col(
        &self,
        k: usize,
        repl: &[i64],
        repl_const: i64,
        extra: Option<(&str, i64)>,
        max_coeff: i64,
    ) -> Result<System, PolyError> {
        let mut names: Vec<String> = Vec::with_capacity(self.vars.len() + 1);
        for (i, v) in self.vars.iter().enumerate() {
            if i != k {
                names.push(v.clone());
            }
        }
        if let Some((name, _)) = extra {
            names.push(name.to_string());
        }
        let mut out = System::with_vars_arc(Arc::new(names));
        if self.contradiction {
            out.contradiction = true;
            return Ok(out);
        }
        let n = out.vars.len();
        for r in &self.rows {
            let c = r.coeffs[k] as i128;
            let mut coeffs: Vec<i128> = Vec::with_capacity(n);
            for (i, &a) in r.coeffs.iter().enumerate() {
                if i != k {
                    coeffs.push(a as i128 + c * repl[i] as i128);
                }
            }
            if let Some((_, ec)) = extra {
                coeffs.push(c * ec as i128);
            }
            let constant = r.constant as i128 + c * repl_const as i128;
            match narrow_row(&coeffs, constant, r.rel, max_coeff)? {
                NarrowedRow::Row(row) => out.push_row(row),
                NarrowedRow::True => {}
                NarrowedRow::False => {
                    out.contradiction = true;
                    return Ok(out);
                }
            }
        }
        Ok(out)
    }

    /// The variables that actually occur with non-zero coefficient.
    pub fn used_vars(&self) -> Vec<String> {
        let mut used = Vec::new();
        for (i, v) in self.vars.iter().enumerate() {
            if self.rows.iter().any(|r| r.coeffs[i] != 0) {
                used.push(v.clone());
            }
        }
        used
    }

    /// Brute-force enumeration of all solutions with every variable in
    /// `[lo, hi]`. Only for tests on tiny boxes.
    pub fn enumerate_box(&self, lo: i64, hi: i64) -> Vec<Vec<i64>> {
        let n = self.vars.len();
        let mut out = Vec::new();
        if self.contradiction {
            return out;
        }
        let mut point = vec![lo; n];
        'outer: loop {
            let env = |v: &str| {
                let i = self.var_index(v).unwrap();
                point[i]
            };
            if self.eval(&env) {
                out.push(point.clone());
            }
            // odometer
            for i in 0..n {
                if point[i] < hi {
                    point[i] += 1;
                    for p in point.iter_mut().take(i) {
                        *p = lo;
                    }
                    continue 'outer;
                }
            }
            break;
        }
        if n == 0 && self.rows.is_empty() && !self.contradiction {
            // the empty system has the single empty solution (already
            // pushed above by the first loop pass)
        }
        out
    }
}

impl FromIterator<Constraint> for System {
    fn from_iter<I: IntoIterator<Item = Constraint>>(iter: I) -> Self {
        System::from_constraints(iter)
    }
}

impl Extend<Constraint> for System {
    fn extend<I: IntoIterator<Item = Constraint>>(&mut self, iter: I) {
        self.add_all(iter);
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.contradiction {
            return write!(f, "{{ false }}");
        }
        write!(f, "{{ ")?;
        for (i, c) in self.constraints().iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> LinExpr {
        LinExpr::var("x")
    }

    #[test]
    fn add_and_normalize() {
        let mut s = System::new();
        s.add(Constraint::geq_zero(x() * 2 - LinExpr::constant(3)));
        // 2x - 3 >= 0 tightens to x - 2 >= 0 (x >= ceil(3/2) = 2)
        let cs = s.constraints();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].to_string(), "x - 2 >= 0");
    }

    #[test]
    fn equality_divisibility_contradiction() {
        let mut s = System::new();
        s.add(Constraint::eq_zero(x() * 2 - LinExpr::constant(3)));
        assert!(s.is_contradictory());
    }

    #[test]
    fn trivial_rows() {
        let mut s = System::new();
        s.add(Constraint::geq_zero(LinExpr::constant(5)));
        assert!(s.is_empty());
        s.add(Constraint::geq_zero(LinExpr::constant(-1)));
        assert!(s.is_contradictory());
    }

    #[test]
    fn duplicate_rows_are_merged() {
        let mut s = System::new();
        s.add(Constraint::ge(x(), LinExpr::constant(1)));
        s.add(Constraint::ge(x(), LinExpr::constant(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn and_aligns_vars_by_name() {
        let mut a = System::new();
        a.add(Constraint::ge(x(), LinExpr::constant(0)));
        let mut b = System::new();
        b.add(Constraint::le(LinExpr::var("y"), x()));
        let c = a.and(&b);
        assert_eq!(c.len(), 2);
        assert!(c.eval(&|v| if v == "x" { 3 } else { 2 }));
        assert!(!c.eval(&|v| if v == "x" { 3 } else { 4 }));
    }

    #[test]
    fn substitute_eliminates() {
        let mut s = System::new();
        s.add(Constraint::le(x(), LinExpr::var("n")));
        let t = s.substitute("x", &(LinExpr::var("j") + LinExpr::constant(1)));
        assert!(t.var_index("x").is_none() || t.used_vars().iter().all(|v| v != "x"));
        assert!(t.eval(&|v| match v {
            "j" => 3,
            "n" => 4,
            _ => 0,
        }));
        assert!(!t.eval(&|v| match v {
            "j" => 4,
            "n" => 4,
            _ => 0,
        }));
    }

    #[test]
    fn enumerate_box_small() {
        let mut s = System::new();
        s.add(Constraint::ge(x(), LinExpr::constant(1)));
        s.add(Constraint::le(x(), LinExpr::constant(3)));
        let sols = s.enumerate_box(0, 5);
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn display() {
        let mut s = System::new();
        s.add(Constraint::ge(x(), LinExpr::constant(1)));
        assert_eq!(s.to_string(), "{ x - 1 >= 0 }");
    }
}
