//! Sparse affine expressions over named integer variables.
//!
//! [`LinExpr`] is the crate's public currency: callers build constraints
//! from expressions like `25*b - 24 <= j` without committing to any
//! particular variable ordering. [`crate::System`] converts them to dense
//! rows internally.

use crate::error::PolyError;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A sparse affine (linear + constant) expression with integer
/// coefficients over named variables.
///
/// Zero-coefficient terms are never stored, so two expressions are equal
/// (`==`) exactly when they denote the same affine function.
///
/// # Examples
///
/// ```
/// use shackle_polyhedra::LinExpr;
/// let e = LinExpr::var("i") * 2 + LinExpr::var("j") - LinExpr::constant(3);
/// assert_eq!(e.coeff("i"), 2);
/// assert_eq!(e.coeff("k"), 0);
/// assert_eq!(e.constant_part(), -3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinExpr {
    terms: BTreeMap<String, i64>,
    constant: i64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// The expression consisting of a single variable with coefficient 1.
    pub fn var(name: impl Into<String>) -> Self {
        Self::term(name, 1)
    }

    /// A single term `coeff * name`.
    pub fn term(name: impl Into<String>, coeff: i64) -> Self {
        let mut e = Self::zero();
        e.add_term(&name.into(), coeff);
        e
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        Self {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The constant part of the expression.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// Alias for [`Self::constant_part`], reads well in tests.
    pub fn constant_value(&self) -> i64 {
        self.constant
    }

    /// Shorthand used widely in this workspace.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `name` (0 if absent).
    pub fn coeff(&self, name: &str) -> i64 {
        self.terms.get(name).copied().unwrap_or(0)
    }

    /// Iterate over `(variable, coefficient)` pairs with non-zero
    /// coefficients, in lexicographic variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> {
        self.terms.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The set of variables with non-zero coefficients.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.terms.keys().map(|k| k.as_str())
    }

    /// True if the expression is a constant (possibly zero).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Add `coeff * name` in place, dropping the term if it cancels.
    pub fn add_term(&mut self, name: &str, coeff: i64) {
        if coeff == 0 {
            return;
        }
        let entry = self.terms.entry(name.to_string()).or_insert(0);
        *entry = entry
            .checked_add(coeff)
            .expect("coefficient overflow in LinExpr");
        if *entry == 0 {
            self.terms.remove(name);
        }
    }

    /// Add a constant in place.
    pub fn add_constant(&mut self, c: i64) {
        self.constant = self
            .constant
            .checked_add(c)
            .expect("constant overflow in LinExpr");
    }

    /// Fallible in-place `self += coeff * name`: reports coefficient
    /// overflow as a [`PolyError`] instead of panicking.
    pub fn try_add_term(&mut self, name: &str, coeff: i64) -> Result<(), PolyError> {
        const OVF: PolyError = PolyError::Overflow {
            context: "linear expression",
        };
        if coeff == 0 {
            return Ok(());
        }
        let entry = self.terms.entry(name.to_string()).or_insert(0);
        *entry = entry.checked_add(coeff).ok_or(OVF)?;
        if *entry == 0 {
            self.terms.remove(name);
        }
        Ok(())
    }

    /// Fallible scalar multiple: `Ok(k * self)` unless a coefficient or
    /// the constant leaves i64.
    pub fn try_scale(&self, k: i64) -> Result<LinExpr, PolyError> {
        const OVF: PolyError = PolyError::Overflow {
            context: "linear expression",
        };
        if k == 0 {
            return Ok(LinExpr::zero());
        }
        let mut out = self.clone();
        for c in out.terms.values_mut() {
            *c = c.checked_mul(k).ok_or(OVF)?;
        }
        out.constant = out.constant.checked_mul(k).ok_or(OVF)?;
        Ok(out)
    }

    /// Fallible [`Self::substitute`]: the scaled replacement and the
    /// merged terms are all overflow-checked.
    pub fn try_substitute(&self, name: &str, replacement: &LinExpr) -> Result<LinExpr, PolyError> {
        const OVF: PolyError = PolyError::Overflow {
            context: "linear expression",
        };
        let c = self.coeff(name);
        if c == 0 {
            return Ok(self.clone());
        }
        let mut out = self.clone();
        out.terms.remove(name);
        let scaled = replacement.try_scale(c)?;
        for (v, k) in scaled.iter() {
            out.try_add_term(v, k)?;
        }
        out.constant = out.constant.checked_add(scaled.constant).ok_or(OVF)?;
        Ok(out)
    }

    /// Substitute `replacement` for `name`: every occurrence `c * name`
    /// becomes `c * replacement`.
    ///
    /// # Examples
    ///
    /// ```
    /// use shackle_polyhedra::LinExpr;
    /// let e = LinExpr::var("i") * 2 + LinExpr::constant(1);
    /// let s = e.substitute("i", &(LinExpr::var("j") + LinExpr::constant(5)));
    /// assert_eq!(s, LinExpr::var("j") * 2 + LinExpr::constant(11));
    /// ```
    pub fn substitute(&self, name: &str, replacement: &LinExpr) -> LinExpr {
        let c = self.coeff(name);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(name);
        out + replacement.clone() * c
    }

    /// Rename a variable (no-op if absent).
    ///
    /// # Panics
    ///
    /// Panics if `to` already occurs in the expression with a non-zero
    /// coefficient: renaming must not silently merge distinct variables.
    pub fn rename(&self, from: &str, to: &str) -> LinExpr {
        let c = self.coeff(from);
        if c == 0 {
            return self.clone();
        }
        assert_eq!(
            self.coeff(to),
            0,
            "rename would merge variables {from} and {to}"
        );
        let mut out = self.clone();
        out.terms.remove(from);
        out.add_term(to, c);
        out
    }

    /// Evaluate under a total assignment.
    ///
    /// # Panics
    ///
    /// Panics if a variable is missing from `env` or on overflow.
    pub fn eval(&self, env: &dyn Fn(&str) -> i64) -> i64 {
        let mut acc = self.constant;
        for (v, c) in self.iter() {
            acc = acc
                .checked_add(c.checked_mul(env(v)).expect("eval overflow"))
                .expect("eval overflow");
        }
        acc
    }
}

impl From<i64> for LinExpr {
    fn from(c: i64) -> Self {
        LinExpr::constant(c)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            self.add_term(&v, c);
        }
        self.add_constant(rhs.constant);
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self * -1
    }
}

impl Mul<i64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::zero();
        }
        for c in self.terms.values_mut() {
            *c = c.checked_mul(k).expect("coefficient overflow in LinExpr");
        }
        self.constant = self
            .constant
            .checked_mul(k)
            .expect("constant overflow in LinExpr");
        self
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.iter() {
            if first {
                match c {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    _ => write!(f, "{c}{v}")?,
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}{v}")?;
                }
            } else if c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_cancellation() {
        let e = LinExpr::var("i") + LinExpr::var("j") - LinExpr::var("i");
        assert_eq!(e, LinExpr::var("j"));
        assert!(!e.is_constant());
        assert!((e.clone() - e).is_constant());
    }

    #[test]
    fn display() {
        let e = LinExpr::term("i", 2) - LinExpr::var("j") + LinExpr::constant(-3);
        assert_eq!(e.to_string(), "2i - j - 3");
        assert_eq!(LinExpr::zero().to_string(), "0");
        assert_eq!((-LinExpr::var("x")).to_string(), "-x");
    }

    #[test]
    fn substitute_and_rename() {
        let e = LinExpr::term("i", 3) + LinExpr::var("j");
        let s = e.substitute("i", &LinExpr::constant(2));
        assert_eq!(s, LinExpr::var("j") + LinExpr::constant(6));
        let r = e.rename("i", "k");
        assert_eq!(r.coeff("k"), 3);
        assert_eq!(r.coeff("i"), 0);
    }

    #[test]
    #[should_panic(expected = "merge")]
    fn rename_refuses_merge() {
        let e = LinExpr::var("i") + LinExpr::var("j");
        let _ = e.rename("i", "j");
    }

    #[test]
    fn eval() {
        let e = LinExpr::term("i", 2) + LinExpr::constant(5);
        assert_eq!(e.eval(&|v| if v == "i" { 10 } else { 0 }), 25);
    }
}
