//! Fallible-solver vocabulary: [`PolyError`], [`Budget`], [`Verdict`].
//!
//! The Omega test and Fourier–Motzkin elimination grow coefficients
//! exponentially in elimination depth, and the splinter phase can fan
//! out combinatorially. A production pipeline cannot afford to abort
//! the process when an adversarial (but parser-accepted) kernel drives
//! the solver into that regime, so every solver entry point has a
//! fallible form:
//!
//! * arithmetic that would overflow `i64` is **retried in `i128`** and
//!   GCD-reduced before giving up; only a row that genuinely cannot be
//!   represented yields [`PolyError::Overflow`];
//! * structural resource use (rows, recursion depth, splinters,
//!   coefficient magnitude) is metered against a [`Budget`]; exhaustion
//!   yields [`PolyError::Budget`];
//! * callers that only care about satisfiability receive a three-valued
//!   [`Verdict`] — `Yes` and `No` are *proven* answers (independent of
//!   the budget that produced them), `Unknown` means the budget ran out
//!   first and the caller must degrade conservatively.

use std::fmt;

/// Why a polyhedral operation could not produce a proven answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolyError {
    /// A coefficient or constant exceeded `i64` even after promoting
    /// the computation to `i128` and reducing the row by its GCD.
    Overflow {
        /// Which operation overflowed (static context string).
        context: &'static str,
    },
    /// A [`Budget`] resource was exhausted before an answer was proven.
    Budget {
        /// Which resource ran out.
        resource: Resource,
        /// The configured limit that was hit.
        limit: u64,
    },
}

/// The meterable resources of a [`Budget`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Rows in any intermediate system ([`Budget::max_rows`]).
    Rows,
    /// Recursion depth of the Omega test ([`Budget::max_depth`]).
    Depth,
    /// Splinter sub-problems spawned by one query
    /// ([`Budget::max_splinters`]).
    Splinters,
    /// Magnitude of any coefficient after reduction
    /// ([`Budget::max_coeff`]).
    Coefficient,
}

impl fmt::Display for PolyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolyError::Overflow { context } => {
                write!(f, "i64 overflow (after i128 promotion) in {context}")
            }
            PolyError::Budget { resource, limit } => {
                let what = match resource {
                    Resource::Rows => "row",
                    Resource::Depth => "elimination depth",
                    Resource::Splinters => "splinter",
                    Resource::Coefficient => "coefficient magnitude",
                };
                write!(f, "polyhedral {what} budget exhausted (limit {limit})")
            }
        }
    }
}

impl std::error::Error for PolyError {}

/// Resource limits for one top-level solver query.
///
/// The default budget is deliberately generous: every in-repo kernel —
/// and every system a realistic shackling search produces — resolves
/// well inside it (the `poly.unknown` probe counter stays at zero
/// across full searches). The limits exist to bound adversarial
/// queries, not to ration ordinary ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Budget {
    /// Maximum rows in any intermediate system.
    pub max_rows: usize,
    /// Maximum recursion depth of the Omega test (each inexact
    /// elimination and each splinter descends one level).
    pub max_depth: usize,
    /// Maximum splinter sub-problems spawned by one top-level query.
    pub max_splinters: u64,
    /// Maximum absolute value of any coefficient or constant after GCD
    /// reduction.
    pub max_coeff: i64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_rows: 4096,
            max_depth: 500,
            max_splinters: 100_000,
            max_coeff: i64::MAX,
        }
    }
}

impl Budget {
    /// A deliberately tiny budget, useful in tests that want to observe
    /// `Unknown` verdicts without constructing huge systems.
    pub fn strict() -> Self {
        Budget {
            max_rows: 16,
            max_depth: 4,
            max_splinters: 4,
            max_coeff: 1 << 20,
        }
    }

    /// Stable fingerprint of the limits, used to key budget-dependent
    /// (`Unknown`) cache entries separately per budget.
    pub(crate) fn fingerprint(&self) -> u64 {
        // FNV-1a over the four limits; stable across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in [
            self.max_rows as u64,
            self.max_depth as u64,
            self.max_splinters,
            self.max_coeff as u64,
        ] {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// Three-valued answer to "does this system have an integer point?".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Proven satisfiable. Exact; independent of the budget used.
    Yes,
    /// Proven unsatisfiable. Exact; independent of the budget used.
    No,
    /// The budget was exhausted (or arithmetic overflowed) before
    /// either proof completed. Consumers must degrade conservatively:
    /// legality treats `Unknown` as a potential violation and rejects
    /// the candidate shackle, which keeps generated code correct.
    Unknown,
}

impl Verdict {
    /// `Yes`/`No` as a bool; `None` for `Unknown`.
    pub fn known(self) -> Option<bool> {
        match self {
            Verdict::Yes => Some(true),
            Verdict::No => Some(false),
            Verdict::Unknown => None,
        }
    }

    /// Wrap a proven bool answer.
    pub fn proven(b: bool) -> Self {
        if b {
            Verdict::Yes
        } else {
            Verdict::No
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Yes => "yes",
            Verdict::No => "no",
            Verdict::Unknown => "unknown",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_round_trips_proven_bools() {
        assert_eq!(Verdict::proven(true), Verdict::Yes);
        assert_eq!(Verdict::proven(false), Verdict::No);
        assert_eq!(Verdict::Yes.known(), Some(true));
        assert_eq!(Verdict::No.known(), Some(false));
        assert_eq!(Verdict::Unknown.known(), None);
    }

    #[test]
    fn budget_fingerprint_distinguishes_limits() {
        let a = Budget::default();
        let mut b = Budget::default();
        b.max_splinters += 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), Budget::default().fingerprint());
    }

    #[test]
    fn errors_render_their_context() {
        let e = PolyError::Overflow {
            context: "fm combine",
        };
        assert!(e.to_string().contains("fm combine"));
        let e = PolyError::Budget {
            resource: Resource::Splinters,
            limit: 4,
        };
        assert!(e.to_string().contains("splinter"));
        assert!(e.to_string().contains('4'));
    }
}
