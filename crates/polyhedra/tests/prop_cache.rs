//! Property tests for the memoized query engine: on random systems,
//! every cached entry point (cold cache, warm cache) answers exactly
//! as the uncached engine. The uncached pipeline is the oracle, so
//! these cover the fast paths the engine flag enables — syntactic
//! dominance in `implies`, pairwise-exact elimination, dense gist —
//! against the pre-memoization implementations.

use proptest::prelude::*;
use shackle_polyhedra::{cache, Constraint, LinExpr, System};
use std::sync::Mutex;

/// The engine flag and the query cache are process-global; every case
/// flips them, so cases from different tests must not interleave.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A random affine expression over x, y, z with small coefficients.
fn lin_expr() -> impl Strategy<Value = LinExpr> {
    (-3i64..=3, -3i64..=3, -3i64..=3, -6i64..=6).prop_map(|(a, b, c, k)| {
        LinExpr::term("x", a) + LinExpr::term("y", b) + LinExpr::term("z", c) + LinExpr::constant(k)
    })
}

fn constraint() -> impl Strategy<Value = Constraint> {
    (lin_expr(), prop::bool::ANY).prop_map(|(e, eq)| {
        if eq {
            Constraint::eq_zero(e)
        } else {
            Constraint::geq_zero(e)
        }
    })
}

/// Random systems, deliberately *unboxed* (unlike `prop_omega`) so the
/// solver also hits inexact eliminations and unbounded variables.
fn system() -> impl Strategy<Value = System> {
    prop::collection::vec(constraint(), 1..6).prop_map(System::from_constraints)
}

/// Render a system in a byte-comparable form (constraints in stored
/// order plus the variable universe).
fn fingerprint(sys: &System) -> String {
    format!("{:?} |- {}", sys.vars(), sys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Feasibility: uncached == memoized-cold == memoized-warm.
    #[test]
    fn feasibility_agrees(sys in system()) {
        let _g = lock();
        let was = cache::set_cache_enabled(false);
        let oracle = sys.is_integer_feasible();
        cache::set_cache_enabled(true);
        cache::clear_cache();
        let cold = sys.is_integer_feasible();
        let warm = sys.is_integer_feasible();
        cache::set_cache_enabled(was);
        prop_assert_eq!(oracle, cold, "cold cache diverged on {}", &sys);
        prop_assert_eq!(oracle, warm, "warm cache diverged on {}", &sys);
    }

    /// Projection: same exactness flag and the same solution set. The
    /// engine's redundant-row pruning may drop rows the uncached
    /// pipeline keeps (e.g. a bound dominated by a tighter one), so
    /// engine-vs-oracle is compared semantically; cold-vs-warm is still
    /// byte-identical.
    #[test]
    fn projection_agrees(sys in system()) {
        let _g = lock();
        let was = cache::set_cache_enabled(false);
        let (oracle, oracle_exact) = sys.project_onto(&["x", "y"]);
        cache::set_cache_enabled(true);
        cache::clear_cache();
        let (cold, cold_exact) = sys.project_onto(&["x", "y"]);
        let (warm, warm_exact) = sys.project_onto(&["x", "y"]);
        cache::set_cache_enabled(was);
        prop_assert_eq!(oracle_exact, cold_exact, "exactness flag diverged on {}", &sys);
        prop_assert_eq!(cold_exact, warm_exact);
        const BOX: i64 = 5;
        for x in -BOX..=BOX {
            for y in -BOX..=BOX {
                let env = |v: &str| match v { "x" => x, "y" => y, _ => 0 };
                prop_assert_eq!(
                    oracle.eval(&env), cold.eval(&env),
                    "projection diverged at ({}, {}) on {}", x, y, &sys
                );
            }
        }
        prop_assert_eq!(fingerprint(&cold), fingerprint(&warm));
    }

    /// Gist: the dense engine loop makes the same removal decisions as
    /// the uncached loop, so the result is byte-identical.
    #[test]
    fn gist_agrees(sys in system(), ctx in system()) {
        let _g = lock();
        let was = cache::set_cache_enabled(false);
        let oracle = sys.gist(&ctx);
        cache::set_cache_enabled(true);
        cache::clear_cache();
        let cold = sys.gist(&ctx);
        let warm = sys.gist(&ctx);
        cache::set_cache_enabled(was);
        prop_assert_eq!(
            fingerprint(&oracle), fingerprint(&cold),
            "gist diverged on {} % {}", &sys, &ctx
        );
        prop_assert_eq!(fingerprint(&cold), fingerprint(&warm));
    }
}
