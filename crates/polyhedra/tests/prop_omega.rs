//! Property tests for the exact integer machinery: the Omega test,
//! projection, and simplification are checked against brute-force
//! enumeration on small boxes.

use proptest::prelude::*;
use shackle_polyhedra::{Constraint, LinExpr, System};

const BOX: i64 = 4;

/// A random affine expression over x, y, z with small coefficients.
fn lin_expr() -> impl Strategy<Value = LinExpr> {
    (-3i64..=3, -3i64..=3, -3i64..=3, -6i64..=6).prop_map(|(a, b, c, k)| {
        LinExpr::term("x", a) + LinExpr::term("y", b) + LinExpr::term("z", c) + LinExpr::constant(k)
    })
}

fn constraint() -> impl Strategy<Value = Constraint> {
    (lin_expr(), prop::bool::ANY).prop_map(|(e, eq)| {
        if eq {
            Constraint::eq_zero(e)
        } else {
            Constraint::geq_zero(e)
        }
    })
}

/// A random system of 1..5 constraints, boxed so brute force stays
/// cheap.
fn boxed_system() -> impl Strategy<Value = System> {
    prop::collection::vec(constraint(), 1..5).prop_map(|cs| {
        let mut s = System::from_constraints(cs);
        for v in ["x", "y", "z"] {
            s.add(Constraint::ge(LinExpr::var(v), LinExpr::constant(-BOX)));
            s.add(Constraint::le(LinExpr::var(v), LinExpr::constant(BOX)));
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Omega test agrees with brute-force enumeration.
    #[test]
    fn omega_matches_brute_force(sys in boxed_system()) {
        let brute = !sys.enumerate_box(-BOX, BOX).is_empty();
        prop_assert_eq!(sys.is_integer_feasible(), brute, "system {}", sys);
    }

    /// Projection is sound: the projection of any solution satisfies
    /// the projected system, and (when flagged exact) every point of
    /// the projection lifts to a solution.
    #[test]
    fn projection_sound_and_exact(sys in boxed_system()) {
        let (proj, exact) = sys.project_onto(&["x", "y"]);
        // soundness: forget z from every solution
        for sol in sys.enumerate_box(-BOX, BOX) {
            let env = |v: &str| {
                let i = sys.vars().iter().position(|n| n == v).unwrap();
                sol[i]
            };
            prop_assert!(proj.eval(&env), "projection lost a solution of {}", sys);
        }
        if exact {
            // completeness: each projected point has a z-witness
            for xy in proj.enumerate_box(-BOX, BOX) {
                let lookup = |v: &str| -> Option<i64> {
                    proj.vars().iter().position(|n| n == v).map(|i| xy[i])
                };
                let lifted = (-BOX..=BOX).any(|z| {
                    sys.eval(&|v: &str| {
                        if v == "z" { z } else { lookup(v).unwrap_or(0) }
                    })
                });
                prop_assert!(lifted, "inexactly flagged projection of {}", sys);
            }
        }
    }

    /// Removing redundant constraints preserves the solution set.
    #[test]
    fn simplify_preserves_solutions(sys in boxed_system()) {
        let simplified = sys.simplified();
        let a = sys.enumerate_box(-BOX, BOX);
        // evaluate the simplified system on the same points and
        // vice versa
        for sol in &a {
            let env = |v: &str| {
                sys.vars().iter().position(|n| n == v).map(|i| sol[i]).unwrap_or(0)
            };
            prop_assert!(simplified.eval(&env));
        }
        for sol in simplified.enumerate_box(-BOX, BOX) {
            let env = |v: &str| {
                simplified
                    .vars()
                    .iter()
                    .position(|n| n == v)
                    .map(|i| sol[i])
                    .unwrap_or(0)
            };
            prop_assert!(sys.eval(&env));
        }
    }

    /// `gist` keeps `g ∧ ctx ≡ sys ∧ ctx`.
    #[test]
    fn gist_preserves_conjunction(sys in boxed_system(), ctx in boxed_system()) {
        let g = sys.gist(&ctx);
        let both = sys.and(&ctx);
        let gc = g.and(&ctx);
        // compare over the box on the union of variables
        let vars = ["x", "y", "z"];
        for x in -BOX..=BOX {
            for y in -BOX..=BOX {
                for z in -BOX..=BOX {
                    let point = [x, y, z];
                    let env = |v: &str| {
                        vars.iter()
                            .position(|n| *n == v)
                            .map(|i| point[i])
                            .unwrap_or(0)
                    };
                    prop_assert_eq!(both.eval(&env), gc.eval(&env), "at {:?}", point);
                }
            }
        }
    }

    /// `find_point` returns a genuine solution whenever brute force
    /// finds one in the same box.
    #[test]
    fn find_point_returns_solutions(sys in boxed_system()) {
        let brute = sys.enumerate_box(-BOX, BOX);
        match sys.find_point(BOX) {
            Some(point) => {
                let env = |v: &str| {
                    point.iter().find(|(n, _)| n == v).map(|(_, k)| *k).unwrap_or(0)
                };
                prop_assert!(sys.eval(&env), "find_point returned a non-solution of {}", sys);
                prop_assert!(point.iter().all(|(_, k)| k.abs() <= BOX));
            }
            None => {
                prop_assert!(brute.is_empty(), "find_point missed a solution of {}", sys);
            }
        }
    }

    /// Conjunction is monotone: `a ∧ b` has no solutions outside `a`.
    #[test]
    fn and_is_intersection(a in boxed_system(), b in boxed_system()) {
        let c = a.and(&b);
        for sol in c.enumerate_box(-BOX, BOX) {
            let env = |v: &str| {
                c.vars().iter().position(|n| n == v).map(|i| sol[i]).unwrap_or(0)
            };
            prop_assert!(a.eval(&env) && b.eval(&env));
        }
    }
}
