//! The in-tree slice of the differential fuzz oracle: a moderate audit
//! runs on every `cargo test`, the full-size sweep lives in the
//! `poly_audit` bench binary (CI runs it with `--quick`, ≥ 10 000
//! systems). Everything here must hold with *zero* mismatches — a
//! panic inside the solver fails the harness by itself, which is
//! exactly the assertion.

use shackle_polyhedra::audit::{gen_case, overflow_corpus, run, AuditConfig, Expectation, Rng};
use shackle_polyhedra::{Budget, PolyError, Verdict};

#[test]
fn audit_holds_on_default_and_strict_budgets() {
    let cfg = AuditConfig {
        systems: 1_500,
        seed: 0xfeed_beef,
        strict_pass: true,
        check_simplify: true,
    };
    let rep = run(&cfg);
    assert!(rep.ok(), "oracle mismatches: {:#?}", rep.mismatches);
    assert_eq!(rep.systems, 1_500);
    // the generator must exercise both verdicts, not collapse to one
    assert!(rep.feasible > 100, "feasible: {}", rep.feasible);
    assert!(rep.infeasible > 100, "infeasible: {}", rep.infeasible);
    assert!(rep.simplify_checked > 100);
}

#[test]
fn audit_is_deterministic_in_the_seed() {
    let cfg = AuditConfig {
        systems: 300,
        seed: 7,
        strict_pass: false,
        check_simplify: false,
    };
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a.feasible, b.feasible);
    assert_eq!(a.infeasible, b.infeasible);
    assert_eq!(a.unknown, b.unknown);
}

#[test]
fn corpus_rescues_and_refusals_are_pinned() {
    // Beyond `run`'s pass/fail: pin the *mechanism*. Promotion cases
    // must be proven (Ok), the substitution-overflow case must refuse
    // with `PolyError::Overflow`, and nothing may panic.
    for case in overflow_corpus() {
        let got = case.system.try_is_integer_feasible();
        match case.expect {
            Expectation::Proven(want) => {
                assert_eq!(got, Ok(want), "corpus `{}`", case.name);
            }
            Expectation::CleanError => {
                assert!(
                    matches!(got, Err(PolyError::Overflow { .. })),
                    "corpus `{}`: expected overflow refusal, got {:?}",
                    case.name,
                    got
                );
                // and the refusal surfaces as Unknown, not a panic
                assert_eq!(case.system.decide(&Budget::default()), Verdict::Unknown);
            }
        }
    }
}

#[test]
fn unknown_is_never_a_wrong_answer_under_a_hostile_budget() {
    // Decide 500 random systems under an absurdly small budget: every
    // proven verdict must still match ground truth; refusals are fine.
    let mut rng = Rng::new(0xabad_1dea);
    let tiny = Budget {
        max_rows: 8,
        max_depth: 2,
        max_splinters: 1,
        max_coeff: 1 << 16,
    };
    let mut proven = 0u32;
    for i in 0..500 {
        let case = gen_case(&mut rng, i % 2 == 0);
        match case.system.decide(&tiny) {
            Verdict::Unknown => {}
            v => {
                proven += 1;
                assert_eq!(
                    v.known(),
                    Some(case.ground_truth()),
                    "tiny-budget misproof on {}",
                    case.system
                );
            }
        }
    }
    // the tiny budget still proves plenty of easy systems
    assert!(proven > 50, "proven under tiny budget: {proven}");
}
