//! The analytical per-level miss predictor.
//!
//! Given a shackle product and a kernel's [`KernelGeometry`], predicts
//! per-cache-level hit/miss counts and a cycle estimate with *no
//! execution and no trace* — pure footprint arithmetic, following the
//! paper's premise that blocking decisions are decided by data-centric
//! geometry (block footprint vs. cache capacity).
//!
//! # Derivation (see DESIGN.md §"Analytical cost model")
//!
//! Each statement's effective loop nest under a shackle product is
//! modeled as *block-coordinate levels* (one per cut of each factor,
//! outermost, in product order — exactly how the scanned code nests
//! them) followed by the statement's own loops restricted to the
//! windows the cuts impose. For a reference `r` and nest level `i`:
//!
//! * `F(i)` — the footprint of `r`, in cache lines, for one iteration
//!   of level `i` (levels outside `i` held fixed, inner levels
//!   sweeping). Affine subscripts make per-dimension extents linear in
//!   the trip counts: `extent_d = 1 + Σ_v |coeff_v|·(range_v − 1)`.
//!   Lines are counted column-major (dimension 0 contiguous, merged
//!   upward while a dimension is fully spanned).
//! * `WS(i)` — the per-array union of all footprints over one
//!   iteration of level `i`: the reuse distance, in lines, between
//!   consecutive touches of `r`'s data across iterations of `i`.
//!
//! Fetched lines propagate innermost-out: a level that *moves* `r`'s
//! window fetches fresh data (merged by line while nothing inside
//! refetches); a level `r` is invariant to either retains the body
//! footprint or refetches it, weighted by the *survival* of `WS(i)`
//! against effective capacity `c`. Survival is smooth, not a cliff:
//! `WS` is the worst-case reuse distance and the realized distance
//! ramps up to it, so survival is the expectation of `min(1, c/ws)`
//! for `ws` uniform on `(0, WS]`, i.e. `(c/WS)·(1 + ln(WS/c))` once
//! `WS > c`. Triangular loops (worst-case extent above the mean) use
//! the expected blocked trip count `mean/w + ½` instead of
//! `ceil(mean/w)`. Per-level predictions are made independently per
//! cache level on the full access stream — the stack-distance view,
//! exact for inclusive LRU — and coupled only through
//! `accesses(ℓ+1) = misses(ℓ)`.
//!
//! Known conservatisms: guards are ignored and triangular block
//! spaces are costed as full rectangles (over-predicts guard-clipped
//! fat blocks); distinct references to one array are fetched
//! independently (no inter-reference sharing); region line counts are
//! boxes capped by the number of distinct index tuples (a diagonal
//! `A[J,J]` costs its diagonal, not its box); conflict misses are out
//! of scope entirely — capacity_fraction absorbs mild associativity
//! slop, but set-resonant array shapes (column height in lines
//! sharing a factor with the set count) are invisible to any capacity
//! model.

use crate::geometry::{KernelGeometry, StmtGeometry};
use shackle_core::Shackle;
use shackle_ir::ArrayRef;
use shackle_memsim::CacheConfig;
use std::collections::BTreeMap;
use std::sync::LazyLock;

/// Element size the predictor assumes, matching the trace bridge
/// (`shackle_kernels::trace::ELEM_BYTES`): FORTRAN doubles.
pub const ELEM_BYTES: f64 = 8.0;

static PREDICTS: LazyLock<&'static shackle_probe::Counter> =
    LazyLock::new(|| shackle_probe::counter("model.predict.calls"));

/// `SHACKLE_MODEL_DEBUG=1` dumps every per-reference fetch chain to
/// stderr — the calibration view (see `examples/calibrate.rs`).
static DEBUG: LazyLock<bool> = LazyLock::new(|| std::env::var_os("SHACKLE_MODEL_DEBUG").is_some());

/// Tunable knobs of the predictor.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Fraction of nominal capacity usable before the model declares a
    /// working set streaming (associativity conflicts and alignment
    /// slop eat the rest; calibrated against `StackSim` in
    /// `tests/prop_model.rs`).
    pub capacity_fraction: f64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            capacity_fraction: 0.9,
        }
    }
}

/// Predicted traffic at one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelPrediction {
    /// Accesses reaching this level.
    pub accesses: u64,
    /// Predicted hits.
    pub hits: u64,
    /// Predicted misses (line fetches from the level below).
    pub misses: u64,
}

/// A full prediction: per-level traffic plus the cycle estimate under
/// the same accounting as [`shackle_memsim::Hierarchy`] (per-level
/// probe latency on every access that reaches the level, memory
/// latency on full misses).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Per-level predictions, fastest level first.
    pub levels: Vec<LevelPrediction>,
    /// Estimated memory-system cycles.
    pub cycles: u64,
    /// Total element accesses (exact, from the geometry).
    pub accesses: u64,
}

/// How one block coordinate binds to one statement.
enum CoordBind {
    /// The cut windows a single loop variable of the statement.
    Var { var: String, window: f64 },
    /// The cut's projection is constant within the statement: the
    /// statement does not move along this coordinate.
    Fixed,
    /// Multi-variable projection — treated conservatively (no window,
    /// every reference considered dependent on the coordinate).
    Opaque,
}

struct CoordLevel {
    binds: Vec<CoordBind>, // per statement
}

/// Per-candidate blocking structure derived from the product: the
/// coordinate levels and, per statement, the final variable windows and
/// per-coordinate trip counts.
struct BlockStructure {
    coords: Vec<CoordLevel>,
    /// Per statement: loop var -> window (absent means unconstrained).
    windows: Vec<BTreeMap<String, f64>>,
    /// Per statement, per coordinate: trip count (>= 1).
    trips: Vec<Vec<f64>>,
}

fn build_structure(geom: &KernelGeometry, product: &[Shackle]) -> BlockStructure {
    let nstmts = geom.stmts.len();
    let mut coords = Vec::new();
    let mut windows: Vec<BTreeMap<String, f64>> = vec![BTreeMap::new(); nstmts];
    let mut trips: Vec<Vec<f64>> = vec![Vec::new(); nstmts];
    for f in product {
        for cut in f.blocking().cuts() {
            let mut binds = Vec::with_capacity(nstmts);
            for s in &geom.stmts {
                let r = &f.refs()[s.id];
                // projection of the shackled reference onto the cut,
                // restricted to the statement's loop variables
                let mut proj: BTreeMap<String, i64> = BTreeMap::new();
                for (c, ix) in cut.normal.iter().zip(r.indices()) {
                    if *c == 0 {
                        continue;
                    }
                    for (v, k) in ix.iter() {
                        if s.extent_of(v).is_some() {
                            *proj.entry(v.to_string()).or_insert(0) += c * k;
                        }
                    }
                }
                proj.retain(|_, k| *k != 0);
                let bind = if proj.is_empty() {
                    CoordBind::Fixed
                } else if proj.len() == 1 {
                    let (v, k) = proj.iter().next().unwrap();
                    CoordBind::Var {
                        var: v.clone(),
                        window: (((cut.width - 1) / k.abs()) + 1) as f64,
                    }
                } else {
                    CoordBind::Opaque
                };
                let t = match &bind {
                    CoordBind::Var { var, window } => {
                        let full = s.extent_of(var).unwrap_or(1.0);
                        let wmax = s.max_extent_of(var).unwrap_or(full);
                        let before = windows[s.id].get(var).copied().unwrap_or(full).min(full);
                        // Triangular loop (extent varies with outer
                        // iterations): the expected block count per
                        // invocation is E[ceil(extent/w)] ≈ mean/w + ½
                        // for extents uniform up to the max — ceil of
                        // the mean alone undercounts the wide rows.
                        let t = if !windows[s.id].contains_key(var) && wmax > full + 0.5 {
                            (before / window + 0.5).max(1.0)
                        } else {
                            (before / window).ceil().max(1.0)
                        };
                        let e = windows[s.id].entry(var.clone()).or_insert(full);
                        *e = e.min(*window).min(full);
                        t
                    }
                    _ => 1.0,
                };
                trips[s.id].push(t);
                binds.push(bind);
            }
            coords.push(CoordLevel { binds });
        }
    }
    BlockStructure {
        coords,
        windows,
        trips,
    }
}

/// Cache lines covered by a column-major region with the given
/// per-dimension extents inside an array of the given dimensions.
/// Leading dimensions are merged into one contiguous run while they
/// are fully spanned.
fn region_lines(extents: &[f64], dims: &[f64], line_bytes: f64) -> f64 {
    let line_elems = line_bytes / ELEM_BYTES;
    let mut contig = extents[0].min(dims[0]).max(1.0);
    let mut span = dims[0];
    let mut d = 1;
    while d < extents.len() && contig + 0.5 >= span {
        contig = span * extents[d].min(dims[d]).max(1.0);
        span *= dims[d];
        d += 1;
    }
    let mut rest = 1.0;
    for (e, dim) in extents[d..].iter().zip(&dims[d..]) {
        rest *= e.min(*dim).max(1.0);
    }
    rest * (contig / line_elems).ceil().max(1.0)
}

/// The variable ranges in effect for one iteration of nest level
/// `fixed_upto - 1` of statement `s` — i.e. with the outermost
/// `fixed_upto` levels held fixed and everything inside sweeping.
///
/// `wide` selects the worst-case extents ([`LoopInfo::max_extent`])
/// instead of the means: capacity tests must use them, because a
/// triangular sweep that fits on average still thrashes for the wide
/// iterations. Traffic volumes keep the means.
fn body_ranges(
    s: &StmtGeometry,
    bs: &BlockStructure,
    fixed_upto: usize,
    wide: bool,
) -> BTreeMap<String, f64> {
    let m = bs.coords.len();
    let mut ranges = BTreeMap::new();
    for (j, l) in s.loops.iter().enumerate() {
        let lev = m + j;
        let r = if lev < fixed_upto {
            1.0
        } else {
            // only windows from coordinates held fixed (index <
            // fixed_upto) bind the variable; sweeping coordinates
            // release it
            let mut w = if wide { l.max_extent } else { l.avg_extent };
            for c in bs.coords.iter().take(fixed_upto.min(m)) {
                if let CoordBind::Var { var, window } = &c.binds[s.id] {
                    if var == &l.var {
                        w = w.min(*window);
                    }
                }
            }
            w.max(1.0)
        };
        ranges.insert(l.var.clone(), r);
    }
    ranges
}

/// Per-dimension extents of one reference under the given ranges,
/// clamped to the array bounds.
fn ref_extents(aref: &ArrayRef, ranges: &BTreeMap<String, f64>, dims: &[f64]) -> Vec<f64> {
    aref.indices()
        .iter()
        .zip(dims)
        .map(|(ix, d)| {
            let mut e = 1.0;
            for (v, k) in ix.iter() {
                if let Some(r) = ranges.get(v) {
                    e += k.abs() as f64 * (r - 1.0);
                }
            }
            e.min(*d).max(1.0)
        })
        .collect()
}

/// Does the reference mention the variable (with a non-zero
/// coefficient) in any subscript?
fn mentions(aref: &ArrayRef, var: &str) -> bool {
    aref.indices()
        .iter()
        .any(|ix| ix.iter().any(|(v, k)| v == var && k != 0))
}

/// Lines touched by one reference under the given ranges: the
/// column-major box count, capped at the number of distinct index
/// tuples the reference can produce. The cap matters for correlated
/// subscripts — `A[J, J]` over a range of 96 touches 96 diagonal
/// elements (each on its own line at worst), not the 96×96 box the
/// per-dimension extents describe.
fn ref_lines(
    aref: &ArrayRef,
    ranges: &BTreeMap<String, f64>,
    dims: &[f64],
    line_bytes: f64,
) -> f64 {
    let box_lines = region_lines(&ref_extents(aref, ranges, dims), dims, line_bytes);
    let mut vars: Vec<&str> = aref
        .indices()
        .iter()
        .flat_map(|ix| ix.iter().filter(|(_, k)| *k != 0).map(|(v, _)| v))
        .collect();
    vars.sort_unstable();
    vars.dedup();
    let tuples: f64 = vars
        .iter()
        .map(|v| ranges.get(*v).copied().unwrap_or(1.0).max(1.0))
        .product();
    box_lines.min(tuples.max(1.0))
}

/// Working-set (reuse-distance) estimate, in lines, of a set of
/// `(statement, ranges)` groups: per array, the *sum* over distinct
/// references (same subscripts across statements merge by elementwise
/// max), capped at the whole array. Distinct references into one array
/// — a pivot row block and a working block — occupy cache
/// simultaneously even when their extent boxes coincide, so summing is
/// right and an elementwise-max union under-counts; the cap keeps
/// overlapping references from exceeding the array itself.
fn union_ws<'a>(
    groups: impl Iterator<Item = (&'a StmtGeometry, BTreeMap<String, f64>)>,
    geom: &KernelGeometry,
    line_bytes: f64,
) -> f64 {
    let mut per_array: BTreeMap<&str, Vec<(&ArrayRef, f64)>> = BTreeMap::new();
    for (s, ranges) in groups {
        for r in &s.refs {
            let dims = &geom.arrays[r.aref.array()];
            let lines = ref_lines(&r.aref, &ranges, dims, line_bytes);
            let regions = per_array.entry(r.aref.array()).or_default();
            match regions.iter_mut().find(|(a, _)| *a == &r.aref) {
                Some((_, u)) => *u = u.max(lines),
                None => regions.push((&r.aref, lines)),
            }
        }
    }
    per_array
        .iter()
        .map(|(a, regions)| {
            let dims = &geom.arrays[*a];
            let total: f64 = regions.iter().map(|(_, lines)| lines).sum();
            total.min(region_lines(dims, dims, line_bytes))
        })
        .sum()
}

/// Predict traffic through `levels` (fastest first) for `product`
/// applied to the kernel described by `geom`, with the default
/// [`ModelConfig`].
pub fn predict(
    geom: &KernelGeometry,
    product: &[Shackle],
    levels: &[CacheConfig],
    mem_latency: u64,
) -> Prediction {
    predict_with(geom, product, levels, mem_latency, &ModelConfig::default())
}

/// As [`predict`], with explicit model configuration.
///
/// # Panics
///
/// Panics if `levels` is empty.
pub fn predict_with(
    geom: &KernelGeometry,
    product: &[Shackle],
    levels: &[CacheConfig],
    mem_latency: u64,
    cfg: &ModelConfig,
) -> Prediction {
    assert!(!levels.is_empty(), "need at least one cache level");
    let _span = shackle_probe::span("model.predict");
    if shackle_probe::enabled() {
        PREDICTS.add(1);
    }
    let bs = build_structure(geom, product);
    let total_accesses = geom.accesses;
    let mut preds = Vec::with_capacity(levels.len());
    let mut upstream = total_accesses;
    for cache in levels {
        let raw = misses_for_level(geom, &bs, cache, cfg);
        let misses = raw.min(upstream);
        preds.push(LevelPrediction {
            accesses: upstream.round() as u64,
            hits: (upstream - misses).round() as u64,
            misses: misses.round() as u64,
        });
        upstream = misses;
    }
    let mut cycles = 0.0;
    for (p, cache) in preds.iter().zip(levels) {
        cycles += p.accesses as f64 * cache.latency as f64;
    }
    cycles += preds.last().unwrap().misses as f64 * mem_latency as f64;
    Prediction {
        levels: preds,
        cycles: cycles.round() as u64,
        accesses: total_accesses.round() as u64,
    }
}

/// Predicted misses (line fetches) at one cache level over the whole
/// execution.
fn misses_for_level(
    geom: &KernelGeometry,
    bs: &BlockStructure,
    cache: &CacheConfig,
    cfg: &ModelConfig,
) -> f64 {
    let line_bytes = cache.line as f64;
    let c_eff = cfg.capacity_fraction * cache.size as f64 / line_bytes;
    let m = bs.coords.len();
    let live = || geom.stmts.iter().filter(|s| s.instances > 0.0);

    // Reuse distance across one iteration of each coordinate level:
    // per-array union over every statement (the coordinate loops are
    // shared by all statements in the scanned code).
    let coord_ws: Vec<f64> = (0..m)
        .map(|k| {
            union_ws(
                live().map(|s| (s, body_ranges(s, bs, k + 1, true))),
                geom,
                line_bytes,
            )
        })
        .collect();

    let mut total = 0.0;
    for s in live() {
        let nlev = m + s.loops.len();
        // footprint of one iteration of each level, per reference
        let footprints: Vec<Vec<f64>> = (0..=nlev)
            .map(|fu| {
                let ranges = body_ranges(s, bs, fu, false);
                s.refs
                    .iter()
                    .map(|r| {
                        let dims = &geom.arrays[r.aref.array()];
                        ref_lines(&r.aref, &ranges, dims, line_bytes)
                    })
                    .collect()
            })
            .collect();
        // statement-local reuse distance across one iteration of each
        // instance level
        let inst_ws: Vec<f64> = (0..s.loops.len())
            .map(|j| {
                union_ws(
                    std::iter::once((s, body_ranges(s, bs, m + j + 1, true))),
                    geom,
                    line_bytes,
                )
            })
            .collect();
        // windowed sweep extent of each instance loop
        let inst_trips: Vec<f64> = s
            .loops
            .iter()
            .map(|l| {
                bs.windows[s.id]
                    .get(&l.var)
                    .copied()
                    .unwrap_or(l.avg_extent)
                    .min(l.avg_extent)
                    .max(1.0)
            })
            .collect();

        for (ri, r) in s.refs.iter().enumerate() {
            let mut fetch = 1.0;
            let mut pure = true;
            for i in (0..nlev).rev() {
                let (t, depends, ws) = if i < m {
                    let dep = match &bs.coords[i].binds[s.id] {
                        CoordBind::Var { var, .. } => mentions(&r.aref, var),
                        CoordBind::Fixed => false,
                        CoordBind::Opaque => true,
                    };
                    (bs.trips[s.id][i], dep, coord_ws[i])
                } else {
                    let j = i - m;
                    (
                        inst_trips[j],
                        mentions(&r.aref, &s.loops[j].var),
                        inst_ws[j],
                    )
                };
                if t <= 1.0 + 1e-9 {
                    continue;
                }
                // Fraction of the level's working set that survives one
                // iteration. `WS` is the worst-case (widest iteration)
                // reuse distance; over a shackled sweep the actual
                // distance ramps up to it as windows shift and shrink,
                // so survival is the expectation of `min(1, c/ws)` with
                // `ws` uniform on `(0, WS]`: `(c/WS)·(1 + ln(WS/c))`.
                // Continuous at `WS = c` — a hard cliff (survive-all
                // vs. refetch-all) is exact only for a perfectly cyclic
                // LRU sweep, and barely-over working sets in shackled
                // traces still mostly survive.
                let surv = if ws <= c_eff {
                    1.0
                } else {
                    (c_eff / ws) * (1.0 + (ws / c_eff).ln())
                };
                if depends {
                    if pure && surv >= 1.0 {
                        // fresh data each iteration, and lines survive
                        // between consecutive iterations: the sweep
                        // footprint counts it line-merged
                        fetch = footprints[i][ri];
                    } else if pure {
                        // partial survival: interpolate between the
                        // line-merged sweep footprint and a full
                        // refetch of the body every iteration
                        let merged = footprints[i][ri];
                        fetch = merged + (1.0 - surv) * (fetch * t - merged).max(0.0);
                        pure = false;
                    } else {
                        // an inner level already refetches: no merging
                        fetch *= t;
                    }
                } else if surv < 1.0 {
                    // invariant but the reuse distance exceeds
                    // capacity: the non-surviving part is refetched
                    // every iteration
                    fetch *= 1.0 + (t - 1.0) * (1.0 - surv);
                    pure = false;
                }
                if *DEBUG {
                    eprintln!(
                        "model: stmt {} ref {} level {i} t={t:.1} dep={} \
                         ws={ws:.0}/{c_eff:.0} -> fetch {fetch:.0} (pure {pure})",
                        s.id,
                        r.aref,
                        u8::from(depends),
                    );
                }
            }
            if *DEBUG {
                eprintln!(
                    "model: stmt {} ref {} total {:.0}",
                    s.id,
                    r.aref,
                    fetch.min(s.instances)
                );
            }
            total += fetch.min(s.instances);
        }
    }
    total
}
