//! Candidate-independent geometry of a kernel: loop extents, instance
//! counts, array shapes and deduplicated references, evaluated at
//! concrete parameter values.
//!
//! The predictor ([`crate::predict()`]) is called once per candidate over
//! a dense grid, so everything that does not depend on the shackle
//! product — which is everything here — is extracted once per
//! `(program, params)` pair and shared across the sweep.
//!
//! Triangular bounds are handled exactly *on average*: the extractor
//! walks the outer iterations numerically and records the mean trip
//! count of every loop, which is what the footprint arithmetic needs
//! (affine subscripts make footprints linear in the trip counts).
//! Guards (`If` nodes) are ignored — the banded kernels over-count,
//! which is documented conservatism (DESIGN.md §"Analytical cost
//! model").

use shackle_ir::{ArrayRef, Bound, Program, StmtId};
use std::collections::BTreeMap;

/// Ceiling division for possibly-negative numerators.
fn ceil_div(a: i64, d: i64) -> i64 {
    debug_assert!(d >= 1);
    a.div_euclid(d) + i64::from(a.rem_euclid(d) != 0)
}

/// Floor division for possibly-negative numerators.
fn floor_div(a: i64, d: i64) -> i64 {
    debug_assert!(d >= 1);
    a.div_euclid(d)
}

fn eval_bound(b: &Bound, env: &BTreeMap<String, i64>, lower: bool) -> i64 {
    let get = |name: &str| *env.get(name).unwrap_or(&0);
    let mut acc: Option<i64> = None;
    for t in &b.terms {
        let v = t.expr.eval(&get);
        let v = if lower {
            ceil_div(v, t.div)
        } else {
            floor_div(v, t.div)
        };
        acc = Some(match acc {
            None => v,
            Some(a) if lower => a.max(v),
            Some(a) => a.min(v),
        });
    }
    acc.expect("bounds have at least one term")
}

/// One surrounding loop of a statement, with its mean trip count over
/// the enclosing iteration space.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// The loop variable.
    pub var: String,
    /// Mean inclusive extent (`upper - lower + 1`, averaged over the
    /// enclosing iterations that reach this loop with a non-empty
    /// range). At least 1 for reachable loops.
    pub avg_extent: f64,
    /// Largest inclusive extent over the same iterations. Working-set
    /// (capacity) tests use this: a triangular loop that fits *on
    /// average* still thrashes for the wide iterations, and the model
    /// must call that streaming, not a fit.
    pub max_extent: f64,
}

/// One *distinct* array reference of a statement, with how many times
/// it occurs in the statement text (duplicate occurrences in the same
/// instance always hit — same element, same line — so the predictor
/// fetches per distinct reference but counts traffic per occurrence).
#[derive(Clone, Debug)]
pub struct RefInfo {
    /// The reference (array + affine subscripts).
    pub aref: ArrayRef,
    /// Occurrences in the statement (write + reads).
    pub occurrences: u64,
}

/// Per-statement geometry.
#[derive(Clone, Debug)]
pub struct StmtGeometry {
    /// The statement's id in the program.
    pub id: StmtId,
    /// Surrounding loops, outermost first.
    pub loops: Vec<LoopInfo>,
    /// Exact instance count (ignoring guards).
    pub instances: f64,
    /// Distinct references with occurrence counts.
    pub refs: Vec<RefInfo>,
}

impl StmtGeometry {
    /// Mean extent of loop variable `var`, or `None` if `var` is not a
    /// surrounding loop of this statement.
    pub fn extent_of(&self, var: &str) -> Option<f64> {
        self.loops
            .iter()
            .find(|l| l.var == var)
            .map(|l| l.avg_extent)
    }

    /// Largest extent of loop variable `var` (see
    /// [`LoopInfo::max_extent`]).
    pub fn max_extent_of(&self, var: &str) -> Option<f64> {
        self.loops
            .iter()
            .find(|l| l.var == var)
            .map(|l| l.max_extent)
    }
}

/// Candidate-independent geometry of one `(program, params)` pair.
#[derive(Clone, Debug)]
pub struct KernelGeometry {
    /// Per-statement geometry, in statement-id order.
    pub stmts: Vec<StmtGeometry>,
    /// Array extents per dimension, evaluated at the parameters
    /// (column-major storage; dimension 0 is contiguous).
    pub arrays: BTreeMap<String, Vec<f64>>,
    /// Total element accesses (sum over statements of
    /// `instances x occurrences`).
    pub accesses: f64,
}

impl KernelGeometry {
    /// Extract geometry for `program` at the given parameter values.
    ///
    /// The walk over outer iterations is exact; its cost is the product
    /// of all non-innermost trip counts per statement, which is
    /// `O(N^(depth-1))` — fine for the probe sizes the search uses. A
    /// safety valve caps the walk at ~4M visited iterations per
    /// statement and falls back to midpoint evaluation beyond it.
    pub fn new(program: &Program, params: &BTreeMap<String, i64>) -> Self {
        let mut stmts = Vec::new();
        let mut accesses = 0.0;
        for id in 0..program.stmts().len() {
            let ctx = program.context(id);
            let mut walker = Walker {
                loops: &ctx.loops,
                env: params.clone(),
                sum_extent: vec![0.0; ctx.loops.len()],
                max_extent: vec![0.0; ctx.loops.len()],
                visits: vec![0.0; ctx.loops.len()],
                budget: 4_000_000,
            };
            let instances = walker.walk(0);
            let loops: Vec<LoopInfo> = ctx
                .loops
                .iter()
                .enumerate()
                .map(|(d, l)| LoopInfo {
                    var: l.var.clone(),
                    avg_extent: if walker.visits[d] > 0.0 {
                        (walker.sum_extent[d] / walker.visits[d]).max(1.0)
                    } else {
                        1.0
                    },
                    max_extent: walker.max_extent[d].max(1.0),
                })
                .collect();
            let mut refs: Vec<RefInfo> = Vec::new();
            for (r, _) in program.stmts()[id].refs() {
                if let Some(existing) = refs.iter_mut().find(|e| &e.aref == r) {
                    existing.occurrences += 1;
                } else {
                    refs.push(RefInfo {
                        aref: r.clone(),
                        occurrences: 1,
                    });
                }
            }
            let occurrences: u64 = refs.iter().map(|r| r.occurrences).sum();
            accesses += instances * occurrences as f64;
            stmts.push(StmtGeometry {
                id,
                loops,
                instances,
                refs,
            });
        }
        let get_param = |name: &str| *params.get(name).unwrap_or(&0);
        let arrays = program
            .arrays()
            .iter()
            .map(|a| {
                let dims = a
                    .dims()
                    .iter()
                    .map(|e| e.eval(&get_param).max(1) as f64)
                    .collect();
                (a.name().to_string(), dims)
            })
            .collect();
        Self {
            stmts,
            arrays,
            accesses,
        }
    }
}

struct Walker<'a> {
    loops: &'a [shackle_ir::Loop],
    env: BTreeMap<String, i64>,
    sum_extent: Vec<f64>,
    max_extent: Vec<f64>,
    visits: Vec<f64>,
    budget: u64,
}

impl Walker<'_> {
    /// Instances below loop `depth` given the enclosing `env`; records
    /// extent statistics along the way. The innermost loop is handled
    /// in closed form, so the walk cost excludes it.
    fn walk(&mut self, depth: usize) -> f64 {
        if depth == self.loops.len() {
            return 1.0;
        }
        let l = &self.loops[depth];
        let lo = eval_bound(&l.lower, &self.env, true);
        let hi = eval_bound(&l.upper, &self.env, false);
        if hi < lo {
            return 0.0;
        }
        let extent = (hi - lo + 1) as f64;
        self.sum_extent[depth] += extent;
        self.max_extent[depth] = self.max_extent[depth].max(extent);
        self.visits[depth] += 1.0;
        if depth + 1 == self.loops.len() {
            return extent;
        }
        if self.budget == 0 {
            // budget exhausted: midpoint approximation for the rest
            let mid = lo + (hi - lo) / 2;
            self.env.insert(l.var.clone(), mid);
            let inner = self.walk(depth + 1);
            self.env.remove(&l.var);
            return extent * inner;
        }
        let mut total = 0.0;
        for v in lo..=hi {
            self.budget = self.budget.saturating_sub(1);
            self.env.insert(l.var.clone(), v);
            total += self.walk(depth + 1);
        }
        self.env.remove(&l.var);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shackle_ir::kernels;

    fn n(v: i64) -> BTreeMap<String, i64> {
        BTreeMap::from([("N".to_string(), v)])
    }

    #[test]
    fn matmul_counts_are_exact() {
        let g = KernelGeometry::new(&kernels::matmul_ijk(), &n(10));
        assert_eq!(g.stmts.len(), 1);
        let s = &g.stmts[0];
        assert_eq!(s.instances, 1000.0);
        assert_eq!(s.loops.len(), 3);
        assert!(s.loops.iter().all(|l| l.avg_extent == 10.0));
        // C[I,J] (write + read), A[I,K], B[K,J]: 3 distinct refs, C twice
        assert_eq!(s.refs.len(), 3);
        let c = s.refs.iter().find(|r| r.aref.array() == "C").unwrap();
        assert_eq!(c.occurrences, 2);
        assert_eq!(g.accesses, 4000.0);
        assert_eq!(g.arrays["C"], vec![10.0, 10.0]);
    }

    #[test]
    fn cholesky_triangular_extents_average() {
        let g = KernelGeometry::new(&kernels::cholesky_right(), &n(8));
        // S2: J = 1..N, I = J+1..N -> sum over J of (N-J) = N(N-1)/2
        let s2 = &g.stmts[1];
        assert_eq!(s2.instances, 28.0);
        // mean extent of I over the J's that reach it: 28 / 7
        assert!((s2.extent_of("I").unwrap() - 4.0).abs() < 1e-9);
        // S3: J, L = J+1..N, K = J+1..L -> sum_{J<L} (L-J) over pairs
        let s3 = &g.stmts[2];
        assert_eq!(s3.instances, 84.0); // C(8+1,3) = 84 = sum_{j<l} (l-j)
    }

    #[test]
    fn adi_offset_lower_bound() {
        let g = KernelGeometry::new(&kernels::adi(), &n(6));
        // i runs 2..N: extent 5
        let s = &g.stmts[0];
        assert_eq!(s.extent_of("i").unwrap(), 5.0);
    }
}
