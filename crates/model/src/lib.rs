//! Analytical cache cost model for shackled programs.
//!
//! Part of the `data-shackle` workspace (PLDI 1997 "Data-centric
//! Multi-level Blocking" reproduction). The paper's premise is that
//! blocking decisions follow from *data-centric geometry* — block
//! footprints against cache capacity — and this crate makes that
//! premise executable: [`predict()`] takes a shackle product, the
//! kernel's [`KernelGeometry`] and a cache hierarchy description
//! ([`shackle_memsim::CacheConfig`] levels plus a memory latency) and
//! returns per-level hit/miss counts and a cycle estimate without
//! executing the program or capturing a trace.
//!
//! The predictor is the first-pass scorer of the two-phase search in
//! `shackle_core::search` (`two_phase`): thousands of grid candidates
//! are ranked analytically in microseconds each, and only the top-K
//! survivors are re-scored with the exact simulator. `BENCH_model.json`
//! (the `modelperf` harness in `shackle-bench`) validates ranking
//! accuracy and miss-count error against `StackSim` ground truth on
//! every in-repo kernel.
//!
//! # Example
//!
//! ```
//! use shackle_model::{predict, KernelGeometry};
//! use shackle_kernels::shackles;
//! use shackle_memsim::CacheConfig;
//! use std::collections::BTreeMap;
//!
//! let p = shackle_ir::kernels::matmul_ijk();
//! let params = BTreeMap::from([("N".to_string(), 48_i64)]);
//! let geom = KernelGeometry::new(&p, &params);
//! let probe = CacheConfig { size: 8 * 1024, line: 128, assoc: 4, latency: 0 };
//! let blocked = predict(&geom, &shackles::matmul_ca(&p, 16), &[probe], 60);
//! let identity = predict(&geom, &shackles::matmul_ca(&p, 48), &[probe], 60);
//! // a 16x16 shackle of C crossed with A localizes far better than the
//! // identity blocking (width 48 == N leaves the loop nest unblocked)
//! assert!(blocked.cycles < identity.cycles);
//! assert_eq!(blocked.accesses, 4 * 48 * 48 * 48);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geometry;
pub mod predict;

pub use geometry::{KernelGeometry, LoopInfo, RefInfo, StmtGeometry};
pub use predict::{predict, predict_with, LevelPrediction, ModelConfig, Prediction, ELEM_BYTES};
