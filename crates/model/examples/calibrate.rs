//! Calibration scratchpad: model predictions vs exact simulation for
//! the paper kernels across block widths on the probe cache.
//!
//! `cargo run --release -p shackle-model --example calibrate`

use shackle_core::scan::generate_scanned;
use shackle_ir::kernels;
use shackle_kernels::shackles;
use shackle_kernels::trace::trace_execution;
use shackle_memsim::{CacheConfig, Hierarchy};
use shackle_model::{predict, KernelGeometry};
use std::collections::BTreeMap;

const PROBE: CacheConfig = CacheConfig {
    size: 8 * 1024,
    line: 128,
    assoc: 4,
    latency: 0,
};

fn ones(_: &str, _: &[usize]) -> f64 {
    1.0
}

fn main() {
    let n = 48i64;
    let params = BTreeMap::from([("N".to_string(), n)]);
    let mm = kernels::matmul_ijk();
    let geom = KernelGeometry::new(&mm, &params);
    println!("matmul N={n}  M_C single shackle");
    println!(
        "{:>5} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "w", "pred miss", "sim miss", "ratio", "pred cyc", "sim cyc"
    );
    for w in [4, 6, 8, 12, 16, 24, 32, 48] {
        let product = shackles::matmul_c(&mm, w);
        let p = predict(&geom, &product, &[PROBE], 60);
        let code = generate_scanned(&mm, &product);
        let mut h = Hierarchy::new(&[PROBE], 60);
        trace_execution(&code, &params, ones, &mut h);
        let sim = h.level_stats()[0];
        println!(
            "{:>5} {:>12} {:>12} {:>8.3} {:>12} {:>12}",
            w,
            p.levels[0].misses,
            sim.misses,
            p.levels[0].misses as f64 / sim.misses as f64,
            p.cycles,
            h.cycles()
        );
    }
    println!("\nmatmul N={n}  M_C x M_A product");
    for w in [4, 6, 8, 12, 16, 24, 32, 48] {
        let product = shackles::matmul_ca(&mm, w);
        let p = predict(&geom, &product, &[PROBE], 60);
        let code = generate_scanned(&mm, &product);
        let mut h = Hierarchy::new(&[PROBE], 60);
        trace_execution(&code, &params, ones, &mut h);
        let sim = h.level_stats()[0];
        println!(
            "{:>5} {:>12} {:>12} {:>8.3} {:>12} {:>12}",
            w,
            p.levels[0].misses,
            sim.misses,
            p.levels[0].misses as f64 / sim.misses as f64,
            p.cycles,
            h.cycles()
        );
    }

    let ch = kernels::cholesky_right();
    let geom = KernelGeometry::new(&ch, &params);
    let init = shackle_kernels::gen::spd_ws_init("A", n as usize, 3);
    println!("\ncholesky_right N={n}  product");
    for w in [4, 6, 8, 12, 16, 24, 32] {
        let product = shackles::cholesky_product(&ch, w);
        let p = predict(&geom, &product, &[PROBE], 60);
        let code = generate_scanned(&ch, &product);
        let mut h = Hierarchy::new(&[PROBE], 60);
        trace_execution(&code, &params, &init, &mut h);
        let sim = h.level_stats()[0];
        println!(
            "{:>5} {:>12} {:>12} {:>8.3} {:>12} {:>12}",
            w,
            p.levels[0].misses,
            sim.misses,
            p.levels[0].misses as f64 / sim.misses as f64,
            p.cycles,
            h.cycles()
        );
    }

    let n2 = 96i64;
    let params2 = BTreeMap::from([("N".to_string(), n2)]);
    let geom2 = KernelGeometry::new(&ch, &params2);
    let init2 = shackle_kernels::gen::spd_ws_init("A", n2 as usize, 3);
    println!("\ncholesky_right N={n2}  product");
    for w in [4, 6, 8, 12, 16, 24, 32, 48] {
        let product = shackles::cholesky_product(&ch, w);
        let p = predict(&geom2, &product, &[PROBE], 60);
        let code = generate_scanned(&ch, &product);
        let mut h = Hierarchy::new(&[PROBE], 60);
        trace_execution(&code, &params2, &init2, &mut h);
        let sim = h.level_stats()[0];
        println!(
            "{:>5} {:>12} {:>12} {:>8.3} {:>12} {:>12}",
            w,
            p.levels[0].misses,
            sim.misses,
            p.levels[0].misses as f64 / sim.misses as f64,
            p.cycles,
            h.cycles()
        );
    }
}
