//! Property tests for the probe layer: span nesting, counter and
//! histogram aggregation, and deterministic cross-thread merge.

use proptest::prelude::*;
use std::sync::Mutex;

/// Probe state is process-global; every test serializes on this.
static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Open spans recursively along `names`, recording one counter tick
/// at every level.
fn nest(names: &[&'static str]) {
    let Some((head, rest)) = names.split_first() else {
        return;
    };
    let _s = shackle_probe::span(head);
    shackle_probe::add("prop.depth_ticks", 1);
    nest(rest);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary nesting: each prefix of the name chain appears as
    /// exactly one span path per repetition, and the tick counter sums
    /// to depth × reps.
    #[test]
    fn span_nesting_accounts_every_prefix(
        chain in prop::collection::vec(0usize..4, 1..6),
        reps in 1usize..4,
    ) {
        let _l = locked();
        shackle_probe::set_enabled(true);
        shackle_probe::reset();
        let names: Vec<&'static str> = chain.iter().map(|&i| NAMES[i]).collect();
        for _ in 0..reps {
            nest(&names);
        }
        shackle_probe::set_enabled(false);
        let p = shackle_probe::profile();
        prop_assert_eq!(p.spans.len(), names.len());
        for (depth, span) in p.spans.iter().enumerate() {
            prop_assert_eq!(span.path, names[..=depth].join("/"));
            prop_assert_eq!(span.depth, depth);
            prop_assert_eq!(span.calls, reps as u64);
        }
        let ticks = p.counters.iter().find(|(n, _)| n == "prop.depth_ticks");
        prop_assert_eq!(ticks.map(|(_, v)| *v), Some((names.len() * reps) as u64));
    }

    /// Counters and histograms aggregate exactly: total equals the
    /// number of observations, the counter equals the sum, and every
    /// histogram bucket bound brackets the values that landed in it.
    #[test]
    fn metric_aggregation_is_exact(
        values in prop::collection::vec(0u64..1 << 48, 1..64),
    ) {
        let _l = locked();
        shackle_probe::set_enabled(true);
        shackle_probe::reset();
        for &v in &values {
            shackle_probe::add("prop.sum", v);
            shackle_probe::record("prop.hist", v);
        }
        shackle_probe::set_enabled(false);
        let sum: u64 = values.iter().sum();
        prop_assert_eq!(shackle_probe::counter("prop.sum").get(), sum);
        let h = shackle_probe::histogram("prop.hist");
        prop_assert_eq!(h.total(), values.len() as u64);
        let snap = h.snapshot();
        let bucket_sum: u64 = snap.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(bucket_sum, values.len() as u64);
        for (floor, count) in snap {
            // each non-empty bucket holds exactly the values in
            // [floor, 2*floor) (or the zero bucket)
            let expect = values
                .iter()
                .filter(|&&v| {
                    if floor == 0 {
                        v == 0
                    } else {
                        v >= floor && (floor >= 1 << 63 || v < floor * 2)
                    }
                })
                .count() as u64;
            prop_assert_eq!(count, expect, "bucket >= {}", floor);
        }
    }

    /// Merging from worker threads is deterministic: span call counts
    /// and counter totals are identical however the work is split.
    #[test]
    fn cross_thread_merge_is_deterministic(
        work in prop::collection::vec(1u64..32, 1..24),
        threads in 1usize..5,
    ) {
        let _l = locked();
        let run = |threads: usize| {
            shackle_probe::set_enabled(true);
            shackle_probe::reset();
            {
                let _root = shackle_probe::span("fanout");
                let ambient = shackle_probe::current_path();
                std::thread::scope(|s| {
                    for chunk in work.chunks(work.len().div_ceil(threads)) {
                        let ambient = ambient.clone();
                        s.spawn(move || {
                            let _g = shackle_probe::with_path(ambient);
                            for &w in chunk {
                                let _s = shackle_probe::span("item");
                                shackle_probe::add("prop.work", w);
                                shackle_probe::record("prop.batch", w);
                            }
                        });
                    }
                });
            }
            shackle_probe::set_enabled(false);
            let p = shackle_probe::profile();
            let calls: Vec<(String, u64)> = p
                .spans
                .iter()
                .map(|s| (s.path.clone(), s.calls))
                .collect();
            let hists: Vec<_> = p
                .histograms
                .iter()
                .map(|h| (h.name.clone(), h.total, h.buckets.clone()))
                .collect();
            (calls, p.counters.clone(), hists)
        };
        let serial = run(1);
        let parallel = run(threads);
        prop_assert_eq!(serial, parallel);
    }
}
