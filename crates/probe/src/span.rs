//! Nestable phase spans with per-thread stacks and a global table.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{LazyLock, Mutex};
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Accumulated statistics for one span path.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SpanStat {
    pub calls: u64,
    pub nanos: u128,
}

/// Global span table keyed by full path (the stack of enclosing span
/// names). Keyed by components, not a joined string, so the report
/// can sort parents before children without re-parsing.
pub(crate) static SPANS: LazyLock<Mutex<BTreeMap<Vec<&'static str>, SpanStat>>> =
    LazyLock::new(|| Mutex::new(BTreeMap::new()));

pub(crate) fn reset_spans() {
    SPANS.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// RAII guard for one phase span; see [`span`].
///
/// Spans must be dropped in LIFO order on the thread that created
/// them (the natural behaviour of holding them in local scopes).
#[must_use = "a span measures the scope it is held in"]
pub struct Span {
    start: Option<Instant>,
}

/// Open a phase span named `name`, pushing it on the current thread's
/// span stack. Dropping the returned guard pops the stack and merges
/// the elapsed wall time into the global table under the full path.
///
/// When instrumentation is disabled this returns an inert guard
/// without touching the clock or the stack.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { start: None };
    }
    STACK.with_borrow_mut(|s| s.push(name));
    Span {
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        // A span that pushed must pop even if the flag flipped off
        // mid-flight, so the stack stays balanced.
        let Some(start) = self.start else { return };
        let nanos = start.elapsed().as_nanos();
        let path = STACK.with_borrow_mut(|s| {
            let path = s.clone();
            s.pop();
            path
        });
        if path.is_empty() {
            return;
        }
        let mut spans = SPANS.lock().unwrap_or_else(|e| e.into_inner());
        let stat = spans.entry(path).or_default();
        stat.calls += 1;
        stat.nanos += nanos;
    }
}

/// The current thread's span path, outermost first. Empty when
/// instrumentation is disabled. Capture this before fanning work out
/// to `par` workers and hand it to [`with_path`] inside each worker
/// so their spans nest under the spawning phase.
pub fn current_path() -> Vec<&'static str> {
    if !crate::enabled() {
        return Vec::new();
    }
    STACK.with_borrow(|s| s.clone())
}

/// Guard restoring the thread's previous span stack; see
/// [`with_path`].
#[must_use = "dropping the guard restores the previous span path"]
pub struct PathGuard {
    saved: Vec<&'static str>,
}

/// Replace the current thread's span stack with `path` until the
/// returned guard drops (which restores the previous stack). Used by
/// `shackle_core::par` so worker threads inherit the spawning
/// thread's phase context. Cheap no-op composition when disabled:
/// `current_path()` returns empty and adopting an empty path leaves
/// spans inert.
pub fn with_path(path: Vec<&'static str>) -> PathGuard {
    let saved = STACK.with_borrow_mut(|s| std::mem::replace(s, path));
    PathGuard { saved }
}

impl Drop for PathGuard {
    fn drop(&mut self) {
        let saved = std::mem::take(&mut self.saved);
        STACK.with_borrow_mut(|s| *s = saved);
    }
}
