//! Named atomic counters and log2-bucketed histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex};

/// A monotonic `u64` metric cell. Handles are `&'static`: register
/// once with [`counter`] and update with relaxed atomics thereafter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the counter (for gauge-style values such as cache
    /// sizes folded in from external snapshots).
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over `u64` values with 65 log2 buckets: bucket 0 holds
/// the value 0 and bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i - 1]`. Recording is one relaxed `fetch_add`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 65],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Lower bound of bucket `i` (0, then successive powers of two).
    fn bucket_floor(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Record one observation of `value`.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Non-empty buckets as `(lower bound, count)`, ascending.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then(|| (Self::bucket_floor(i), count))
            })
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

static COUNTERS: LazyLock<Mutex<BTreeMap<&'static str, &'static Counter>>> =
    LazyLock::new(|| Mutex::new(BTreeMap::new()));

static HISTOGRAMS: LazyLock<Mutex<BTreeMap<&'static str, &'static Histogram>>> =
    LazyLock::new(|| Mutex::new(BTreeMap::new()));

/// Look up (registering on first use) the counter named `name`. The
/// returned handle is valid for the process lifetime; hot paths
/// should cache it in a `LazyLock` rather than re-resolving the name.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut table = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    table
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::default())))
}

/// Add `n` to the counter named `name` if instrumentation is enabled;
/// a single relaxed load otherwise.
#[inline]
pub fn add(name: &'static str, n: u64) {
    if crate::enabled() {
        counter(name).add(n);
    }
}

/// Look up (registering on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut table = HISTOGRAMS.lock().unwrap_or_else(|e| e.into_inner());
    table
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// Record `value` in the histogram named `name` if instrumentation is
/// enabled; a single relaxed load otherwise.
#[inline]
pub fn record(name: &'static str, value: u64) {
    if crate::enabled() {
        histogram(name).observe(value);
    }
}

pub(crate) fn reset_metrics() {
    for c in COUNTERS.lock().unwrap_or_else(|e| e.into_inner()).values() {
        c.set(0);
    }
    for h in HISTOGRAMS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .values()
    {
        h.reset();
    }
}

pub(crate) fn snapshot_counters() -> Vec<(String, u64)> {
    COUNTERS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(name, c)| (name.to_string(), c.get()))
        .collect()
}

pub(crate) fn snapshot_histograms() -> Vec<crate::report::ProfileHistogram> {
    HISTOGRAMS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(name, h)| crate::report::ProfileHistogram {
            name: name.to_string(),
            total: h.total(),
            buckets: h.snapshot(),
        })
        .collect()
}
