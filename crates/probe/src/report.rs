//! Snapshotting and rendering: phase tree for humans, JSON for CI.

use crate::span::SPANS;

/// One span path's accumulated statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileSpan {
    /// Full slash-joined path, e.g. `"cholesky_right/search/legality"`.
    pub path: String,
    /// Nesting depth (number of enclosing spans).
    pub depth: usize,
    /// Leaf name (last path component).
    pub name: String,
    /// Number of times a span closed on this path.
    pub calls: u64,
    /// Wall nanoseconds summed over those calls (and over threads, so
    /// nested parallel phases can exceed their parent's wall time).
    pub wall_ns: u128,
}

/// One histogram's snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileHistogram {
    /// Registered name.
    pub name: String,
    /// Total observations.
    pub total: u64,
    /// Non-empty `(bucket lower bound, count)` pairs, ascending.
    pub buckets: Vec<(u64, u64)>,
}

/// An immutable snapshot of every span, counter, and histogram,
/// deterministically ordered (spans by path components, metrics by
/// name).
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Spans, sorted so every parent precedes its children.
    pub spans: Vec<ProfileSpan>,
    /// `(name, value)` counter pairs, sorted by name. Counters that
    /// were registered but never touched appear with value 0.
    pub counters: Vec<(String, u64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<ProfileHistogram>,
}

pub(crate) fn snapshot() -> Profile {
    let spans = SPANS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(path, stat)| ProfileSpan {
            path: path.join("/"),
            depth: path.len() - 1,
            name: path.last().copied().unwrap_or_default().to_string(),
            calls: stat.calls,
            wall_ns: stat.nanos,
        })
        .collect();
    Profile {
        spans,
        counters: crate::metrics::snapshot_counters(),
        histograms: crate::metrics::snapshot_histograms(),
    }
}

fn human_time(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Profile {
    /// Render the span table as an indented phase tree with per-phase
    /// call counts and wall time, followed by non-zero counters.
    pub fn render_tree(&self) -> String {
        let mut out = String::from("phase tree (wall time, calls):\n");
        if self.spans.is_empty() {
            out.push_str("  (no spans recorded)\n");
        }
        for s in &self.spans {
            let indent = "  ".repeat(s.depth + 1);
            let label = format!("{indent}{}", s.name);
            out.push_str(&format!(
                "{label:<40} {:>12} {:>8} calls\n",
                human_time(s.wall_ns),
                s.calls
            ));
        }
        let live: Vec<_> = self.counters.iter().filter(|(_, v)| *v > 0).collect();
        if !live.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in live {
                out.push_str(&format!("  {name:<38} {value:>14}\n"));
            }
        }
        for h in self.histograms.iter().filter(|h| h.total > 0) {
            out.push_str(&format!("histogram {} ({} obs):\n", h.name, h.total));
            for (floor, count) in &h.buckets {
                out.push_str(&format!("  >= {floor:<12} {count:>14}\n"));
            }
        }
        out
    }

    /// Serialize as a deterministic JSON object with `spans`,
    /// `counters`, and `histograms` keys (the body of
    /// `BENCH_profile.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            let comma = if i + 1 < self.spans.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"path\": \"{}\", \"calls\": {}, \"wall_ns\": {}}}{comma}\n",
                json_escape(&s.path),
                s.calls,
                s.wall_ns
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"counters\": {");
        let mut first = true;
        for (name, value) in &self.counters {
            let comma = if first { "" } else { "," };
            first = false;
            out.push_str(&format!("{comma}\n    \"{}\": {value}", json_escape(name)));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for h in &self.histograms {
            let comma = if first { "" } else { "," };
            first = false;
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(floor, count)| format!("{{\"ge\": {floor}, \"count\": {count}}}"))
                .collect();
            out.push_str(&format!(
                "{comma}\n    \"{}\": {{\"total\": {}, \"buckets\": [{}]}}",
                json_escape(&h.name),
                h.total,
                buckets.join(", ")
            ));
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push('}');
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let _l = crate::testlock::hold();
        crate::set_enabled(true);
        crate::reset();
        {
            let _a = crate::span("a");
            let _b = crate::span("b");
            crate::add("n", 2);
            crate::record("h", 3);
        }
        crate::set_enabled(false);
        let json = crate::profile().to_json();
        assert!(json.starts_with("{\n  \"spans\": [\n"));
        assert!(json.contains("{\"path\": \"a\", \"calls\": 1, \"wall_ns\": "));
        assert!(json.contains("{\"path\": \"a/b\", \"calls\": 1, \"wall_ns\": "));
        assert!(json.contains("\"n\": 2"));
        assert!(json.contains("\"h\": {\"total\": 1, \"buckets\": [{\"ge\": 2, \"count\": 1}]}"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn tree_lists_parents_before_children() {
        let _l = crate::testlock::hold();
        crate::set_enabled(true);
        crate::reset();
        {
            let _a = crate::span("zeta");
            let _b = crate::span("alpha");
        }
        {
            let _a = crate::span("zeta");
        }
        crate::set_enabled(false);
        let tree = crate::profile().render_tree();
        let zeta = tree.find("zeta").unwrap();
        let alpha = tree.find("alpha").unwrap();
        assert!(zeta < alpha, "parent must precede child:\n{tree}");
        assert!(tree.contains("2 calls"));
    }

    #[test]
    fn human_time_units() {
        assert_eq!(human_time(12), "12ns");
        assert_eq!(human_time(1_500), "1.500us");
        assert_eq!(human_time(2_000_000), "2.000ms");
        assert_eq!(human_time(3_500_000_000), "3.500s");
    }
}
