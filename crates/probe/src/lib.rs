//! Structured pipeline instrumentation for the shackle crates.
//!
//! The paper's experimental story (Sections 5–6) attributes cost to
//! pipeline phases — shackle search, legality queries, code
//! generation, execution, cache simulation. This crate is the single
//! observability layer every other crate reports into:
//!
//! - **Phase spans** ([`span`]): nestable RAII timers keyed by a
//!   `&'static str` name. Each thread keeps its own span stack; a
//!   span's *path* is the stack of names enclosing it, so the same
//!   leaf (`"legality"`) nested under different phases is accounted
//!   separately. Closing a span merges `{calls, wall nanoseconds}`
//!   into a global table keyed by path.
//! - **Counters** ([`counter`], [`add`]): monotonic `u64` cells
//!   registered by static name, updated with relaxed atomics.
//! - **Histograms** ([`histogram`], [`record`]): 65 log2 buckets
//!   (value 0, then one bucket per power of two), each a relaxed
//!   atomic, for cheap distribution capture (e.g. batch sizes).
//!
//! Everything is gated by one process-global flag ([`set_enabled`]):
//! when disabled, [`span`] returns an inert guard without reading the
//! clock, and [`add`]/[`record`] return after a single relaxed load,
//! so instrumented hot paths stay within noise of uninstrumented ones
//! (`perf_report --profile` asserts ≤2% in CI).
//!
//! # Determinism across threads
//!
//! `shackle_core::par` workers adopt the spawning thread's span path
//! via [`with_path`], so work fanned out over `SHACKLE_THREADS`
//! lands under the same span paths regardless of thread count.
//! Counter totals and span *call* counts are exactly reproducible at
//! any thread count; wall times are measured, hence not.
//!
//! The global tables survive for the process lifetime; [`reset`]
//! zeroes them between measurement sections. Snapshot with
//! [`profile`], then render via [`Profile::render_tree`] (human) or
//! [`Profile::to_json`] (machine, `BENCH_profile.json`).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod report;
mod span;

pub use metrics::{add, counter, histogram, record, Counter, Histogram};
pub use report::{Profile, ProfileHistogram, ProfileSpan};
pub use span::{current_path, span, with_path, PathGuard, Span};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn instrumentation on or off process-wide. Returns the previous
/// state so callers can restore it.
pub fn set_enabled(on: bool) -> bool {
    ENABLED.swap(on, Ordering::SeqCst)
}

/// Whether instrumentation is currently enabled (one relaxed load —
/// this is the entire disabled-path cost of [`add`] and [`record`]).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero every span, counter, and histogram. Registered counter and
/// histogram handles remain valid (they are `&'static`); only their
/// values reset.
pub fn reset() {
    span::reset_spans();
    metrics::reset_metrics();
}

/// Snapshot the global tables into an immutable [`Profile`].
pub fn profile() -> Profile {
    report::snapshot()
}

#[cfg(test)]
pub(crate) mod testlock {
    //! Probe state is process-global; tests that enable/reset it
    //! serialize on this lock (same pattern as `shackle_polyhedra`'s
    //! memo-cache tests).
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let _l = testlock::hold();
        set_enabled(false);
        reset();
        {
            let _s = span("dead");
            add("dead.count", 5);
            record("dead.hist", 7);
        }
        let p = profile();
        assert!(p.spans.is_empty());
        assert!(p.counters.iter().all(|(_, v)| *v == 0));
        assert!(p.histograms.iter().all(|h| h.total == 0));
        assert!(current_path().is_empty());
    }

    #[test]
    fn spans_nest_by_path() {
        let _l = testlock::hold();
        set_enabled(true);
        reset();
        {
            let _a = span("outer");
            {
                let _b = span("inner");
                let _c = span("leaf");
            }
            let _b2 = span("inner");
        }
        set_enabled(false);
        let p = profile();
        let paths: Vec<(&str, u64)> = p.spans.iter().map(|s| (s.path.as_str(), s.calls)).collect();
        assert_eq!(
            paths,
            vec![("outer", 1), ("outer/inner", 2), ("outer/inner/leaf", 1)]
        );
        assert_eq!(p.spans[0].depth, 0);
        assert_eq!(p.spans[1].depth, 1);
        assert_eq!(p.spans[2].depth, 2);
        assert_eq!(p.spans[2].name, "leaf");
    }

    #[test]
    fn adopted_path_prefixes_worker_spans() {
        let _l = testlock::hold();
        set_enabled(true);
        reset();
        let ambient = {
            let _a = span("parent");
            current_path()
        };
        assert_eq!(ambient, vec!["parent"]);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = with_path(ambient.clone());
                let _w = span("work");
            });
        });
        set_enabled(false);
        let p = profile();
        assert!(p.spans.iter().any(|s| s.path == "parent/work"));
        // the guard restored the worker's (empty) stack before exit,
        // and the main thread's stack is empty again too
        assert!(current_path().is_empty());
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _l = testlock::hold();
        set_enabled(true);
        reset();
        add("t.counter", 3);
        add("t.counter", 4);
        counter("t.counter").add(1);
        assert_eq!(counter("t.counter").get(), 8);
        counter("t.gauge").set(41);
        set_enabled(false);
        let p = profile();
        assert!(p.counters.contains(&("t.counter".to_string(), 8)));
        assert!(p.counters.contains(&("t.gauge".to_string(), 41)));
        reset();
        assert_eq!(counter("t.counter").get(), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let _l = testlock::hold();
        set_enabled(true);
        reset();
        for v in [0u64, 1, 1, 2, 3, 4, 7, 8, u64::MAX] {
            record("t.hist", v);
        }
        set_enabled(false);
        let h = histogram("t.hist");
        assert_eq!(h.total(), 9);
        let snap = h.snapshot();
        // (bucket lower bound, count)
        assert_eq!(
            snap,
            vec![(0, 1), (1, 2), (2, 2), (4, 2), (8, 1), (1u64 << 63, 1)]
        );
    }
}
