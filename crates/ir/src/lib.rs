//! Loop-nest IR for data-centric blocking.
//!
//! Part of the `data-shackle` workspace, a reproduction of *Kodukula,
//! Ahmed & Pingali, "Data-centric Multi-level Blocking" (PLDI 1997)*.
//! This crate models the programs the paper transforms: imperfectly
//! nested FORTRAN-style loop nests over dense arrays with affine
//! subscripts, together with
//!
//! * `2d+1` schedules and program-order reasoning ([`schedule`]),
//! * exact ILP-based dependence analysis ([`deps`]), and
//! * the paper's benchmark kernels as ready-made IR ([`kernels`]).
//!
//! # Example
//!
//! ```
//! use shackle_ir::kernels;
//!
//! let p = kernels::matmul_ijk();
//! println!("{p}");
//! let deps = shackle_ir::deps::dependences(&p);
//! // the only dependences are the C[I,J] reduction carried by K
//! assert!(deps.iter().all(|d| d.src_ref.array() == "C"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod expr;
mod program;
mod stmt;

pub mod deps;
pub mod emit;
pub mod kernels;
pub mod parse;
pub mod pretty;
pub mod schedule;

pub use array::ArrayDecl;
pub use expr::{ArrayRef, ScalarExpr};
pub use program::{
    if_, loop_, loop_b, stmt, Bound, BoundTerm, Loop, Node, Program, StmtContext, StmtId,
};
pub use stmt::Statement;
