//! Pretty-printing programs in the paper's `do`-loop style.

use crate::{Bound, Node, Program};
use std::fmt;

/// Render a bound as the paper renders them: a single affine term plain,
/// divided terms as `ceild(e, d)` / `floord(e, d)`, several terms as
/// `max(...)` / `min(...)`.
pub fn bound_to_string(b: &Bound, lower: bool) -> String {
    let term = |t: &crate::BoundTerm| {
        if t.div == 1 {
            t.expr.to_string()
        } else if lower {
            format!("ceild({}, {})", t.expr, t.div)
        } else {
            format!("floord({}, {})", t.expr, t.div)
        }
    };
    if b.terms.len() == 1 {
        term(&b.terms[0])
    } else {
        let inner: Vec<String> = b.terms.iter().map(term).collect();
        if lower {
            format!("max({})", inner.join(", "))
        } else {
            format!("min({})", inner.join(", "))
        }
    }
}

pub(crate) fn print_program(p: &Program, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    writeln!(f, "// {}", p.name())?;
    print_nodes(p, p.body(), 0, f)
}

fn print_nodes(
    p: &Program,
    nodes: &[Node],
    indent: usize,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    let pad = "  ".repeat(indent);
    for n in nodes {
        match n {
            Node::Stmt(id) => {
                writeln!(f, "{pad}{}", p.stmts()[*id])?;
            }
            Node::Loop(l) => {
                writeln!(
                    f,
                    "{pad}do {} = {} .. {}",
                    l.var,
                    bound_to_string(&l.lower, true),
                    bound_to_string(&l.upper, false)
                )?;
                print_nodes(p, &l.body, indent + 1, f)?;
            }
            Node::If(cs, body) => {
                let conds: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                writeln!(f, "{pad}if ({})", conds.join(" && "))?;
                print_nodes(p, body, indent + 1, f)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{loop_, stmt, ArrayDecl, ArrayRef, BoundTerm, ScalarExpr, Statement};
    use shackle_polyhedra::LinExpr;

    #[test]
    fn bound_rendering() {
        let b = Bound::new(vec![
            BoundTerm::affine(LinExpr::var("N")),
            BoundTerm::div(LinExpr::var("N") + LinExpr::constant(24), 25),
        ]);
        assert_eq!(bound_to_string(&b, false), "min(N, floord(N + 24, 25))");
        assert_eq!(bound_to_string(&b, true), "max(N, ceild(N + 24, 25))");
        let single = Bound::affine(LinExpr::constant(1));
        assert_eq!(bound_to_string(&single, true), "1");
    }

    #[test]
    fn program_rendering() {
        let c = ArrayRef::vars("C", &["I"]);
        let s = Statement::new("S1", c.clone(), ScalarExpr::from(c));
        let p = Program::new(
            "p",
            vec!["N".into()],
            vec![ArrayDecl::new("C", vec![LinExpr::var("N")])],
            vec![s],
            vec![loop_(
                "I",
                LinExpr::constant(1),
                LinExpr::var("N"),
                vec![stmt(0)],
            )],
        );
        let text = p.to_string();
        assert!(text.contains("do I = 1 .. N"));
        assert!(text.contains("S1: C[I] = C[I]"));
    }
}
